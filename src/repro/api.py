"""The one-stop library facade: ``import repro; repro.api.run(...)``.

Six verbs cover the experiment engine end to end, mirroring the CLI
commands one for one:

* :func:`run` — one experiment, returning a typed :class:`RunResult`;
* :func:`sweep` — several experiments as ONE planned sweep (shared
  artifacts deduped, profile builds merged into bulk compression
  calls), returning :class:`SweepResults`;
* :func:`plan` — the optimized plan of a sweep, unexecuted
  (:class:`repro.engine.planner.Plan` — ``describe()`` / ``explain()``
  / ``to_json()``);
* :func:`report` — cache-only rendering: like :func:`run` but raising
  :class:`repro.engine.CacheMiss` instead of executing anything;
* :func:`cache_stats` — a typed :class:`CacheStats` snapshot of the
  shared on-disk result cache;
* :func:`advise` — one advisor answer, in-process (``repro serve``'s
  one-shot form).  For a *running* ``repro serve`` instance, use the
  re-exported :class:`AdvisorClient`
  (``await AdvisorClient.connect(host, port)``).

Every verb takes the same optional ``runner`` — an
:class:`repro.engine.ExperimentRunner` controlling parallelism,
caching and the base seed — and defaults to a serial runner over the
shared on-disk cache (``.repro-cache/`` or ``$REPRO_CACHE_DIR``), so
library calls, ``examples/`` scripts and the ``repro`` CLI all hit
the same cache entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.engine.cache import ResultCache, result_digest
from repro.engine.planner import ExecutionReport, Plan
from repro.engine.planner import plan as _plan
from repro.engine.runner import ExperimentRunner, RunReport
from repro.serve.protocol import Advice, AdviceRequest
from repro.serve.server import AdvisorClient

__all__ = [
    "Advice",
    "AdviceRequest",
    "AdvisorClient",
    "CacheStats",
    "RunResult",
    "SweepResults",
    "advise",
    "cache_stats",
    "plan",
    "report",
    "run",
    "sweep",
]


def _default_runner(offline: bool = False) -> ExperimentRunner:
    """Serial runner over the shared on-disk cache (the CLI's default)."""
    return ExperimentRunner(cache=ResultCache(), offline=offline)


@dataclass
class RunResult:
    """One experiment's outcome: aggregate value plus provenance."""

    experiment: str
    value: Any
    report: RunReport
    digest: str  # content digest of ``value`` (`repro run` prints it)

    @property
    def from_cache(self) -> bool:
        return self.report.from_cache


@dataclass
class SweepResults:
    """A planned multi-experiment sweep's outcome.

    ``runs`` holds one :class:`RunResult` per request, in request
    order; ``execution`` carries the planner's counter-pinned
    stage-0 statistics (artifacts built/reused, bulk compression
    calls, snapshot generations); ``plan`` is the executed plan.
    """

    runs: list[RunResult]
    execution: ExecutionReport
    plan: Plan

    def __iter__(self):
        return iter(self.runs)

    def __len__(self) -> int:
        return len(self.runs)

    def __getitem__(self, experiment: str) -> RunResult:
        """The first run of the named experiment."""
        for run_ in self.runs:
            if run_.experiment == experiment:
                return run_
        raise KeyError(
            f"no {experiment!r} in this sweep; "
            f"ran: {', '.join(r.experiment for r in self.runs)}"
        )


@dataclass
class CacheStats:
    """A typed snapshot of the result cache (``repro cache``)."""

    root: str
    entries: int
    bytes: int
    evictions: int
    per_experiment: dict[str, tuple[int, int]]  # name -> (entries, bytes)


# ---------------------------------------------------------------------------
def run(
    experiment: str,
    params: dict | None = None,
    runner: ExperimentRunner | None = None,
) -> RunResult:
    """Run one experiment end to end (``repro run``)."""
    runner = runner or _default_runner()
    value, report = runner.run_report(experiment, params)
    return RunResult(experiment, value, report, result_digest(value))


def sweep(requests, runner: ExperimentRunner | None = None) -> SweepResults:
    """Run several experiments as one planned sweep (``repro sweep``).

    ``requests`` is an iterable of experiment names or
    ``(name, params)`` pairs.  Results are bit-identical to calling
    :func:`run` per request; shared profile/entry-state artifacts are
    built once for the whole sweep.
    """
    runner = runner or _default_runner()
    result = runner.run_sweep(requests)
    runs = [
        RunResult(report.experiment, value, report, result_digest(value))
        for value, report in zip(result.values, result.reports)
    ]
    return SweepResults(runs, result.execution, result.plan)


def plan(requests, runner: ExperimentRunner | None = None) -> Plan:
    """The optimized plan of a sweep, unexecuted (``repro plan``)."""
    return _plan(requests, runner or _default_runner())


def report(
    experiment: str,
    params: dict | None = None,
    runner: ExperimentRunner | None = None,
) -> RunResult:
    """Render a cached result without executing anything.

    Like :func:`run` but offline: a design point absent from the
    cache raises :class:`repro.engine.CacheMiss` (``repro report
    --from-cache``).  A passed ``runner`` is used as-is — hand it an
    offline one (``ExperimentRunner(cache=..., offline=True)``).
    """
    return run(experiment, params, runner or _default_runner(offline=True))


def advise(
    request: AdviceRequest | None = None,
    *,
    cache: ResultCache | None = None,
    config=None,
    **fields,
) -> Advice:
    """One advisor answer, in-process (``repro serve``'s one-shot form).

    Pass a prebuilt :class:`AdviceRequest`, or its fields directly::

        advice = repro.api.advise(benchmark="VGG16", codec="bdi")
        advice.recommendation["design"]

    The answer is digest-identical to what a running service returns
    for the same request, and to the per-benchmark payload of
    ``repro run serve.advice``.  Malformed fields raise
    :class:`repro.serve.InvalidRequest` (typed, with a stable
    ``code``), never bare ``ValueError``.
    """
    from repro.serve.advisor import advise_one
    from repro.serve.protocol import InvalidRequest

    if request is None:
        try:
            request = AdviceRequest(**fields)
        except TypeError as err:
            raise InvalidRequest("bad-request", str(err)) from None
    elif fields:
        raise InvalidRequest(
            "bad-request", "pass either a request or fields, not both"
        )
    return advise_one(request, cache=cache, config=config)


def cache_stats(cache_dir: str | None = None) -> CacheStats:
    """Usage snapshot of the shared result cache (``repro cache``)."""
    cache = ResultCache(cache_dir)
    usage = cache.usage()
    return CacheStats(
        root=str(cache.root),
        entries=usage.entries,
        bytes=usage.bytes,
        evictions=usage.evictions,
        per_experiment=dict(usage.per_experiment),
    )
