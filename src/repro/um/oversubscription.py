"""The Unified Memory oversubscription model (Fig. 12).

The paper forces 0–40 % oversubscription through an interposer that
hogs device memory, then measures SpecAccel programs under (a) UM
migration and (b) all allocations pinned in host memory.  Findings:
UM's fault-driven migration frequently performs *worse* than pinned
host access, catastrophically so for the random-access 360.ilbdc.

The model reproduces the mechanism.  A benchmark's page-access stream
(derived from its catalog access character) runs against an LRU
residency set sized by the forced oversubscription:

* each fault serialises through the driver (tens of microseconds) and
  migrates a whole 64 KB page over the interconnect;
* sequential/strided codes fault once per page per sweep, so their
  slowdown grows roughly linearly in the non-resident share;
* random-gather codes fault per access once the hot set spills,
  which is the paper's 360.ilbdc collapse.

Pinned mode replaces device bandwidth with sustained interconnect
bandwidth — a constant factor independent of oversubscription.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import rng as rng_lib
from repro.um.pages import ResidencySet
from repro.workloads.catalog import AccessPattern, get_benchmark

#: UM migration granularity (bytes).
PAGE_BYTES = 64 * 1024


@dataclass(frozen=True)
class UMConfig:
    """Model parameters for the Power9 + V100 measurement setup.

    Attributes:
        link_gbps: NVLink bandwidth between host and GPU (the paper's
            rig has 3 bricks = 75 GB/s full-duplex).
        device_gbps: Device memory bandwidth.
        fault_us: Driver fault-handling serialisation per page fault.
        fault_batch: Faults the driver coalesces per handling episode.
        access_ns: Mean time per modelled access when resident,
            including the overlapped compute (the baseline time unit).
        footprint_pages: Modelled footprint in pages (scaled).
        accesses_per_page: Mean accesses per resident page per sweep
            for sequential codes (random codes draw i.i.d. pages).
        sweeps: Number of passes over the working set.
        seed: RNG seed for the access stream.
    """

    link_gbps: float = 75.0
    device_gbps: float = 900.0
    fault_us: float = 25.0
    fault_batch: int = 2
    access_ns: float = 100.0
    footprint_pages: int = 2048
    accesses_per_page: int = 16
    sweeps: int = 8
    seed: int = rng_lib.DEFAULT_SEED


@dataclass
class UMResult:
    """One (benchmark, oversubscription) measurement."""

    benchmark: str
    oversubscription: float
    um_slowdown: float
    pinned_slowdown: float
    fault_rate: float


def _page_stream(benchmark: str, config: UMConfig) -> np.ndarray:
    """The benchmark's page access stream (page ids)."""
    character = get_benchmark(benchmark).character
    pages = config.footprint_pages
    hot = max(2, int(pages * character.working_set_fraction))
    # Wide-stencil codes (large stride) make more accesses per page
    # before moving on, so they re-fault less often per unit work.
    reuse = config.accesses_per_page * (2 if character.stride_entries >= 16 else 1)
    per_sweep = hot * config.accesses_per_page
    rng = rng_lib.generator(f"um/{benchmark}", config.seed)

    stride = max(1, character.stride_entries)
    while np.gcd(stride, hot) != 1:
        stride += 1

    sweeps = []
    for _ in range(config.sweeps):
        if character.pattern is AccessPattern.RANDOM:
            sweeps.append(rng.integers(0, hot, per_sweep))
        else:
            # Sequential/strided: consecutive accesses stay on a page.
            page_order = (
                np.arange(hot, dtype=np.int64) * stride % hot
                if character.pattern is AccessPattern.STRIDED
                else np.arange(hot, dtype=np.int64)
            )
            sweeps.append(np.repeat(page_order, reuse))
    return np.concatenate(sweeps)


def um_slowdown(
    benchmark: str, oversubscription: float, config: UMConfig | None = None
) -> UMResult:
    """Runtime ratio of UM migration vs the fully resident baseline."""
    config = config or UMConfig()
    if not 0.0 <= oversubscription < 1.0:
        raise ValueError(f"oversubscription {oversubscription} outside [0, 1)")
    stream = _page_stream(benchmark, config)
    migration_ns = PAGE_BYTES / (config.link_gbps * 1e9) * 1e9
    fault_ns = config.fault_us * 1e3 / config.fault_batch + migration_ns

    def runtime(level: float) -> tuple[float, float]:
        capacity = max(1, int(config.footprint_pages * (1.0 - level)))
        residency = ResidencySet(capacity)
        for page in stream:
            residency.touch(int(page))
        total = stream.size * config.access_ns + residency.faults * fault_ns
        return total, residency.fault_rate

    # Normalise to the 0 %-oversubscription run, which still pays the
    # cold-start migration — exactly what "runtime relative to
    # original" means in the paper's measurement.
    baseline, _ = runtime(0.0)
    total, fault_rate = runtime(oversubscription)

    return UMResult(
        benchmark=benchmark,
        oversubscription=oversubscription,
        um_slowdown=total / baseline,
        pinned_slowdown=pinned_slowdown(benchmark, config),
        fault_rate=fault_rate,
    )


def pinned_slowdown(benchmark: str, config: UMConfig | None = None) -> float:
    """Runtime ratio of pinning everything in host memory.

    Every access is served at interconnect bandwidth instead of device
    bandwidth; compute overlap (the benchmark's arithmetic intensity)
    hides part of the gap.
    """
    config = config or UMConfig()
    character = get_benchmark(benchmark).character
    bandwidth_ratio = config.device_gbps / config.link_gbps
    # Memory-bound share of runtime: high-intensity kernels hide more.
    memory_share = 1.0 / (1.0 + character.compute_per_memory / 12.0)
    return 1.0 + (bandwidth_ratio - 1.0) * memory_share


def run_um_study(
    benchmarks=("360.ilbdc", "356.sp", "351.palm"),
    oversubscriptions=(0.0, 0.1, 0.2, 0.3, 0.4),
    config: UMConfig | None = None,
) -> list[UMResult]:
    """The Fig. 12 sweep."""
    config = config or UMConfig()
    return [
        um_slowdown(benchmark, level, config)
        for benchmark in benchmarks
        for level in oversubscriptions
    ]
