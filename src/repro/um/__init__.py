"""Unified Memory oversubscription substrate (paper Fig. 12).

Models CUDA Unified Memory's behaviour when device memory is
oversubscribed: page-fault-driven migration with LRU eviction, and the
alternative of pinning all allocations in host memory.  The paper
measured this on a Power9 + V100 system (3 NVLink2 bricks, 75 GB/s);
we reproduce the mechanism — fault-serialised migration collapsing
once the hot set exceeds device memory, frequently performing worse
than host-pinned access.
"""

from repro.um.oversubscription import (
    UMConfig,
    UMResult,
    run_um_study,
    pinned_slowdown,
    um_slowdown,
)

__all__ = [
    "UMConfig",
    "UMResult",
    "run_um_study",
    "pinned_slowdown",
    "um_slowdown",
]
