"""Page residency tracking for the Unified Memory model."""

from __future__ import annotations

from collections import OrderedDict


class ResidencySet:
    """LRU set of device-resident pages with a fixed capacity."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise ValueError("device must hold at least one page")
        self.capacity = capacity_pages
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.faults = 0
        self.hits = 0
        self.evictions = 0

    def touch(self, page: int) -> bool:
        """Access a page; migrate it in on a fault.  Returns hit."""
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        self.faults += 1
        self._pages[page] = None
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
            self.evictions += 1
        return False

    @property
    def resident(self) -> int:
        return len(self._pages)

    @property
    def accesses(self) -> int:
        return self.hits + self.faults

    @property
    def fault_rate(self) -> float:
        return self.faults / self.accesses if self.accesses else 0.0
