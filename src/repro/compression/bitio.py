"""Bit-level I/O used by the exact (roundtrip) codecs.

The hardware serialises variable-length codes MSB-first; both classes
here follow that convention so encoded streams are byte-identical run
to run and stable for golden tests.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates an MSB-first bitstream."""

    def __init__(self) -> None:
        self._value = 0
        self._length = 0

    def write(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value`` (must fit, non-negative)."""
        if width < 0:
            raise ValueError(f"negative width {width}")
        if value < 0 or value >> width:
            raise ValueError(f"value {value:#x} does not fit in {width} bits")
        self._value = (self._value << width) | value
        self._length += width

    @property
    def bit_length(self) -> int:
        return self._length

    def to_bytes(self) -> bytes:
        """Pack the stream into bytes, left-aligned (MSB of byte 0 first)."""
        if self._length == 0:
            return b""
        pad = (-self._length) % 8
        return ((self._value << pad)).to_bytes((self._length + pad) // 8, "big")


class BitReader:
    """Reads an MSB-first bitstream produced by :class:`BitWriter`."""

    def __init__(self, data: bytes, bit_length: int) -> None:
        self._data = data
        self._bit_length = bit_length
        self._pos = 0

    def read(self, width: int) -> int:
        """Consume and return the next ``width`` bits as an integer."""
        if self._pos + width > self._bit_length:
            raise EOFError(
                f"read past end of stream ({self._pos}+{width}>{self._bit_length})"
            )
        value = 0
        pos = self._pos
        for _ in range(width):
            byte = self._data[pos // 8]
            bit = (byte >> (7 - pos % 8)) & 1
            value = (value << 1) | bit
            pos += 1
        self._pos = pos
        return value

    @property
    def bits_remaining(self) -> int:
        return self._bit_length - self._pos
