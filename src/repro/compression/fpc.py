"""Frequent Pattern Compression (Alameldeen & Wood, 2004).

FPC encodes each 32-bit word with a 3-bit prefix selecting one of eight
patterns; runs of zero words share a single prefix.  Applied here to
the paper's 128 B memory-entry (32 words).

Patterns (payload bits in parentheses):

======  =======================================  =======
Prefix  Pattern                                  Payload
======  =======================================  =======
000     run of 1–8 zero words                    3
001     4-bit sign-extended                      4
010     8-bit sign-extended                      8
011     16-bit sign-extended                     16
100     16-bit padded with a zero halfword       16
101     two halfwords, each a sign-ext. byte     16
110     word of four repeated bytes              8
111     uncompressed word                        32
======  =======================================  =======
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressionAlgorithm, as_blocks, as_entry
from repro.units import MEMORY_ENTRY_BYTES

_PREFIX_BITS = 3
_MAX_ZERO_RUN = 8


def _word_payload_bits(word: int) -> int:
    """Payload bits for one non-zero-run word."""
    signed = word - (1 << 32) if word >> 31 else word
    if -8 <= signed < 8:
        return 4
    if -128 <= signed < 128:
        return 8
    if -32768 <= signed < 32768:
        return 16
    if word & 0xFFFF == 0:
        return 16  # halfword padded with zeros
    low, high = word & 0xFFFF, word >> 16
    low_signed = low - (1 << 16) if low >> 15 else low
    high_signed = high - (1 << 16) if high >> 15 else high
    if -128 <= low_signed < 128 and -128 <= high_signed < 128:
        return 16  # two sign-extended halfwords
    bytes_ = word.to_bytes(4, "little")
    if len(set(bytes_)) == 1:
        return 8  # repeated bytes
    return 32


class FPCCompressor(CompressionAlgorithm):
    """Frequent Pattern Compression for 128 B entries."""

    name = "fpc"

    def compressed_size(self, words: np.ndarray) -> int:
        words = as_entry(words)
        bits = 0
        index = 0
        while index < words.size:
            word = int(words[index])
            if word == 0:
                run = 1
                while (
                    index + run < words.size
                    and run < _MAX_ZERO_RUN
                    and int(words[index + run]) == 0
                ):
                    run += 1
                bits += _PREFIX_BITS + 3
                index += run
                continue
            bits += _PREFIX_BITS + _word_payload_bits(word)
            index += 1
        return min((bits + 7) // 8, MEMORY_ENTRY_BYTES)

    def compressed_sizes(self, blocks: np.ndarray) -> np.ndarray:
        """Vectorised sizes for ``(n, 32)`` uint32 blocks."""
        blocks = as_blocks(blocks)
        n = blocks.shape[0]
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        words = blocks.astype(np.int64)
        signed = np.where(words >> 31, words - (1 << 32), words)

        payload = np.full(words.shape, 32, dtype=np.int64)
        bytes_view = np.ascontiguousarray(blocks).view(np.uint8).reshape(n, -1, 4)
        repeated = (bytes_view == bytes_view[:, :, :1]).all(axis=2)
        payload[repeated] = 8
        low = words & 0xFFFF
        high = words >> 16
        low_signed = np.where(low >> 15, low - (1 << 16), low)
        high_signed = np.where(high >> 15, high - (1 << 16), high)
        two_bytes = (
            (low_signed >= -128)
            & (low_signed < 128)
            & (high_signed >= -128)
            & (high_signed < 128)
        )
        payload[two_bytes] = 16
        payload[low == 0] = 16
        payload[(signed >= -32768) & (signed < 32768)] = 16
        payload[(signed >= -128) & (signed < 128)] = 8
        payload[(signed >= -8) & (signed < 8)] = 4

        bits = np.where(words != 0, _PREFIX_BITS + payload, 0).sum(axis=1)

        # Zero runs: each run of r zero words costs ceil(r / 8) * 6 bits.
        zero = words == 0
        run = np.zeros(n, dtype=np.int64)
        for column in range(words.shape[1]):
            run = np.where(zero[:, column], run + 1, 0)
            starts_code = zero[:, column] & (run % _MAX_ZERO_RUN == 1)
            bits += starts_code * (_PREFIX_BITS + 3)

        sizes = (bits + 7) // 8
        return np.minimum(sizes, MEMORY_ENTRY_BYTES).astype(np.int64)
