"""Common interface for block-compression algorithms.

All algorithms operate on one 128 B *memory-entry* — the paper's
compression granularity — presented as 32 little-endian ``uint32``
words.  Implementations report compressed sizes in bytes; codecs that
support decompression also return a :class:`CompressedBlock` wrapping
the encoded bitstream.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.units import MEMORY_ENTRY_BYTES, WORDS_PER_ENTRY


@dataclass(frozen=True)
class CompressedBlock:
    """An encoded memory-entry.

    Attributes:
        algorithm: Name of the producing algorithm.
        bits: The encoded bitstream (as a Python ``bytes`` of 0/1 flags
            is wasteful; we store packed bytes plus a bit length).
        bit_length: Number of valid bits in ``bits``.
    """

    algorithm: str
    bits: bytes
    bit_length: int

    @property
    def size_bytes(self) -> int:
        """Compressed size in whole bytes (what the hardware stores)."""
        return (self.bit_length + 7) // 8


class CompressionAlgorithm(abc.ABC):
    """A block compressor for 128 B memory-entries."""

    #: Short identifier, e.g. ``"bpc"``.
    name: str = "abstract"

    @abc.abstractmethod
    def compressed_size(self, words: np.ndarray) -> int:
        """Compressed size in bytes of one entry (32 ``uint32`` words).

        Sizes are capped at 128: an entry that does not compress is
        stored raw.
        """

    def compressed_sizes(self, blocks: np.ndarray) -> np.ndarray:
        """Compressed sizes for many entries at once.

        Args:
            blocks: ``(n, 32)`` array of ``uint32`` words.

        Returns:
            ``(n,)`` ``int64`` array of sizes in bytes.

        The base implementation loops; vectorisable algorithms override
        this with a bulk path.
        """
        blocks = as_blocks(blocks)
        return np.array(
            [self.compressed_size(block) for block in blocks], dtype=np.int64
        )

    def compression_ratio(self, blocks: np.ndarray) -> float:
        """Aggregate ratio (original bytes / compressed bytes) over blocks.

        Empty input compresses nothing, so its ratio is the neutral
        1.0 — not the ``0 / 0 = inf`` the division would produce.
        """
        blocks = as_blocks(blocks)
        if blocks.shape[0] == 0:
            return 1.0
        sizes = self.compressed_sizes(blocks)
        compressed = int(sizes.sum())
        if compressed == 0:
            return float("inf")
        return blocks.shape[0] * MEMORY_ENTRY_BYTES / compressed


def as_entry(words: np.ndarray) -> np.ndarray:
    """View input as exactly one memory-entry of 32 ``uint32`` words.

    Scalar ``compressed_size`` implementations use this to reject bulk
    ``(n, 32)`` input instead of silently flattening it: a dictionary
    codec fed n concatenated entries would share match state across
    entry boundaries and report one meaningless size.  Bulk input
    belongs to :meth:`CompressionAlgorithm.compressed_sizes`.
    """
    entry = np.asarray(words, dtype=np.uint32).reshape(-1)
    if entry.size != WORDS_PER_ENTRY:
        raise ValueError(
            f"compressed_size expects one {WORDS_PER_ENTRY}-word entry, got "
            f"{entry.size} words; use compressed_sizes for bulk (n, 32) input"
        )
    return entry


def as_blocks(data: np.ndarray) -> np.ndarray:
    """View arbitrary array data as ``(n, 32)`` uint32 memory-entries.

    The input is flattened, viewed as raw bytes, zero-padded to a
    multiple of 128 B, and reshaped.  This mirrors how the paper's
    tooling walked raw memory dumps.
    """
    if data.ndim == 2 and data.dtype == np.uint32 and data.shape[1] == WORDS_PER_ENTRY:
        return data
    raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    remainder = raw.size % MEMORY_ENTRY_BYTES
    if remainder:
        raw = np.concatenate(
            [raw, np.zeros(MEMORY_ENTRY_BYTES - remainder, dtype=np.uint8)]
        )
    return raw.view(np.uint32).reshape(-1, WORDS_PER_ENTRY)
