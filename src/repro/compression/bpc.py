"""Bit-Plane Compression (BPC), after Kim et al., ISCA 2016.

BPC is the codec Buddy Compression builds on.  For one 128 B
memory-entry (32 little-endian ``uint32`` words) it:

1. keeps the first word as the *base* and takes 31 consecutive deltas
   (33-bit signed values);
2. transposes the deltas into 33 *delta bit-planes* (DBP), each a
   31-bit symbol;
3. XORs adjacent planes (DBX transform): ``DBX[b] = DBP[b] ^ DBP[b+1]``
   with the top plane passed through;
4. encodes the base word and each DBX plane with a short prefix-free
   code exploiting the frequent all-zero / all-one / single-one plane
   patterns that homogeneous GPU data produces.

Two paths are provided:

* :meth:`BPCCompressor.encode` / :meth:`BPCCompressor.decode` — a
  bit-exact scalar codec, property-tested for roundtrip fidelity.
* :meth:`BPCCompressor.compressed_sizes` — a fully vectorised
  size-only path (what every snapshot study consumes), property-tested
  for equality with the scalar encoder.

Code table for DBX planes (prefix-free):

=====================  ==========================  =====
Plane pattern          Code                        Bits
=====================  ==========================  =====
run of 2–33 zeros      ``001`` + 5-bit (run − 2)   8
single zero plane      ``01``                      2
all ones               ``00000``                   5
DBX ≠ 0 but DBP = 0    ``00001``                   5
two consecutive ones   ``00010`` + 5-bit position  10
single one             ``00011`` + 5-bit position  10
uncompressed           ``1`` + 31 raw bits         32
=====================  ==========================  =====

Base-word code: ``000`` for zero, ``001``/``010``/``011`` + 4/8/16-bit
sign-extended payloads, ``1`` + 32 raw bits otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedBlock, CompressionAlgorithm, as_blocks
from repro.compression.bitio import BitReader, BitWriter
from repro.units import MEMORY_ENTRY_BYTES, WORDS_PER_ENTRY

_NUM_DELTAS = WORDS_PER_ENTRY - 1  # 31
_NUM_PLANES = 33  # 33-bit deltas -> 33 bit-planes
_PLANE_MASK = (1 << _NUM_DELTAS) - 1  # 31-bit planes
_DELTA_MASK = (1 << _NUM_PLANES) - 1  # 33-bit two's-complement deltas
_RAW_BITS = MEMORY_ENTRY_BYTES * 8  # 1024

# Base-word payload widths for the sign-extended classes.
_BASE_CLASSES = ((0b001, 4), (0b010, 8), (0b011, 16))


def _signed_fits(value: int, bits: int) -> bool:
    """Whether a signed integer fits in ``bits`` two's-complement bits."""
    bound = 1 << (bits - 1)
    return -bound <= value < bound


def _base_cost_bits(word: int) -> int:
    """Encoded size of the base word under the base code table."""
    signed = word - (1 << 32) if word >> 31 else word
    if signed == 0:
        return 3
    for _, width in _BASE_CLASSES:
        if _signed_fits(signed, width):
            return 3 + width
    return 1 + 32


def _dbp_planes(words: np.ndarray) -> list[int]:
    """Compute the 33 delta bit-planes of one entry as Python ints."""
    values = [int(w) for w in words]
    deltas = [
        (values[i + 1] - values[i]) & _DELTA_MASK for i in range(_NUM_DELTAS)
    ]
    planes = []
    for bit in range(_NUM_PLANES):
        plane = 0
        for j, delta in enumerate(deltas):
            plane |= ((delta >> bit) & 1) << j
        planes.append(plane)
    return planes


def _dbx_planes(dbp: list[int]) -> list[int]:
    """XOR-transform adjacent planes; the top plane passes through."""
    dbx = [dbp[b] ^ dbp[b + 1] for b in range(_NUM_PLANES - 1)]
    dbx.append(dbp[_NUM_PLANES - 1])
    return dbx


def _is_two_consecutive_ones(plane: int) -> bool:
    """True when the plane has exactly two set bits and they are adjacent."""
    if plane == 0:
        return False
    low = plane & -plane
    return plane == (low | (low << 1))


class BPCCompressor(CompressionAlgorithm):
    """Bit-Plane Compression codec for 128 B memory-entries."""

    name = "bpc"

    # ------------------------------------------------------------------
    # Exact scalar codec
    # ------------------------------------------------------------------
    def encode(self, words: np.ndarray) -> CompressedBlock:
        """Encode one entry to a bitstream (falls back to raw storage).

        If the compressed stream would be at least as large as the raw
        1024 bits, the entry is stored raw with a leading ``1`` flag
        (real hardware records the raw/compressed choice in the 4-bit
        size metadata; the in-stream flag keeps this codec
        self-contained for testing).
        """
        words = np.asarray(words, dtype=np.uint32).reshape(WORDS_PER_ENTRY)
        writer = BitWriter()
        writer.write(0, 1)  # compressed-stream flag
        self._encode_base(writer, int(words[0]))
        dbp = _dbp_planes(words)
        dbx = _dbx_planes(dbp)
        self._encode_planes(writer, dbp, dbx)
        if writer.bit_length >= 1 + _RAW_BITS:
            raw = BitWriter()
            raw.write(1, 1)  # raw flag
            for word in words:
                raw.write(int(word), 32)
            writer = raw
        return CompressedBlock(self.name, writer.to_bytes(), writer.bit_length)

    def decode(self, block: CompressedBlock) -> np.ndarray:
        """Decode a stream produced by :meth:`encode` back to 32 words."""
        if block.algorithm != self.name:
            raise ValueError(f"cannot decode {block.algorithm!r} stream with BPC")
        reader = BitReader(block.bits, block.bit_length)
        if reader.read(1):  # raw entry
            return np.array(
                [reader.read(32) for _ in range(WORDS_PER_ENTRY)], dtype=np.uint32
            )
        base = self._decode_base(reader)
        dbx = self._decode_planes(reader)
        dbp = [0] * _NUM_PLANES
        dbp[_NUM_PLANES - 1] = dbx[_NUM_PLANES - 1]
        for bit in range(_NUM_PLANES - 2, -1, -1):
            if dbx[bit] is _DBP_ZERO:
                dbp[bit] = 0
            else:
                dbp[bit] = dbx[bit] ^ dbp[bit + 1]
        deltas = []
        for j in range(_NUM_DELTAS):
            delta = 0
            for bit in range(_NUM_PLANES):
                delta |= ((dbp[bit] >> j) & 1) << bit
            if delta >> (_NUM_PLANES - 1):  # sign-extend 33-bit value
                delta -= 1 << _NUM_PLANES
            deltas.append(delta)
        words = [base]
        for delta in deltas:
            words.append((words[-1] + delta) & 0xFFFF_FFFF)
        return np.array(words, dtype=np.uint32)

    def compressed_size(self, words: np.ndarray) -> int:
        """Compressed size in bytes of one entry (capped at 128)."""
        return min(self.encode(words).size_bytes, MEMORY_ENTRY_BYTES)

    # ------------------------------------------------------------------
    # Vectorised size-only path
    # ------------------------------------------------------------------
    def compressed_sizes(self, blocks: np.ndarray) -> np.ndarray:
        """Sizes in bytes for ``(n, 32)`` uint32 blocks, vectorised.

        Matches the scalar encoder bit for bit (property-tested), but
        runs orders of magnitude faster, which makes the multi-snapshot
        studies tractable in Python.
        """
        blocks = as_blocks(blocks)
        if blocks.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        bits = self._stream_bits_vectorised(blocks)
        sizes = (bits + 7) // 8
        return np.minimum(sizes, MEMORY_ENTRY_BYTES).astype(np.int64)

    # -- scalar helpers -------------------------------------------------
    def _encode_base(self, writer: BitWriter, word: int) -> None:
        signed = word - (1 << 32) if word >> 31 else word
        if signed == 0:
            writer.write(0b000, 3)
            return
        for code, width in _BASE_CLASSES:
            if _signed_fits(signed, width):
                writer.write(code, 3)
                writer.write(signed & ((1 << width) - 1), width)
                return
        writer.write(1, 1)
        writer.write(word, 32)

    def _decode_base(self, reader: BitReader) -> int:
        if reader.read(1):
            return reader.read(32)
        code = reader.read(2)
        if code == 0b00:
            return 0
        width = {0b01: 4, 0b10: 8, 0b11: 16}[code]
        payload = reader.read(width)
        if payload >> (width - 1):  # sign-extend
            payload -= 1 << width
        return payload & 0xFFFF_FFFF

    def _encode_planes(
        self, writer: BitWriter, dbp: list[int], dbx: list[int]
    ) -> None:
        bit = _NUM_PLANES - 1
        while bit >= 0:
            plane = dbx[bit]
            if plane == 0:
                run = 1
                while bit - run >= 0 and dbx[bit - run] == 0:
                    run += 1
                if run >= 2:
                    writer.write(0b001, 3)
                    writer.write(run - 2, 5)
                else:
                    writer.write(0b01, 2)
                bit -= run
                continue
            if plane == _PLANE_MASK:
                writer.write(0b00000, 5)
            elif dbp[bit] == 0:
                writer.write(0b00001, 5)
            elif _is_two_consecutive_ones(plane):
                writer.write(0b00010, 5)
                writer.write((plane & -plane).bit_length() - 1, 5)
            elif plane & (plane - 1) == 0:  # single one
                writer.write(0b00011, 5)
                writer.write(plane.bit_length() - 1, 5)
            else:
                writer.write(1, 1)
                writer.write(plane, _NUM_DELTAS)
            bit -= 1

    def _decode_planes(self, reader: BitReader) -> list[object]:
        """Decode DBX planes top-down; ``_DBP_ZERO`` marks DBP==0 planes."""
        planes: list[object] = [None] * _NUM_PLANES
        bit = _NUM_PLANES - 1
        while bit >= 0:
            if reader.read(1):  # raw plane
                planes[bit] = reader.read(_NUM_DELTAS)
                bit -= 1
                continue
            if reader.read(1):  # '01' single zero plane
                planes[bit] = 0
                bit -= 1
                continue
            if reader.read(1):  # '001' zero run
                run = reader.read(5) + 2
                for _ in range(run):
                    planes[bit] = 0
                    bit -= 1
                continue
            code = reader.read(2)
            if code == 0b00:
                planes[bit] = _PLANE_MASK
            elif code == 0b01:
                planes[bit] = _DBP_ZERO
            elif code == 0b10:
                position = reader.read(5)
                planes[bit] = 0b11 << position
            else:
                position = reader.read(5)
                planes[bit] = 1 << position
            bit -= 1
        return planes

    # -- vectorised helpers ----------------------------------------------
    @staticmethod
    def _stream_bits_vectorised(blocks: np.ndarray) -> np.ndarray:
        """Encoded bit count (incl. 1 flag bit) per block, before capping."""
        n = blocks.shape[0]
        words = blocks.astype(np.int64)
        deltas = (words[:, 1:] - words[:, :-1]) & _DELTA_MASK  # (n, 31) uint-ish

        # Build the 33 planes as 31-bit integers, one matrix op per plane.
        weights = (1 << np.arange(_NUM_DELTAS, dtype=np.int64))
        dbp = np.empty((n, _NUM_PLANES), dtype=np.int64)
        for bit in range(_NUM_PLANES):
            dbp[:, bit] = (((deltas >> bit) & 1) * weights).sum(axis=1)
        dbx = dbp.copy()
        dbx[:, :-1] ^= dbp[:, 1:]

        # Per-plane cost for every non-zero-run case.
        popcount = np.bitwise_count(dbx.astype(np.uint64)).astype(np.int64)
        low_bit = dbx & -dbx
        two_consecutive = (popcount == 2) & (dbx == (low_bit | (low_bit << 1)))
        plane_cost = np.full((n, _NUM_PLANES), 32, dtype=np.int64)
        plane_cost[popcount == 1] = 10
        plane_cost[two_consecutive] = 10
        plane_cost[(dbx != 0) & (dbp == 0)] = 5
        plane_cost[dbx == _PLANE_MASK] = 5
        # A single zero plane costs 2; zero runs are handled below.
        plane_cost[dbx == 0] = 2

        # Zero-run accounting, scanning planes top-down as the encoder does:
        # a maximal run of r >= 2 zero planes is coded in 8 bits, replacing
        # the r * 2 bits counted above (costlier for r < 4, cheaper after).
        total = plane_cost.sum(axis=1)
        zero = dbx == 0
        run = np.zeros(n, dtype=np.int64)
        for bit in range(_NUM_PLANES - 1, -1, -1):
            run = np.where(zero[:, bit], run + 1, 0)
            if bit == 0:
                ended = run
            else:
                ended = np.where(zero[:, bit - 1], 0, run)
            total += np.where(ended >= 2, 8 - 2 * ended, 0)

        base = words[:, 0]
        signed = np.where(base >> 31, base - (1 << 32), base)
        base_cost = np.full(n, 33, dtype=np.int64)
        base_cost[(signed >= -(1 << 15)) & (signed < (1 << 15))] = 19
        base_cost[(signed >= -(1 << 7)) & (signed < (1 << 7))] = 11
        base_cost[(signed >= -(1 << 3)) & (signed < (1 << 3))] = 7
        base_cost[signed == 0] = 3

        return 1 + base_cost + total


#: Sentinel used by the decoder for planes known to have DBP == 0.
class _DBPZeroType:
    """Marker type: the encoder said this plane's DBP is all-zero."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<DBP=0>"


_DBP_ZERO = _DBPZeroType()
