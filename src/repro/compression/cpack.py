"""C-PACK cache compression (Chen et al., IEEE TVLSI 2010).

C-PACK combines static patterns with a small FIFO dictionary of
recently seen words.  Each 32-bit word emits one of:

======  ==============================  ==========
Code    Pattern                         Total bits
======  ==============================  ==========
00      all-zero word                   2
01      uncompressed word               2 + 32
10      full dictionary match           2 + 4
1100    partial match (high 2 bytes)    4 + 4 + 16
1101    word with only low byte set     4 + 8
1110    partial match (high 3 bytes)    4 + 4 + 8
======  ==============================  ==========

Unmatched (``01``) and partially matched words are pushed into the
16-entry FIFO dictionary, as in the original design.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressionAlgorithm, as_entry
from repro.units import MEMORY_ENTRY_BYTES

_DICT_ENTRIES = 16


class CPackCompressor(CompressionAlgorithm):
    """C-PACK compressor for 128 B entries (sequential dictionary).

    Bulk ``(n, 32)`` input goes through the inherited
    :meth:`~repro.compression.base.CompressionAlgorithm.compressed_sizes`
    fallback, which compresses each entry independently — the FIFO
    dictionary resets at every entry boundary, as entries are
    independently addressable in hardware.
    """

    name = "cpack"

    def compressed_size(self, words: np.ndarray) -> int:
        words = as_entry(words)
        dictionary: list[int] = []
        bits = 0
        for raw in words:
            word = int(raw)
            if word == 0:
                bits += 2
                continue
            if word <= 0xFF:
                bits += 4 + 8  # zzzx: only the low byte is non-zero
                continue
            # All dictionary comparators fire in parallel in hardware;
            # the best match wins: full > 3-byte > 2-byte > none.
            best = 0
            for entry in dictionary:
                if entry == word:
                    best = 3
                    break
                if entry >> 8 == word >> 8:
                    best = max(best, 2)
                elif entry >> 16 == word >> 16:
                    best = max(best, 1)
            if best == 3:
                bits += 2 + 4
            elif best == 2:
                bits += 4 + 4 + 8
            elif best == 1:
                bits += 4 + 4 + 16
            else:
                bits += 2 + 32
            if best != 3:
                # Unmatched and partially matched words enter the FIFO.
                dictionary.append(word)
                if len(dictionary) > _DICT_ENTRIES:
                    dictionary.pop(0)
        return min((bits + 7) // 8, MEMORY_ENTRY_BYTES)
