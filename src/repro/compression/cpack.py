"""C-PACK cache compression (Chen et al., IEEE TVLSI 2010).

C-PACK combines static patterns with a small FIFO dictionary of
recently seen words.  Each 32-bit word emits one of:

======  ==============================  ==========
Code    Pattern                         Total bits
======  ==============================  ==========
00      all-zero word                   2
01      uncompressed word               2 + 32
10      full dictionary match           2 + 4
1100    partial match (high 2 bytes)    4 + 4 + 16
1101    word with only low byte set     4 + 8
1110    partial match (high 3 bytes)    4 + 4 + 8
======  ==============================  ==========

Unmatched (``01``) and partially matched words are pushed into the
16-entry FIFO dictionary, as in the original design.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressionAlgorithm, as_blocks, as_entry
from repro.units import MEMORY_ENTRY_BYTES, WORDS_PER_ENTRY

_DICT_ENTRIES = 16


class CPackCompressor(CompressionAlgorithm):
    """C-PACK compressor for 128 B entries (sequential dictionary).

    Bulk ``(n, 32)`` input runs all entries in lockstep over the 32
    word positions (:meth:`compressed_sizes`): the dictionary state is
    an ``(n, 16)`` array advanced once per position.  Each entry's
    FIFO dictionary is independent — it resets at every entry
    boundary, as entries are independently addressable in hardware —
    and the bulk path is element-wise identical to
    :meth:`compressed_size` (pinned by property tests).
    """

    name = "cpack"

    def compressed_size(self, words: np.ndarray) -> int:
        words = as_entry(words)
        dictionary: list[int] = []
        bits = 0
        for raw in words:
            word = int(raw)
            if word == 0:
                bits += 2
                continue
            if word <= 0xFF:
                bits += 4 + 8  # zzzx: only the low byte is non-zero
                continue
            # All dictionary comparators fire in parallel in hardware;
            # the best match wins: full > 3-byte > 2-byte > none.
            best = 0
            for entry in dictionary:
                if entry == word:
                    best = 3
                    break
                if entry >> 8 == word >> 8:
                    best = max(best, 2)
                elif entry >> 16 == word >> 16:
                    best = max(best, 1)
            if best == 3:
                bits += 2 + 4
            elif best == 2:
                bits += 4 + 4 + 8
            elif best == 1:
                bits += 4 + 4 + 16
            else:
                bits += 2 + 32
            if best != 3:
                # Unmatched and partially matched words enter the FIFO.
                dictionary.append(word)
                if len(dictionary) > _DICT_ENTRIES:
                    dictionary.pop(0)
        return min((bits + 7) // 8, MEMORY_ENTRY_BYTES)

    def compressed_sizes(self, blocks: np.ndarray) -> np.ndarray:
        """Vectorised bulk sizing: all entries advance in lockstep.

        The sequential dependency is only *within* an entry (each word
        sees the dictionary left by its predecessors), so the loop
        runs over the 32 word positions while every entry's state
        lives in arrays.  Two observations make this exact:

        - matching is order-independent — ``best`` is determined by
          *whether any* dictionary entry matches at each strength, not
          by scan order — so the FIFO can be stored unordered;
        - a capacity-16 FIFO with ``pop(0)`` is a 16-slot circular
          buffer: writing at ``pos % 16`` overwrites exactly the
          oldest entry once 16 words have been pushed.

        A validity mask guards the comparators: an unwritten slot
        holds 0, which can never equal an active word (actives exceed
        0xFF) but *would* false-match the high-2-byte comparator for
        words below 0x10000.
        """
        blocks = as_blocks(blocks)
        n = blocks.shape[0]
        bits = np.zeros(n, dtype=np.int64)
        if n == 0:
            return bits
        dictionary = np.zeros((n, _DICT_ENTRIES), dtype=np.uint32)
        valid = np.zeros((n, _DICT_ENTRIES), dtype=bool)
        pos = np.zeros(n, dtype=np.int64)
        for j in range(WORDS_PER_ENTRY):
            w = blocks[:, j]
            wcol = w[:, None]
            low = w <= 0xFF  # the all-zero pattern is split out below
            full = ((dictionary == wcol) & valid).any(axis=1)
            m3 = (((dictionary >> np.uint32(8)) == (wcol >> np.uint32(8))) & valid).any(axis=1)
            m2 = (((dictionary >> np.uint32(16)) == (wcol >> np.uint32(16))) & valid).any(axis=1)
            bits += np.select(
                [w == 0, low, full, m3, m2],
                [2, 4 + 8, 2 + 4, 4 + 4 + 8, 4 + 4 + 16],
                default=2 + 32,
            )
            push = np.nonzero(~(low | full))[0]
            slot = pos[push] % _DICT_ENTRIES
            dictionary[push, slot] = w[push]
            valid[push, slot] = True
            pos[push] += 1
        return np.minimum((bits + 7) // 8, MEMORY_ENTRY_BYTES)
