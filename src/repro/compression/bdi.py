"""Base-Delta-Immediate compression (Pekhimenko et al., PACT 2012).

BDI exploits low dynamic range: a block is stored as one base value
plus narrow deltas.  The original targets 32/64 B cache lines; we apply
it to the paper's 128 B memory-entry, keeping the canonical encoding
set (zeros, repeated values, and base{8,4,2}-delta{1,2,4} classes).

One byte of header encodes the chosen class, matching the original
proposal's per-line encoding cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.base import CompressionAlgorithm, as_blocks, as_entry
from repro.units import MEMORY_ENTRY_BYTES

_HEADER_BYTES = 1


@dataclass(frozen=True)
class _BdiClass:
    """One base+delta encoding class."""

    name: str
    base_bytes: int
    delta_bytes: int

    @property
    def compressed_bytes(self) -> int:
        values = MEMORY_ENTRY_BYTES // self.base_bytes
        return _HEADER_BYTES + self.base_bytes + values * self.delta_bytes


#: The canonical BDI classes, best (smallest) first.
BDI_CLASSES = (
    _BdiClass("base8-delta1", 8, 1),
    _BdiClass("base4-delta1", 4, 1),
    _BdiClass("base8-delta2", 8, 2),
    _BdiClass("base2-delta1", 2, 1),
    _BdiClass("base4-delta2", 4, 2),
    _BdiClass("base8-delta4", 8, 4),
)


def _deltas_fit(values: np.ndarray, width_bits: int, delta_bytes: int) -> np.ndarray:
    """Whether each row's deltas from its first value fit ``delta_bytes``.

    Deltas wrap modulo the base width, as the hardware adder does; a
    wrapped delta fits iff it sign-extends from ``delta_bytes`` bytes.

    Args:
        values: ``(n, k)`` uint64 array of base-sized words.
        width_bits: Bit width of the base (16/32/64).
        delta_bytes: Stored delta width in bytes.

    Returns:
        ``(n,)`` boolean mask.
    """
    mask = np.uint64((1 << width_bits) - 1 if width_bits < 64 else 0xFFFF_FFFF_FFFF_FFFF)
    bound = np.uint64(1 << (8 * delta_bytes - 1))
    deltas = (values - values[:, :1]) & mask
    shifted = (deltas + bound) & mask
    return (shifted < np.uint64(1 << (8 * delta_bytes))).all(axis=1)


def _fits(block_bytes: np.ndarray, cls: _BdiClass) -> bool:
    """Whether one block fits the given class (scalar convenience)."""
    dtype = {2: np.uint16, 4: np.uint32, 8: np.uint64}[cls.base_bytes]
    values = block_bytes.view(dtype).astype(np.uint64).reshape(1, -1)
    return bool(_deltas_fit(values, 8 * cls.base_bytes, cls.delta_bytes)[0])


class BDICompressor(CompressionAlgorithm):
    """Base-Delta-Immediate compressor for 128 B entries."""

    name = "bdi"

    def compressed_size(self, words: np.ndarray) -> int:
        block = as_entry(words)
        raw = block.view(np.uint8)
        if not block.any():
            return _HEADER_BYTES  # all-zero class
        qwords = raw.view(np.uint64)
        if (qwords == qwords[0]).all():
            return _HEADER_BYTES + 8  # repeated-value class
        for cls in BDI_CLASSES:
            if _fits(raw, cls):
                return min(cls.compressed_bytes, MEMORY_ENTRY_BYTES)
        return MEMORY_ENTRY_BYTES

    def compressed_sizes(self, blocks: np.ndarray) -> np.ndarray:
        """Vectorised sizes for ``(n, 32)`` uint32 blocks."""
        blocks = as_blocks(blocks)
        n = blocks.shape[0]
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        sizes = np.full(n, MEMORY_ENTRY_BYTES, dtype=np.int64)
        raw = np.ascontiguousarray(blocks).view(np.uint8).reshape(n, -1)

        # Evaluate classes from worst to best so better classes overwrite.
        for cls in sorted(BDI_CLASSES, key=lambda c: -c.compressed_bytes):
            dtype = {2: np.uint16, 4: np.uint32, 8: np.uint64}[cls.base_bytes]
            values = raw.view(dtype).astype(np.uint64)
            fits = _deltas_fit(values, 8 * cls.base_bytes, cls.delta_bytes)
            sizes[fits] = min(cls.compressed_bytes, MEMORY_ENTRY_BYTES)

        qwords = raw.view(np.uint64)
        repeated = (qwords == qwords[:, :1]).all(axis=1)
        sizes[repeated] = _HEADER_BYTES + 8
        sizes[~blocks.any(axis=1)] = _HEADER_BYTES
        return sizes
