"""Hardware memory-compression algorithms.

Buddy Compression uses Bit-Plane Compression (BPC, Kim et al. ISCA'16)
as its block codec; the paper notes it was chosen after comparing
several algorithms.  This package provides:

* :mod:`repro.compression.bpc` — the BPC codec used throughout the
  reproduction, with a bit-exact scalar encoder/decoder and a
  vectorised size-only path used for bulk snapshot analysis.
* :mod:`repro.compression.bdi`, :mod:`repro.compression.fpc`,
  :mod:`repro.compression.cpack` — the comparison algorithms, used by
  the algorithm-ablation bench.
* :mod:`repro.compression.sectors` — quantisation of compressed sizes
  to the paper's free-size set (Fig. 3) and to 32 B sectors (Buddy
  placement).
"""

from repro.compression.base import CompressionAlgorithm, CompressedBlock
from repro.compression.bdi import BDICompressor
from repro.compression.bpc import BPCCompressor
from repro.compression.cpack import CPackCompressor
from repro.compression.fpc import FPCCompressor
from repro.compression.zeroblock import ZeroBlockCompressor, zero_fraction, zero_mask
from repro.compression.sectors import (
    quantize_free_size,
    quantize_to_sectors,
    sectors_for_sizes,
    free_sizes_for_sizes,
)

__all__ = [
    "CompressionAlgorithm",
    "CompressedBlock",
    "BPCCompressor",
    "BDICompressor",
    "FPCCompressor",
    "CPackCompressor",
    "ZeroBlockCompressor",
    "zero_fraction",
    "zero_mask",
    "quantize_free_size",
    "quantize_to_sectors",
    "sectors_for_sizes",
    "free_sizes_for_sizes",
]
