"""Zero-entry detection.

All-zero 128 B entries are special throughout the paper: the Fig. 3
study gives them a 0 B class, and the final design promotes mostly-zero
allocations to a 16x target (8 B resident per entry).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressionAlgorithm, as_blocks, as_entry
from repro.units import MEMORY_ENTRY_BYTES


class ZeroBlockCompressor(CompressionAlgorithm):
    """The 0 B zero-entry class as a standalone codec.

    All-zero entries store nothing (the metadata already encodes the
    class); anything else is stored raw.  Exists so the zero-entry
    special case honours the same scalar/bulk interface as the other
    algorithms — the bulk path takes the ``(n, 32)`` contract and is
    fully vectorised.
    """

    name = "zeroblock"

    def compressed_size(self, words: np.ndarray) -> int:
        return 0 if not as_entry(words).any() else MEMORY_ENTRY_BYTES

    def compressed_sizes(self, blocks: np.ndarray) -> np.ndarray:
        blocks = as_blocks(blocks)
        return np.where(zero_mask(blocks), 0, MEMORY_ENTRY_BYTES).astype(
            np.int64
        )


def zero_mask(blocks: np.ndarray) -> np.ndarray:
    """Boolean mask of entries that are entirely zero.

    Args:
        blocks: ``(n, 32)`` uint32 array (or anything
            :func:`repro.compression.base.as_blocks` accepts).
    """
    blocks = as_blocks(blocks)
    return ~blocks.any(axis=1)


def zero_fraction(blocks: np.ndarray) -> float:
    """Fraction of entries that are entirely zero."""
    mask = zero_mask(blocks)
    if mask.size == 0:
        return 0.0
    return float(mask.mean())
