"""Zero-entry detection.

All-zero 128 B entries are special throughout the paper: the Fig. 3
study gives them a 0 B class, and the final design promotes mostly-zero
allocations to a 16x target (8 B resident per entry).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import as_blocks


def zero_mask(blocks: np.ndarray) -> np.ndarray:
    """Boolean mask of entries that are entirely zero.

    Args:
        blocks: ``(n, 32)`` uint32 array (or anything
            :func:`repro.compression.base.as_blocks` accepts).
    """
    blocks = as_blocks(blocks)
    return ~blocks.any(axis=1)


def zero_fraction(blocks: np.ndarray) -> float:
    """Fraction of entries that are entirely zero."""
    mask = zero_mask(blocks)
    if mask.size == 0:
        return 0.0
    return float(mask.mean())
