"""Quantisation of compressed sizes to the paper's storage classes.

Two quantisation regimes appear in the paper:

* **Free sizes** (Fig. 3's optimistic capacity study): each 128 B entry
  may occupy any of {0, 8, 16, 32, 64, 80, 96, 128} bytes, with 0 B
  reserved for all-zero entries whose existence the 4-bit metadata can
  record without any data storage.
* **Sector sizes** (the actual Buddy design): entries occupy 1–4 whole
  32 B sectors, matching GPU DRAM access granularity; the mostly-zero
  16x class keeps only 8 B of a 128 B entry in device memory.
"""

from __future__ import annotations

import numpy as np

from repro.units import (
    FREE_COMPRESSED_SIZES,
    MEMORY_ENTRY_BYTES,
    SECTOR_BYTES,
    SECTORS_PER_ENTRY,
    ZERO_CLASS_BYTES,
)

_FREE_SIZES = np.array(FREE_COMPRESSED_SIZES, dtype=np.int64)


def quantize_free_size(size_bytes: int, is_zero: bool = False) -> int:
    """Quantise one compressed size to the Fig. 3 free-size set.

    Args:
        size_bytes: Raw compressed size in bytes (0..128).
        is_zero: Whether the entry is entirely zero (eligible for the
            0 B class).
    """
    if not 0 <= size_bytes <= MEMORY_ENTRY_BYTES:
        raise ValueError(f"size {size_bytes} outside 0..{MEMORY_ENTRY_BYTES}")
    if is_zero:
        return 0
    candidates = _FREE_SIZES[_FREE_SIZES >= max(size_bytes, 1)]
    return int(candidates[0])


def quantize_to_sectors(size_bytes: int) -> int:
    """Number of 32 B sectors (1..4) one compressed entry occupies."""
    if not 0 <= size_bytes <= MEMORY_ENTRY_BYTES:
        raise ValueError(f"size {size_bytes} outside 0..{MEMORY_ENTRY_BYTES}")
    return max(1, -(-size_bytes // SECTOR_BYTES))


def sectors_for_sizes(sizes: np.ndarray) -> np.ndarray:
    """Vectorised :func:`quantize_to_sectors` over a size array."""
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.size and (sizes.min() < 0 or sizes.max() > MEMORY_ENTRY_BYTES):
        raise ValueError("sizes outside 0..128")
    return np.maximum(1, -(-sizes // SECTOR_BYTES))


def free_sizes_for_sizes(sizes: np.ndarray, zero_mask: np.ndarray) -> np.ndarray:
    """Vectorised :func:`quantize_free_size` over sizes + zero-entry mask."""
    sizes = np.asarray(sizes, dtype=np.int64)
    indices = np.searchsorted(_FREE_SIZES, np.maximum(sizes, 1))
    quantized = _FREE_SIZES[indices]
    return np.where(np.asarray(zero_mask, dtype=bool), 0, quantized)


def fits_zero_class(size_bytes: int) -> bool:
    """Whether an entry qualifies for the 16x mostly-zero class slot."""
    return size_bytes <= ZERO_CLASS_BYTES


def device_bytes_for_target(target_sectors: int) -> int:
    """Device-resident bytes per entry for a sector-count target.

    ``target_sectors`` of 0 denotes the 16x zero class (8 B resident).
    """
    if target_sectors == 0:
        return ZERO_CLASS_BYTES
    if not 1 <= target_sectors <= SECTORS_PER_ENTRY:
        raise ValueError(f"bad target sector count {target_sectors}")
    return target_sectors * SECTOR_BYTES
