"""The pass framework behind ``repro check``.

A :class:`Pass` inspects the source tree through a :class:`Context`
(cached sources, ASTs and module tables) and returns
:class:`Finding`\\ s.  :func:`run_checks` runs a list of passes,
applies the inline suppression pragmas and folds everything into a
:class:`Report` the CLI renders as text or JSON.

Suppression syntax::

    something_hazardous()  # repro: allow[rule-id] short reason

The pragma suppresses findings for ``rule-id`` raised on its own line
or the line directly below it (so a pragma-only line can precede a
long statement).  Several rules may be listed comma-separated.  A
pragma **must** carry a reason; a bare ``allow[rule]`` is itself
reported (rule ``statics-pragma``) so exceptions stay documented.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field, replace
from pathlib import Path


class Severity(enum.IntEnum):
    """How a finding gates ``repro check``.

    ``ERROR`` findings fail the check always; ``WARNING`` findings
    fail it only under ``--strict`` (the CI gate).
    """

    WARNING = 1
    ERROR = 2


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    severity: Severity
    path: str  #: repo-relative, ``/``-separated
    line: int  #: 1-based; 0 = whole file
    message: str
    suppressed: bool = False

    def render(self) -> str:
        tag = "error" if self.severity is Severity.ERROR else "warning"
        note = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}: [{tag}] {self.rule}: {self.message}{note}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.name.lower(),
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
        }


class Pass:
    """Base class: one named analysis producing findings.

    Subclasses set :attr:`name`, :attr:`description` and :attr:`rules`
    (the rule ids they may emit — ``repro check`` lists them and
    ``docs/statics.md`` documents them) and implement :meth:`run`.
    """

    name: str = ""
    description: str = ""
    rules: tuple[str, ...] = ()

    def run(self, ctx: "Context") -> list[Finding]:  # pragma: no cover
        raise NotImplementedError


class Context:
    """Shared view of the analyzed tree, with parse caches.

    ``src_root`` is the directory containing the analyzed package
    (``src/`` for this repository) and ``repo_root`` the directory
    findings are reported relative to (it also holds ``README.md`` and
    ``docs/`` for the docs-sync pass).
    """

    def __init__(self, repo_root: Path, src_root: Path, package: str = "repro"):
        self.repo_root = Path(repo_root)
        self.src_root = Path(src_root)
        self.package = package
        self._sources: dict[Path, str] = {}
        self._trees: dict[Path, ast.Module] = {}
        self._modules: dict[str, Path] | None = None

    @classmethod
    def for_repo(cls, repo_root=None) -> "Context":
        """Context for this repository, located from the package."""
        if repo_root is None:
            import repro

            # src/repro/__init__.py -> src -> repo root
            repo_root = Path(repro.__file__).resolve().parent.parent.parent
        repo_root = Path(repo_root)
        return cls(repo_root, repo_root / "src", "repro")

    # -- file access ---------------------------------------------------
    def rel(self, path: Path) -> str:
        path = Path(path)
        try:
            return path.resolve().relative_to(self.repo_root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def source(self, path: Path) -> str:
        path = Path(path)
        if path not in self._sources:
            self._sources[path] = path.read_text()
        return self._sources[path]

    def tree(self, path: Path) -> ast.Module:
        path = Path(path)
        if path not in self._trees:
            self._trees[path] = ast.parse(self.source(path), filename=str(path))
        return self._trees[path]

    # -- module table ----------------------------------------------------
    def modules(self) -> dict[str, Path]:
        """``{dotted module name: source path}`` for the package."""
        if self._modules is None:
            table: dict[str, Path] = {}
            pkg_root = self.src_root / self.package
            for path in sorted(pkg_root.rglob("*.py")):
                rel = path.relative_to(self.src_root).with_suffix("")
                parts = list(rel.parts)
                if parts[-1] == "__init__":
                    parts = parts[:-1]
                table[".".join(parts)] = path
            self._modules = table
        return self._modules

    def module_path(self, module: str) -> Path | None:
        return self.modules().get(module)


#: ``# repro: allow[rule-a, rule-b] reason`` (reason mandatory).
_PRAGMA = re.compile(
    r"#\s*repro:\s*allow\[([^\]]*)\]([^\n]*)"
)


@dataclass
class Pragmas:
    """Parsed suppression pragmas of one file."""

    #: line -> rule ids allowed on that line and the next
    allows: dict[int, frozenset[str]] = field(default_factory=dict)
    #: lines carrying a pragma with no reason text
    missing_reason: list[int] = field(default_factory=list)

    def suppresses(self, rule: str, line: int) -> bool:
        for pragma_line in (line, line - 1):
            rules = self.allows.get(pragma_line)
            if rules and rule in rules:
                return True
        return False


def parse_pragmas(source: str) -> Pragmas:
    """Scan one file's text for suppression pragmas."""
    pragmas = Pragmas()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if not match:
            continue
        rules = frozenset(
            rule.strip() for rule in match.group(1).split(",") if rule.strip()
        )
        pragmas.allows[lineno] = rules
        if not match.group(2).strip():
            pragmas.missing_reason.append(lineno)
    return pragmas


@dataclass
class PassResult:
    """One pass's contribution to the report."""

    name: str
    description: str
    rules: tuple[str, ...]
    findings: int  #: unsuppressed findings emitted by this pass

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "rules": list(self.rules),
            "findings": self.findings,
        }


@dataclass
class Report:
    """Everything ``repro check`` learned in one run."""

    findings: list[Finding]
    passes: list[PassResult]

    @property
    def errors(self) -> int:
        return sum(
            1
            for f in self.findings
            if f.severity is Severity.ERROR and not f.suppressed
        )

    @property
    def warnings(self) -> int:
        return sum(
            1
            for f in self.findings
            if f.severity is Severity.WARNING and not f.suppressed
        )

    @property
    def suppressed(self) -> int:
        return sum(1 for f in self.findings if f.suppressed)

    def ok(self, strict: bool = False) -> bool:
        if strict:
            return self.errors == 0 and self.warnings == 0
        return self.errors == 0

    def summary(self) -> dict:
        return {
            "errors": self.errors,
            "warnings": self.warnings,
            "suppressed": self.suppressed,
            "ok": self.ok(),
            "strict_ok": self.ok(strict=True),
        }

    def to_json(self) -> dict:
        return {
            "version": 1,
            "passes": [p.to_json() for p in self.passes],
            "findings": [f.to_json() for f in self.findings],
            "summary": self.summary(),
        }


def apply_suppressions(
    ctx: Context, findings: list[Finding]
) -> list[Finding]:
    """Mark findings matched by an inline pragma as suppressed."""
    pragma_cache: dict[str, Pragmas] = {}
    out = []
    for finding in findings:
        pragmas = pragma_cache.get(finding.path)
        if pragmas is None:
            path = ctx.repo_root / finding.path
            try:
                pragmas = parse_pragmas(ctx.source(path))
            except OSError:
                pragmas = Pragmas()
            pragma_cache[finding.path] = pragmas
        if pragmas.suppresses(finding.rule, finding.line):
            finding = replace(finding, suppressed=True)
        out.append(finding)
    return out


def pragma_findings(ctx: Context) -> list[Finding]:
    """Framework-level findings: pragmas without a reason."""
    findings = []
    for module, path in sorted(ctx.modules().items()):
        pragmas = parse_pragmas(ctx.source(path))
        for line in pragmas.missing_reason:
            findings.append(
                Finding(
                    rule="statics-pragma",
                    severity=Severity.ERROR,
                    path=ctx.rel(path),
                    line=line,
                    message=(
                        "suppression pragma has no reason; write "
                        "'# repro: allow[rule-id] why this is safe'"
                    ),
                )
            )
    return findings


def run_checks(ctx: Context, passes: list[Pass]) -> Report:
    """Run ``passes`` over ``ctx`` and fold into a :class:`Report`."""
    findings: list[Finding] = []
    results: list[PassResult] = []
    for check in passes:
        emitted = apply_suppressions(ctx, check.run(ctx))
        findings.extend(emitted)
        results.append(
            PassResult(
                name=check.name,
                description=check.description,
                rules=check.rules,
                findings=sum(1 for f in emitted if not f.suppressed),
            )
        )
    findings.extend(pragma_findings(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return Report(findings=findings, passes=results)
