"""The ``salt-completeness`` pass.

Every experiment's cached results are addressed by ``(params,
code_salt)``, where the salt hashes the source of the modules listed
in its ``salt_modules`` tuple (:func:`repro.engine.cache.code_salt`).
A module that can affect results but is missing from the tuple means
an edit to it silently serves stale cached figures — the worst bug
class this reproduction can have.

This pass closes the loop statically.  It parses the experiment
registration module with ``ast`` (no imports are executed):

* every ``register(Experiment(...))`` call yields the experiment
  name, the constant-folded ``salt_modules`` tuple and the names of
  its ``run_point`` / ``plan_point`` functions;
* the in-package imports inside those functions seed a walk of the
  static import graph (:mod:`repro.statics.imports`), pruned at the
  documented infrastructure exemptions;
* any reached, salt-relevant module absent from ``salt_modules`` is a
  ``salt-missing`` error (the message shows the import chain), a
  declared module that is not reachable is a ``salt-dead`` warning,
  and a declared module that does not exist is a ``salt-unknown``
  error (a rename would otherwise break ``code_salt`` at runtime).

The compiled event-core extension is the deliberate exception: the
build is **not** a cache axis (bit-identical to the salted fallback by
contract), encoded as the ``repro.gpusim._event_core_ext`` entry of
:data:`repro.statics.imports.DEFAULT_EXEMPT`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.statics.framework import Context, Finding, Pass, Severity
from repro.statics.imports import (
    DEFAULT_EXEMPT,
    is_exempt,
    reachable,
    salt_relevant,
)

#: Module whose ``register(Experiment(...))`` calls declare the salts.
EXPERIMENTS_MODULE = "repro.engine.experiments"

#: Experiment keywords whose functions' imports seed reachability.
#: ``run_point`` computes the cached value; ``plan_point`` declares
#: the planner specs whose artifact digests must agree with it.
#: (``expand``/``aggregate`` run fresh on every invocation and cannot
#: go stale, and ``defaults`` feed the *param* half of the key.)
ROOT_KEYWORDS = ("run_point", "plan_point")


@dataclass(frozen=True)
class Registration:
    """One statically-parsed ``register(Experiment(...))`` call."""

    name: str
    line: int  #: line of the ``salt_modules=`` keyword
    salt_modules: tuple[str, ...]
    root_functions: tuple[str, ...]


class RegistrationParseError(ValueError):
    """The experiments module does not match the expected shape."""


def _fold_tuple(node: ast.expr, constants: dict[str, ast.expr]) -> tuple[str, ...]:
    """Evaluate a tuple-of-strings expression (Name / + / literal)."""
    if isinstance(node, ast.Tuple):
        values = []
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                raise RegistrationParseError(
                    f"line {node.lineno}: non-constant salt entry"
                )
            values.append(element.value)
        return tuple(values)
    if isinstance(node, ast.Name):
        if node.id not in constants:
            raise RegistrationParseError(
                f"line {node.lineno}: unknown salt constant {node.id!r}"
            )
        return _fold_tuple(constants[node.id], constants)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _fold_tuple(node.left, constants) + _fold_tuple(
            node.right, constants
        )
    raise RegistrationParseError(
        f"line {node.lineno}: unsupported salt_modules expression"
    )


def parse_registrations(
    ctx: Context, experiments_module: str = EXPERIMENTS_MODULE
) -> list[Registration]:
    """Statically extract every registration from the module."""
    path = ctx.module_path(experiments_module)
    if path is None:
        raise RegistrationParseError(
            f"experiments module {experiments_module!r} not found"
        )
    tree = ctx.tree(path)
    constants: dict[str, ast.expr] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            constants[node.targets[0].id] = node.value

    registrations = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "register"
            and node.args
            and isinstance(node.args[0], ast.Call)
        ):
            continue
        keywords = {kw.arg: kw.value for kw in node.args[0].keywords}
        name_node = keywords.get("name")
        salt_node = keywords.get("salt_modules")
        if not isinstance(name_node, ast.Constant) or salt_node is None:
            raise RegistrationParseError(
                f"line {node.lineno}: registration without constant "
                "name= or without salt_modules="
            )
        roots = tuple(
            keywords[key].id
            for key in ROOT_KEYWORDS
            if isinstance(keywords.get(key), ast.Name)
        )
        registrations.append(
            Registration(
                name=name_node.value,
                line=salt_node.lineno,
                salt_modules=_fold_tuple(salt_node, constants),
                root_functions=roots,
            )
        )
    if not registrations:
        raise RegistrationParseError(
            f"no register(Experiment(...)) calls in {experiments_module}"
        )
    return registrations


def function_imports(
    ctx: Context, experiments_module: str, function_names: tuple[str, ...]
) -> dict[str, int]:
    """In-package modules imported inside the named functions."""
    path = ctx.module_path(experiments_module)
    known = ctx.modules()
    out: dict[str, int] = {}
    for node in ctx.tree(path).body:
        if not (
            isinstance(node, ast.FunctionDef)
            and node.name in function_names
        ):
            continue
        for inner in ast.walk(node):
            modules = []
            if isinstance(inner, ast.Import):
                modules = [
                    alias.name
                    for alias in inner.names
                    if alias.name.split(".")[0] == ctx.package
                ]
            elif isinstance(inner, ast.ImportFrom) and not inner.level:
                if (inner.module or "").split(".")[0] == ctx.package:
                    modules = [
                        f"{inner.module}.{alias.name}"
                        for alias in inner.names
                        if f"{inner.module}.{alias.name}" in known
                    ]
                    if len(modules) < len(inner.names):
                        modules.append(inner.module)
            for module in modules:
                while module and module not in known:
                    module = module.rpartition(".")[0]
                if module:
                    out.setdefault(module, inner.lineno)
    return out


def analyze_salts(
    ctx: Context,
    experiments_module: str = EXPERIMENTS_MODULE,
    exempt: dict[str, str] | None = None,
) -> list[Finding]:
    """Compare each registration's salts against static reachability."""
    if exempt is None:
        exempt = _rebased_exempt(ctx)
    path = ctx.module_path(experiments_module)
    rel = ctx.rel(path)
    try:
        registrations = parse_registrations(ctx, experiments_module)
    except RegistrationParseError as error:
        return [
            Finding(
                rule="salt-missing",
                severity=Severity.ERROR,
                path=rel,
                line=0,
                message=f"cannot analyze registrations: {error}",
            )
        ]

    findings = []
    for registration in registrations:
        roots = function_imports(
            ctx, experiments_module, registration.root_functions
        )
        reach = reachable(ctx, roots, exempt)
        required = salt_relevant(ctx, reach, exempt)
        declared = set(registration.salt_modules)
        for module in sorted(required - declared):
            findings.append(
                Finding(
                    rule="salt-missing",
                    severity=Severity.ERROR,
                    path=rel,
                    line=registration.line,
                    message=(
                        f"experiment {registration.name!r}: module "
                        f"{module!r} can affect results (import chain "
                        f"{reach.chain(module)}) but is not in "
                        "salt_modules — edits to it would serve stale "
                        "cached results"
                    ),
                )
            )
        for module in sorted(declared - set(reach.chains)):
            if ctx.module_path(module) is None:
                findings.append(
                    Finding(
                        rule="salt-unknown",
                        severity=Severity.ERROR,
                        path=rel,
                        line=registration.line,
                        message=(
                            f"experiment {registration.name!r}: salt "
                            f"module {module!r} does not exist "
                            "(renamed or removed?)"
                        ),
                    )
                )
            else:
                findings.append(
                    Finding(
                        rule="salt-dead",
                        severity=Severity.WARNING,
                        path=rel,
                        line=registration.line,
                        message=(
                            f"experiment {registration.name!r}: salt "
                            f"module {module!r} is not reachable from "
                            "its point functions; the entry only "
                            "causes spurious cache invalidations"
                        ),
                    )
                )
        for module in sorted(declared):
            if is_exempt(module, exempt) and ctx.module_path(module) is not None:
                findings.append(
                    Finding(
                        rule="salt-dead",
                        severity=Severity.WARNING,
                        path=rel,
                        line=registration.line,
                        message=(
                            f"experiment {registration.name!r}: salt "
                            f"module {module!r} is exempt "
                            "infrastructure and need not be salted"
                        ),
                    )
                )
    return findings


def _rebased_exempt(ctx: Context) -> dict[str, str]:
    """:data:`DEFAULT_EXEMPT` rebased onto the context's package name."""
    if ctx.package == "repro":
        return DEFAULT_EXEMPT
    return {
        ctx.package + prefix[len("repro"):]: reason
        for prefix, reason in DEFAULT_EXEMPT.items()
    }


class SaltCompletenessPass(Pass):
    name = "salt-completeness"
    description = (
        "every module reachable from an experiment's point functions "
        "is in its cache salt (and every salt entry is alive)"
    )
    rules = ("salt-missing", "salt-dead", "salt-unknown")

    def __init__(self, experiments_module: str = EXPERIMENTS_MODULE):
        self.experiments_module = experiments_module

    def run(self, ctx: Context) -> list[Finding]:
        return analyze_salts(ctx, self.experiments_module)
