"""The ``determinism-lint`` pass.

Every salted module feeds digest-pinned results: the golden Fig. 7/9
/11 digests, the canonical sweep digest and the relaxed-engine pins
all assume a design point's bytes depend only on its parameters.
This pass flags the constructs that historically break that promise:

``det-set-iter``
    Iterating (or materialising) a ``set``/``frozenset`` — element
    order varies across processes under hash randomisation.  Wrap in
    ``sorted(...)``.
``det-unsorted-dir``
    ``os.listdir`` / ``os.scandir`` / ``glob`` / ``Path.iterdir`` /
    ``Path.glob``/``rglob`` without an immediately enclosing
    ``sorted(...)`` — directory order is filesystem-dependent.
``det-time``
    Wall clocks (``time.*``, ``datetime.now`` and friends) — results
    must not depend on when they were computed.
``det-random``
    Unseeded randomness: any stdlib ``random`` module call (a seeded
    ``random.Random(seed)`` instance is fine) and global
    ``numpy.random`` calls (``default_rng(seed)`` with an explicit
    seed is fine; named streams live in :mod:`repro.rng`).
``det-id-order``
    ``sorted(..., key=id)`` / ``.sort(key=id)`` — ``id()`` is an
    address, different every run.
``det-env``
    Environment reads outside the sanctioned list
    (:data:`SANCTIONED_ENV`) — an env var that changes results is an
    invisible cache axis.

Scope: the union of every experiment's declared ``salt_modules`` and
the modules the salt-completeness pass proves reachable (so a module
cannot dodge the lint by being missing from the salts it should be
in).  Deliberate uses carry ``# repro: allow[rule] reason`` pragmas.
"""

from __future__ import annotations

import ast

from repro.statics.framework import Context, Finding, Pass, Severity
from repro.statics.imports import reachable, salt_relevant
from repro.statics.salts import (
    EXPERIMENTS_MODULE,
    _rebased_exempt,
    function_imports,
    parse_registrations,
)

#: Environment variables salted modules may read: they select
#: *equivalent implementations or capacities*, never values.
SANCTIONED_ENV: tuple[str, ...] = (
    "REPRO_NO_EXT",  # forces the bit-identical pure-Python event core
    "REPRO_SNAPSHOT_CACHE",  # snapshot memo capacity; entries are
    # deterministic per (spec, seed) so size never changes values
    "REPRO_CACHE_DIR",  # result-cache location, not content
)

_TIME_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

_DIR_CALLS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
_DIR_METHODS = {"iterdir", "glob", "rglob"}

#: Packages linted in full even where salt reachability does not reach
#: them.  The advisor service (``repro.serve``) computes digest-pinned
#: answers from a long-running process, so *all* of it must be free of
#: wall-clock/randomness/ordering hazards — not just the two modules
#: the ``serve.advice`` experiment declares in its salts.
EXTRA_SCOPE_PACKAGES: tuple[str, ...] = ("repro.serve",)

#: Modules inside the extra scope exempt from the lint: the batching
#: clock is the service's single sanctioned wall-clock seam (tests
#: replace it with virtual time; answers never depend on it).
EXTRA_SCOPE_EXEMPT: tuple[str, ...] = ("repro.serve.clock",)


def _rebased(name: str, ctx: Context) -> str:
    """Rebase a ``repro.``-rooted dotted name onto a fixture package."""
    if ctx.package == "repro":
        return name
    return ctx.package + name[len("repro"):]


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin, for every import in the file."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def _dotted(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Resolve an expression to a dotted origin path, if possible."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


def _is_setish(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _wrapped_in_sorted(node: ast.AST, parents: dict) -> bool:
    parent = parents.get(node)
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id == "sorted"
        and node in parent.args
    )


def _key_uses_id(key: ast.expr) -> bool:
    if isinstance(key, ast.Name) and key.id == "id":
        return True
    if isinstance(key, ast.Lambda):
        return any(
            isinstance(inner, ast.Call)
            and isinstance(inner.func, ast.Name)
            and inner.func.id == "id"
            for inner in ast.walk(key.body)
        )
    return False


def lint_module(
    ctx: Context,
    module: str,
    sanctioned_env: tuple[str, ...] = SANCTIONED_ENV,
) -> list[Finding]:
    """All determinism findings of one module."""
    path = ctx.module_path(module)
    if path is None:
        return []
    tree = ctx.tree(path)
    aliases = _import_aliases(tree)
    parents = _parents(tree)
    rel = ctx.rel(path)
    findings: list[Finding] = []

    def emit(rule: str, node: ast.AST, message: str) -> None:
        findings.append(
            Finding(
                rule=rule,
                severity=Severity.ERROR,
                path=rel,
                line=getattr(node, "lineno", 0),
                message=message,
            )
        )

    def check_env_key(node: ast.AST, key: ast.expr | None, how: str) -> None:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            if key.value not in sanctioned_env:
                emit(
                    "det-env",
                    node,
                    f"{how} reads {key.value!r}, which is not in the "
                    "sanctioned list "
                    f"({', '.join(sanctioned_env)}); an env var that "
                    "changes results is an invisible cache axis",
                )
        else:
            emit(
                "det-env",
                node,
                f"{how} with a dynamic key; only the sanctioned "
                "variables may be read in salted modules",
            )

    for node in ast.walk(tree):
        # -- set iteration / materialisation --------------------------
        iterables: list[ast.expr] = []
        if isinstance(node, ast.For):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iterables.extend(gen.iter for gen in node.generators)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("list", "tuple", "enumerate") and node.args:
                iterables.append(node.args[0])
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
        ):
            iterables.append(node.args[0])
        for iterable in iterables:
            if _is_setish(iterable):
                emit(
                    "det-set-iter",
                    iterable,
                    "iteration over a set/frozenset has "
                    "hash-randomised order; wrap in sorted(...)",
                )

        if not isinstance(node, (ast.Call, ast.Subscript, ast.Compare)):
            continue

        # -- environment reads ----------------------------------------
        if isinstance(node, ast.Subscript):
            if _dotted(node.value, aliases) == "os.environ":
                check_env_key(node, node.slice, "os.environ[...]")
            continue
        if isinstance(node, ast.Compare):
            if (
                len(node.ops) == 1
                and isinstance(node.ops[0], (ast.In, ast.NotIn))
                and _dotted(node.comparators[0], aliases) == "os.environ"
            ):
                check_env_key(node, node.left, "os.environ membership test")
            continue

        dotted = _dotted(node.func, aliases)

        if dotted == "os.getenv" and node.args:
            check_env_key(node, node.args[0], "os.getenv")
            continue
        if dotted == "os.environ.get" and node.args:
            check_env_key(node, node.args[0], "os.environ.get")
            continue

        # -- directory listings ---------------------------------------
        is_dir_call = dotted in _DIR_CALLS or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DIR_METHODS
            and dotted != "glob.glob"  # already covered above
        )
        if is_dir_call:
            if not _wrapped_in_sorted(node, parents):
                emit(
                    "det-unsorted-dir",
                    node,
                    "directory listing order is filesystem-dependent; "
                    "wrap the call in sorted(...)",
                )
            continue

        # -- wall clocks ----------------------------------------------
        if dotted in _TIME_CALLS:
            emit(
                "det-time",
                node,
                f"{dotted}() makes results depend on when they were "
                "computed",
            )
            continue

        # -- unseeded randomness --------------------------------------
        if dotted and dotted.split(".")[0] == "random":
            if not (dotted == "random.Random" and node.args):
                emit(
                    "det-random",
                    node,
                    f"{dotted}() draws from the unseeded global "
                    "stdlib RNG; use a named repro.rng stream",
                )
            continue
        if dotted and dotted.startswith("numpy.random."):
            tail = dotted[len("numpy.random."):]
            seeded_factory = tail in (
                "default_rng",
                "Generator",
                "SeedSequence",
            ) and (node.args or node.keywords)
            if not seeded_factory:
                emit(
                    "det-random",
                    node,
                    f"{dotted}() uses numpy's global RNG; derive a "
                    "generator from a named repro.rng stream instead",
                )
            continue

        # -- id()-derived ordering ------------------------------------
        is_sort = (
            isinstance(node.func, ast.Name) and node.func.id == "sorted"
        ) or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
        )
        if is_sort:
            for keyword in node.keywords:
                if keyword.arg == "key" and _key_uses_id(keyword.value):
                    emit(
                        "det-id-order",
                        node,
                        "sorting by id() orders by memory address, "
                        "which differs every run",
                    )
    return findings


def determinism_scope(ctx: Context) -> list[str]:
    """Salted-or-should-be-salted modules: declared union reachable."""
    exempt = _rebased_exempt(ctx)
    experiments_module = (
        EXPERIMENTS_MODULE
        if ctx.package == "repro"
        else f"{ctx.package}.engine.experiments"
    )
    scope: set[str] = set()
    for registration in parse_registrations(ctx, experiments_module):
        scope.update(
            module
            for module in registration.salt_modules
            if ctx.module_path(module) is not None
        )
        roots = function_imports(
            ctx, experiments_module, registration.root_functions
        )
        reach = reachable(ctx, roots, exempt)
        scope.update(salt_relevant(ctx, reach, exempt))
    clock_exempt = {_rebased(name, ctx) for name in EXTRA_SCOPE_EXEMPT}
    for package in EXTRA_SCOPE_PACKAGES:
        prefix = _rebased(package, ctx)
        scope.update(
            module
            for module in ctx.modules()
            if (module == prefix or module.startswith(prefix + "."))
            and module not in clock_exempt
        )
    return sorted(scope)


class DeterminismLintPass(Pass):
    name = "determinism-lint"
    description = (
        "salted modules are free of nondeterminism hazards that would "
        "break golden digests"
    )
    rules = (
        "det-set-iter",
        "det-unsorted-dir",
        "det-time",
        "det-random",
        "det-id-order",
        "det-env",
    )

    def __init__(
        self,
        modules: list[str] | None = None,
        sanctioned_env: tuple[str, ...] = SANCTIONED_ENV,
    ):
        self.modules = modules
        self.sanctioned_env = sanctioned_env

    def run(self, ctx: Context) -> list[Finding]:
        modules = self.modules
        if modules is None:
            modules = determinism_scope(ctx)
        findings: list[Finding] = []
        for module in modules:
            findings.extend(lint_module(ctx, module, self.sanctioned_env))
        return findings
