"""The ``docs-sync`` pass.

The documentation checker that used to live wholly in
``scripts/check_docs.py``, folded into the pass framework (the script
remains as a thin shim for direct invocation and the CI ``docs`` job).
Docs rot in four ways this catches mechanically:

``docs-link``
    A relative markdown link in a tracked doc stops resolving (file
    moved or renamed).
``docs-readme``
    README.md no longer links one of the docs' front doors.
``docs-experiment``
    A documented ``repro run <experiment>`` name drifts from the
    experiment registry (resolved statically from the same
    ``register(Experiment(...))`` parse the salt pass uses — no
    imports are executed).
``docs-digest``
    A digest quoted in the docs (full 32-hex or abbreviated
    ``36fffebd…`` form) is not pinned by any test.
"""

from __future__ import annotations

import re

from repro.statics.framework import Context, Finding, Pass, Severity
from repro.statics.salts import (
    RegistrationParseError,
    parse_registrations,
)

#: Markdown files whose relative links must resolve.
DOC_FILES = (
    "README.md",
    "docs/architecture.md",
    "docs/engines.md",
    "docs/planner.md",
    "docs/serving.md",
    "docs/statics.md",
)

#: Links README must carry (the docs' front doors).
REQUIRED_README_LINKS = (
    "docs/architecture.md",
    "docs/engines.md",
    "docs/planner.md",
    "docs/serving.md",
    "docs/statics.md",
)

#: Test files whose digest literals are the source of truth.
DIGEST_TEST_FILES = ("tests/test_vector_sim.py", "tests/test_relaxed_sim.py")

_LINK = re.compile(r"\[[^\]]+\]\(([^)#\s]+)(?:#[^)\s]*)?\)")
_RUN_NAME = re.compile(r"repro run ([a-z_]+\.[a-z0-9_]+)")
_DIGEST = re.compile(r"\b[0-9a-f]{32}\b")
#: Abbreviated digests in prose, e.g. "36fffebd…" / "282a94e8...".
_SHORT_DIGEST = re.compile(r"\b([0-9a-f]{8})(?:…|\.\.\.)")


def check_docs(ctx: Context) -> list[Finding]:
    """All documentation-consistency findings for the repo."""
    findings: list[Finding] = []

    def error(rule: str, path: str, line: int, message: str) -> None:
        findings.append(
            Finding(
                rule=rule,
                severity=Severity.ERROR,
                path=path,
                line=line,
                message=message,
            )
        )

    docs: dict[str, str] = {}
    for name in DOC_FILES:
        path = ctx.repo_root / name
        if not path.is_file():
            error("docs-link", name, 0, "tracked documentation file is missing")
            continue
        docs[name] = path.read_text()

    # -- registry names, resolved statically ---------------------------
    try:
        registered = {
            registration.name
            for registration in parse_registrations(ctx)
        }
    except RegistrationParseError as exc:
        registered = None
        error(
            "docs-experiment",
            "src/repro/engine/experiments.py",
            0,
            f"cannot resolve registered experiment names: {exc}",
        )

    # -- test-pinned digests -------------------------------------------
    pinned: set[str] = set()
    for test_file in DIGEST_TEST_FILES:
        path = ctx.repo_root / test_file
        if path.is_file():
            pinned.update(_DIGEST.findall(path.read_text()))

    for name, text in docs.items():
        doc_dir = (ctx.repo_root / name).parent
        for lineno, line in enumerate(text.splitlines(), start=1):
            for target in _LINK.findall(line):
                if "://" in target:  # external URL, not checked offline
                    continue
                if not (doc_dir / target).resolve().exists():
                    error(
                        "docs-link",
                        name,
                        lineno,
                        f"broken relative link -> {target}",
                    )
            if registered is not None:
                for experiment in _RUN_NAME.findall(line):
                    if experiment not in registered:
                        error(
                            "docs-experiment",
                            name,
                            lineno,
                            f"documents unregistered experiment "
                            f"{experiment!r}",
                        )
            for digest in _DIGEST.findall(line):
                if digest not in pinned:
                    error(
                        "docs-digest",
                        name,
                        lineno,
                        f"digest {digest} is not pinned by any test",
                    )
            for prefix in _SHORT_DIGEST.findall(line):
                if not any(full.startswith(prefix) for full in pinned):
                    error(
                        "docs-digest",
                        name,
                        lineno,
                        f"abbreviated digest {prefix}… matches no "
                        "test-pinned digest",
                    )

    if "README.md" in docs:
        for required in REQUIRED_README_LINKS:
            if required not in docs["README.md"]:
                error(
                    "docs-readme",
                    "README.md",
                    0,
                    f"README does not link {required}",
                )
    return findings


class DocsSyncPass(Pass):
    name = "docs-sync"
    description = (
        "markdown links resolve, README links the doc front doors, and "
        "documented experiment names and digests match the code"
    )
    rules = ("docs-link", "docs-readme", "docs-experiment", "docs-digest")

    def run(self, ctx: Context) -> list[Finding]:
        return check_docs(ctx)
