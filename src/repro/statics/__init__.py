"""Static invariant analysis for the reproduction (``repro check``).

The reproduction's credibility rests on invariants that are otherwise
enforced only at runtime (golden digests, CI diff jobs) or by
convention (hand-maintained ``salt_modules`` tuples):

* every module that can affect an experiment's results must be part of
  that experiment's cache salt, or a stale cached figure is silently
  served after an edit;
* salted modules must not contain nondeterminism hazards (unsorted
  directory listings, set iteration, wall clocks, unseeded RNGs,
  unsanctioned environment reads) that would break bit-identical
  digests;
* the hand-written C extension ``_event_core_ext.c`` must stay a
  faithful twin of ``_event_core.py`` — same ABI number, same event
  kinds, same array-pack layout.

:mod:`repro.statics` checks all of this *statically*, before any
simulation runs, via an AST pass framework (:mod:`.framework`) with
four production passes:

========================  ==================================================
pass                      rules
========================  ==================================================
``salt-completeness``     ``salt-missing``, ``salt-dead``, ``salt-unknown``
``determinism-lint``      ``det-set-iter``, ``det-unsorted-dir``,
                          ``det-time``, ``det-random``, ``det-id-order``,
                          ``det-env``
``c-twin-drift``          ``ctwin-abi``, ``ctwin-layout``, ``ctwin-kinds``,
                          ``ctwin-missing``
``docs-sync``             ``docs-link``, ``docs-readme``,
                          ``docs-experiment``, ``docs-digest``
========================  ==================================================

Deliberate exceptions are expressed inline as
``# repro: allow[rule-id] reason`` pragmas (see
:func:`repro.statics.framework.parse_pragmas`); the framework itself
rejects reason-less pragmas (``statics-pragma``).

Run everything with ``repro check [--json] [--strict]``; see
``docs/statics.md`` for the full catalog and how to add a pass.
"""

from __future__ import annotations

from repro.statics.framework import (
    Context,
    Finding,
    Pass,
    Report,
    Severity,
    run_checks,
)

__all__ = [
    "Context",
    "Finding",
    "Pass",
    "Report",
    "Severity",
    "all_passes",
    "check_repo",
    "run_checks",
]


def all_passes() -> list:
    """The production passes, in report order."""
    from repro.statics.ctwin import CTwinDriftPass
    from repro.statics.determinism import DeterminismLintPass
    from repro.statics.docs_sync import DocsSyncPass
    from repro.statics.salts import SaltCompletenessPass

    return [
        SaltCompletenessPass(),
        DeterminismLintPass(),
        CTwinDriftPass(),
        DocsSyncPass(),
    ]


def check_repo(repo_root=None) -> Report:
    """Run every production pass against this repository's tree."""
    ctx = Context.for_repo(repo_root)
    return run_checks(ctx, all_passes())
