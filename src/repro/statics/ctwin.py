"""The ``c-twin-drift`` pass.

``_event_core_ext.c`` is a hand-written, line-for-line transcription
of ``_event_core.py``; the two communicate over a packed
struct-of-arrays ABI.  A layout edit that forgets one twin is only
caught dynamically today — *if* a digest happens to change.  This
pass fails CI before any simulation runs by cross-checking, statically:

``ctwin-abi``
    ``EXT_ABI = N`` in the Python module against ``#define EXT_ABI N``
    in the C file.  (The ABI gate at import time only *rejects stale
    builds*; it cannot catch the twin edit that forgot to bump either
    side.)
``ctwin-layout``
    The ``ARRAYS`` / ``ISCALARS`` / ``FSCALARS`` packing tuples (the
    ``A_*`` / ``I_*`` / ``F_*`` index constants) plus the replay
    scalar packs (``RI_*`` / ``RF_*``): names, order and count must
    match the C ``enum`` blocks exactly (the C sentinel ``*_COUNT``
    tail must equal the Python tuple length).
``ctwin-kinds``
    The tape event-kind codes: the ``_T_*`` constants declared in
    ``vector_sim.py``, the kinds the Python core records
    (``rec(tcols, K, ...)``) and replays (``kind == K``), and the
    kinds the C core writes (``tk[...] = K``) and dispatches
    (``kind == K``) must all agree.  Additionally, each replay entry
    point (serial ``replay`` / ``_replay_py`` and batched
    ``replay_many`` / ``_replay_many_py``) must exist in both twins
    and individually dispatch every declared kind — at most one kind
    may ride an entry point's final ``else`` branch, so a dropped
    dispatch arm in one twin's copy cannot hide behind the other's.
``ctwin-missing``
    One of the three source files is absent.

The Python side is parsed with ``ast``; the C side with targeted
regexes over the comment-stripped text (the file is hand-written to a
fixed idiom precisely so this stays checkable).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.statics.framework import Context, Finding, Pass, Severity

#: The three twin-contract source files, package-relative.
PY_CORE = "gpusim/_event_core.py"
C_CORE = "gpusim/_event_core_ext.c"
VECTOR_SIM = "gpusim/vector_sim.py"

#: Packing groups by constant-name prefix (underscore-terminated).
GROUP_PREFIXES = ("A", "I", "F", "RI", "RF")


@dataclass
class PySide:
    """What ``ast`` extracts from the Python twin."""

    abi: int | None = None
    abi_line: int = 0
    groups: dict[str, list[str]] = field(default_factory=dict)
    group_lines: dict[str, int] = field(default_factory=dict)
    recorded_kinds: set[int] = field(default_factory=set)
    replayed_kinds: set[int] = field(default_factory=set)
    #: Per replay entry point (normalized name, e.g. ``replay_many``):
    #: the kinds that function's dispatch chain tests explicitly.
    replay_fns: dict[str, set[int]] = field(default_factory=dict)


@dataclass
class CSide:
    """What the targeted regexes extract from the C twin."""

    abi: int | None = None
    enums: dict[str, list[str]] = field(default_factory=dict)
    written_kinds: set[int] = field(default_factory=set)
    dispatched_kinds: set[int] = field(default_factory=set)
    #: Per replay entry point: kinds its dispatch chain tests explicitly.
    replay_fns: dict[str, set[int]] = field(default_factory=dict)


def _prefix_of(name: str) -> str | None:
    head = name.split("_", 1)[0]
    return head if head in GROUP_PREFIXES else None


#: Python replay entry points: ``_replay_py``, ``_replay_many_py``, ...
_PY_REPLAY_FN = re.compile(r"^_replay\w*_py$")


def _normalize_replay_name(name: str) -> str:
    """``_replay_many_py`` (Python) and ``replay_many`` (C) → one key."""
    name = name.lstrip("_")
    return name[: -len("_py")] if name.endswith("_py") else name


def _dispatched_kinds(tree: ast.AST) -> set[int]:
    kinds: set[int] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Compare)
            and isinstance(node.left, ast.Name)
            and node.left.id == "kind"
            and len(node.ops) == 1
            and isinstance(node.ops[0], ast.Eq)
            and isinstance(node.comparators[0], ast.Constant)
            and isinstance(node.comparators[0].value, int)
        ):
            kinds.add(node.comparators[0].value)
    return kinds


def parse_py_core(source: str) -> PySide:
    """Extract ABI, packing tuples and kind usage from the Python core."""
    side = PySide()
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and target.id == "EXT_ABI"
                and isinstance(node.value, ast.Constant)
            ):
                side.abi = node.value.value
                side.abi_line = node.lineno
            elif isinstance(target, ast.Tuple) and all(
                isinstance(e, ast.Name) for e in target.elts
            ):
                names = [e.id for e in target.elts]
                prefix = _prefix_of(names[0])
                if prefix and all(_prefix_of(n) == prefix for n in names):
                    side.groups[prefix] = names
                    side.group_lines[prefix] = node.lineno
        elif isinstance(node, ast.Call):
            # rec(tcols, K, ...) — the Python core's tape writes.
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "rec"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, int)
            ):
                side.recorded_kinds.add(node.args[1].value)
        elif isinstance(node, ast.Compare):
            # kind == K — the replay dispatch.
            if (
                isinstance(node.left, ast.Name)
                and node.left.id == "kind"
                and len(node.ops) == 1
                and isinstance(node.ops[0], ast.Eq)
                and isinstance(node.comparators[0], ast.Constant)
                and isinstance(node.comparators[0].value, int)
            ):
                side.replayed_kinds.add(node.comparators[0].value)
        elif isinstance(node, ast.FunctionDef) and _PY_REPLAY_FN.match(
            node.name
        ):
            # Per entry point: the serial and batched replay cores must
            # each dispatch the full kind set on their own.
            side.replay_fns[_normalize_replay_name(node.name)] = (
                _dispatched_kinds(node)
            )
    return side


def parse_t_constants(vector_sim_source: str) -> dict[str, int]:
    """``_T_*`` event-kind constants declared in ``vector_sim.py``."""
    kinds: dict[str, int] = {}
    for node in ast.parse(vector_sim_source).body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id.startswith("_T_")
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, int)
        ):
            kinds[node.targets[0].id] = node.value.value
    return kinds


_C_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
_C_ABI = re.compile(r"#define\s+EXT_ABI\s+(\d+)")
_C_ENUM = re.compile(r"enum\s*\{([^}]*)\}")
_C_KIND_WRITE = re.compile(r"\btk\[\w+\]\s*=\s*(\d+)")
_C_KIND_DISPATCH = re.compile(r"\bkind\s*==\s*(\d+)")
#: C replay entry points: ``replay`` and ``replay_many`` definitions.
_C_REPLAY_FN = re.compile(r"static\s+PyObject\s*\*\s*(replay\w*)\s*\(")


def _c_replay_bodies(stripped: str) -> dict[str, str]:
    """Slice each ``replay*`` function body out of the stripped source.

    A body runs from its definition to the next ``static`` at the top
    level (the file's fixed idiom: no nested ``static``), or EOF.
    """
    matches = list(_C_REPLAY_FN.finditer(stripped))
    bodies: dict[str, str] = {}
    for match in matches:
        end = stripped.find("\nstatic ", match.end())
        body = stripped[match.end() : end if end >= 0 else len(stripped)]
        bodies[match.group(1)] = body
    return bodies


def parse_c_core(source: str) -> CSide:
    """Extract ABI, enum blocks and kind usage from the C twin."""
    side = CSide()
    stripped = _C_COMMENT.sub(" ", source)
    abi = _C_ABI.search(stripped)
    if abi:
        side.abi = int(abi.group(1))
    for block in _C_ENUM.findall(stripped):
        names = [
            part.split("=")[0].strip()
            for part in block.split(",")
            if part.strip()
        ]
        prefix = _prefix_of(names[0]) if names else None
        if prefix is None:
            continue
        # Drop the C-only sentinel (A_COUNT, I_COUNT, ...).
        if names[-1] == f"{prefix}_COUNT":
            names = names[:-1]
        side.enums[prefix] = names
    side.written_kinds = {int(k) for k in _C_KIND_WRITE.findall(stripped)}
    side.dispatched_kinds = {
        int(k) for k in _C_KIND_DISPATCH.findall(stripped)
    }
    for name, body in _c_replay_bodies(stripped).items():
        side.replay_fns[_normalize_replay_name(name)] = {
            int(k) for k in _C_KIND_DISPATCH.findall(body)
        }
    return side


def compare_twins(
    py_source: str,
    c_source: str,
    vector_sim_source: str,
    py_path: str = PY_CORE,
    c_path: str = C_CORE,
) -> list[Finding]:
    """All drift findings between the two event-core twins."""
    py = parse_py_core(py_source)
    c = parse_c_core(c_source)
    t_constants = parse_t_constants(vector_sim_source)
    findings: list[Finding] = []

    def error(rule: str, path: str, line: int, message: str) -> None:
        findings.append(
            Finding(
                rule=rule,
                severity=Severity.ERROR,
                path=path,
                line=line,
                message=message,
            )
        )

    # -- ABI -----------------------------------------------------------
    if py.abi is None:
        error("ctwin-abi", py_path, 0, "EXT_ABI constant not found")
    if c.abi is None:
        error("ctwin-abi", c_path, 0, "#define EXT_ABI not found")
    if py.abi is not None and c.abi is not None and py.abi != c.abi:
        error(
            "ctwin-abi",
            c_path,
            0,
            f"C EXT_ABI is {c.abi} but Python EXT_ABI is {py.abi}; "
            "the twins disagree on the pack layout version",
        )

    # -- packing layout ------------------------------------------------
    for prefix in GROUP_PREFIXES:
        py_names = py.groups.get(prefix)
        c_names = c.enums.get(prefix)
        label = f"{prefix}_* pack"
        if py_names is None:
            error(
                "ctwin-layout", py_path, 0, f"{label}: Python tuple not found"
            )
            continue
        if c_names is None:
            error("ctwin-layout", c_path, 0, f"{label}: C enum not found")
            continue
        if py_names != c_names:
            line = py.group_lines.get(prefix, 0)
            if len(py_names) != len(c_names):
                detail = (
                    f"Python has {len(py_names)} slots, C has "
                    f"{len(c_names)}"
                )
            else:
                diffs = [
                    f"slot {i}: Python {a!r} vs C {b!r}"
                    for i, (a, b) in enumerate(zip(py_names, c_names))
                    if a != b
                ]
                detail = "; ".join(diffs)
            error(
                "ctwin-layout",
                py_path,
                line,
                f"{label} drifted between the twins ({detail}); every "
                "layout edit must change _event_core.py and "
                "_event_core_ext.c together and bump EXT_ABI",
            )

    # -- event kinds -----------------------------------------------------
    declared = set(t_constants.values())
    if not declared:
        error(
            "ctwin-kinds",
            VECTOR_SIM,
            0,
            "no _T_* event-kind constants found in vector_sim.py",
        )
    checks = (
        ("Python core records", py.recorded_kinds, py_path),
        ("Python replay dispatches", py.replayed_kinds, py_path),
        ("C core writes", c.written_kinds, c_path),
        ("C replay dispatches", c.dispatched_kinds, c_path),
    )
    for what, kinds, path in checks:
        unknown = kinds - declared
        if unknown:
            error(
                "ctwin-kinds",
                path,
                0,
                f"{what} kind(s) {sorted(unknown)} not declared by the "
                f"_T_* constants ({sorted(declared)})",
            )
    if declared and c.written_kinds and declared != c.written_kinds:
        missing = sorted(declared - c.written_kinds)
        if missing:
            error(
                "ctwin-kinds",
                c_path,
                0,
                f"C core never writes kind(s) {missing} that the "
                "Python core declares — the twins' tapes would diverge",
            )
    if (
        py.recorded_kinds
        and c.written_kinds
        and py.recorded_kinds != c.written_kinds
    ):
        error(
            "ctwin-kinds",
            c_path,
            0,
            f"recorded kinds differ: Python writes "
            f"{sorted(py.recorded_kinds)}, C writes "
            f"{sorted(c.written_kinds)}",
        )

    # -- per-entry-point replay dispatch -------------------------------
    # Serial replay and batched replay_many are independent copies of
    # the same dispatch chain, in both twins.  Each must cover every
    # declared kind on its own; exactly one kind per entry point may
    # ride the final `else` branch without an explicit test.
    if set(py.replay_fns) != set(c.replay_fns):
        only_py = sorted(set(py.replay_fns) - set(c.replay_fns))
        only_c = sorted(set(c.replay_fns) - set(py.replay_fns))
        error(
            "ctwin-kinds",
            c_path,
            0,
            f"replay entry points differ between the twins "
            f"(Python-only: {only_py}, C-only: {only_c})",
        )
    if declared:
        sides = (
            ("Python", py.replay_fns, py_path),
            ("C", c.replay_fns, c_path),
        )
        for twin, fns, path in sides:
            for name in sorted(fns):
                undispatched = sorted(declared - fns[name])
                if len(undispatched) > 1:
                    error(
                        "ctwin-kinds",
                        path,
                        0,
                        f"{twin} replay entry point {name!r} never "
                        f"dispatches kind(s) {undispatched}; at most "
                        "one kind may be handled by the final else "
                        "branch",
                    )
    return findings


class CTwinDriftPass(Pass):
    name = "c-twin-drift"
    description = (
        "_event_core_ext.c agrees with _event_core.py on EXT_ABI, the "
        "event-kind codes and the array-pack layout"
    )
    rules = ("ctwin-abi", "ctwin-layout", "ctwin-kinds", "ctwin-missing")

    def run(self, ctx: Context) -> list[Finding]:
        package_root = ctx.src_root / ctx.package
        paths = {
            name: package_root / name
            for name in (PY_CORE, C_CORE, VECTOR_SIM)
        }
        missing = [
            ctx.rel(path) for path in paths.values() if not path.is_file()
        ]
        if missing:
            return [
                Finding(
                    rule="ctwin-missing",
                    severity=Severity.ERROR,
                    path=path,
                    line=0,
                    message="event-core twin source file is missing",
                )
                for path in missing
            ]
        return compare_twins(
            ctx.source(paths[PY_CORE]),
            Path(paths[C_CORE]).read_text(),
            ctx.source(paths[VECTOR_SIM]),
            py_path=ctx.rel(paths[PY_CORE]),
            c_path=ctx.rel(paths[C_CORE]),
        )
