"""Static intra-package import graph.

Builds, purely from ``ast``, the graph of ``repro.*`` modules each
module imports — module-level and function-level imports alike (the
experiment registry imports its study modules lazily inside the point
functions, so function bodies matter).  The salt-completeness pass
walks this graph from each experiment's point functions to find every
module whose source can affect results.

Two deliberate policies shape reachability:

* **exempt modules are boundaries** — infrastructure like the engine
  (cache addressing, registry, planner) is neither required in salts
  nor traversed through; its own imports reach the entire package and
  would drown the analysis in false positives.  Each exemption carries
  a reason (:data:`DEFAULT_EXEMPT`).
* **trivial package ``__init__`` files are transparent** — an
  ``__init__`` containing only a docstring, imports and ``__all__``
  re-exports cannot itself affect results, so it is traversed (its
  re-exports are followed) but not required in salt lists.  An
  ``__init__`` with real statements is treated as an ordinary module.

The result is an *overapproximation*: importing a package's front door
pulls in every module it re-exports even when only one is used.  That
errs in the safe direction — an extra salt module can only cause a
spurious cache invalidation, never a stale result.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.statics.framework import Context

#: Modules (and their subtrees) excluded from salt requirements, with
#: the reason each exclusion is sound.  ``repro check --json`` and
#: docs/statics.md surface these so the exceptions stay reviewable.
DEFAULT_EXEMPT: dict[str, str] = {
    "repro.engine": (
        "cache/registry/runner/planner machinery addresses results but "
        "does not compute them; addressing changes are versioned by "
        "CACHE_FORMAT_VERSION and planner parity is CI-enforced"
    ),
    "repro.api": "facade over repro.engine; same machinery boundary",
    "repro.cli": "command-line front door; never imported by a study",
    "repro.__main__": "module runner shim",
    "repro.statics": "this analyzer; never imported by a study",
    "repro.gpusim._event_core_ext": (
        "the compiled event-core twin is deliberately not a salt axis: "
        "it is bit-identical to the salted pure-Python core by "
        "contract, enforced by tests/test_event_core.py and the CI "
        "event-core digest-diff job"
    ),
}


def is_exempt(module: str, exempt: dict[str, str] | tuple[str, ...]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in exempt
    )


def module_imports(ctx: Context, module: str) -> dict[str, int]:
    """In-package modules ``module`` imports -> first import line.

    Covers ``import a.b``, ``from a import b`` (where ``b`` may be a
    submodule) and relative imports, anywhere in the file.
    """
    path = ctx.module_path(module)
    if path is None:
        return {}
    known = ctx.modules()
    is_package = path.name == "__init__.py"
    out: dict[str, int] = {}

    def add(name: str, line: int) -> None:
        # Strip attribute tails until we hit a real module.
        while name and name not in known:
            name = name.rpartition(".")[0]
        if name and name not in out:
            out[name] = line

    for node in ast.walk(ctx.tree(path)):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == ctx.package:
                    add(alias.name, node.lineno)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = module.split(".")
                # Level 1 in a package __init__ means the package
                # itself; elsewhere it means the parent package.
                trim = node.level - 1 if is_package else node.level
                if trim:
                    parts = parts[:-trim]
                base = ".".join(parts + ([base] if base else []))
            if base.split(".")[0] != ctx.package:
                continue
            submodules = [
                f"{base}.{alias.name}"
                for alias in node.names
                if f"{base}.{alias.name}" in known
            ]
            # ``from pkg import submodule`` binds the submodule; only
            # when a name is an attribute of the package __init__ does
            # the __init__ itself become a dependency.
            if len(submodules) < len(node.names):
                add(base, node.lineno)
            for candidate in submodules:
                add(candidate, node.lineno)
    return out


def is_transparent_init(ctx: Context, module: str) -> bool:
    """Whether ``module`` is a re-export-only package ``__init__``."""
    path = ctx.module_path(module)
    if path is None or path.name != "__init__.py":
        return False
    for node in ctx.tree(path).body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
            continue  # docstring
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id.startswith("__")
            and isinstance(node.value, (ast.Constant, ast.List, ast.Tuple))
        ):
            continue  # __all__, __version__ and similar metadata
        return False
    return True


@dataclass(frozen=True)
class Reach:
    """Reachability result: module -> shortest import chain."""

    chains: dict[str, tuple[str, ...]]

    def chain(self, module: str) -> str:
        return " -> ".join(self.chains.get(module, (module,)))


def reachable(
    ctx: Context,
    roots: dict[str, int] | list[str],
    exempt: dict[str, str] | tuple[str, ...] = (),
) -> Reach:
    """All in-package modules transitively imported from ``roots``.

    Exempt modules terminate traversal: they are recorded as reached
    (so dead-entry detection can see them) but their imports are not
    followed.
    """
    chains: dict[str, tuple[str, ...]] = {}
    queue = [(module, (module,)) for module in sorted(roots)]
    while queue:
        module, chain = queue.pop(0)
        if module in chains:
            continue
        chains[module] = chain
        if is_exempt(module, exempt):
            continue
        for imported in sorted(module_imports(ctx, module)):
            if imported not in chains:
                queue.append((imported, chain + (imported,)))
    return Reach(chains)


def salt_relevant(
    ctx: Context,
    reach: Reach,
    exempt: dict[str, str] | tuple[str, ...],
) -> set[str]:
    """The reached modules that must appear in a salt list."""
    return {
        module
        for module in reach.chains
        if not is_exempt(module, exempt)
        and not is_transparent_init(ctx, module)
    }
