"""Deterministic random-number plumbing.

Every synthetic substrate (snapshot generators, trace generators, the
convergence model) draws from a :class:`numpy.random.Generator` derived
from a stable stream name, so that experiments are reproducible run to
run and independent of each other.
"""

from __future__ import annotations

import zlib

import numpy as np

#: Global experiment seed; changing it re-rolls every synthetic substrate.
DEFAULT_SEED = 0xB0DD


def stream_seed(name: str, seed: int = DEFAULT_SEED) -> int:
    """Derive a stable 64-bit seed for the named stream."""
    return (zlib.crc32(name.encode("utf-8")) << 32 | seed) & 0xFFFF_FFFF_FFFF_FFFF


def generator(name: str, seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Return a deterministic generator for the named stream.

    Streams with different names are statistically independent; the same
    name always yields the same sequence.
    """
    return np.random.default_rng(stream_seed(name, seed))
