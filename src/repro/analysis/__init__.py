"""Experiment drivers.

One module per paper artefact; each produces plain dataclass results
that the benchmarks print and EXPERIMENTS.md tabulates against the
paper's reported numbers (:mod:`repro.analysis.paper_reference`).
"""
