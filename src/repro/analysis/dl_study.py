"""Fig. 13 driver: the DL-training case study end to end."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.controller import BuddyCompressor, BuddyConfig
from repro.core.targets import FINAL
from repro.dlmodel.casestudy import CaseStudyRow, buddy_batch_speedups, mean_speedup
from repro.dlmodel.convergence import accuracy_curve
from repro.dlmodel.memory import footprint_bytes
from repro.dlmodel.networks import NETWORK_BUILDERS
from repro.dlmodel.throughput import speedup_vs_batch
from repro.units import GIB
from repro.workloads.snapshots import SnapshotConfig

BATCH_SWEEP = (16, 32, 64, 128, 256)


@dataclass
class DLStudyResult:
    """The four Fig. 13 panels."""

    footprints: dict[str, dict[int, float]]  # GB per (network, batch)
    throughput_speedups: dict[str, dict[int, float]]
    case_study: list[CaseStudyRow]
    accuracy: dict[int, np.ndarray]

    @property
    def mean_case_speedup(self) -> float:
        return mean_speedup(self.case_study)


def network_ratio(
    network: str, config: SnapshotConfig | None = None
) -> float:
    """One network's buddy ratio (the engine's point unit)."""
    engine = BuddyCompressor(
        BuddyConfig(snapshot_config=config or SnapshotConfig(scale=1.0 / 65536))
    )
    return engine.run(network, FINAL).compression_ratio


def network_ratio_plan(point: dict) -> list:
    """Shared dependency graph of one DL-ratio point: the network's
    profile- and reference-role tensors under the Buddy pipeline."""
    from repro.compression.bpc import BPCCompressor
    from repro.engine.planner import ProfileTensorSpec, SnapshotsSpec

    network = point["network"]
    config = point["config"]
    profile_config = config.as_profile()
    algorithm = BPCCompressor()
    return [
        ProfileTensorSpec(network, profile_config, algorithm),
        ProfileTensorSpec(network, config, algorithm),
        SnapshotsSpec(network, profile_config),
        SnapshotsSpec(network, config),
    ]


def measured_compression_ratios(
    config: SnapshotConfig | None = None, runner=None
) -> dict[str, float]:
    """Per-network buddy ratios from the Fig. 7 pipeline."""
    from repro.engine.runner import default_runner

    runner = runner or default_runner()
    return runner.run("dl.ratios", {"config": config})


def run_dl_study(
    compression_ratios: dict[str, float] | None = None,
    batches=BATCH_SWEEP,
    epochs: int = 100,
    runner=None,
) -> DLStudyResult:
    """Produce all four Fig. 13 panels."""
    if compression_ratios is None:
        from repro.engine.runner import default_runner

        runner = runner or default_runner()
        return runner.run(
            "dl.fig13", {"batches": tuple(batches), "epochs": epochs}
        )
    return assemble_dl_study(compression_ratios, batches, epochs)


def assemble_dl_study(
    ratios: dict[str, float], batches=BATCH_SWEEP, epochs: int = 100
) -> DLStudyResult:
    """Build the four Fig. 13 panels from per-network ratios.

    Panels cover exactly the networks in ``ratios`` so subset runs stay
    consistent across all four panels.
    """
    networks = [name for name in NETWORK_BUILDERS if name in ratios]
    footprints = {
        name: {
            batch: footprint_bytes(name, batch) / GIB for batch in batches
        }
        for name in networks
    }
    speedups = {
        name: speedup_vs_batch(name, batches) for name in networks
    }
    case_study = buddy_batch_speedups(ratios)
    accuracy = {
        batch: accuracy_curve(batch, epochs) for batch in batches
    }
    return DLStudyResult(footprints, speedups, case_study, accuracy)


def format_dl_tables(result: DLStudyResult) -> str:
    lines = ["Fig 13a - footprint (GB) vs mini-batch:"]
    batches = sorted(next(iter(result.footprints.values())))
    header = f"{'network':14s}" + "".join(f"{b:>9d}" for b in batches)
    lines.append(header)
    for name, row in result.footprints.items():
        lines.append(
            f"{name:14s}" + "".join(f"{row[b]:9.2f}" for b in batches)
        )
    lines.append("\nFig 13b - images/s speedup vs batch (relative to 16):")
    lines.append(header)
    for name, row in result.throughput_speedups.items():
        lines.append(
            f"{name:14s}" + "".join(f"{row[b]:9.2f}" for b in batches)
        )
    lines.append("\nFig 13c - Buddy-enabled batch speedups:")
    for row in result.case_study:
        lines.append(
            f"{row.network:14s} ratio {row.compression_ratio:4.2f} "
            f"batch {row.baseline_batch:4d} -> {row.buddy_batch:4d} "
            f"speedup {row.speedup:5.2f}"
        )
    lines.append(f"mean speedup: {result.mean_case_speedup:.2f} (paper 1.14)")
    lines.append("\nFig 13d - final validation accuracy by batch:")
    for batch, curve in result.accuracy.items():
        lines.append(
            f"batch {batch:4d}: final {curve[-1]:.3f} "
            f"(epoch-50 {curve[49]:.3f})"
        )
    return "\n".join(lines)
