"""Every quantitative claim of the paper, for paper-vs-measured tables.

Values come from the paper's text; per-benchmark figures without
printed numbers are recorded as the qualitative contracts the benches
assert instead.
"""

from __future__ import annotations

# --- Fig. 3: free-size BPC compression ratios -------------------------
FIG3_GMEAN_HPC = 2.51
FIG3_GMEAN_DL = 1.85

# --- Fig. 7: design points (compression ratio, buddy-access fraction) -
FIG7_NAIVE_HPC = (1.57, 0.08)
FIG7_NAIVE_DL = (1.18, 0.32)
FIG7_PER_ALLOCATION_HPC = (1.70, None)  # accesses not reported
FIG7_PER_ALLOCATION_DL = (1.42, None)
FIG7_FINAL_HPC = (1.90, 0.0008)
FIG7_FINAL_DL = (1.50, 0.04)

# --- Fig. 8: temporal stability -----------------------------------------
FIG8_SQUEEZENET_RATIO = 1.49
FIG8_RESNET50_RATIO = 1.64

# --- Fig. 9: buddy-threshold sweep --------------------------------------
FIG9_THRESHOLDS = (0.10, 0.20, 0.30, 0.40)
FIG9_CHOSEN_THRESHOLD = 0.30

# --- Metadata (Sec. 3.2) -------------------------------------------------
METADATA_BITS_PER_ENTRY = 4
METADATA_OVERHEAD_FRACTION = 0.004
PTE_EXTENSION_BITS = 24

# --- Fig. 10: simulator methodology --------------------------------------
FIG10_CORRELATION = 0.989
FIG10_SPEEDUP_VS_CYCLE_ACCURATE = 100.0  # two orders of magnitude

# --- Fig. 11: performance vs ideal ---------------------------------------
FIG11_BANDWIDTH_ONLY_MEAN = 1.055
FIG11_BUDDY_200_MEAN = 1.02
FIG11_BUDDY_150_HPC = 0.99  # "within 1% of ideal"
FIG11_BUDDY_150_DL = 0.978  # "within 2.2% of ideal"
FIG11_ALEXNET_150 = 0.935  # 6.5% slowdown
FIG11_ALEXNET_50 = 0.65  # 35% slowdown
FIG11_BUDDY_50_MEAN_SLOWDOWN = 0.80  # "more than 20% average slowdown"
FIG11_DECOMPRESSION_DRAM_CYCLES = 11

# --- Sec. 4.3: UM comparison ----------------------------------------------
UM_LINK_GBPS = 75.0  # 3 NVLink2 bricks on the Power9 box
BUDDY_MAX_SLOWDOWN_AT_50PCT_OVERSUB = 1.67

# --- Fig. 13: DL case study ------------------------------------------------
FIG13_MEAN_SPEEDUP = 1.14
FIG13_VGG16_SPEEDUP = 1.30
FIG13_BIGLSTM_SPEEDUP = 1.28
FIG13_ALEXNET_TRANSITION_BATCH = 96
FIG13_OTHER_TRANSITION_MAX = 32
FIG13_GOOD_ACCURACY_BATCHES = (64, 128, 256)
FIG13_LOW_ACCURACY_BATCHES = (16, 32)
