"""Fig. 11 driver: performance relative to an ideal large-memory GPU.

For every benchmark, runs the dependency-driven simulator under:

* the ideal (uncompressed, unlimited-capacity) baseline;
* bandwidth-only compression;
* full Buddy Compression at each swept interconnect bandwidth
  (50/100/150/200 GB/s full-duplex, per the paper).

All results are reported as speedup relative to the ideal baseline
with a 150 GB/s interconnect, exactly as the paper normalises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.controller import BuddyCompressor, BuddyConfig
from repro.core.targets import FINAL
from repro.gpusim.compression import CompressionMode, CompressionState
from repro.gpusim.config import GPUConfig, scaled_config
from repro.gpusim.simulator import DependencyDrivenSimulator
from repro.gpusim.vector_sim import (
    REFERENCE_LINK_GBPS,
    ensure_tape,
    replay_links,
    tape_cache_key,
)
from repro.workloads.catalog import get_benchmark
from repro.workloads.snapshots import SnapshotConfig
from repro.workloads.traces import TraceConfig, generate_trace, layout_state

#: The paper's interconnect sweep (GB/s, unidirectional full-duplex).
LINK_SWEEP = (50.0, 100.0, 150.0, 200.0)


def _normalize_point_inputs(config, trace_config, profile_config):
    """The defaults one Fig. 11 point resolves its inputs with.

    Shared by :func:`perf_benchmark_row`, :func:`prepare_tape` and
    :func:`fig11_plan` so the tape cache key computed at plan time is
    byte-identical to the one the point computes at run time.
    """
    config = config or scaled_config()
    trace_config = trace_config or TraceConfig(
        sm_count=config.sm_count, warps_per_sm=config.warps_per_sm
    )
    profile_config = profile_config or SnapshotConfig(scale=1.0 / 65536)
    return config, trace_config, profile_config


@dataclass
class BenchmarkPerf:
    """Fig. 11 series for one benchmark (speedups vs ideal@150)."""

    benchmark: str
    is_hpc: bool
    ideal_cycles: float
    bandwidth_only: float
    buddy: dict[float, float]
    metadata_hit_rate: float
    buddy_access_fraction: float


@dataclass
class PerfStudyResult:
    """Full Fig. 11 dataset."""

    per_benchmark: list[BenchmarkPerf]

    def suite_gmean(self, hpc: bool, series: str, link: float = 150.0) -> float:
        values = []
        for row in self.per_benchmark:
            if row.is_hpc != hpc:
                continue
            if series == "bandwidth":
                values.append(row.bandwidth_only)
            else:
                values.append(row.buddy[link])
        return float(np.exp(np.mean(np.log(values)))) if values else 0.0

    def overall_gmean(self, series: str, link: float = 150.0) -> float:
        values = []
        for row in self.per_benchmark:
            value = row.bandwidth_only if series == "bandwidth" else row.buddy[link]
            values.append(value)
        return float(np.exp(np.mean(np.log(values))))


def perf_benchmark_row(
    benchmark: str,
    config: GPUConfig | None = None,
    trace_config: TraceConfig | None = None,
    link_sweep=LINK_SWEEP,
    profile_config: SnapshotConfig | None = None,
    engine: str = "vectorized",
    verify: float = 0.0,
) -> BenchmarkPerf:
    """One benchmark's full Fig. 11 series (the engine's point unit).

    ``engine`` selects the simulator core: ``"vectorized"`` (default)
    and ``"legacy"`` are equivalence-pinned, so between those two the
    choice only affects wall-clock — the vectorized engine resolves
    its accesses once per (trace, state) and shares the resolution
    across the whole link sweep.  ``"relaxed"`` additionally freezes
    the event *order* at the 150 GB/s reference interconnect and
    replays it across the sweep: exact at 150 GB/s (the row every
    figure normalises against), tolerance-pinned at the other link
    points, and by far the fastest on warm sweeps (see
    ``docs/engines.md``).  ``verify`` is the relaxed engine's escape
    hatch: the fraction of simulator runs cross-checked against the
    legacy oracle (a breach raises ``RelaxedVerificationError``); it
    must stay 0.0 for the exact engines.
    """
    config, trace_config, profile_config = _normalize_point_inputs(
        config, trace_config, profile_config
    )
    compressor = BuddyCompressor(BuddyConfig(snapshot_config=profile_config))

    trace = generate_trace(benchmark, trace_config)
    # The cached per-entry state behind the trace layout: profiling,
    # trace generation and both compression states all reuse tensors
    # served by the profiler's memo / the engine result cache, so a
    # warm design point regenerates no snapshots at all.
    layout = layout_state(benchmark, trace_config)
    selection = compressor.select(compressor.profile(benchmark), FINAL)

    ideal = DependencyDrivenSimulator(config, engine, verify).run(
        trace, CompressionState.ideal(trace.footprint_bytes)
    )
    bandwidth_state = CompressionState.from_entry_state(
        layout, selection, CompressionMode.BANDWIDTH
    )
    bandwidth = DependencyDrivenSimulator(config, engine, verify).run(
        trace, bandwidth_state
    )

    buddy_state = CompressionState.from_entry_state(
        layout, selection, CompressionMode.BUDDY
    )
    buddy = {}
    meta_hit = 0.0
    if engine == "relaxed":
        # The whole link sweep shares one frozen tape: resolve it once
        # (through the persistent ``sim.tape`` cache / the planner's
        # stage-0 preload when available) and replay every
        # non-reference link in a single batched pass — bit-identical
        # to looping the relaxed simulator over the sweep.
        key = tape_cache_key(benchmark, trace_config, profile_config, config)
        results = replay_links(
            trace,
            buddy_state,
            config,
            link_sweep,
            verify=verify,
            cache_key=key,
        )
        for link, result in zip(link_sweep, results):
            buddy[link] = ideal.cycles / result.cycles
            if link == REFERENCE_LINK_GBPS:
                meta_hit = result.metadata_hit_rate
    else:
        for link in link_sweep:
            result = DependencyDrivenSimulator(
                config.with_link(link), engine, verify
            ).run(trace, buddy_state)
            buddy[link] = ideal.cycles / result.cycles
            if link == REFERENCE_LINK_GBPS:
                # The 150 GB/s row: the paper's normalisation point and
                # the relaxed engine's reference interconnect.
                meta_hit = result.metadata_hit_rate

    return BenchmarkPerf(
        benchmark=benchmark,
        is_hpc=get_benchmark(benchmark).is_hpc,
        ideal_cycles=ideal.cycles,
        bandwidth_only=ideal.cycles / bandwidth.cycles,
        buddy=buddy,
        metadata_hit_rate=meta_hit,
        buddy_access_fraction=buddy_state.buddy_access_fraction(),
    )


def prepare_tape(
    benchmark: str,
    config: GPUConfig | None = None,
    trace_config: TraceConfig | None = None,
    profile_config: SnapshotConfig | None = None,
) -> dict:
    """Record-or-load the relaxed tape for one Fig. 11 design point.

    The planner's stage-0 tape build: resolves exactly the inputs
    :func:`perf_benchmark_row` would (same defaults, same buddy
    selection), then routes the tape through
    :func:`repro.gpusim.vector_sim.ensure_tape` — a persistent-cache
    hit deserializes instead of re-recording.  Returns the tape
    envelope so cacheless pools can ship it to point workers.
    """
    config, trace_config, profile_config = _normalize_point_inputs(
        config, trace_config, profile_config
    )
    compressor = BuddyCompressor(BuddyConfig(snapshot_config=profile_config))
    trace = generate_trace(benchmark, trace_config)
    layout = layout_state(benchmark, trace_config)
    selection = compressor.select(compressor.profile(benchmark), FINAL)
    buddy_state = CompressionState.from_entry_state(
        layout, selection, CompressionMode.BUDDY
    )
    key = tape_cache_key(benchmark, trace_config, profile_config, config)
    return ensure_tape(key, trace, buddy_state, config)


def fig11_plan(point: dict) -> list:
    """Shared dependency graph of one Fig. 11 design point.

    Target selection consumes the profile-role tensor at the (small)
    profiling scale; the trace generator and both compression states
    consume the per-entry state of the layout dump behind the trace
    config.  The trace itself is declared for statistics only — it is
    cheap to regenerate from a warm entry-state tensor.  A relaxed
    point whose sweep leaves the reference interconnect additionally
    declares its recorded event tape (:class:`TapeSpec`), so
    co-submitted sweeps record each ``(trace, state, geometry)`` tape
    once in stage 0.
    """
    from repro.compression.bpc import BPCCompressor
    from repro.engine.planner import (
        EntryStateSpec,
        ProfileTensorSpec,
        SnapshotsSpec,
        TapeSpec,
        TraceSpec,
    )

    benchmark = point["benchmark"]
    profile_config = point["profile_config"].as_profile()
    trace_config = point["trace_config"]
    specs = [
        ProfileTensorSpec(benchmark, profile_config, BPCCompressor()),
        SnapshotsSpec(benchmark, profile_config),
        EntryStateSpec(
            benchmark, trace_config.snapshot_config, trace_config.snapshot_index
        ),
        TraceSpec(benchmark, trace_config),
    ]
    if point["engine"] == "relaxed" and any(
        float(link) != REFERENCE_LINK_GBPS for link in point["link_sweep"]
    ):
        config, norm_trace, norm_profile = _normalize_point_inputs(
            point["config"], trace_config, point["profile_config"]
        )
        specs.append(TapeSpec(benchmark, norm_trace, norm_profile, config))
    return specs


def run_perf_study(
    benchmarks=None,
    config: GPUConfig | None = None,
    trace_config: TraceConfig | None = None,
    link_sweep=LINK_SWEEP,
    profile_config: SnapshotConfig | None = None,
    runner=None,
    engine: str | None = None,
    verify: float | None = None,
    engine_spec=None,
) -> PerfStudyResult:
    """Run the full Fig. 11 sweep.

    Args:
        benchmarks: Iterable of benchmark names (default: all 16).
        config: Simulator machine (default: the scaled machine).
        trace_config: Trace generation knobs.
        link_sweep: Interconnect bandwidths for the buddy runs.
        profile_config: Snapshot scaling for the profiling pass that
            picks target ratios (smaller than the trace scale — it
            only needs histograms).
        runner: :class:`repro.engine.ExperimentRunner` controlling
            parallelism and caching (default: serial, uncached).
        engine_spec: :class:`repro.gpusim.engine_spec.EngineSpec` (or
            its string form, e.g. ``"relaxed:verify=0.5"``) selecting
            the simulator core; its name and verify fraction are cache
            axes, so cached results never mix engines.
        engine, verify: Deprecated spelling of ``engine_spec``; still
            honoured, with a :class:`DeprecationWarning`.
    """
    from repro.engine.runner import default_runner
    from repro.gpusim.engine_spec import EngineSpec

    spec = EngineSpec.coerce(
        engine_spec, engine=engine, verify=verify, where="run_perf_study"
    )
    runner = runner or default_runner()
    if trace_config is None and config is not None:
        # Preserve the historical coupling: an explicit machine implies
        # a trace shaped for that machine's SM/warp geometry.
        trace_config = TraceConfig(
            sm_count=config.sm_count, warps_per_sm=config.warps_per_sm
        )
    return runner.run(
        "perf.fig11",
        {
            "benchmarks": tuple(benchmarks) if benchmarks else None,
            "config": config,
            "trace_config": trace_config,
            "link_sweep": tuple(link_sweep),
            "profile_config": profile_config,
            **spec.study_params(),
        },
    )


def format_perf_table(result: PerfStudyResult, link_sweep=LINK_SWEEP) -> str:
    """Render the Fig. 11 dataset as an ASCII table."""
    header = (
        f"{'benchmark':14s} {'bw-only':>8s} "
        + " ".join(f"bud@{int(l):<3d}" for l in link_sweep)
        + "  meta-hit"
    )
    lines = [header]
    for row in result.per_benchmark:
        buddies = " ".join(f"{row.buddy[l]:7.3f}" for l in link_sweep)
        lines.append(
            f"{row.benchmark:14s} {row.bandwidth_only:8.3f} {buddies}  {row.metadata_hit_rate:7.2f}"
        )
    for label, hpc in (("HPC", True), ("DL", False)):
        buddies = " ".join(
            f"{result.suite_gmean(hpc, 'buddy', l):7.3f}" for l in link_sweep
        )
        lines.append(
            f"{'GMEAN ' + label:14s} {result.suite_gmean(hpc, 'bandwidth'):8.3f} {buddies}"
        )
    return "\n".join(lines)
