"""Fig. 10: simulator correlation and speed.

The paper validates its fast dependency-driven simulator against V100
silicon (correlation 0.989) and shows it runs two orders of magnitude
faster than GPGPUSim.  Our silicon proxy is the cycle-stepped
reference machine: we correlate the two simulators' cycle counts over
the benchmark suite at several trace lengths (log-log, as in the
figure) and measure the wall-clock gap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.gpusim.compression import CompressionState
from repro.gpusim.config import scaled_config
from repro.gpusim.reference import CycleSteppedReference
from repro.gpusim.simulator import DependencyDrivenSimulator
from repro.workloads.snapshots import SnapshotConfig
from repro.workloads.traces import TraceConfig, generate_trace

#: A diverse sample across suites and patterns.
DEFAULT_BENCHMARKS = (
    "370.bt", "354.cg", "356.sp", "VGG16", "ResNet50", "FF_Lulesh",
)


@dataclass
class CorrelationPoint:
    benchmark: str
    instructions: int
    fast_cycles: float
    reference_cycles: float
    fast_seconds: float
    reference_seconds: float


@dataclass
class CorrelationResult:
    points: list[CorrelationPoint]

    @property
    def correlation(self) -> float:
        """Pearson correlation of log cycle counts (Fig. 10 left)."""
        fast = np.log([p.fast_cycles for p in self.points])
        reference = np.log([p.reference_cycles for p in self.points])
        return float(np.corrcoef(fast, reference)[0, 1])

    @property
    def mean_speed_ratio(self) -> float:
        """Wall-clock advantage of the fast simulator (Fig. 10 right)."""
        ratios = [
            p.reference_seconds / max(p.fast_seconds, 1e-9)
            for p in self.points
        ]
        return float(np.mean(ratios))


def run_correlation_study(
    benchmarks=DEFAULT_BENCHMARKS,
    instruction_scales=(6, 18),
) -> CorrelationResult:
    """Run both simulators across benchmarks and trace lengths."""
    config = scaled_config(sm_count=4, warps_per_sm=6)
    points = []
    for name in benchmarks:
        for memory_instructions in instruction_scales:
            trace_config = TraceConfig(
                sm_count=config.sm_count,
                warps_per_sm=config.warps_per_sm,
                memory_instructions_per_warp=memory_instructions,
                snapshot_config=SnapshotConfig(scale=1.0 / 16384),
            )
            trace = generate_trace(name, trace_config)
            state = CompressionState.ideal(trace.footprint_bytes)

            start = time.perf_counter()
            fast = DependencyDrivenSimulator(config).run(trace, state)
            fast_seconds = time.perf_counter() - start

            start = time.perf_counter()
            reference = CycleSteppedReference(config).run(trace, state)
            reference_seconds = time.perf_counter() - start

            points.append(
                CorrelationPoint(
                    benchmark=name,
                    instructions=trace.instruction_count,
                    fast_cycles=fast.cycles,
                    reference_cycles=reference.cycles,
                    fast_seconds=fast_seconds,
                    reference_seconds=reference_seconds,
                )
            )
    return CorrelationResult(points)
