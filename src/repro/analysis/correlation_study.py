"""Fig. 10: simulator correlation and speed.

The paper validates its fast dependency-driven simulator against V100
silicon (correlation 0.989) and shows it runs two orders of magnitude
faster than GPGPUSim.  Our silicon proxy is the cycle-stepped
reference machine: we correlate the two simulators' cycle counts over
the benchmark suite at several trace lengths (log-log, as in the
figure) and measure the wall-clock gap.

Both simulators run the same trace, and trace generation consumes the
cached per-entry layout (:func:`repro.workloads.traces.layout_state`)
rather than a regenerated memory dump — a design point whose layout is
already memoised or in the engine result cache generates zero
snapshots, which matters here because every (benchmark, length) pair
shares one layout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.compression import CompressionState
from repro.gpusim.config import scaled_config
from repro.gpusim.reference import CycleSteppedReference
from repro.gpusim.simulator import DependencyDrivenSimulator
from repro.workloads.snapshots import SnapshotConfig
from repro.workloads.traces import TraceConfig, generate_trace

#: A diverse sample across suites and patterns.
DEFAULT_BENCHMARKS = (
    "370.bt", "354.cg", "356.sp", "VGG16", "ResNet50", "FF_Lulesh",
)


@dataclass
class CorrelationPoint:
    benchmark: str
    instructions: int
    fast_cycles: float
    reference_cycles: float
    # Wall-clock measurements vary run to run; marking them volatile
    # keeps them out of engine result digests (cycle counts, which are
    # deterministic, remain covered).
    fast_seconds: float = field(metadata={"volatile": True})
    reference_seconds: float = field(metadata={"volatile": True})


@dataclass
class CorrelationResult:
    points: list[CorrelationPoint]

    @property
    def correlation(self) -> float:
        """Pearson correlation of log cycle counts (Fig. 10 left)."""
        fast = np.log([p.fast_cycles for p in self.points])
        reference = np.log([p.reference_cycles for p in self.points])
        return float(np.corrcoef(fast, reference)[0, 1])

    @property
    def mean_speed_ratio(self) -> float:
        """Wall-clock advantage of the fast simulator (Fig. 10 right)."""
        ratios = [
            p.reference_seconds / max(p.fast_seconds, 1e-9)
            for p in self.points
        ]
        return float(np.mean(ratios))


def correlation_point(
    benchmark: str,
    memory_instructions: int,
    sm_count: int = 4,
    warps_per_sm: int = 6,
    engine: str = "vectorized",
    verify: float = 0.0,
) -> CorrelationPoint:
    """Both simulators on one (benchmark, trace length) design point.

    Cycle counts are deterministic (and identical across the fast
    simulator's engines — the correlation points run IDEAL-mode
    traces without host traffic, where even the relaxed engine is
    provably exact); the wall-clock fields are measured fresh on
    every execution (a cached point keeps the timings of the run that
    produced it).
    """
    config = scaled_config(sm_count=sm_count, warps_per_sm=warps_per_sm)
    trace_config = TraceConfig(
        sm_count=config.sm_count,
        warps_per_sm=config.warps_per_sm,
        memory_instructions_per_warp=memory_instructions,
        snapshot_config=SnapshotConfig(scale=1.0 / 16384),
    )
    trace = generate_trace(benchmark, trace_config)
    state = CompressionState.ideal(trace.footprint_bytes)

    # The *_seconds fields are informational wall-clock measurements
    # (the speed-ratio column of Fig. 10's table); the correlated
    # cycle counts above them stay fully deterministic.
    start = time.perf_counter()  # repro: allow[det-time] informational timing, not a result
    fast = DependencyDrivenSimulator(config, engine, verify).run(trace, state)
    fast_seconds = time.perf_counter() - start  # repro: allow[det-time] informational timing, not a result

    start = time.perf_counter()  # repro: allow[det-time] informational timing, not a result
    reference = CycleSteppedReference(config).run(trace, state)
    reference_seconds = time.perf_counter() - start  # repro: allow[det-time] informational timing, not a result

    return CorrelationPoint(
        benchmark=benchmark,
        instructions=trace.instruction_count,
        fast_cycles=fast.cycles,
        reference_cycles=reference.cycles,
        fast_seconds=fast_seconds,
        reference_seconds=reference_seconds,
    )


def fig10_plan(point: dict) -> list:
    """Shared dependency graph of one Fig. 10 design point.

    Mirrors :func:`correlation_point`'s trace construction exactly:
    every (benchmark, length) pair shares one per-entry layout, so the
    planner builds each benchmark's entry-state tensor once for the
    whole grid.

    Grouping by tape key is *degenerate* here: the correlation points
    run IDEAL-mode states at the machine's default (reference)
    interconnect only, where the relaxed engine is the exact engine
    and never records a tape — so no :class:`TapeSpec` is declared,
    and a co-submitted fig10+fig11 sweep's tape count is exactly the
    fig11 relaxed benchmarks'.
    """
    from repro.engine.planner import EntryStateSpec, TraceSpec

    config = scaled_config(
        sm_count=point["sm_count"], warps_per_sm=point["warps_per_sm"]
    )
    trace_config = TraceConfig(
        sm_count=config.sm_count,
        warps_per_sm=config.warps_per_sm,
        memory_instructions_per_warp=point["memory_instructions"],
        snapshot_config=SnapshotConfig(scale=1.0 / 16384),
    )
    return [
        EntryStateSpec(
            point["benchmark"],
            trace_config.snapshot_config,
            trace_config.snapshot_index,
        ),
        TraceSpec(point["benchmark"], trace_config),
    ]


def run_correlation_study(
    benchmarks=DEFAULT_BENCHMARKS,
    instruction_scales=(6, 18),
    runner=None,
    engine: str | None = None,
    verify: float | None = None,
    engine_spec=None,
) -> CorrelationResult:
    """Run both simulators across benchmarks and trace lengths.

    ``engine_spec`` (an :class:`repro.gpusim.engine_spec.EngineSpec`
    or its string form) selects the fast simulator's core; the legacy
    ``engine=`` / ``verify=`` kwargs still work but are deprecated.
    """
    from repro.engine.runner import ExperimentRunner
    from repro.gpusim.engine_spec import EngineSpec

    spec = EngineSpec.coerce(
        engine_spec, engine=engine, verify=verify, where="run_correlation_study"
    )
    runner = runner or ExperimentRunner()
    return runner.run(
        "correlation.fig10",
        {
            "benchmarks": tuple(benchmarks),
            "instruction_scales": tuple(instruction_scales),
            **spec.study_params(),
        },
    )
