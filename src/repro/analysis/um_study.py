"""Fig. 12 driver plus the Sec. 4.3 Buddy-vs-UM comparison."""

from __future__ import annotations

from dataclasses import dataclass

from repro.um.oversubscription import UMConfig, UMResult, run_um_study

#: The paper's Fig. 12 benchmarks and sweep.
FIG12_BENCHMARKS = ("360.ilbdc", "356.sp", "351.palm")
FIG12_LEVELS = (0.0, 0.1, 0.2, 0.3, 0.4)


@dataclass
class BuddyVsUM:
    """Sec. 4.3's takeaway for one benchmark at 50 % oversubscription."""

    benchmark: str
    um_slowdown: float
    buddy_slowdown: float


def um_benchmark_curve(
    benchmark: str,
    levels=FIG12_LEVELS,
    config: UMConfig | None = None,
) -> list[UMResult]:
    """One benchmark's oversubscription curve (the engine's point unit)."""
    return run_um_study((benchmark,), tuple(levels), config)


def fig12_curves(config: UMConfig | None = None, runner=None) -> list[UMResult]:
    """The Fig. 12 dataset (UM + pinned, per benchmark and level)."""
    from repro.engine.runner import default_runner

    runner = runner or default_runner()
    return runner.run("um.fig12", {"config": config})


def buddy_vs_um(
    buddy_relative_performance: dict[str, float],
    config: UMConfig | None = None,
) -> list[BuddyVsUM]:
    """Compare UM's 50 %-oversubscription collapse to Buddy's cost.

    Args:
        buddy_relative_performance: Per-benchmark speedup relative to
            the ideal GPU from the Fig. 11 study at the conservative
            50 GB/s link (values near 1.0; the paper bounds the
            resulting slowdown at 1.67x).
    """
    from repro.um.oversubscription import um_slowdown

    rows = []
    for name in FIG12_BENCHMARKS:
        um = um_slowdown(name, 0.49, config)
        buddy = 1.0 / buddy_relative_performance.get(name, 1.0)
        rows.append(BuddyVsUM(name, um.um_slowdown, buddy))
    return rows


def format_fig12_table(rows: list[UMResult]) -> str:
    lines = [f"{'benchmark':12s} {'oversub':>8s} {'UM':>8s} {'pinned':>8s}"]
    for row in rows:
        lines.append(
            f"{row.benchmark:12s} {row.oversubscription:8.0%} "
            f"{row.um_slowdown:7.1f}x {row.pinned_slowdown:7.1f}x"
        )
    return "\n".join(lines)
