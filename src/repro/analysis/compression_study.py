"""Compressibility studies: Figs. 3, 6, 7, 8 and 9."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression import BPCCompressor, free_sizes_for_sizes, sectors_for_sizes
from repro.compression.zeroblock import zero_mask
from repro.core.controller import BuddyCompressor, BuddyConfig, EvaluationResult
from repro.core.targets import FINAL, NAIVE, PER_ALLOCATION, DesignPoint
from repro.core.targets import threshold_sweep as targets_threshold_sweep
from repro.units import ENTRIES_PER_PAGE, MEMORY_ENTRY_BYTES
from repro.workloads.catalog import get_benchmark
from repro.workloads.snapshots import SnapshotConfig, generate_run, generate_snapshot


def _default_runner():
    """Serial, cache-free engine runner (library-call default)."""
    from repro.engine.runner import default_runner

    return default_runner()


# ---------------------------------------------------------------------------
# Fig. 3 — free-size compression ratio per benchmark over its run.
# ---------------------------------------------------------------------------
@dataclass
class Fig3Row:
    benchmark: str
    is_hpc: bool
    per_snapshot: list[float]

    @property
    def mean_ratio(self) -> float:
        return float(np.mean(self.per_snapshot))


def free_size_study(
    benchmark: str,
    config: SnapshotConfig | None = None,
    algorithms=None,
) -> dict[str, Fig3Row]:
    """Free-size ratios of one benchmark run under several codecs.

    The run's ten dumps are generated once and their entries stacked
    into a single ``(N, 32)`` block array; every codec then sizes that
    one array with a single bulk ``compressed_sizes`` call (recorded
    against :func:`repro.core.profiler.bulk_compression_call_count`),
    and per-snapshot ratios are slice reductions over the shared size
    vector.  Entries compress independently, so the stacked pass is
    element-wise identical to the historical per-snapshot loop — the
    equivalence tests pin this — while generating each benchmark's
    blocks once instead of once per ``(benchmark, algorithm)``.
    """
    from repro.core.profiler import record_bulk_compression_call

    config = config or SnapshotConfig()
    algorithms = (
        (BPCCompressor(),) if algorithms is None else tuple(algorithms)
    )
    blocks = []
    bounds = [0]
    for snapshot in generate_run(benchmark, config):
        data = snapshot.stacked_data()
        blocks.append(data)
        bounds.append(bounds[-1] + data.shape[0])
    stacked = np.concatenate(blocks, axis=0)
    zeros = zero_mask(stacked)
    is_hpc = get_benchmark(benchmark).is_hpc

    rows: dict[str, Fig3Row] = {}
    for algorithm in algorithms:
        sizes = algorithm.compressed_sizes(stacked)
        record_bulk_compression_call()
        free = free_sizes_for_sizes(sizes, zeros)
        ratios = [
            (hi - lo) * MEMORY_ENTRY_BYTES / max(int(free[lo:hi].sum()), 1)
            for lo, hi in zip(bounds, bounds[1:])
        ]
        rows[algorithm.name] = Fig3Row(benchmark, is_hpc, ratios)
    return rows


def fig3_row(benchmark: str, config: SnapshotConfig | None = None) -> Fig3Row:
    """One benchmark's Fig. 3 row (the engine's design-point unit)."""
    return free_size_study(benchmark, config)[BPCCompressor().name]


def fig3_plan(point: dict) -> list:
    """Fig. 3 dependency graph: the point consumes one snapshot run.

    Free-size ratios compress raw snapshot data (no tensor reduction),
    so the run is declared for sharing statistics only — there is no
    shared executable artifact to build ahead of the point.
    """
    from repro.engine.planner import SnapshotsSpec

    return [SnapshotsSpec(point["benchmark"], point["config"])]


def fig3_compression_ratios(
    benchmarks=None, config: SnapshotConfig | None = None, runner=None
) -> list[Fig3Row]:
    """Fig. 3: optimistic (free-size) BPC ratios, ten dumps per run."""
    runner = runner or _default_runner()
    return runner.run(
        "compression.fig3",
        {"benchmarks": tuple(benchmarks) if benchmarks else None, "config": config},
    )


def suite_gmean(rows: list[Fig3Row], hpc: bool) -> float:
    values = [row.mean_ratio for row in rows if row.is_hpc == hpc]
    return float(np.exp(np.mean(np.log(values)))) if values else 0.0


# ---------------------------------------------------------------------------
# Fig. 6 — spatial compressibility heatmap.
# ---------------------------------------------------------------------------
def fig6_heatmap(
    benchmark: str,
    snapshot_index: int = 5,
    config: SnapshotConfig | None = None,
) -> np.ndarray:
    """Sectors-per-entry heatmap: one row per 8 KB page (Fig. 6)."""
    config = config or SnapshotConfig()
    snapshot = generate_snapshot(benchmark, snapshot_index, config)
    sizes = BPCCompressor().compressed_sizes(snapshot.stacked_data())
    sectors = sectors_for_sizes(sizes)
    pages = sectors.size // ENTRIES_PER_PAGE
    return sectors[: pages * ENTRIES_PER_PAGE].reshape(pages, ENTRIES_PER_PAGE)


def render_heatmap(heatmap: np.ndarray, max_rows: int = 24) -> str:
    """ASCII rendering of a Fig. 6 heatmap (rows of page compressibility)."""
    glyphs = {1: ".", 2: "-", 3: "+", 4: "#"}
    step = max(1, heatmap.shape[0] // max_rows)
    lines = []
    for row in heatmap[::step][:max_rows]:
        lines.append("".join(glyphs[int(v)] for v in row))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figs. 7 / 8 / 9 — design points, temporal stability, threshold sweep.
# ---------------------------------------------------------------------------
@dataclass
class DesignPointStudy:
    """Fig. 7 dataset: one EvaluationResult per benchmark x design."""

    results: dict[str, dict[str, EvaluationResult]]

    def suite_summary(self, design: str, hpc: bool) -> tuple[float, float]:
        """(gmean ratio, mean access fraction) across a suite."""
        ratios, accesses = [], []
        for name, runs in self.results.items():
            if get_benchmark(name).is_hpc != hpc:
                continue
            result = runs[design]
            ratios.append(result.compression_ratio)
            accesses.append(result.buddy_access_fraction)
        gmean = float(np.exp(np.mean(np.log(ratios)))) if ratios else 0.0
        return gmean, float(np.mean(accesses)) if accesses else 0.0


def fig7_benchmark(
    benchmark: str,
    config: SnapshotConfig | None = None,
    designs: tuple[DesignPoint, ...] = (NAIVE, PER_ALLOCATION, FINAL),
) -> dict[str, EvaluationResult]:
    """One benchmark across the Fig. 7 designs.

    One profiling pass selects for every design; one reference pass
    evaluates the whole batch (:meth:`BuddyCompressor.evaluate_many`).
    """
    engine = BuddyCompressor(
        BuddyConfig(snapshot_config=config or SnapshotConfig())
    )
    profile = engine.profile(benchmark)
    selections = [engine.select(profile, design) for design in designs]
    names = [design.name for design in designs]
    results = engine.evaluate_many(benchmark, selections, names)
    return dict(zip(names, results))


def buddy_pipeline_plan(point: dict) -> list:
    """Shared dependency graph of one Buddy static-pipeline point.

    Figs. 7, 8 and 9 all run :class:`BuddyCompressor` at the point's
    snapshot config: one profile-role tensor drives target selection
    and one reference-role tensor drives ``evaluate_many`` — the two
    executable nodes every benchmark's points share across all three
    figures (and, config permitting, across sweeps planned together).
    """
    from repro.engine.planner import ProfileTensorSpec, SnapshotsSpec

    benchmark = point["benchmark"]
    config = point["config"]
    profile_config = config.as_profile()
    algorithm = BPCCompressor()
    return [
        ProfileTensorSpec(benchmark, profile_config, algorithm),
        ProfileTensorSpec(benchmark, config, algorithm),
        SnapshotsSpec(benchmark, profile_config),
        SnapshotsSpec(benchmark, config),
    ]


def fig7_design_points(
    benchmarks=None,
    config: SnapshotConfig | None = None,
    designs: tuple[DesignPoint, ...] = (NAIVE, PER_ALLOCATION, FINAL),
    runner=None,
) -> DesignPointStudy:
    """Fig. 7: the three design points on every benchmark."""
    runner = runner or _default_runner()
    return runner.run(
        "compression.fig7",
        {
            "benchmarks": tuple(benchmarks) if benchmarks else None,
            "config": config,
            "designs": tuple(designs),
        },
    )


def fig8_benchmark(
    benchmark: str, config: SnapshotConfig | None = None
) -> EvaluationResult:
    """One benchmark's Fig. 8 run under the final design."""
    engine = BuddyCompressor(
        BuddyConfig(snapshot_config=config or SnapshotConfig())
    )
    return engine.run(benchmark, FINAL)


def fig8_temporal_stability(
    benchmarks=("ResNet50", "SqueezeNet"),
    config: SnapshotConfig | None = None,
    runner=None,
) -> dict[str, EvaluationResult]:
    """Fig. 8: per-snapshot buddy traffic under the final design."""
    runner = runner or _default_runner()
    return runner.run(
        "compression.fig8",
        {"benchmarks": tuple(benchmarks), "config": config},
    )


def fig9_benchmark(
    benchmark: str,
    thresholds=(0.10, 0.20, 0.30, 0.40),
    config: SnapshotConfig | None = None,
) -> dict[float, EvaluationResult]:
    """One benchmark's Fig. 9 threshold sweep.

    The whole sweep runs exactly one profiling pass and one reference
    pass: selections for every threshold reduce over a single
    worst-overflow matrix (:func:`repro.core.targets.threshold_sweep`)
    and the batch is evaluated in one
    :meth:`BuddyCompressor.evaluate_many` call.
    """
    thresholds = tuple(thresholds)
    engine = BuddyCompressor(
        BuddyConfig(snapshot_config=config or SnapshotConfig())
    )
    profile = engine.profile(benchmark)
    by_threshold = targets_threshold_sweep(profile, thresholds)
    selections = [by_threshold[threshold] for threshold in thresholds]
    names = [f"threshold-{threshold:.2f}" for threshold in thresholds]
    results = engine.evaluate_many(benchmark, selections, names)
    return dict(zip(thresholds, results))


def fig9_threshold_sweep(
    benchmarks=None,
    thresholds=(0.10, 0.20, 0.30, 0.40),
    config: SnapshotConfig | None = None,
    runner=None,
) -> dict[str, dict[float, EvaluationResult]]:
    """Fig. 9: per-allocation design across Buddy Thresholds."""
    runner = runner or _default_runner()
    return runner.run(
        "compression.fig9",
        {
            "benchmarks": tuple(benchmarks) if benchmarks else None,
            "thresholds": tuple(thresholds),
            "config": config,
        },
    )


def best_achievable_ratio(
    benchmark: str, config: SnapshotConfig | None = None, runner=None
) -> float:
    """Fig. 9's marker: unconstrained free-size compression ratio."""
    row = fig3_compression_ratios([benchmark], config, runner=runner)[0]
    return row.mean_ratio
