"""Shared reporting helpers for benches and the CLI."""

from __future__ import annotations

import numpy as np


def gmean(values) -> float:
    """Geometric mean (the paper's suite aggregation)."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        return 0.0
    if (array <= 0).any():
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))


def table(headers: list[str], rows: list[list], widths=None) -> str:
    """Simple fixed-width ASCII table."""
    widths = widths or [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) + 2
        for i in range(len(headers))
    ]
    def fmt(cells):
        return "".join(str(c).ljust(w) for c, w in zip(cells, widths))

    lines = [fmt(headers), fmt(["-" * (w - 2) for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def paper_vs_measured(rows: list[tuple[str, float, float]]) -> str:
    """Render (metric, paper, measured) triples."""
    out = [f"{'metric':44s} {'paper':>10s} {'measured':>10s}"]
    for name, paper, measured in rows:
        out.append(f"{name:44s} {paper:10.3f} {measured:10.3f}")
    return "\n".join(out)
