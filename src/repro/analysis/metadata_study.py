"""Fig. 5b: metadata cache hit rate versus total cache size.

The study replays each benchmark's demand-miss metadata stream —
derived from its synthetic trace — through metadata caches of
increasing capacity.  At a larger footprint scale than the timing
runs (metadata capacity only matters relative to footprint), the
strided large-footprint codes (351.palm, 355.seismic) stay below the
streaming and small-footprint benchmarks, reproducing the paper's
Fig. 5b ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metadata_cache import MetadataCache
from repro.gpusim.trace import Op
from repro.units import KIB, MEMORY_ENTRY_BYTES
from repro.workloads.snapshots import SnapshotConfig
from repro.workloads.traces import TraceConfig, generate_trace

#: Cache sizes swept (total bytes across slices).
DEFAULT_SIZES = tuple(k * KIB for k in (1, 2, 4, 8, 16, 32, 64))


@dataclass
class MetadataStudyRow:
    benchmark: str
    hit_rates: dict[int, float]  # cache bytes -> hit rate


def metadata_access_stream(benchmark: str, config: TraceConfig) -> list[int]:
    """Per-access metadata entry indices, in interleaved warp order.

    Derived straight from the trace's columnar representation: memory
    rows are ranked by their position *within* their warp's memory
    stream, then by warp age, which is exactly the historical
    round-robin interleaving across per-warp streams — without ever
    materialising the per-warp tuple lists.
    """
    trace = generate_trace(benchmark, config)
    col = trace.columnar()
    memory_rows = np.flatnonzero(col.ops != int(Op.COMPUTE))
    if memory_rows.size == 0:
        return []
    entries = col.a[memory_rows] // MEMORY_ENTRY_BYTES
    # Each memory row's warp, and its rank inside that warp's stream.
    starts = col.warp_starts
    row_warp = np.searchsorted(starts, memory_rows, side="right") - 1
    memory_before = np.concatenate(
        ([0], np.cumsum(col.ops != int(Op.COMPUTE)))
    )[starts[:-1]]
    position = np.arange(memory_rows.size) - memory_before[row_warp]
    # Round-robin across warps approximates the issue interleaving:
    # position-major, warp-age-minor.
    order = np.lexsort((row_warp, position))
    return entries[order].tolist()


def metadata_row(
    benchmark: str,
    sizes=DEFAULT_SIZES,
    trace_config: TraceConfig | None = None,
) -> MetadataStudyRow:
    """One benchmark's cache-size sweep (the engine's point unit)."""
    trace_config = trace_config or TraceConfig(
        snapshot_config=SnapshotConfig(scale=1.0 / 2048)
    )
    stream = metadata_access_stream(benchmark, trace_config)
    hit_rates = {}
    for size in sizes:
        cache = MetadataCache(size, ways=2, slices=2)
        for entry in stream:
            cache.access_entry(entry)
        hit_rates[size] = cache.stats.hit_rate
    return MetadataStudyRow(benchmark, hit_rates)


def fig5b_plan(point: dict) -> list:
    """Shared dependency graph of one Fig. 5b design point: the trace
    and the per-entry layout tensor behind it."""
    from repro.engine.planner import EntryStateSpec, TraceSpec

    trace_config = point["trace_config"]
    return [
        EntryStateSpec(
            point["benchmark"],
            trace_config.snapshot_config,
            trace_config.snapshot_index,
        ),
        TraceSpec(point["benchmark"], trace_config),
    ]


def run_metadata_study(
    benchmarks=None,
    sizes=DEFAULT_SIZES,
    trace_config: TraceConfig | None = None,
    runner=None,
) -> list[MetadataStudyRow]:
    """Sweep metadata cache sizes per benchmark (Fig. 5b)."""
    from repro.engine.runner import default_runner

    runner = runner or default_runner()
    return runner.run(
        "metadata.fig5b",
        {
            "benchmarks": tuple(benchmarks) if benchmarks else None,
            "sizes": tuple(sizes),
            "trace_config": trace_config,
        },
    )


def format_metadata_table(rows: list[MetadataStudyRow]) -> str:
    sizes = sorted(next(iter(rows)).hit_rates)
    header = f"{'benchmark':14s} " + " ".join(
        f"{size // KIB:>4d}K" for size in sizes
    )
    lines = [header]
    for row in rows:
        cells = " ".join(f"{row.hit_rates[s]:5.2f}" for s in sizes)
        lines.append(f"{row.benchmark:14s} {cells}")
    return "\n".join(lines)
