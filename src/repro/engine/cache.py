"""Content-addressed on-disk cache for experiment design points.

A cache entry is addressed by ``(experiment name, parameter digest,
code-version salt)``:

* the *parameter digest* is a SHA-256 over a canonical encoding of the
  point's parameters (dataclasses, enums, numpy arrays and plain
  containers all canonicalise deterministically);
* the *code salt* hashes the source text of the modules an experiment
  declares as its implementation, so editing the study code invalidates
  its cached results without touching anyone else's.

Values are stored as pickles under ``<root>/<experiment>/<digest>.pkl``
with atomic replace, so concurrent writers (parallel sweeps, CI jobs
sharing a cache volume) never observe torn entries.  The root defaults
to ``.repro-cache/`` in the working directory and can be overridden
with the ``REPRO_CACHE_DIR`` environment variable.
"""

from __future__ import annotations

import contextlib
import hashlib
import importlib
import inspect
import os
import pickle
import tempfile
from dataclasses import dataclass, fields, is_dataclass
from enum import Enum
from functools import lru_cache
from pathlib import Path

import numpy as np

#: Environment override for the cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache root (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump to invalidate every cached result at once (format changes).
CACHE_FORMAT_VERSION = 1


class CacheMiss(KeyError):
    """Raised by :meth:`ResultCache.get` when a key is absent."""


def canonical(value):
    """Deterministic, hash-stable canonical form of a parameter value.

    Supports the types experiment parameters are built from: ``None``,
    ``bool``/``int``/``float``/``str``/``bytes``, enums, (frozen)
    dataclasses, numpy arrays and scalars, and lists/tuples/dicts of
    the above.  Anything else raises ``TypeError`` — silent fallback
    reprs would make cache keys unstable across processes.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return ("float", repr(value))
    if isinstance(value, bytes):
        return ("bytes", hashlib.sha256(value).hexdigest())
    if isinstance(value, Enum):
        return ("enum", type(value).__qualname__, value.name)
    if is_dataclass(value) and not isinstance(value, type):
        # Fields declared volatile (wall-clock timings and other
        # measured-not-computed values) are excluded, so content
        # digests stay deterministic run to run.
        return (
            "dataclass",
            type(value).__qualname__,
            tuple(
                (f.name, canonical(getattr(value, f.name)))
                for f in fields(value)
                if not f.metadata.get("volatile", False)
            ),
        )
    if isinstance(value, np.ndarray):
        blob = np.ascontiguousarray(value).tobytes()
        return (
            "ndarray",
            str(value.dtype),
            value.shape,
            hashlib.sha256(blob).hexdigest(),
        )
    if isinstance(value, np.generic):
        return canonical(value.item())
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(canonical(v) for v in value))
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: str(kv[0]))
        return ("map", tuple((str(k), canonical(v)) for k, v in items))
    raise TypeError(
        f"cannot canonicalise {type(value).__qualname__} for cache keying"
    )


def param_digest(experiment: str, params: dict, salt: str = "") -> str:
    """Content digest of one design point's parameters."""
    blob = repr((CACHE_FORMAT_VERSION, experiment, salt, canonical(params)))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def result_digest(value) -> str:
    """Content digest of a result *by value*.

    Pickle bytes vary with object-graph sharing (a result that crossed
    a process boundary pickles differently from an identical one built
    in-process), so byte-identity checks — ``repro sweep`` prints this
    digest for exactly that purpose — go through :func:`canonical`.
    """
    return hashlib.sha256(repr(canonical(value)).encode("utf-8")).hexdigest()[:32]


@lru_cache(maxsize=None)
def code_salt(module_names: tuple[str, ...]) -> str:
    """Hash of the source text of the named modules.

    Experiments declare the modules that implement them; editing any of
    those files changes the salt and invalidates the cached results.
    """
    import repro

    digest = hashlib.sha256()
    digest.update(repro.__version__.encode("utf-8"))
    for name in sorted(set(module_names)):
        module = importlib.import_module(name)
        digest.update(name.encode("utf-8"))
        try:
            digest.update(inspect.getsource(module).encode("utf-8"))
        except OSError:
            # Source unavailable (frozen/zipapp): fall back to the
            # package version captured above.
            continue
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class CacheKey:
    """Address of one cached design-point result."""

    experiment: str
    digest: str


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores


class ResultCache:
    """Pickle-backed content-addressed cache on the local filesystem."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        root = root or os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self.stats = CacheStats()

    def path_for(self, key: CacheKey) -> Path:
        return self.root / key.experiment / f"{key.digest}.pkl"

    def contains(self, key: CacheKey) -> bool:
        return self.path_for(key).is_file()

    def get(self, key: CacheKey):
        """Load a cached value; raises :class:`CacheMiss` if absent."""
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            raise CacheMiss(f"{key.experiment}/{key.digest}") from None
        try:
            value = pickle.loads(blob)
        except Exception:
            # A torn or stale entry is a miss, not an error; drop it so
            # the rerun repairs the cache.
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            raise CacheMiss(f"{key.experiment}/{key.digest} (corrupt)") from None
        self.stats.hits += 1
        return value

    def put(self, key: CacheKey, value) -> None:
        """Store a value atomically (write temp file, then replace)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self.stats.stores += 1

    def clear(self, experiment: str | None = None) -> int:
        """Delete cached entries; returns the number removed."""
        roots = [self.root / experiment] if experiment else [self.root]
        removed = 0
        for root in roots:
            if not root.is_dir():
                continue
            for path in root.rglob("*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
