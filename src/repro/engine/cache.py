"""Content-addressed on-disk cache for experiment design points.

A cache entry is addressed by ``(experiment name, parameter digest,
code-version salt)``:

* the *parameter digest* is a SHA-256 over a canonical encoding of the
  point's parameters (dataclasses, enums, numpy arrays and plain
  containers all canonicalise deterministically);
* the *code salt* hashes the source text of the modules an experiment
  declares as its implementation, so editing the study code invalidates
  its cached results without touching anyone else's.

Values are stored as pickles under ``<root>/<experiment>/<digest>.pkl``
with atomic replace, so concurrent writers (parallel sweeps, CI jobs
sharing a cache volume) never observe torn entries.  The root defaults
to ``.repro-cache/`` in the working directory and can be overridden
with the ``REPRO_CACHE_DIR`` environment variable.
"""

from __future__ import annotations

import contextlib
import hashlib
import importlib
import inspect
import os
import pickle
import tempfile
from dataclasses import dataclass, field, fields, is_dataclass
from enum import Enum
from functools import lru_cache
from pathlib import Path

import numpy as np

#: Environment override for the cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache root (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump to invalidate every cached result at once (format changes).
CACHE_FORMAT_VERSION = 1


class CacheMiss(KeyError):
    """Raised by :meth:`ResultCache.get` when a key is absent."""


def canonical(value):
    """Deterministic, hash-stable canonical form of a parameter value.

    Supports the types experiment parameters are built from: ``None``,
    ``bool``/``int``/``float``/``str``/``bytes``, enums, (frozen)
    dataclasses, numpy arrays and scalars, and lists/tuples/dicts of
    the above.  Anything else raises ``TypeError`` — silent fallback
    reprs would make cache keys unstable across processes.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return ("float", repr(value))
    if isinstance(value, bytes):
        return ("bytes", hashlib.sha256(value).hexdigest())
    if isinstance(value, Enum):
        return ("enum", type(value).__qualname__, value.name)
    if is_dataclass(value) and not isinstance(value, type):
        # Fields declared volatile (wall-clock timings and other
        # measured-not-computed values) are excluded, so content
        # digests stay deterministic run to run.
        return (
            "dataclass",
            type(value).__qualname__,
            tuple(
                (f.name, canonical(getattr(value, f.name)))
                for f in fields(value)
                if not f.metadata.get("volatile", False)
            ),
        )
    if isinstance(value, np.ndarray):
        blob = np.ascontiguousarray(value).tobytes()
        return (
            "ndarray",
            str(value.dtype),
            value.shape,
            hashlib.sha256(blob).hexdigest(),
        )
    if isinstance(value, np.generic):
        return canonical(value.item())
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(canonical(v) for v in value))
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: str(kv[0]))
        return ("map", tuple((str(k), canonical(v)) for k, v in items))
    raise TypeError(
        f"cannot canonicalise {type(value).__qualname__} for cache keying"
    )


def param_digest(experiment: str, params: dict, salt: str = "") -> str:
    """Content digest of one design point's parameters."""
    blob = repr((CACHE_FORMAT_VERSION, experiment, salt, canonical(params)))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def result_digest(value) -> str:
    """Content digest of a result *by value*.

    Pickle bytes vary with object-graph sharing (a result that crossed
    a process boundary pickles differently from an identical one built
    in-process), so byte-identity checks — ``repro sweep`` prints this
    digest for exactly that purpose — go through :func:`canonical`.
    """
    return hashlib.sha256(repr(canonical(value)).encode("utf-8")).hexdigest()[:32]


@lru_cache(maxsize=None)
def code_salt(module_names: tuple[str, ...]) -> str:
    """Hash of the source text of the named modules.

    Experiments declare the modules that implement them; editing any of
    those files changes the salt and invalidates the cached results.
    """
    import repro

    digest = hashlib.sha256()
    digest.update(repro.__version__.encode("utf-8"))
    for name in sorted(set(module_names)):
        module = importlib.import_module(name)
        digest.update(name.encode("utf-8"))
        try:
            digest.update(inspect.getsource(module).encode("utf-8"))
        except OSError:
            # Source unavailable (frozen/zipapp): fall back to the
            # package version captured above.
            continue
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class CacheKey:
    """Address of one cached design-point result."""

    experiment: str
    digest: str


@dataclass
class CacheStats:
    """Hit/miss/store/eviction counters for one cache instance.

    ``scans`` counts full directory walks (every entry stat-ed): the
    running size estimate keeps bounded ``put`` amortised-scan-free,
    and an evicting put performs exactly ONE walk — the regression
    tests pin both.

    ``per_namespace`` splits hits/misses/stores by cache namespace
    (``sim.tape``, ``profile.tensor``, design-point experiments, ...)
    as ``name -> [hits, misses, stores]``, so reports can show which
    artifact class a warm run actually reused.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    scans: int = 0
    per_namespace: dict = field(default_factory=dict, compare=False)

    def bump(self, namespace: str, slot: int) -> None:
        """Count one hit (0) / miss (1) / store (2) in a namespace."""
        row = self.per_namespace.setdefault(namespace, [0, 0, 0])
        row[slot] += 1

    def as_json(self) -> dict:
        """JSON-shaped counters (the advisor service's stats report)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "scans": self.scans,
            "per_namespace": {
                namespace: {"hits": row[0], "misses": row[1], "stores": row[2]}
                for namespace, row in sorted(self.per_namespace.items())
            },
        }

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.evictions += other.evictions
        self.scans += other.scans
        for namespace, row in other.per_namespace.items():
            mine = self.per_namespace.setdefault(namespace, [0, 0, 0])
            for slot, count in enumerate(row):
                mine[slot] += count


@dataclass
class CacheUsage:
    """On-disk footprint of a cache root at one point in time."""

    entries: int
    bytes: int
    evictions: int  # lifetime evictions recorded at this root
    per_experiment: dict[str, tuple[int, int]]  # name -> (entries, bytes)


#: Sidecar file recording lifetime evictions at a cache root (runtime
#: stats die with the process; ``repro cache`` reports across runs).
_EVICTION_LOG = ".evictions"


class ResultCache:
    """Pickle-backed content-addressed cache on the local filesystem.

    Args:
        root: Cache directory (default ``$REPRO_CACHE_DIR`` or
            ``.repro-cache/``).
        max_bytes: Size budget; when a store pushes the root above it,
            least-recently-used entries (hits refresh recency) are
            evicted until the cache fits again.  ``None`` = unbounded.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        max_bytes: int | None = None,
    ) -> None:
        root = root or os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        # Running on-disk size estimate so bounded puts do not rescan
        # the whole tree each time; None until the first bounded put.
        # Concurrent writers make it approximate — evict() rescans and
        # resynchronises whenever the estimate crosses the budget.
        self._approx_bytes: int | None = None

    def path_for(self, key: CacheKey) -> Path:
        return self.root / key.experiment / f"{key.digest}.pkl"

    def contains(self, key: CacheKey) -> bool:
        return self.path_for(key).is_file()

    def get(self, key: CacheKey):
        """Load a cached value; raises :class:`CacheMiss` if absent."""
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            self.stats.bump(key.experiment, 1)
            raise CacheMiss(f"{key.experiment}/{key.digest}") from None
        try:
            value = pickle.loads(blob)
        except Exception:
            # A torn or stale entry is a miss, not an error; drop it so
            # the rerun repairs the cache.
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            self.stats.bump(key.experiment, 1)
            raise CacheMiss(f"{key.experiment}/{key.digest} (corrupt)") from None
        self.stats.hits += 1
        self.stats.bump(key.experiment, 0)
        # Touch the entry so LRU eviction sees the hit as recent use.
        with contextlib.suppress(OSError):
            os.utime(path, None)
        return value

    def put(self, key: CacheKey, value) -> None:
        """Store a value atomically (write temp file, then replace)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self.stats.stores += 1
        self.stats.bump(key.experiment, 2)
        if self.max_bytes is not None:
            if self._approx_bytes is None:
                # First bounded put: one walk inside evict() both
                # measures the root (resynchronising the estimate) and
                # trims it if it is already over budget — never a
                # measure-then-evict double scan.
                self.evict(self.max_bytes, keep=path)
            else:
                with contextlib.suppress(OSError):
                    self._approx_bytes += path.stat().st_size
                if self._approx_bytes > self.max_bytes:
                    self.evict(self.max_bytes, keep=path)

    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        """Every entry file under the root."""
        if not self.root.is_dir():
            return []
        return list(self.root.rglob("*.pkl"))

    def usage(self) -> CacheUsage:
        """Entries and bytes on disk, per experiment and total."""
        self.stats.scans += 1
        per_experiment: dict[str, tuple[int, int]] = {}
        total_entries = 0
        total_bytes = 0
        for path in self.entries():
            try:
                size = path.stat().st_size
            except OSError:
                continue  # raced with an eviction or concurrent clear
            experiment = path.parent.name
            count, occupied = per_experiment.get(experiment, (0, 0))
            per_experiment[experiment] = (count + 1, occupied + size)
            total_entries += 1
            total_bytes += size
        return CacheUsage(
            entries=total_entries,
            bytes=total_bytes,
            evictions=self._read_eviction_log(),
            per_experiment=dict(sorted(per_experiment.items())),
        )

    def evict(self, max_bytes: int, keep: Path | None = None) -> int:
        """LRU-evict entries until the root fits ``max_bytes``.

        ``keep`` (the just-written entry) is never evicted, so a budget
        smaller than one entry degrades to keeping only the newest.
        Returns the number of entries removed; concurrent writers may
        race deletions, which is tolerated.

        Usage is computed ONCE per evict: the single walk below feeds
        both the size measurement and the LRU ordering, and its result
        resynchronises the running estimate bounded puts maintain.
        """
        self.stats.scans += 1
        aged = []
        total = 0
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            total += stat.st_size
            aged.append((stat.st_mtime, stat.st_size, path))
        evicted = 0
        aged.sort(key=lambda item: item[0])
        for _, size, path in aged:
            if total <= max_bytes:
                break
            if keep is not None and path == keep:
                continue
            path.unlink(missing_ok=True)
            total -= size
            evicted += 1
        self._approx_bytes = total  # resynchronise the running estimate
        if evicted:
            self.stats.evictions += evicted
            self._bump_eviction_log(evicted)
        return evicted

    def _eviction_log_path(self) -> Path:
        return self.root / _EVICTION_LOG

    def _read_eviction_log(self) -> int:
        # One increment per line (see _bump_eviction_log).
        try:
            text = self._eviction_log_path().read_text()
        except OSError:
            return 0
        total = 0
        for line in text.split():
            with contextlib.suppress(ValueError):
                total += int(line)
        return total

    def _bump_eviction_log(self, count: int) -> None:
        # O_APPEND write of one short line: concurrent evictors append
        # rather than read-modify-write, so increments are never lost
        # and readers never observe a truncated counter.
        with contextlib.suppress(OSError):
            with open(self._eviction_log_path(), "a") as handle:
                handle.write(f"{count}\n")

    def clear(self, experiment: str | None = None) -> int:
        """Delete cached entries; returns the number removed."""
        roots = [self.root / experiment] if experiment else [self.root]
        removed = 0
        for root in roots:
            if not root.is_dir():
                continue
            for path in root.rglob("*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
