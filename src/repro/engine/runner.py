"""The parallel, cache-aware experiment runner.

:class:`ExperimentRunner` executes a registered experiment: expand the
parameter space into design points, satisfy what it can from the
:class:`~repro.engine.cache.ResultCache`, fan the misses out across a
``ProcessPoolExecutor`` (or run them inline for ``workers <= 1``), and
reduce with the experiment's aggregator.

Determinism: every synthetic substrate in this repository draws from
named :mod:`repro.rng` streams, so a design point's result depends
only on its parameters — never on scheduling.  As defence in depth the
worker wrapper additionally seeds numpy's *global* generator from the
point's content digest (via :func:`repro.rng.stream_seed`) before the
point function runs, so even code that reaches for ``np.random``
module functions is deterministic per point rather than per process.
Results are collected in expansion order, making ``--workers N``
output byte-identical to serial runs.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro import rng as rng_lib
from repro.engine.cache import CacheKey, CacheMiss, ResultCache, code_salt, param_digest
from repro.engine.registry import Experiment, get_experiment

_UNSET = object()


def run_point_seeded(
    run_point: Callable[[dict], Any], point: dict, seed: int
) -> Any:
    """Execute one design point with deterministic global-RNG state.

    Module-level so ``ProcessPoolExecutor`` can pickle it by reference
    together with the experiment's (also module-level) point function.
    The caller's global-RNG state is restored afterwards so inline
    (serial) execution does not clobber library users' ``np.random``
    streams as a side effect.
    """
    state = np.random.get_state()
    try:
        np.random.seed(seed & 0xFFFF_FFFF)
        return run_point(point)
    finally:
        np.random.set_state(state)


@dataclass
class RunReport:
    """What one :meth:`ExperimentRunner.run_report` call did."""

    experiment: str
    points: int
    executed: int
    cache_hits: int
    workers: int
    seconds: float

    @property
    def from_cache(self) -> bool:
        return self.executed == 0 and self.points > 0

    def summary(self) -> str:
        source = "cache" if self.from_cache else f"{self.workers} worker(s)"
        return (
            f"[{self.experiment}] {self.points} point(s): "
            f"{self.cache_hits} cached, {self.executed} executed "
            f"({source}, {self.seconds:.2f}s)"
        )


class ExperimentRunner:
    """Run registered experiments with caching and process fan-out.

    Args:
        workers: Worker processes for design points (``<= 1`` = inline).
        cache: A :class:`ResultCache`, or ``None`` to disable caching
            (the default — library callers opt in; the CLI opts in for
            every ``repro run`` / ``repro sweep``).
        seed: Base seed for the per-point global-RNG defence seeding.
        offline: If true, never execute points — raise
            :class:`~repro.engine.cache.CacheMiss` listing what is
            absent instead (``repro report --from-cache``).
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        seed: int = rng_lib.DEFAULT_SEED,
        offline: bool = False,
    ) -> None:
        self.workers = max(1, int(workers))
        self.cache = cache
        self.seed = seed
        self.offline = offline
        self.last_report: RunReport | None = None

    # ------------------------------------------------------------------
    def run(self, name: str, params: dict | None = None) -> Any:
        """Run an experiment end to end and return its aggregate."""
        value, _ = self.run_report(name, params)
        return value

    def run_report(
        self, name: str, params: dict | None = None
    ) -> tuple[Any, RunReport]:
        """Like :meth:`run`, also returning a :class:`RunReport`."""
        experiment = get_experiment(name)
        resolved = experiment.resolve_params(params)
        points = experiment.expand(resolved)
        started = time.perf_counter()
        results, hits, executed = self.map_points(experiment, points)
        value = experiment.aggregate(results, resolved)
        report = RunReport(
            experiment=experiment.name,
            points=len(points),
            executed=executed,
            cache_hits=hits,
            workers=self.workers,
            seconds=time.perf_counter() - started,
        )
        self.last_report = report
        return value, report

    # ------------------------------------------------------------------
    def map_points(
        self, experiment: Experiment, points: list[dict]
    ) -> tuple[list[Any], int, int]:
        """Resolve every point (cache or execution), in point order.

        Returns ``(results, cache_hits, executed)``.
        """
        salt = code_salt(experiment.salt_modules)
        # The runner seed is part of the address: a point executed
        # under one --seed must not be served for another (the seed
        # feeds the per-point global-RNG derivation below).
        digests = [
            param_digest(
                experiment.name,
                {"params": point, "runner_seed": self.seed},
                salt,
            )
            for point in points
        ]
        keys = [CacheKey(experiment.name, digest) for digest in digests]
        results: list[Any] = [_UNSET] * len(points)

        pending: list[int] = []
        hits = 0
        for index, key in enumerate(keys):
            if self.cache is not None:
                try:
                    results[index] = self.cache.get(key)
                    hits += 1
                    continue
                except CacheMiss:
                    pass
            pending.append(index)

        if pending and self.offline:
            missing = ", ".join(digests[i] for i in pending[:4])
            raise CacheMiss(
                f"{experiment.name}: {len(pending)} of {len(points)} design "
                f"point(s) not cached (e.g. {missing}); rerun without "
                "--from-cache to populate the cache"
            )

        seeds = {
            index: rng_lib.stream_seed(
                f"engine/{experiment.name}/{digests[index]}", self.seed
            )
            for index in pending
        }
        # Results are stored as each point finishes (not after the whole
        # batch), so an interrupted sweep keeps its completed work and
        # the rerun is incremental.
        def finish(index: int, value: Any) -> None:
            results[index] = value
            if self.cache is not None:
                self.cache.put(keys[index], value)

        if len(pending) > 1 and self.workers > 1:
            self._execute_parallel(experiment, points, pending, seeds, finish)
        else:
            for index in pending:
                finish(
                    index,
                    run_point_seeded(
                        experiment.run_point, points[index], seeds[index]
                    ),
                )
        return results, hits, len(pending)

    def _execute_parallel(
        self,
        experiment: Experiment,
        points: list[dict],
        pending: list[int],
        seeds: dict[int, int],
        finish: Callable[[int, Any], None],
    ) -> None:
        max_workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(
                    run_point_seeded,
                    experiment.run_point,
                    points[index],
                    seeds[index],
                ): index
                for index in pending
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    finish(futures[future], future.result())
