"""The parallel, cache-aware experiment runner.

:class:`ExperimentRunner` executes a registered experiment: expand the
parameter space into design points, satisfy what it can from the
:class:`~repro.engine.cache.ResultCache`, fan the misses out across a
``ProcessPoolExecutor`` (or run them inline for ``workers <= 1``), and
reduce with the experiment's aggregator.

Determinism: every synthetic substrate in this repository draws from
named :mod:`repro.rng` streams, so a design point's result depends
only on its parameters — never on scheduling.  As defence in depth the
worker wrapper additionally seeds numpy's *global* generator from the
point's content digest (via :func:`repro.rng.stream_seed`) before the
point function runs, so even code that reaches for ``np.random``
module functions is deterministic per point rather than per process.
Results are collected in expansion order, making ``--workers N``
output byte-identical to serial runs.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro import rng as rng_lib
from repro.engine.cache import CacheKey, CacheMiss, ResultCache, code_salt, param_digest
from repro.engine.registry import Experiment, get_experiment

_UNSET = object()


def point_digests(
    experiment: Experiment, points: list[dict], seed: int
) -> list[str]:
    """Content digests addressing each design point's cached result.

    The runner seed is part of the address: a point executed under one
    ``--seed`` must not be served for another (the seed feeds the
    per-point global-RNG derivation).  The sweep planner keys its
    point nodes with exactly these digests, so planned and unplanned
    execution read and write the same cache entries.
    """
    salt = code_salt(experiment.salt_modules)
    return [
        param_digest(
            experiment.name,
            {"params": point, "runner_seed": seed},
            salt,
        )
        for point in points
    ]


def run_point_seeded(
    run_point: Callable[[dict], Any],
    point: dict,
    seed: int,
    cache_root: str | None = None,
    cache_max_bytes: int | None = None,
    preload: dict | None = None,
) -> Any:
    """Execute one design point with deterministic global-RNG state.

    Module-level so ``ProcessPoolExecutor`` can pickle it by reference
    together with the experiment's (also module-level) point function.
    The caller's global-RNG state is restored afterwards so inline
    (serial) execution does not clobber library users' ``np.random``
    streams as a side effect.

    When ``cache_root`` is given, the profiler's tensor cache and the
    relaxed engine's tape cache are pointed at the runner's result
    cache for the duration of the point: the compact columnar profiles
    the point computes persist on disk (the ``profile.tensor``
    namespace) alongside the per-entry states the simulators consume
    (``profile.entries``) and the relaxed engine's recorded event
    tapes (``sim.tape``), shared across design points, experiments,
    worker processes and reruns — the regenerated snapshots themselves
    are never cached.

    ``preload`` is the planner's cacheless transport: a mapping of
    ``{"tensors": {memo key: tensor}, "entry_states": {...},
    "tapes": {tape digest: envelope}}`` seeded into the respective
    per-process memos before the point runs (see
    :func:`repro.core.profiler.seed_memo` and
    :func:`repro.gpusim.vector_sim.seed_tape_preload`), so stage-0
    artifacts built elsewhere need not be rebuilt here.
    """
    from repro.core.profiler import seed_memo, set_tensor_cache
    from repro.gpusim.vector_sim import seed_tape_preload, set_tape_cache

    previous_cache = None
    previous_tape_cache = None
    if cache_root is not None:
        shared_cache = ResultCache(cache_root, max_bytes=cache_max_bytes)
        previous_cache = set_tensor_cache(shared_cache)
        previous_tape_cache = set_tape_cache(shared_cache)
    if preload:
        seed_memo(preload.get("tensors"), preload.get("entry_states"))
        seed_tape_preload(preload.get("tapes"))
    state = np.random.get_state()
    try:
        np.random.seed(seed & 0xFFFF_FFFF)
        return run_point(point)
    finally:
        np.random.set_state(state)
        if cache_root is not None:
            set_tensor_cache(previous_cache)
            set_tape_cache(previous_tape_cache)


@dataclass
class RunReport:
    """What one :meth:`ExperimentRunner.run_report` call did."""

    experiment: str
    points: int
    executed: int
    cache_hits: int
    workers: int
    seconds: float

    @property
    def from_cache(self) -> bool:
        return self.executed == 0 and self.points > 0

    def summary(self) -> str:
        source = "cache" if self.from_cache else f"{self.workers} worker(s)"
        return (
            f"[{self.experiment}] {self.points} point(s): "
            f"{self.cache_hits} cached, {self.executed} executed "
            f"({source}, {self.seconds:.2f}s)"
        )


class ExperimentRunner:
    """Run registered experiments with caching and process fan-out.

    Args:
        workers: Worker processes for design points (``<= 1`` = inline).
        cache: A :class:`ResultCache`, or ``None`` to disable caching
            (the default — library callers opt in; the CLI opts in for
            every ``repro run`` / ``repro sweep``).
        seed: Base seed for the per-point global-RNG defence seeding.
        offline: If true, never execute points — raise
            :class:`~repro.engine.cache.CacheMiss` listing what is
            absent instead (``repro report --from-cache``).
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        seed: int = rng_lib.DEFAULT_SEED,
        offline: bool = False,
    ) -> None:
        self.workers = max(1, int(workers))
        self.cache = cache
        self.seed = seed
        self.offline = offline
        self.last_report: RunReport | None = None

    # ------------------------------------------------------------------
    def run(self, name: str, params: dict | None = None) -> Any:
        """Run an experiment end to end and return its aggregate."""
        value, _ = self.run_report(name, params)
        return value

    def run_report(
        self, name: str, params: dict | None = None
    ) -> tuple[Any, RunReport]:
        """Like :meth:`run`, also returning a :class:`RunReport`."""
        experiment = get_experiment(name)
        resolved = experiment.resolve_params(params)
        points = experiment.expand(resolved)
        started = time.perf_counter()
        results, hits, executed = self.map_points(experiment, points)
        value = experiment.aggregate(results, resolved)
        report = RunReport(
            experiment=experiment.name,
            points=len(points),
            executed=executed,
            cache_hits=hits,
            workers=self.workers,
            seconds=time.perf_counter() - started,
        )
        self.last_report = report
        return value, report

    def run_sweep(self, requests):
        """Run several experiments as one optimized, planned sweep.

        A thin wrapper over :func:`repro.engine.planner.plan` /
        :func:`repro.engine.planner.execute_plan`: shared dependency
        nodes are deduped across every point of every request, profile
        builds merge into bulk compression calls, and all points run
        on one process pool — bit-identical to calling :meth:`run` per
        request, but without rebuilding shared tensors per sweep.

        Args:
            requests: Iterable of experiment names or
                ``(name, params)`` pairs.

        Returns:
            A :class:`repro.engine.planner.SweepResult` (``values``,
            ``reports``, ``execution``, ``plan``).
        """
        from repro.engine.planner import execute_plan, plan

        return execute_plan(plan(requests, self), self)

    # ------------------------------------------------------------------
    def map_points(
        self, experiment: Experiment, points: list[dict]
    ) -> tuple[list[Any], int, int]:
        """Resolve every point (cache or execution), in point order.

        Returns ``(results, cache_hits, executed)``.
        """
        digests = point_digests(experiment, points, self.seed)
        keys = [CacheKey(experiment.name, digest) for digest in digests]
        results: list[Any] = [_UNSET] * len(points)

        pending: list[int] = []
        hits = 0
        for index, key in enumerate(keys):
            if self.cache is not None:
                try:
                    results[index] = self.cache.get(key)
                    hits += 1
                    continue
                except CacheMiss:
                    pass
            pending.append(index)

        if pending and self.offline:
            missing = ", ".join(digests[i] for i in pending[:4])
            raise CacheMiss(
                f"{experiment.name}: {len(pending)} of {len(points)} design "
                f"point(s) not cached (e.g. {missing}); rerun without "
                "--from-cache to populate the cache"
            )

        seeds = {
            index: rng_lib.stream_seed(
                f"engine/{experiment.name}/{digests[index]}", self.seed
            )
            for index in pending
        }
        # Results are stored as each point finishes (not after the whole
        # batch), so an interrupted sweep keeps its completed work and
        # the rerun is incremental.
        def finish(index: int, value: Any) -> None:
            results[index] = value
            if self.cache is not None:
                self.cache.put(keys[index], value)

        if len(pending) > 1 and self.workers > 1:
            self._execute_parallel(experiment, points, pending, seeds, finish)
        else:
            for index in pending:
                finish(
                    index,
                    run_point_seeded(
                        experiment.run_point,
                        points[index],
                        seeds[index],
                        self._cache_root(),
                        self._cache_max_bytes(),
                    ),
                )
        return results, hits, len(pending)

    def _cache_root(self) -> str | None:
        """Cache root handed to point executions for tensor caching."""
        return None if self.cache is None else str(self.cache.root)

    def _cache_max_bytes(self) -> int | None:
        return None if self.cache is None else self.cache.max_bytes

    def _execute_parallel(
        self,
        experiment: Experiment,
        points: list[dict],
        pending: list[int],
        seeds: dict[int, int],
        finish: Callable[[int, Any], None],
    ) -> None:
        max_workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(
                    run_point_seeded,
                    experiment.run_point,
                    points[index],
                    seeds[index],
                    self._cache_root(),
                    self._cache_max_bytes(),
                ): index
                for index in pending
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    finish(futures[future], future.result())


# ---------------------------------------------------------------------------
# Construction helpers.
# ---------------------------------------------------------------------------
def default_runner() -> ExperimentRunner:
    """Serial, cache-free runner — the library-call default."""
    return ExperimentRunner()


def add_runner_options(parser) -> None:
    """Add the standard engine flags to an ``argparse`` parser.

    Shared by the ``repro`` CLI and the ``examples/`` scripts so every
    entry point drives the same runner (and the same shared cache).
    """
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for design points (default: serial)",
    )
    parser.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="do not read or write the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache root (default: $REPRO_CACHE_DIR or .repro-cache/)",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=parse_size,
        default=None,
        metavar="SIZE",
        help="LRU-evict the cache above this size (e.g. 256M, 2G)",
    )


def runner_from_args(
    args, seed: int | None = None, offline: bool = False
) -> ExperimentRunner:
    """Build a runner from :func:`add_runner_options` flags."""
    cache = None
    if getattr(args, "cache", True):
        cache = ResultCache(
            getattr(args, "cache_dir", None),
            max_bytes=getattr(args, "cache_max_bytes", None),
        )
    return ExperimentRunner(
        workers=getattr(args, "workers", 1),
        cache=cache,
        seed=rng_lib.DEFAULT_SEED if seed is None else seed,
        offline=offline,
    )


def example_runner(argv=None, description: str | None = None) -> ExperimentRunner:
    """Parse engine flags and build a runner (``examples/`` entry point).

    Examples run their studies through this runner, so they share the
    experiment cache (and the tensor cache) with ``repro run`` /
    ``repro sweep`` invocations.
    """
    import argparse

    parser = argparse.ArgumentParser(
        description=description,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_runner_options(parser)
    return runner_from_args(parser.parse_args(argv))


def parse_size(text: str) -> int:
    """Parse a byte size with an optional K/M/G/T suffix (``"256M"``)."""
    cleaned = str(text).strip().upper().removesuffix("IB").removesuffix("B")
    scale = 1
    if cleaned and cleaned[-1] in "KMGT":
        scale = 1024 ** (1 + "KMGT".index(cleaned[-1]))
        cleaned = cleaned[:-1]
    try:
        return int(float(cleaned) * scale)
    except ValueError:
        raise ValueError(f"cannot parse size {text!r}") from None
