"""Parallel experiment engine with content-addressed result caching.

The engine turns each analysis study into a named *experiment*: a
declared parameter space that expands into independent design points,
a pickle-safe per-point function, and an aggregator that assembles the
study's result object.  :class:`~repro.engine.runner.ExperimentRunner`
fans the points out across a ``ProcessPoolExecutor`` and memoises each
point's result in a content-addressed on-disk cache keyed by
``(experiment, parameter hash, code-version salt)``, so re-runs and
partial sweeps are incremental.

Design points are embarrassingly parallel and every synthetic
substrate draws from named :mod:`repro.rng` streams, so results are
bit-identical regardless of worker count or completion order.
"""

from repro.engine.cache import (
    CacheMiss,
    CacheUsage,
    ResultCache,
    code_salt,
    param_digest,
    result_digest,
)
from repro.engine.planner import (
    EntryStateSpec,
    ExecutionReport,
    Plan,
    PlanNode,
    PlanStats,
    ProfileTensorSpec,
    SnapshotsSpec,
    SweepResult,
    TraceSpec,
    execute_plan,
    plan,
)
from repro.engine.registry import (
    Experiment,
    experiment_names,
    get_experiment,
    register,
)
from repro.engine.runner import (
    ExperimentRunner,
    RunReport,
    add_runner_options,
    default_runner,
    example_runner,
    parse_size,
    runner_from_args,
)

__all__ = [
    "CacheMiss",
    "CacheUsage",
    "EntryStateSpec",
    "ExecutionReport",
    "Experiment",
    "ExperimentRunner",
    "Plan",
    "PlanNode",
    "PlanStats",
    "ProfileTensorSpec",
    "ResultCache",
    "RunReport",
    "SnapshotsSpec",
    "SweepResult",
    "TraceSpec",
    "add_runner_options",
    "code_salt",
    "default_runner",
    "example_runner",
    "execute_plan",
    "experiment_names",
    "get_experiment",
    "param_digest",
    "parse_size",
    "plan",
    "register",
    "result_digest",
    "runner_from_args",
]
