"""The experiment registry.

An :class:`Experiment` declares everything the runner needs to execute
a study as a cached, parallel sweep:

* ``defaults`` — the study's full parameter dictionary (every value
  concrete, so parameter hashes are stable);
* ``expand`` — parameters → ordered list of design-point dictionaries;
* ``run_point`` — a **module-level, pickle-safe** callable executing
  one design point (workers import it by reference);
* ``aggregate`` — point results (in expansion order) + parameters →
  the study's result object;
* ``salt_modules`` — the modules whose source text forms the cache's
  code-version salt;
* ``plan_point`` (optional) — design point → the typed dependency
  specs (:mod:`repro.engine.planner`) the point shares with its
  neighbours, so the sweep planner can dedupe and merge them.

The built-in experiments (one per analysis study) live in
:mod:`repro.engine.experiments` and register on first lookup.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable

_REGISTRY: dict[str, "Experiment"] = {}

#: Module defining the built-in experiments, imported lazily so the
#: registry itself stays dependency-free.
_BUILTINS_MODULE = "repro.engine.experiments"


@dataclass(frozen=True)
class Experiment:
    """One registered study: parameter space, point function, reducer."""

    name: str
    title: str
    defaults: Callable[[], dict[str, Any]]
    expand: Callable[[dict[str, Any]], list[dict[str, Any]]]
    run_point: Callable[[dict[str, Any]], Any]
    aggregate: Callable[[list[Any], dict[str, Any]], Any]
    salt_modules: tuple[str, ...] = field(default_factory=tuple)
    #: Optional dependency-graph declaration: point -> list of typed
    #: planner specs (ProfileTensorSpec & co.).  ``None`` = the point
    #: is opaque; the planner runs it unoptimized.
    plan_point: Callable[[dict[str, Any]], list] | None = None

    def resolve_params(self, overrides: dict[str, Any] | None) -> dict[str, Any]:
        """Merge caller overrides into the declared defaults.

        ``None`` overrides are treated as "use the default", matching
        the study functions' keyword conventions; unknown keys raise so
        typos never silently miss the cache.
        """
        params = self.defaults()
        for key, value in (overrides or {}).items():
            if key not in params:
                raise KeyError(
                    f"experiment {self.name!r} has no parameter {key!r} "
                    f"(expected one of {sorted(params)})"
                )
            if value is not None:
                params[key] = value
        return params


def register(experiment: Experiment) -> Experiment:
    """Add an experiment to the registry (last registration wins)."""
    _REGISTRY[experiment.name] = experiment
    return experiment


def _ensure_builtins() -> None:
    importlib.import_module(_BUILTINS_MODULE)


def get_experiment(name: str) -> Experiment:
    """Look up an experiment by name, loading built-ins on demand."""
    if name not in _REGISTRY:
        _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: {experiment_names()}"
        ) from None


def experiment_names() -> list[str]:
    """Sorted names of every registered experiment."""
    _ensure_builtins()
    return sorted(_REGISTRY)
