"""Built-in experiments: one per analysis study.

Each study module owns its pickle-safe per-point function (named
``*_point``); this module declares the parameter spaces and reducers
and registers everything.  Study modules are imported lazily inside
the callables so importing the engine stays cheap and cycle-free.

Registered experiments::

    compression.fig3   free-size BPC ratios per benchmark (Fig. 3)
    compression.fig7   naive / per-allocation / final designs (Fig. 7)
    compression.fig8   temporal stability of buddy traffic (Fig. 8)
    compression.fig9   Buddy Threshold sweep (Fig. 9)
    metadata.fig5b     metadata-cache hit rate vs capacity (Fig. 5b)
    correlation.fig10  fast-vs-reference simulator correlation (Fig. 10)
    perf.fig11         speedup vs ideal GPU across link speeds (Fig. 11)
    um.fig12           UM / pinned oversubscription slowdowns (Fig. 12)
    dl.ratios          per-network buddy compression ratios
    dl.fig13           the four DL case-study panels (Fig. 13)
    serve.advice       the advisor service's answer, one-shot form

The two timing studies carry an ``engine`` parameter
("vectorized" / "relaxed" / "legacy", see docs/engines.md) and a
``verify`` fraction (the relaxed engine's sampled oracle
cross-check); both are ordinary cache-key axes, so results produced
by different simulator cores are addressed separately and never mix.
"""

from __future__ import annotations

from repro.engine.registry import Experiment, register

#: Modules every study's results depend on (workload substrate).
_SUBSTRATE_MODULES = (
    "repro.rng",
    "repro.units",
    "repro.workloads.calibration",
    "repro.workloads.catalog",
    "repro.workloads.snapshots",
    "repro.workloads.valuemodels",
)

#: Additional modules behind the Buddy static pipeline (the BPC codec
#: with its encoder substrate, and the controller with its allocator
#: and entry layout).
_PIPELINE_MODULES = _SUBSTRATE_MODULES + (
    "repro.compression.base",
    "repro.compression.bitio",
    "repro.compression.bpc",
    "repro.compression.sectors",
    "repro.core.allocator",
    "repro.core.controller",
    "repro.core.entry",
    "repro.core.histogram",
    "repro.core.profile_tensor",
    "repro.core.profiler",
    "repro.core.targets",
)

#: The comparison codecs the free-size compression study sweeps
#: (Fig. 3's codec shoot-out); only compression.* experiments reach
#: them.
_CODEC_COMPARISON_MODULES = (
    "repro.compression.bdi",
    "repro.compression.cpack",
    "repro.compression.fpc",
    "repro.compression.zeroblock",
)

#: The DL-training analytics stack behind dl.ratios / dl.fig13.
_DLMODEL_MODULES = (
    "repro.dlmodel.casestudy",
    "repro.dlmodel.convergence",
    "repro.dlmodel.layers",
    "repro.dlmodel.memory",
    "repro.dlmodel.networks",
    "repro.dlmodel.throughput",
)

#: Modules behind the timing simulators.  Trace generation and the
#: compression states consume the cached per-entry tensors, so the
#: profiler layer is part of every simulator result's code salt, and
#: both engines (the per-access oracle and the vectorized core, plus
#: the memory-system models they share) invalidate cached results.
#: The event core's Python module is salted; the compiled build is
#: deliberately *not* a cache axis — it is bit-identical to the
#: fallback by contract, and its C twin changes in lockstep with the
#: salted Python source it transcribes.
_SIMULATOR_MODULES = _SUBSTRATE_MODULES + (
    "repro.compression.base",
    "repro.compression.bitio",
    "repro.compression.bpc",
    "repro.compression.sectors",
    "repro.core.entry",
    "repro.core.histogram",
    "repro.core.metadata_cache",
    "repro.core.profile_tensor",
    "repro.core.profiler",
    "repro.gpusim._event_core",
    "repro.gpusim.engine_spec",
    "repro.gpusim.cache",
    "repro.gpusim.compression",
    "repro.gpusim.config",
    "repro.gpusim.dram",
    "repro.gpusim.interconnect",
    "repro.gpusim.simulator",
    "repro.gpusim.trace",
    "repro.gpusim.vector_cache",
    "repro.gpusim.vector_sim",
    "repro.workloads.traces",
)


def _benchmark_names() -> tuple[str, ...]:
    from repro.workloads.catalog import ALL_BENCHMARKS

    return tuple(b.name for b in ALL_BENCHMARKS)


def _per_benchmark_expand(params: dict) -> list[dict]:
    """One point per benchmark, carrying the remaining parameters."""
    shared = {k: v for k, v in params.items() if k != "benchmarks"}
    return [
        {"benchmark": name, **shared} for name in params["benchmarks"]
    ]


def _keyed_by_benchmark(results: list, params: dict) -> dict:
    return dict(zip(params["benchmarks"], results))


# ---------------------------------------------------------------------------
# compression.* (Figs. 3, 7, 8, 9)
# ---------------------------------------------------------------------------
def _fig3_defaults() -> dict:
    from repro.workloads.snapshots import SnapshotConfig

    return {"benchmarks": _benchmark_names(), "config": SnapshotConfig()}


def _fig3_point(point: dict):
    from repro.analysis.compression_study import fig3_row

    return fig3_row(point["benchmark"], point["config"])


def _fig3_aggregate(results: list, params: dict) -> list:
    return list(results)


def _fig3_plan(point: dict) -> list:
    from repro.analysis.compression_study import fig3_plan

    return fig3_plan(point)


register(
    Experiment(
        name="compression.fig3",
        title="Fig. 3: free-size BPC compression ratios",
        defaults=_fig3_defaults,
        expand=_per_benchmark_expand,
        run_point=_fig3_point,
        aggregate=_fig3_aggregate,
        salt_modules=_PIPELINE_MODULES
        + _CODEC_COMPARISON_MODULES
        + ("repro.analysis.compression_study",),
        plan_point=_fig3_plan,
    )
)


def _fig7_defaults() -> dict:
    from repro.core.targets import FINAL, NAIVE, PER_ALLOCATION
    from repro.workloads.snapshots import SnapshotConfig

    return {
        "benchmarks": _benchmark_names(),
        "config": SnapshotConfig(),
        "designs": (NAIVE, PER_ALLOCATION, FINAL),
    }


def _fig7_point(point: dict):
    from repro.analysis.compression_study import fig7_benchmark

    return fig7_benchmark(point["benchmark"], point["config"], point["designs"])


def _fig7_aggregate(results: list, params: dict):
    from repro.analysis.compression_study import DesignPointStudy

    return DesignPointStudy(_keyed_by_benchmark(results, params))


def _fig7_plan(point: dict) -> list:
    from repro.analysis.compression_study import buddy_pipeline_plan

    return buddy_pipeline_plan(point)


register(
    Experiment(
        name="compression.fig7",
        title="Fig. 7: design points (naive / per-allocation / final)",
        defaults=_fig7_defaults,
        expand=_per_benchmark_expand,
        run_point=_fig7_point,
        aggregate=_fig7_aggregate,
        salt_modules=_PIPELINE_MODULES
        + _CODEC_COMPARISON_MODULES
        + ("repro.analysis.compression_study",),
        plan_point=_fig7_plan,
    )
)


def _fig8_defaults() -> dict:
    from repro.workloads.snapshots import SnapshotConfig

    return {
        "benchmarks": ("ResNet50", "SqueezeNet"),
        "config": SnapshotConfig(),
    }


def _fig8_point(point: dict):
    from repro.analysis.compression_study import fig8_benchmark

    return fig8_benchmark(point["benchmark"], point["config"])


def _fig8_plan(point: dict) -> list:
    from repro.analysis.compression_study import buddy_pipeline_plan

    return buddy_pipeline_plan(point)


register(
    Experiment(
        name="compression.fig8",
        title="Fig. 8: temporal stability of buddy traffic",
        defaults=_fig8_defaults,
        expand=_per_benchmark_expand,
        run_point=_fig8_point,
        aggregate=_keyed_by_benchmark,
        salt_modules=_PIPELINE_MODULES
        + _CODEC_COMPARISON_MODULES
        + ("repro.analysis.compression_study",),
        plan_point=_fig8_plan,
    )
)


def _fig9_defaults() -> dict:
    from repro.workloads.snapshots import SnapshotConfig

    return {
        "benchmarks": _benchmark_names(),
        "thresholds": (0.10, 0.20, 0.30, 0.40),
        "config": SnapshotConfig(),
    }


def _fig9_point(point: dict):
    from repro.analysis.compression_study import fig9_benchmark

    return fig9_benchmark(
        point["benchmark"], point["thresholds"], point["config"]
    )


def _fig9_plan(point: dict) -> list:
    from repro.analysis.compression_study import buddy_pipeline_plan

    return buddy_pipeline_plan(point)


register(
    Experiment(
        name="compression.fig9",
        title="Fig. 9: Buddy Threshold sweep",
        defaults=_fig9_defaults,
        expand=_per_benchmark_expand,
        run_point=_fig9_point,
        aggregate=_keyed_by_benchmark,
        salt_modules=_PIPELINE_MODULES
        + _CODEC_COMPARISON_MODULES
        + ("repro.analysis.compression_study",),
        plan_point=_fig9_plan,
    )
)


# ---------------------------------------------------------------------------
# metadata.fig5b
# ---------------------------------------------------------------------------
def _fig5b_defaults() -> dict:
    from repro.analysis.metadata_study import DEFAULT_SIZES
    from repro.workloads.snapshots import SnapshotConfig
    from repro.workloads.traces import TraceConfig

    return {
        "benchmarks": _benchmark_names(),
        "sizes": DEFAULT_SIZES,
        "trace_config": TraceConfig(
            snapshot_config=SnapshotConfig(scale=1.0 / 2048)
        ),
    }


def _fig5b_point(point: dict):
    from repro.analysis.metadata_study import metadata_row

    return metadata_row(point["benchmark"], point["sizes"], point["trace_config"])


def _fig5b_aggregate(results: list, params: dict) -> list:
    return list(results)


def _fig5b_plan(point: dict) -> list:
    from repro.analysis.metadata_study import fig5b_plan

    return fig5b_plan(point)


register(
    Experiment(
        name="metadata.fig5b",
        title="Fig. 5b: metadata-cache hit rate vs capacity",
        defaults=_fig5b_defaults,
        expand=_per_benchmark_expand,
        run_point=_fig5b_point,
        aggregate=_fig5b_aggregate,
        salt_modules=_SUBSTRATE_MODULES
        + (
            "repro.analysis.metadata_study",
            "repro.compression.base",
            "repro.compression.bitio",
            "repro.compression.bpc",
            "repro.compression.sectors",
            "repro.core.entry",
            "repro.core.histogram",
            "repro.core.metadata_cache",
            "repro.core.profile_tensor",
            "repro.core.profiler",
            "repro.gpusim.trace",
            "repro.workloads.traces",
        ),
        plan_point=_fig5b_plan,
    )
)


# ---------------------------------------------------------------------------
# correlation.fig10
# ---------------------------------------------------------------------------
def _fig10_defaults() -> dict:
    from repro.analysis.correlation_study import DEFAULT_BENCHMARKS

    return {
        "benchmarks": DEFAULT_BENCHMARKS,
        "instruction_scales": (6, 18),
        "sm_count": 4,
        "warps_per_sm": 6,
        "engine": "vectorized",
        "verify": 0.0,
    }


def _fig10_expand(params: dict) -> list[dict]:
    return [
        {
            "benchmark": name,
            "memory_instructions": scale,
            "sm_count": params["sm_count"],
            "warps_per_sm": params["warps_per_sm"],
            "engine": params["engine"],
            "verify": params["verify"],
        }
        for name in params["benchmarks"]
        for scale in params["instruction_scales"]
    ]


def _fig10_point(point: dict):
    from repro.analysis.correlation_study import correlation_point

    return correlation_point(
        point["benchmark"],
        point["memory_instructions"],
        point["sm_count"],
        point["warps_per_sm"],
        point["engine"],
        point["verify"],
    )


def _fig10_aggregate(results: list, params: dict):
    from repro.analysis.correlation_study import CorrelationResult

    return CorrelationResult(list(results))


def _fig10_plan(point: dict) -> list:
    from repro.analysis.correlation_study import fig10_plan

    return fig10_plan(point)


register(
    Experiment(
        name="correlation.fig10",
        title="Fig. 10: fast-vs-reference simulator correlation",
        defaults=_fig10_defaults,
        expand=_fig10_expand,
        run_point=_fig10_point,
        aggregate=_fig10_aggregate,
        salt_modules=_SIMULATOR_MODULES
        + (
            "repro.analysis.correlation_study",
            "repro.gpusim.reference",
        ),
        plan_point=_fig10_plan,
    )
)


# ---------------------------------------------------------------------------
# perf.fig11
# ---------------------------------------------------------------------------
def _fig11_defaults() -> dict:
    from repro.analysis.perf_study import LINK_SWEEP
    from repro.gpusim.config import scaled_config
    from repro.workloads.snapshots import SnapshotConfig
    from repro.workloads.traces import TraceConfig

    config = scaled_config()
    return {
        "benchmarks": _benchmark_names(),
        "config": config,
        "trace_config": TraceConfig(
            sm_count=config.sm_count, warps_per_sm=config.warps_per_sm
        ),
        "link_sweep": LINK_SWEEP,
        "profile_config": SnapshotConfig(scale=1.0 / 65536),
        "engine": "vectorized",
        "verify": 0.0,
    }


def _fig11_point(point: dict):
    from repro.analysis.perf_study import perf_benchmark_row

    return perf_benchmark_row(
        point["benchmark"],
        point["config"],
        point["trace_config"],
        point["link_sweep"],
        point["profile_config"],
        point["engine"],
        point["verify"],
    )


def _fig11_aggregate(results: list, params: dict):
    from repro.analysis.perf_study import PerfStudyResult

    return PerfStudyResult(list(results))


def _fig11_plan(point: dict) -> list:
    from repro.analysis.perf_study import fig11_plan

    return fig11_plan(point)


register(
    Experiment(
        name="perf.fig11",
        title="Fig. 11: performance vs ideal large-memory GPU",
        defaults=_fig11_defaults,
        expand=_per_benchmark_expand,
        run_point=_fig11_point,
        aggregate=_fig11_aggregate,
        salt_modules=_SIMULATOR_MODULES
        + _PIPELINE_MODULES
        + ("repro.analysis.perf_study",),
        plan_point=_fig11_plan,
    )
)


# ---------------------------------------------------------------------------
# um.fig12
# ---------------------------------------------------------------------------
def _fig12_defaults() -> dict:
    from repro.analysis.um_study import FIG12_BENCHMARKS, FIG12_LEVELS
    from repro.um.oversubscription import UMConfig

    return {
        "benchmarks": FIG12_BENCHMARKS,
        "levels": FIG12_LEVELS,
        "config": UMConfig(),
    }


def _fig12_point(point: dict):
    from repro.analysis.um_study import um_benchmark_curve

    return um_benchmark_curve(
        point["benchmark"], point["levels"], point["config"]
    )


def _fig12_aggregate(results: list, params: dict) -> list:
    return [row for curve in results for row in curve]


register(
    Experiment(
        name="um.fig12",
        title="Fig. 12: UM oversubscription slowdowns",
        defaults=_fig12_defaults,
        expand=_per_benchmark_expand,
        run_point=_fig12_point,
        aggregate=_fig12_aggregate,
        salt_modules=(
            "repro.rng",
            "repro.units",
            "repro.analysis.um_study",
            "repro.um.oversubscription",
            "repro.um.pages",
            "repro.workloads.catalog",
        ),
    )
)


# ---------------------------------------------------------------------------
# dl.ratios / dl.fig13
# ---------------------------------------------------------------------------
def _dl_networks() -> tuple[str, ...]:
    from repro.dlmodel.networks import NETWORK_BUILDERS

    return tuple(NETWORK_BUILDERS)


def _dl_ratio_defaults() -> dict:
    from repro.workloads.snapshots import SnapshotConfig

    return {
        "networks": _dl_networks(),
        "config": SnapshotConfig(scale=1.0 / 65536),
    }


def _dl_expand(params: dict) -> list[dict]:
    return [
        {"network": name, "config": params["config"]}
        for name in params["networks"]
    ]


def _dl_ratio_point(point: dict):
    from repro.analysis.dl_study import network_ratio

    return network_ratio(point["network"], point["config"])


def _dl_ratio_aggregate(results: list, params: dict) -> dict:
    return dict(zip(params["networks"], results))


def _dl_ratio_plan(point: dict) -> list:
    from repro.analysis.dl_study import network_ratio_plan

    return network_ratio_plan(point)


register(
    Experiment(
        name="dl.ratios",
        title="Per-network buddy compression ratios (Fig. 13 input)",
        defaults=_dl_ratio_defaults,
        expand=_dl_expand,
        run_point=_dl_ratio_point,
        aggregate=_dl_ratio_aggregate,
        salt_modules=_PIPELINE_MODULES
        + _DLMODEL_MODULES
        + ("repro.analysis.dl_study",),
        plan_point=_dl_ratio_plan,
    )
)


# ---------------------------------------------------------------------------
# serve.advice
# ---------------------------------------------------------------------------
def _advice_defaults() -> dict:
    from repro.serve.protocol import DEFAULT_THRESHOLDS, DESIGNS
    from repro.workloads.snapshots import SnapshotConfig

    return {
        "benchmarks": _benchmark_names(),
        "codec": "bpc",
        "thresholds": DEFAULT_THRESHOLDS,
        "designs": DESIGNS,
        "config": SnapshotConfig(),
    }


def _advice_point(point: dict):
    from repro.serve.advisor import advice_point

    return advice_point(point)


register(
    Experiment(
        name="serve.advice",
        title="Advisor answer: codec/threshold/design per profile",
        defaults=_advice_defaults,
        expand=_per_benchmark_expand,
        run_point=_advice_point,
        aggregate=_keyed_by_benchmark,
        salt_modules=_PIPELINE_MODULES
        + _CODEC_COMPARISON_MODULES
        + (
            "repro.serve.advisor",
            "repro.serve.protocol",
        ),
    )
)


def _fig13_defaults() -> dict:
    from repro.analysis.dl_study import BATCH_SWEEP

    params = _dl_ratio_defaults()
    params.update({"batches": BATCH_SWEEP, "epochs": 100})
    return params


def _fig13_expand(params: dict) -> list[dict]:
    return _dl_expand(params)


def _fig13_aggregate(results: list, params: dict):
    from repro.analysis.dl_study import assemble_dl_study

    ratios = dict(zip(params["networks"], results))
    return assemble_dl_study(ratios, params["batches"], params["epochs"])


register(
    Experiment(
        name="dl.fig13",
        title="Fig. 13: the DL-training case study",
        defaults=_fig13_defaults,
        expand=_fig13_expand,
        run_point=_dl_ratio_point,
        aggregate=_fig13_aggregate,
        salt_modules=_PIPELINE_MODULES
        + _DLMODEL_MODULES
        + ("repro.analysis.dl_study",),
        plan_point=_dl_ratio_plan,
    )
)
