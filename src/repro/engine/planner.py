"""Sweep-level planning: ``plan`` → optimize → ``execute_plan``.

The figures of the paper are grids of design points that share almost
all of their inputs: the same benchmark snapshot runs, the same
columnar profile tensors, the same per-entry state tables — swept
across targets, thresholds and link speeds.  The unplanned runner
resolves each point's dependencies independently (the on-disk
:class:`~repro.engine.cache.ResultCache` is the only cross-point
sharing), so a cold parallel Fig. 7 → Fig. 9 → Fig. 11 session
rebuilds every benchmark's tensors once per sweep per worker.

This module makes the sharing explicit.  Each registered experiment
may declare the dependency graph of a design point (its
``plan_point`` hook returns typed specs — :class:`ProfileTensorSpec`,
:class:`EntryStateSpec`, :class:`SnapshotsSpec`, :class:`TraceSpec`),
and :func:`plan` assembles the requests of a whole session into one
DAG of typed :class:`PlanNode` objects:

* **dedupe** — nodes are hash-addressed by the *same* content digests
  the profiler's disk cache uses (:func:`repro.core.profiler.
  tensor_cache_key` / :func:`~repro.core.profiler.entry_state_cache_key`),
  so two sweeps needing the same tensor reference one node, and
  predicted cache hits in ``repro plan --explain`` agree
  byte-for-byte with execution-time lookups;
* **merge** — profile-tensor nodes sharing a (snapshot config,
  algorithm) pair merge into a :class:`MergeGroup` executed by one
  mega-batched ``compressed_sizes`` call
  (:func:`repro.core.profiler.profile_tensors_bulk`); entries
  compress independently, so the merged call is bit-identical to
  per-benchmark builds while issuing strictly fewer bulk calls;
* **schedule** — :func:`execute_plan` runs the merged DAG in
  topological stages on the runner's process pool: stage 0 builds the
  shared artifacts (with ResultCache read-through, or shipped to
  point workers as memo preloads when the runner is cacheless),
  stage 1 executes every experiment's design points in one pool with
  the exact digests, seeds and cache keys the unplanned path uses,
  stage 2 aggregates in request order.

Results are therefore **bit-identical** to per-experiment
:meth:`~repro.engine.runner.ExperimentRunner.run` calls — the planner
only changes *where* and *how often* shared work happens, which the
returned :class:`ExecutionReport` counters pin (snapshot-run
generations per benchmark, stage-0 bulk compression calls).
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any

from repro import rng as rng_lib
from repro.engine.cache import CacheKey, CacheMiss, ResultCache, param_digest
from repro.engine.registry import Experiment, get_experiment

_UNSET = object()


# ---------------------------------------------------------------------------
# Dependency specs: what an experiment's plan_point hook returns.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ProfileTensorSpec:
    """A columnar profile tensor (benchmark run under one codec).

    Executable: the planner builds it in stage 0 (merged with every
    other spec sharing its (config, algorithm) pair into one bulk
    compression call) and ships or caches it for the points.
    """

    benchmark: str
    config: Any  # SnapshotConfig
    algorithm: Any = None  # CompressionAlgorithm; None = BPC default


@dataclass(frozen=True)
class EntryStateSpec:
    """The per-entry compression state of one dump (simulator input).

    Executable: built in stage 0 (each build generates exactly one
    snapshot dump), deduped across every point that replays the dump.
    """

    benchmark: str
    config: Any  # SnapshotConfig
    index: int


@dataclass(frozen=True)
class SnapshotsSpec:
    """A benchmark's snapshot run at one config (statistics only).

    Dumps are too large to ship or cache; they are generated inside
    the tensor builds (or the point) that consume them.  Declaring the
    run still lets ``--explain`` show which points share it.
    """

    benchmark: str
    config: Any  # SnapshotConfig


@dataclass(frozen=True)
class TraceSpec:
    """A benchmark's synthetic kernel trace (statistics only).

    Traces are cheap to regenerate from a warm entry-state tensor and
    large to pickle, so the planner leaves them inside the points and
    only tracks the sharing.
    """

    benchmark: str
    trace_config: Any  # TraceConfig


@dataclass(frozen=True)
class TapeSpec:
    """A relaxed design point's frozen event tape.

    Executable: built in a second stage-0 wave (after the tensors and
    entry states it consumes), deduped by the ``sim.tape`` content
    digest across every relaxed point of every co-submitted sweep —
    one exact-order recording per ``(trace, state, geometry)``, loaded
    from the persistent cache when a previous session already recorded
    it.  All configs are the *normalized* values the point resolves at
    run time, so the plan-time digest matches the run-time lookup.
    """

    benchmark: str
    trace_config: Any  # TraceConfig
    profile_config: Any  # SnapshotConfig
    config: Any  # GPUConfig


# ---------------------------------------------------------------------------
# Plan nodes and the assembled plan.
# ---------------------------------------------------------------------------
@dataclass
class PlanNode:
    """One node of the merged sweep DAG."""

    kind: str  # profile_tensor | entry_state | snapshots | trace | tape | point | aggregate
    digest: str  # content digest (cache-compatible for executable kinds)
    label: str
    spec: Any = None
    deps: tuple[str, ...] = ()  # node ids this node consumes
    references: int = 0  # how many consumers named this node
    executable: bool = False  # stage-0 buildable (vs statistics-only)
    predicted_cached: bool = False  # disk cache already holds it
    needed: bool = False  # some non-cached point consumes it

    @property
    def node_id(self) -> str:
        return f"{self.kind}/{self.digest}"


@dataclass
class MergeGroup:
    """Profile-tensor nodes merged into one bulk compression call."""

    config: Any
    algorithm: Any
    benchmarks: tuple[str, ...]
    node_ids: tuple[str, ...]


@dataclass
class PlanRequest:
    """One experiment's slice of the plan."""

    experiment: Experiment
    params: dict
    points: list[dict]
    digests: list[str]
    predicted_hits: list[bool]
    point_deps: list[tuple[str, ...]]  # node ids per point

    @property
    def keys(self) -> list[CacheKey]:
        return [CacheKey(self.experiment.name, d) for d in self.digests]


@dataclass
class PlanStats:
    """Dedupe / merge / cache-prediction statistics of a plan."""

    experiments: int
    points: int
    predicted_point_hits: int
    shared_nodes: int
    shared_references: int
    deduped_references: int
    executable_nodes: int
    needed_nodes: int
    predicted_shared_hits: int
    merge_groups: int
    merged_nodes: int
    planned_bulk_calls: int  # serial semantics: one per merge group
    unplanned_bulk_calls: int  # one per merged tensor node


@dataclass
class Plan:
    """An optimized multi-experiment sweep, ready to execute."""

    requests: list[PlanRequest]
    shared: dict[str, PlanNode]  # node id -> node (insertion = discovery order)
    merge_groups: list[MergeGroup]
    entry_nodes: list[str]  # entry-state node ids to build in stage 0
    tape_nodes: list = field(default_factory=list)  # relaxed tapes, stage-0 wave 2
    seed: int = rng_lib.DEFAULT_SEED

    def stats(self) -> PlanStats:
        nodes = list(self.shared.values())
        executable = [n for n in nodes if n.executable]
        merged = sum(len(g.node_ids) for g in self.merge_groups)
        return PlanStats(
            experiments=len(self.requests),
            points=sum(len(r.points) for r in self.requests),
            predicted_point_hits=sum(
                sum(r.predicted_hits) for r in self.requests
            ),
            shared_nodes=len(nodes),
            shared_references=sum(n.references for n in nodes),
            deduped_references=sum(n.references for n in nodes) - len(nodes),
            executable_nodes=len(executable),
            needed_nodes=sum(n.needed for n in executable),
            predicted_shared_hits=sum(n.predicted_cached for n in executable),
            merge_groups=len(self.merge_groups),
            merged_nodes=merged,
            planned_bulk_calls=len(self.merge_groups),
            unplanned_bulk_calls=merged,
        )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Dedupe / merge / predicted-hit statistics (``repro plan``)."""
        stats = self.stats()
        lines = [
            f"plan: {stats.experiments} experiment(s), {stats.points} "
            f"point(s), {stats.predicted_point_hits} predicted cache hit(s)",
            f"shared nodes: {stats.shared_references} reference(s) -> "
            f"{stats.shared_nodes} unique ({stats.deduped_references} deduped), "
            f"{stats.predicted_shared_hits} predicted cached",
            f"merge: {stats.merged_nodes} tensor build(s) -> "
            f"{stats.planned_bulk_calls} bulk compression call(s) "
            f"(unplanned: {stats.unplanned_bulk_calls})",
        ]
        for request in self.requests:
            hits = sum(request.predicted_hits)
            lines.append(
                f"  [{request.experiment.name}] {len(request.points)} "
                f"point(s), {hits} predicted cached"
            )
        return "\n".join(lines)

    def explain(self) -> str:
        """:meth:`describe` plus the full node graph and merge groups."""
        lines = [self.describe()]
        if self.merge_groups:
            lines.append("merge groups:")
            for group in self.merge_groups:
                names = ", ".join(group.benchmarks)
                lines.append(
                    f"  bulk[{_config_label(group.config)}] "
                    f"{len(group.benchmarks)} build(s): {names}"
                )
        if self.shared:
            lines.append("nodes:")
            for node in self.shared.values():
                flags = []
                if node.executable:
                    flags.append("exec")
                if node.predicted_cached:
                    flags.append("cached")
                if node.needed:
                    flags.append("needed")
                lines.append(
                    f"  {node.kind:15s} {node.digest[:12]} refs={node.references}"
                    f" {' '.join(flags):17s} {node.label}"
                )
        return "\n".join(lines)

    def to_json(self) -> dict:
        """Machine-readable plan description (``repro plan --json``)."""
        stats = self.stats()
        return {
            "stats": {
                "experiments": stats.experiments,
                "points": stats.points,
                "predicted_point_hits": stats.predicted_point_hits,
                "shared_nodes": stats.shared_nodes,
                "shared_references": stats.shared_references,
                "deduped_references": stats.deduped_references,
                "predicted_shared_hits": stats.predicted_shared_hits,
                "merge_groups": stats.merge_groups,
                "merged_nodes": stats.merged_nodes,
                "planned_bulk_calls": stats.planned_bulk_calls,
                "unplanned_bulk_calls": stats.unplanned_bulk_calls,
            },
            "requests": [
                {
                    "experiment": request.experiment.name,
                    "points": len(request.points),
                    "predicted_cache_hits": sum(request.predicted_hits),
                    "point_digests": list(request.digests),
                }
                for request in self.requests
            ],
            "nodes": [
                {
                    "kind": node.kind,
                    "digest": node.digest,
                    "label": node.label,
                    "references": node.references,
                    "executable": node.executable,
                    "predicted_cached": node.predicted_cached,
                    "needed": node.needed,
                }
                for node in self.shared.values()
            ],
            "merge_groups": [
                {
                    "config": _config_label(group.config),
                    "benchmarks": list(group.benchmarks),
                    "nodes": list(group.node_ids),
                }
                for group in self.merge_groups
            ],
        }


def _config_label(config) -> str:
    role = getattr(config, "role", "")
    scale = getattr(config, "scale", None)
    scale_text = f"scale=1/{round(1 / scale)}" if scale else ""
    return ":".join(part for part in (role, scale_text) if part)


def _default_algorithm():
    from repro.compression.bpc import BPCCompressor

    return BPCCompressor()


def _node_for_spec(spec) -> PlanNode:
    """Materialise one typed spec as a digest-addressed plan node."""
    from repro.core.profiler import entry_state_cache_key, tensor_cache_key

    if isinstance(spec, ProfileTensorSpec):
        algorithm = spec.algorithm or _default_algorithm()
        spec = ProfileTensorSpec(spec.benchmark, spec.config, algorithm)
        key = tensor_cache_key(spec.benchmark, spec.config, algorithm)
        return PlanNode(
            kind="profile_tensor",
            digest=key.digest,
            label=f"{spec.benchmark} [{_config_label(spec.config)}]",
            spec=spec,
            executable=True,
        )
    if isinstance(spec, EntryStateSpec):
        key = entry_state_cache_key(spec.benchmark, spec.config, spec.index)
        return PlanNode(
            kind="entry_state",
            digest=key.digest,
            label=(
                f"{spec.benchmark} dump {spec.index} "
                f"[{_config_label(spec.config)}]"
            ),
            spec=spec,
            executable=True,
        )
    if isinstance(spec, SnapshotsSpec):
        digest = param_digest(
            "plan.snapshots",
            {"benchmark": spec.benchmark, "config": spec.config},
        )
        return PlanNode(
            kind="snapshots",
            digest=digest,
            label=f"{spec.benchmark} [{_config_label(spec.config)}]",
            spec=spec,
        )
    if isinstance(spec, TraceSpec):
        digest = param_digest(
            "plan.trace",
            {"benchmark": spec.benchmark, "trace_config": spec.trace_config},
        )
        return PlanNode(
            kind="trace",
            digest=digest,
            label=f"{spec.benchmark}",
            spec=spec,
        )
    if isinstance(spec, TapeSpec):
        from repro.gpusim.vector_sim import tape_cache_key

        key = tape_cache_key(
            spec.benchmark, spec.trace_config, spec.profile_config, spec.config
        )
        return PlanNode(
            kind="tape",
            digest=key.digest,
            label=f"{spec.benchmark} tape",
            spec=spec,
            executable=True,
        )
    raise TypeError(f"unknown plan spec {type(spec).__qualname__}")


_CACHE_NAMESPACE = {
    "profile_tensor": "profile.tensor",
    "entry_state": "profile.entries",
    "tape": "sim.tape",
}


# ---------------------------------------------------------------------------
# plan(): expand, dedupe, merge.
# ---------------------------------------------------------------------------
def plan(requests, runner=None) -> Plan:
    """Assemble one or more experiment requests into an optimized plan.

    Args:
        requests: Iterable of experiment names or ``(name, params)``
            pairs (``params`` as for
            :meth:`~repro.engine.runner.ExperimentRunner.run`).
        runner: The runner the plan will execute on; its cache drives
            the predicted-hit annotations (default: serial, uncached).
    """
    from repro.engine.runner import ExperimentRunner, point_digests

    runner = runner if runner is not None else ExperimentRunner()
    shared: dict[str, PlanNode] = {}
    plan_requests: list[PlanRequest] = []
    for request in requests:
        if isinstance(request, str):
            name, params = request, None
        else:
            name, params = request
        experiment = get_experiment(name)
        resolved = experiment.resolve_params(params)
        points = experiment.expand(resolved)
        digests = point_digests(experiment, points, runner.seed)
        predicted = [
            runner.cache is not None
            and runner.cache.contains(CacheKey(experiment.name, digest))
            for digest in digests
        ]
        point_deps: list[tuple[str, ...]] = []
        for point, hit in zip(points, predicted):
            deps: list[str] = []
            if experiment.plan_point is not None:
                for spec in experiment.plan_point(point):
                    node = _node_for_spec(spec)
                    existing = shared.get(node.node_id)
                    if existing is None:
                        shared[node.node_id] = existing = node
                    existing.references += 1
                    if not hit:
                        existing.needed = True
                    deps.append(existing.node_id)
            point_deps.append(tuple(deps))
        plan_requests.append(
            PlanRequest(
                experiment=experiment,
                params=resolved,
                points=points,
                digests=digests,
                predicted_hits=predicted,
                point_deps=point_deps,
            )
        )

    # Predicted disk hits for the executable shared nodes.
    if runner.cache is not None:
        for node in shared.values():
            if node.executable:
                node.predicted_cached = runner.cache.contains(
                    CacheKey(_CACHE_NAMESPACE[node.kind], node.digest)
                )

    # Merge: profile-tensor builds sharing (config, algorithm) become
    # one mega-batched bulk compression call.  Predicted-cached nodes
    # stay out — execution would only re-read them from disk.
    groups: dict[str, list[PlanNode]] = {}
    entry_nodes: list[str] = []
    tape_nodes: list[str] = []
    for node in shared.values():
        if not (node.executable and node.needed and not node.predicted_cached):
            continue
        if node.kind == "profile_tensor":
            group_key = param_digest(
                "plan.merge",
                {
                    "config": node.spec.config,
                    "algorithm": f"{type(node.spec.algorithm).__module__}."
                    f"{type(node.spec.algorithm).__qualname__}",
                },
            )
            groups.setdefault(group_key, []).append(node)
        elif node.kind == "entry_state":
            entry_nodes.append(node.node_id)
        elif node.kind == "tape":
            tape_nodes.append(node.node_id)
    merge_groups = [
        MergeGroup(
            config=nodes[0].spec.config,
            algorithm=nodes[0].spec.algorithm,
            benchmarks=tuple(node.spec.benchmark for node in nodes),
            node_ids=tuple(node.node_id for node in nodes),
        )
        for nodes in groups.values()
    ]
    return Plan(
        requests=plan_requests,
        shared=shared,
        merge_groups=merge_groups,
        entry_nodes=entry_nodes,
        tape_nodes=tape_nodes,
        seed=runner.seed,
    )


# ---------------------------------------------------------------------------
# execute_plan(): stage 0 shared builds, stage 1 points, stage 2 reduce.
# ---------------------------------------------------------------------------
@dataclass
class ExecutionReport:
    """What one :func:`execute_plan` call did (counter-pinned).

    ``generation_tally`` maps ``(benchmark, config label, kind)`` to
    the number of snapshot-run generations stage 0 performed for that
    artifact — the planned-sweep guarantee is that every value is at
    most 1 (each benchmark's snapshots are generated at most once).
    ``bulk_compression_calls`` counts stage-0 stacked
    ``compressed_sizes`` calls (serial plans: one per merge group).
    ``tape_recordings`` counts exact-order relaxed-tape recordings
    across stage 0 — the planned-sweep guarantee is one per deduped
    ``(trace, state, geometry)`` tape node, and zero on warm caches.
    """

    seconds: float = 0.0
    shared_built: int = 0
    shared_reused: int = 0  # memo / disk hits among scheduled builds
    snapshot_generations: int = 0
    generation_tally: dict = field(default_factory=dict)
    bulk_compression_calls: int = 0
    tape_recordings: int = 0
    points: int = 0
    point_cache_hits: int = 0
    points_executed: int = 0

    @property
    def max_generations_per_artifact(self) -> int:
        return max(self.generation_tally.values(), default=0)

    def summary(self) -> str:
        return (
            f"planned: {self.shared_built} shared artifact(s) built "
            f"({self.shared_reused} reused, "
            f"{self.bulk_compression_calls} bulk call(s), "
            f"{self.snapshot_generations} snapshot run(s)); "
            f"{self.point_cache_hits}/{self.points} point(s) cached"
        )


@dataclass
class SweepResult:
    """Everything a planned sweep produced."""

    values: list[Any]  # one aggregate per request, in request order
    reports: list  # one RunReport per request
    execution: ExecutionReport
    plan: Plan


@dataclass(frozen=True)
class _SharedTask:
    """One stage-0 build task (pickle-safe for the process pool)."""

    kind: str  # "profile" | "entry" | "tape"
    benchmarks: tuple[str, ...]
    config: Any
    algorithm: Any = None
    index: int = 0
    node_ids: tuple[str, ...] = ()
    trace_config: Any = None  # tape tasks only
    gpu_config: Any = None  # tape tasks only


def _execute_shared_task(task: _SharedTask, cache_root, cache_max_bytes, ship):
    """Build one stage-0 task's artifacts (module-level, pool-safe).

    Returns ``(artifacts, built_node_ids, bulk_calls, recordings)``
    where ``artifacts`` maps node id to ``(memo kind, memo key,
    value)`` — populated only when ``ship`` is true (cacheless runners
    ship memo preloads; cached runners persist through the shared
    result cache instead) — and ``recordings`` counts exact-order tape
    recordings this task performed (0 when the tape loaded from the
    cache or the in-process memo).
    """
    from repro.core import profiler
    from repro.gpusim import vector_sim

    previous = None
    previous_tape = None
    if cache_root is not None:
        shared_cache = ResultCache(cache_root, max_bytes=cache_max_bytes)
        previous = profiler.set_tensor_cache(shared_cache)
        previous_tape = vector_sim.set_tape_cache(shared_cache)
    calls_before = profiler.bulk_compression_call_count()
    recordings_before = vector_sim.tape_recording_count()
    artifacts: dict[str, tuple[str, tuple, Any]] = {}
    built: list[str] = []
    try:
        if task.kind == "profile":
            freshly_built: list[str] = []
            tensors = profiler.profile_tensors_bulk(
                task.benchmarks, task.config, task.algorithm,
                built=freshly_built,
            )
            fresh = set(freshly_built)
            for benchmark, node_id in zip(task.benchmarks, task.node_ids):
                if benchmark in fresh:
                    built.append(node_id)
                if ship:
                    artifacts[node_id] = (
                        "tensors",
                        profiler.tensor_memo_key(
                            benchmark, task.config, task.algorithm
                        ),
                        tensors[benchmark],
                    )
        elif task.kind == "tape":
            from repro.analysis.perf_study import prepare_tape

            envelope = prepare_tape(
                task.benchmarks[0],
                task.gpu_config,
                task.trace_config,
                task.config,
            )
            if vector_sim.tape_recording_count() > recordings_before:
                built.append(task.node_ids[0])
            if ship:
                node_id = task.node_ids[0]
                artifacts[node_id] = (
                    "tapes",
                    node_id.split("/", 1)[1],  # the sim.tape digest
                    envelope,
                )
        else:
            benchmark = task.benchmarks[0]
            before = profiler.entry_state_build_count()
            state = profiler.entry_state_tensor(
                benchmark, task.config, task.index
            )
            if profiler.entry_state_build_count() > before:
                built.append(task.node_ids[0])
            if ship:
                artifacts[task.node_ids[0]] = (
                    "entry_states",
                    profiler.entry_state_memo_key(
                        benchmark, task.config, task.index
                    ),
                    state,
                )
    finally:
        if cache_root is not None:
            profiler.set_tensor_cache(previous)
            vector_sim.set_tape_cache(previous_tape)
    calls = profiler.bulk_compression_call_count() - calls_before
    recordings = vector_sim.tape_recording_count() - recordings_before
    return artifacts, tuple(built), calls, recordings


def _chunk(sequence, parts: int) -> list[tuple]:
    """Split ``sequence`` into at most ``parts`` contiguous chunks."""
    items = list(sequence)
    parts = max(1, min(parts, len(items)))
    size, extra = divmod(len(items), parts)
    chunks, start = [], 0
    for i in range(parts):
        end = start + size + (1 if i < extra else 0)
        chunks.append(tuple(items[start:end]))
        start = end
    return chunks


def _stage_zero_tasks(sweep_plan: Plan, workers: int) -> list[_SharedTask]:
    """Stage-0 schedule: merged groups (chunked across the pool) and
    entry-state builds.

    Serial execution keeps every merge group as ONE mega-batched bulk
    call; with ``workers > 1`` a group may split into up to ``workers``
    chunks (each still a bulk call over several benchmarks) so the
    pool's cores all contribute — still strictly fewer calls than the
    per-benchmark unplanned path.
    """
    tasks: list[_SharedTask] = []
    for group in sweep_plan.merge_groups:
        pairs = list(zip(group.benchmarks, group.node_ids))
        for chunk in _chunk(pairs, workers):
            tasks.append(
                _SharedTask(
                    kind="profile",
                    benchmarks=tuple(b for b, _ in chunk),
                    config=group.config,
                    algorithm=group.algorithm,
                    node_ids=tuple(n for _, n in chunk),
                )
            )
    for node_id in sweep_plan.entry_nodes:
        node = sweep_plan.shared[node_id]
        tasks.append(
            _SharedTask(
                kind="entry",
                benchmarks=(node.spec.benchmark,),
                config=node.spec.config,
                index=node.spec.index,
                node_ids=(node_id,),
            )
        )
    return tasks


def _tape_tasks(sweep_plan: Plan) -> list[_SharedTask]:
    """Stage-0 wave 2: record-or-load each deduped relaxed tape.

    Runs after the tensor / entry-state wave — a tape recording
    consumes both — so cached runners read those artifacts through the
    shared cache and serial runners hit the in-process memos.
    """
    tasks: list[_SharedTask] = []
    for node_id in sweep_plan.tape_nodes:
        node = sweep_plan.shared[node_id]
        tasks.append(
            _SharedTask(
                kind="tape",
                benchmarks=(node.spec.benchmark,),
                config=node.spec.profile_config,
                trace_config=node.spec.trace_config,
                gpu_config=node.spec.config,
                node_ids=(node_id,),
            )
        )
    return tasks


def execute_plan(sweep_plan: Plan, runner=None) -> SweepResult:
    """Execute an optimized plan on a runner's pool, bit-identically.

    Stage 0 builds every needed shared artifact (merge groups as bulk
    compression calls, entry states individually), writing through the
    runner's result cache — or, when the runner is cacheless,
    collecting the artifacts to ship to point workers as memo
    preloads.  Stage 1 executes all requests' design points in one
    pool using exactly the digests, seeds and cache keys of the
    unplanned path.  Stage 2 aggregates in request order.
    """
    from repro.engine.runner import ExperimentRunner, RunReport, run_point_seeded

    runner = runner if runner is not None else ExperimentRunner()
    started = time.perf_counter()
    report = ExecutionReport()
    report.points = sum(len(r.points) for r in sweep_plan.requests)

    tasks = _stage_zero_tasks(sweep_plan, runner.workers)
    cache_root = None if runner.cache is None else str(runner.cache.root)
    cache_max = None if runner.cache is None else runner.cache.max_bytes

    # Cache lookups happen before the pool spins up, so a fully warm
    # sweep stays a cheap serial pass (and stage 0 is skipped for
    # nodes no pending point needs — `needed` covered that at plan
    # time; the read-through below covers plan/execute races).
    per_request_results: list[list[Any]] = []
    per_request_pending: list[list[int]] = []
    hits_per_request: list[int] = []
    for request in sweep_plan.requests:
        results: list[Any] = [_UNSET] * len(request.points)
        pending: list[int] = []
        hits = 0
        for index, key in enumerate(request.keys):
            if runner.cache is not None:
                try:
                    results[index] = runner.cache.get(key)
                    hits += 1
                    continue
                except CacheMiss:
                    pass
            pending.append(index)
        if pending and runner.offline:
            missing = ", ".join(request.digests[i] for i in pending[:4])
            raise CacheMiss(
                f"{request.experiment.name}: {len(pending)} of "
                f"{len(request.points)} design point(s) not cached "
                f"(e.g. {missing}); rerun without --from-cache to "
                "populate the cache"
            )
        per_request_results.append(results)
        per_request_pending.append(pending)
        hits_per_request.append(hits)
    report.point_cache_hits = sum(hits_per_request)

    total_pending = sum(len(p) for p in per_request_pending)
    use_pool = runner.workers > 1 and (len(tasks) + total_pending) > 1
    ship = runner.cache is None and use_pool
    preload: dict[str, tuple[str, tuple, Any]] = {}

    pool = None
    try:
        if use_pool:
            pool = ProcessPoolExecutor(max_workers=runner.workers)

        # ---- Stage 0: shared artifacts -------------------------------
        def account(task: _SharedTask, outcome) -> None:
            artifacts, built, calls, recordings = outcome
            preload.update(artifacts)
            report.shared_built += len(built)
            report.shared_reused += len(task.node_ids) - len(built)
            report.bulk_compression_calls += calls
            report.tape_recordings += recordings
            if task.kind == "tape":
                # Tape recordings are accounted separately; they are
                # replays of already-tallied snapshot artifacts.
                return
            report.snapshot_generations += len(built)
            for node_id in built:
                node = sweep_plan.shared[node_id]
                tally_key = (
                    node.spec.benchmark,
                    _config_label(node.spec.config),
                    node.kind,
                )
                report.generation_tally[tally_key] = (
                    report.generation_tally.get(tally_key, 0) + 1
                )

        def run_wave(wave: list[_SharedTask]) -> None:
            if pool is not None:
                futures = {
                    pool.submit(
                        _execute_shared_task, task, cache_root, cache_max, ship
                    ): task
                    for task in wave
                }
                outstanding = set(futures)
                while outstanding:
                    done, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        account(futures[future], future.result())
            else:
                for task in wave:
                    account(
                        task,
                        _execute_shared_task(task, cache_root, cache_max, ship),
                    )

        if total_pending:
            # Tapes build in a second wave: a recording consumes the
            # tensors and entry states the first wave produced.
            if tasks:
                run_wave(tasks)
            tape_wave = _tape_tasks(sweep_plan)
            if tape_wave:
                run_wave(tape_wave)

        # ---- Stage 1: design points (one pool, all experiments) ------
        def preload_for(request: PlanRequest, index: int):
            if not ship:
                return None
            bundle: dict[str, dict] = {}
            for node_id in request.point_deps[index]:
                entry = preload.get(node_id)
                if entry is not None:
                    memo_kind, memo_key, value = entry
                    bundle.setdefault(memo_kind, {})[memo_key] = value
            return bundle or None

        def finish(request_index: int, point_index: int, value) -> None:
            per_request_results[request_index][point_index] = value
            if runner.cache is not None:
                request = sweep_plan.requests[request_index]
                runner.cache.put(request.keys[point_index], value)

        if pool is not None and total_pending:
            futures = {}
            for request_index, request in enumerate(sweep_plan.requests):
                for point_index in per_request_pending[request_index]:
                    seed = rng_lib.stream_seed(
                        f"engine/{request.experiment.name}/"
                        f"{request.digests[point_index]}",
                        runner.seed,
                    )
                    futures[
                        pool.submit(
                            run_point_seeded,
                            request.experiment.run_point,
                            request.points[point_index],
                            seed,
                            cache_root,
                            cache_max,
                            preload_for(request, point_index),
                        )
                    ] = (request_index, point_index)
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    request_index, point_index = futures[future]
                    finish(request_index, point_index, future.result())
        else:
            for request_index, request in enumerate(sweep_plan.requests):
                for point_index in per_request_pending[request_index]:
                    seed = rng_lib.stream_seed(
                        f"engine/{request.experiment.name}/"
                        f"{request.digests[point_index]}",
                        runner.seed,
                    )
                    finish(
                        request_index,
                        point_index,
                        run_point_seeded(
                            request.experiment.run_point,
                            request.points[point_index],
                            seed,
                            cache_root,
                            cache_max,
                        ),
                    )
    finally:
        if pool is not None:
            pool.shutdown()

    report.points_executed = total_pending

    # ---- Stage 2: aggregate in request order -------------------------
    values: list[Any] = []
    reports: list[RunReport] = []
    elapsed = time.perf_counter() - started
    for request, results, pending, hits in zip(
        sweep_plan.requests,
        per_request_results,
        per_request_pending,
        hits_per_request,
    ):
        values.append(request.experiment.aggregate(results, request.params))
        reports.append(
            RunReport(
                experiment=request.experiment.name,
                points=len(request.points),
                executed=len(pending),
                cache_hits=hits,
                workers=runner.workers,
                seconds=elapsed,
            )
        )
    report.seconds = time.perf_counter() - started
    return SweepResult(
        values=values, reports=reports, execution=report, plan=sweep_plan
    )
