"""Fig. 13d: validation accuracy vs mini-batch size.

The paper trains ResNet50 on CIFAR100 for 100 epochs at mini-batches
16–256 and observes: very small batches (16, 32) never reach peak
accuracy (batch-norm statistics are too noisy); 64 reaches the peak
but converges slowly; 128–256 converge fastest to the best accuracy.

We model that with an SGD noise-scale curve: accuracy approaches a
batch-dependent ceiling exponentially in epochs, with gradient- and
batch-norm noise shrinking as the batch grows, plus per-epoch jitter
that is stronger for small batches (the paper notes the higher
accuracy jitter under batch norm with small mini-batches).
"""

from __future__ import annotations

import numpy as np

from repro import rng as rng_lib

#: The accuracy a well-tuned run tops out at (ResNet50 / CIFAR100).
PEAK_ACCURACY = 0.72

#: Batch size where batch-norm statistics stop limiting accuracy.
BN_SATURATION_BATCH = 64.0


def final_accuracy(batch_size: int) -> float:
    """Asymptotic validation accuracy for a mini-batch size."""
    if batch_size < 1:
        raise ValueError(f"batch size {batch_size} must be positive")
    # Batch-norm noise costs accuracy below ~64; the penalty fades
    # quadratically in the ratio.
    deficit = 0.10 / (1.0 + (batch_size / BN_SATURATION_BATCH) ** 2)
    return PEAK_ACCURACY - deficit


def accuracy_curve(
    batch_size: int,
    epochs: int = 100,
    seed: int = rng_lib.DEFAULT_SEED,
) -> np.ndarray:
    """Validation accuracy per epoch for one training run."""
    if epochs < 1:
        raise ValueError("need at least one epoch")
    rng = rng_lib.generator(f"convergence/{batch_size}", seed)
    ceiling = final_accuracy(batch_size)
    # Convergence speed: larger batches take fewer epochs to the
    # ceiling (cleaner gradients), saturating past ~128.
    tau = 28.0 * (1.0 + 48.0 / (batch_size + 16.0))
    epochs_axis = np.arange(1, epochs + 1, dtype=np.float64)
    curve = ceiling * (1.0 - np.exp(-epochs_axis / tau))
    # Step-decay bumps at the canonical 50/75-epoch LR drops.
    for drop, gain in ((epochs // 2, 0.6), (3 * epochs // 4, 0.3)):
        curve[drop:] += gain * (ceiling - curve[drop:])
    jitter = rng.normal(0.0, 0.012 * np.sqrt(64.0 / batch_size), epochs)
    return np.clip(curve + jitter, 0.0, 1.0)
