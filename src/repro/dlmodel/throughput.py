"""Training throughput vs mini-batch size (Fig. 13b).

An analytical model in the Paleo / DeLTA family: each layer's time is
the larger of its compute time (FLOPs over peak throughput, scaled by
a utilisation factor that grows with available parallelism) and its
memory time (bytes over device bandwidth).  Larger mini-batches raise
utilisation — strongly for GEMM-on-batch layers (fully connected,
LSTM), weakly for convolutions that already parallelise over pixels —
and throughput plateaus once the GPU saturates, exactly the Fig. 13b
shape.
"""

from __future__ import annotations

from repro.dlmodel.memory import BYTES_PER_ELEMENT
from repro.dlmodel.networks import Network, build_network

#: P100-class training rates (effective, fp32).
PEAK_FLOPS = 9.5e12
DEVICE_BANDWIDTH = 700e9  # sustained

#: Backward pass costs roughly twice the forward pass.
TRAINING_FLOP_FACTOR = 3.0

#: Parallel work (warp-equivalents) needed to saturate the GPU.
SATURATION_PARALLELISM = 4096.0

#: Fixed per-iteration overhead (launch, solver update), seconds.
ITERATION_OVERHEAD_S = 1.2e-3


def iteration_time_s(network: Network | str, batch_size: int) -> float:
    """Seconds per training iteration at a mini-batch size."""
    if isinstance(network, str):
        network = build_network(network)
    if batch_size < 1:
        raise ValueError(f"batch size {batch_size} must be positive")
    total = ITERATION_OVERHEAD_S
    for layer, in_shape, out_shape in network.walk():
        flops = layer.forward_flops(in_shape) * TRAINING_FLOP_FACTOR * batch_size
        parallelism = layer.intrinsic_parallelism(in_shape) * batch_size / 32.0
        utilisation = parallelism / (parallelism + SATURATION_PARALLELISM)
        compute = flops / (PEAK_FLOPS * max(utilisation, 1e-3))
        moved = (
            (layer.activation_elements(in_shape) * batch_size * 3
             + layer.parameters(in_shape) * 3)
            * BYTES_PER_ELEMENT
        )
        memory = moved / DEVICE_BANDWIDTH
        total += max(compute, memory)
    return total


def images_per_second(network: Network | str, batch_size: int) -> float:
    """Training throughput in samples per second."""
    return batch_size / iteration_time_s(network, batch_size)


def speedup_vs_batch(
    network: Network | str, batch_sizes=(16, 32, 64, 128, 256), base: int = 16
) -> dict[int, float]:
    """Fig. 13b: throughput speedup relative to a small batch."""
    if isinstance(network, str):
        network = build_network(network)
    baseline = images_per_second(network, base)
    return {
        batch: images_per_second(network, batch) / baseline
        for batch in batch_sizes
    }
