"""The six Table 1 DL training workloads as layer stacks.

Architectures follow the published definitions (AlexNet, VGG16,
ResNet-50, Inception v2, SqueezeNet v1.1, BigLSTM); residual and
inception blocks are flattened into their constituent convolutions,
which preserves parameter counts, FLOPs and activation volumes — all
the analytical models consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dlmodel.layers import (
    Conv2D,
    Dense,
    GlobalPool,
    Layer,
    LSTMStack,
    Pool2D,
    RecurrentDense,
    Shape,
)


@dataclass
class Network:
    """A network plus its per-sample accounting."""

    name: str
    input_shape: Shape
    layers: list[Layer]
    #: Caffe stores a diff blob for every data blob.
    stores_diffs: bool = True

    def walk(self):
        """Yield (layer, input_shape, output_shape) through the net."""
        shape = self.input_shape
        for layer in self.layers:
            out = layer.output_shape(shape)
            yield layer, shape, out
            shape = out

    @property
    def parameter_count(self) -> int:
        return sum(l.parameters(s) for l, s, _ in self.walk())

    @property
    def flops_per_sample(self) -> int:
        """Forward FLOPs; training costs ~3x (fwd + 2x bwd)."""
        return sum(l.forward_flops(s) for l, s, _ in self.walk())

    @property
    def activation_elements_per_sample(self) -> int:
        return sum(l.activation_elements(s) for l, s, _ in self.walk())


def _alexnet() -> Network:
    return Network(
        "AlexNet",
        (3, 227, 227),
        [
            Conv2D(96, 11, stride=4, padding=0),
            Pool2D(3, 2),
            Conv2D(256, 5),
            Pool2D(3, 2),
            Conv2D(384, 3),
            Conv2D(384, 3),
            Conv2D(256, 3),
            Pool2D(3, 2),
            Dense(4096),
            Dense(4096),
            Dense(1000),
        ],
    )


def _vgg16() -> Network:
    layers: list[Layer] = []
    for out_channels, repeats in ((64, 2), (128, 2), (256, 3), (512, 3), (512, 3)):
        layers.extend(Conv2D(out_channels, 3) for _ in range(repeats))
        layers.append(Pool2D(2))
    layers.extend([Dense(4096), Dense(4096), Dense(1000)])
    return Network("VGG16", (3, 224, 224), layers)


def _bottleneck(mid: int, out: int, stride: int = 1) -> list[Layer]:
    """ResNet bottleneck: 1x1 down, 3x3, 1x1 up (+ skip accounting)."""
    return [
        Conv2D(mid, 1, padding=0),
        Conv2D(mid, 3, stride=stride),
        Conv2D(out, 1, padding=0),
    ]


def _resnet50() -> Network:
    layers: list[Layer] = [Conv2D(64, 7, stride=2), Pool2D(3, 2)]
    stages = (
        (64, 256, 3, 1),
        (128, 512, 4, 2),
        (256, 1024, 6, 2),
        (512, 2048, 3, 2),
    )
    for mid, out, blocks, stride in stages:
        layers.extend(_bottleneck(mid, out, stride))
        for _ in range(blocks - 1):
            layers.extend(_bottleneck(mid, out))
    layers.extend([GlobalPool(), Dense(1000)])
    return Network("ResNet50", (3, 224, 224), layers)


def _inception_block(sizes: tuple[int, ...]) -> list[Layer]:
    """Flattened inception module: parallel branches as conv stack."""
    one, three_reduce, three, double_reduce, double, pool_proj = sizes
    return [
        Conv2D(one, 1, padding=0),
        Conv2D(three_reduce, 1, padding=0),
        Conv2D(three, 3),
        Conv2D(double_reduce, 1, padding=0),
        Conv2D(double, 3),
        Conv2D(pool_proj, 1, padding=0),
    ]


def _inception_v2() -> Network:
    layers: list[Layer] = [
        Conv2D(64, 7, stride=2),
        Pool2D(3, 2),
        Conv2D(64, 1, padding=0),
        Conv2D(192, 3),
        Pool2D(3, 2),
    ]
    for sizes in (
        (64, 64, 64, 64, 96, 32),
        (64, 64, 96, 64, 96, 64),
    ):
        layers.extend(_inception_block(sizes))
    layers.append(Pool2D(3, 2))
    for sizes in (
        (224, 64, 96, 96, 128, 128),
        (192, 96, 128, 96, 128, 128),
        (160, 128, 160, 128, 160, 96),
        (96, 128, 192, 160, 192, 96),
    ):
        layers.extend(_inception_block(sizes))
    layers.append(Pool2D(3, 2))
    for sizes in (
        (352, 192, 320, 160, 224, 128),
        (352, 192, 320, 192, 224, 128),
    ):
        layers.extend(_inception_block(sizes))
    layers.extend([GlobalPool(), Dense(1000)])
    return Network("Inception_V2", (3, 224, 224), layers)


def _fire(squeeze: int, expand: int) -> list[Layer]:
    """SqueezeNet fire module (flattened)."""
    return [
        Conv2D(squeeze, 1, padding=0),
        Conv2D(expand, 1, padding=0),
        Conv2D(expand, 3),
    ]


def _squeezenet() -> Network:
    layers: list[Layer] = [Conv2D(64, 3, stride=2, padding=0), Pool2D(3, 2)]
    layers.extend(_fire(16, 64))
    layers.extend(_fire(16, 64))
    layers.append(Pool2D(3, 2))
    layers.extend(_fire(32, 128))
    layers.extend(_fire(32, 128))
    layers.append(Pool2D(3, 2))
    layers.extend(_fire(48, 192))
    layers.extend(_fire(48, 192))
    layers.extend(_fire(64, 256))
    layers.extend(_fire(64, 256))
    layers.append(Conv2D(1000, 1, padding=0))
    layers.append(GlobalPool())
    return Network("SqueezeNet", (3, 227, 227), layers)


def _biglstm() -> Network:
    """BigLSTM: 2-layer LSTM, 8192 hidden + 1024 projection, large
    (sampled-softmax) vocabulary."""
    return Network(
        "BigLSTM",
        (1024,),  # embedded token width
        [
            LSTMStack(hidden=8192, projection=1024, layers=2, steps=32),
            # Sampled-softmax shortlist logits, emitted every step:
            # these activations dominate the batch-dependent footprint
            # and are why BigLSTM cannot fit a 64 mini-batch in 12 GB.
            RecurrentDense(262144, steps=32),
        ],
    )


NETWORK_BUILDERS = {
    "AlexNet": _alexnet,
    "VGG16": _vgg16,
    "ResNet50": _resnet50,
    "Inception_V2": _inception_v2,
    "SqueezeNet": _squeezenet,
    "BigLSTM": _biglstm,
}


def build_network(name: str) -> Network:
    """Build one of the six DL workloads by (catalog) name."""
    try:
        return NETWORK_BUILDERS[name]()
    except KeyError:
        known = ", ".join(sorted(NETWORK_BUILDERS))
        raise KeyError(f"unknown network {name!r}; known: {known}") from None
