"""DL-training analytics for the paper's case study (Fig. 13).

Layer-level models of the six Table 1 training workloads, plus:

* :mod:`repro.dlmodel.memory` — training footprint vs mini-batch
  (Fig. 13a; Caffe keeps data+diff per blob);
* :mod:`repro.dlmodel.throughput` — an images/s model in the
  Paleo/DeLTA family (Fig. 13b);
* :mod:`repro.dlmodel.casestudy` — throughput gained by the larger
  mini-batches Buddy Compression fits (Fig. 13c);
* :mod:`repro.dlmodel.convergence` — an SGD noise-scale accuracy
  model for the ResNet50/CIFAR100 experiment (Fig. 13d).
"""

from repro.dlmodel.layers import Conv2D, Dense, LSTMStack, Pool2D
from repro.dlmodel.networks import NETWORK_BUILDERS, Network, build_network
from repro.dlmodel.memory import footprint_bytes, max_batch_size
from repro.dlmodel.throughput import images_per_second, speedup_vs_batch
from repro.dlmodel.casestudy import buddy_batch_speedups
from repro.dlmodel.convergence import accuracy_curve, final_accuracy

__all__ = [
    "Conv2D",
    "Dense",
    "LSTMStack",
    "Pool2D",
    "NETWORK_BUILDERS",
    "Network",
    "build_network",
    "footprint_bytes",
    "max_batch_size",
    "images_per_second",
    "speedup_vs_batch",
    "buddy_batch_speedups",
    "accuracy_curve",
    "final_accuracy",
]
