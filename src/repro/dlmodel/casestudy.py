"""Fig. 13c: throughput gained from Buddy-enabled larger batches.

A 12 GB GPU caps each network's mini-batch; Buddy Compression's
per-network compression ratio (from the Fig. 7 pipeline) expands the
effective capacity, fitting a larger batch whose higher utilisation
raises images/s.  The paper reports a 14 % average gain, with VGG16
(+30 %) and BigLSTM (+28 %) leading because their 12 GB batches sit on
the steep part of the utilisation curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dlmodel.memory import TITAN_XP_BYTES, max_batch_size
from repro.dlmodel.networks import NETWORK_BUILDERS, build_network
from repro.dlmodel.throughput import images_per_second


@dataclass
class CaseStudyRow:
    """One network's Fig. 13c entry."""

    network: str
    compression_ratio: float
    baseline_batch: int
    buddy_batch: int
    speedup: float


def buddy_batch_speedups(
    compression_ratios: dict[str, float],
    device_bytes: int = TITAN_XP_BYTES,
    batch_cap: int = 256,
) -> list[CaseStudyRow]:
    """Per-network speedup from compression-expanded capacity.

    Args:
        compression_ratios: Per-network achieved ratios (measured by
            the Fig. 7 pipeline; the paper's DL mean is ~1.5x).
        device_bytes: Physical device memory.
        batch_cap: Largest mini-batch considered (the paper trains up
            to 256).
    """
    rows = []
    # Only the networks a ratio was measured for: subset runs must not
    # pad the table with un-measured entries.
    for name in (n for n in NETWORK_BUILDERS if n in compression_ratios):
        ratio = compression_ratios[name]
        network = build_network(name)
        baseline = min(batch_cap, max_batch_size(network, device_bytes))
        expanded = min(
            batch_cap, max_batch_size(network, int(device_bytes * ratio))
        )
        if baseline < 1:
            continue
        speedup = (
            images_per_second(network, expanded)
            / images_per_second(network, baseline)
        )
        rows.append(
            CaseStudyRow(
                network=name,
                compression_ratio=ratio,
                baseline_batch=baseline,
                buddy_batch=expanded,
                speedup=speedup,
            )
        )
    return rows


def mean_speedup(rows: list[CaseStudyRow]) -> float:
    """Arithmetic-mean speedup across networks (the paper's 14 %)."""
    if not rows:
        return 1.0
    return float(np.mean([row.speedup for row in rows]))
