"""Training memory footprint vs mini-batch size (Fig. 13a).

The footprint has a batch-independent part — weights, weight
gradients, solver momentum — and a part that scales with the
mini-batch: activations (and their diffs, under Caffe) plus framework
workspace.  The transition point where the batch-dependent part takes
over is late for parameter-heavy AlexNet (batch ~96) and early
(<= 32) for the activation-heavy CNNs, exactly Fig. 13a's shape.
"""

from __future__ import annotations

from repro.dlmodel.networks import Network, build_network
from repro.units import GIB, MIB

BYTES_PER_ELEMENT = 4  # fp32 training

#: Weights + weight gradients + SGD momentum.
PARAMETER_COPIES = 3

#: Fixed framework overhead (CUDA context, cuDNN handles, pools).
FRAMEWORK_OVERHEAD_BYTES = 600 * MIB

#: Per-sample workspace factor (im2col / cuDNN scratch) relative to
#: the largest layer activation.
WORKSPACE_FACTOR = 3.5

#: Titan Xp device memory, the paper's measurement GPU.
TITAN_XP_BYTES = 12 * GIB


def footprint_bytes(network: Network | str, batch_size: int) -> int:
    """Device bytes needed to train ``network`` at ``batch_size``."""
    if isinstance(network, str):
        network = build_network(network)
    if batch_size < 1:
        raise ValueError(f"batch size {batch_size} must be positive")
    parameters = network.parameter_count * BYTES_PER_ELEMENT * PARAMETER_COPIES
    activations = (
        network.activation_elements_per_sample * BYTES_PER_ELEMENT * batch_size
    )
    if network.stores_diffs:
        activations *= 2  # Caffe keeps a diff blob per data blob
    largest = max(
        (l.activation_elements(s) for l, s, _ in network.walk()), default=0
    )
    workspace = int(largest * BYTES_PER_ELEMENT * WORKSPACE_FACTOR * batch_size)
    return parameters + activations + workspace + FRAMEWORK_OVERHEAD_BYTES


def max_batch_size(
    network: Network | str, device_bytes: int = TITAN_XP_BYTES
) -> int:
    """Largest mini-batch that fits in ``device_bytes``."""
    if isinstance(network, str):
        network = build_network(network)
    low, high = 0, 1
    while footprint_bytes(network, max(high, 1)) <= device_bytes and high < 1 << 20:
        low, high = high, high * 2
    if low == 0:
        return 0
    while low + 1 < high:
        mid = (low + high) // 2
        if footprint_bytes(network, mid) <= device_bytes:
            low = mid
        else:
            high = mid
    return low


def transition_batch(network: Network | str) -> int:
    """Batch size where activations overtake the parameter copies."""
    if isinstance(network, str):
        network = build_network(network)
    fixed = network.parameter_count * PARAMETER_COPIES
    per_sample = network.activation_elements_per_sample
    if network.stores_diffs:
        per_sample *= 2
    return max(1, fixed // max(per_sample, 1))
