"""Layer algebra for the DL analytical models.

Each layer reports, per sample: output shape, parameter count,
forward FLOPs, and stored activation elements.  Training-time costs
derive from these (backward ~= 2x forward FLOPs; Caffe keeps a diff
blob alongside every data blob).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

Shape = tuple[int, ...]  # (channels, height, width) or (features,)


class Layer(abc.ABC):
    """One network layer."""

    name: str = "layer"

    @abc.abstractmethod
    def output_shape(self, input_shape: Shape) -> Shape:
        """Shape produced for one sample."""

    @abc.abstractmethod
    def parameters(self, input_shape: Shape) -> int:
        """Learnable parameter count."""

    @abc.abstractmethod
    def forward_flops(self, input_shape: Shape) -> int:
        """Multiply-accumulate FLOPs per sample (forward pass)."""

    def activation_elements(self, input_shape: Shape) -> int:
        """Elements stored for the backward pass, per sample."""
        return _volume(self.output_shape(input_shape))

    #: Parallelism granularity: independent output tiles available to
    #: fill the GPU regardless of batch (convolutions parallelise over
    #: pixels; GEMM-on-batch layers need large mini-batches).
    def intrinsic_parallelism(self, input_shape: Shape) -> float:
        return float(_volume(self.output_shape(input_shape)))


def _volume(shape: Shape) -> int:
    result = 1
    for dim in shape:
        result *= dim
    return result


@dataclass(frozen=True)
class Conv2D(Layer):
    """2-D convolution (with implicit ReLU/BN fused for accounting)."""

    out_channels: int
    kernel: int
    stride: int = 1
    padding: int | None = None  # default: 'same'-ish kernel//2

    @property
    def name(self) -> str:
        return f"conv{self.kernel}x{self.kernel}/{self.out_channels}"

    def output_shape(self, input_shape: Shape) -> Shape:
        channels, height, width = input_shape
        pad = self.kernel // 2 if self.padding is None else self.padding
        out_h = (height + 2 * pad - self.kernel) // self.stride + 1
        out_w = (width + 2 * pad - self.kernel) // self.stride + 1
        return (self.out_channels, out_h, out_w)

    def parameters(self, input_shape: Shape) -> int:
        in_channels = input_shape[0]
        return self.out_channels * (in_channels * self.kernel**2 + 1)

    def forward_flops(self, input_shape: Shape) -> int:
        out = self.output_shape(input_shape)
        return 2 * _volume(out) * input_shape[0] * self.kernel**2


@dataclass(frozen=True)
class Pool2D(Layer):
    """Max/avg pooling."""

    kernel: int
    stride: int | None = None

    @property
    def name(self) -> str:
        return f"pool{self.kernel}"

    def output_shape(self, input_shape: Shape) -> Shape:
        channels, height, width = input_shape
        stride = self.stride or self.kernel
        return (channels, max(1, height // stride), max(1, width // stride))

    def parameters(self, input_shape: Shape) -> int:
        return 0

    def forward_flops(self, input_shape: Shape) -> int:
        return _volume(self.output_shape(input_shape)) * self.kernel**2


@dataclass(frozen=True)
class GlobalPool(Layer):
    """Global average pooling to (channels,)."""

    name = "globalpool"

    def output_shape(self, input_shape: Shape) -> Shape:
        return (input_shape[0],)

    def parameters(self, input_shape: Shape) -> int:
        return 0

    def forward_flops(self, input_shape: Shape) -> int:
        return _volume(input_shape)


@dataclass(frozen=True)
class Dense(Layer):
    """Fully connected layer."""

    out_features: int

    @property
    def name(self) -> str:
        return f"fc{self.out_features}"

    def output_shape(self, input_shape: Shape) -> Shape:
        return (self.out_features,)

    def parameters(self, input_shape: Shape) -> int:
        return self.out_features * (_volume(input_shape) + 1)

    def forward_flops(self, input_shape: Shape) -> int:
        return 2 * self.out_features * _volume(input_shape)

    def intrinsic_parallelism(self, input_shape: Shape) -> float:
        # A GEMV per sample: only batching supplies parallelism.
        return float(self.out_features) / 64.0


@dataclass(frozen=True)
class LSTMStack(Layer):
    """Stacked LSTM with projection (BigLSTM-style), unrolled.

    Attributes:
        hidden: Recurrent state width (8192 for BigLSTM).
        projection: Projection width (1024).
        layers: Stacked layers (2).
        steps: Unroll length per sample.
    """

    hidden: int
    projection: int
    layers: int = 2
    steps: int = 20

    @property
    def name(self) -> str:
        return f"lstm{self.layers}x{self.hidden}"

    def output_shape(self, input_shape: Shape) -> Shape:
        return (self.projection,)

    def parameters(self, input_shape: Shape) -> int:
        input_width = _volume(input_shape)
        total = 0
        width = input_width
        for _ in range(self.layers):
            gates = 4 * self.hidden * (width + self.projection + 1)
            project = self.hidden * self.projection
            total += gates + project
            width = self.projection
        return total

    def forward_flops(self, input_shape: Shape) -> int:
        return 2 * self.parameters(input_shape) * self.steps

    def activation_elements(self, input_shape: Shape) -> int:
        per_step = self.layers * (4 * self.hidden + self.projection)
        return per_step * self.steps

    def intrinsic_parallelism(self, input_shape: Shape) -> float:
        # Recurrent steps serialise; the batch is the parallel axis.
        return float(self.hidden) / 256.0


@dataclass(frozen=True)
class RecurrentDense(Layer):
    """A dense head applied at every unroll step (LSTM softmax).

    BigLSTM's (sampled-)softmax logits are produced per step; their
    activations dominate the network's batch-scaling footprint.
    """

    out_features: int
    steps: int = 20

    @property
    def name(self) -> str:
        return f"rfc{self.out_features}x{self.steps}"

    def output_shape(self, input_shape: Shape) -> Shape:
        return (self.out_features,)

    def parameters(self, input_shape: Shape) -> int:
        return self.out_features * (_volume(input_shape) + 1)

    def forward_flops(self, input_shape: Shape) -> int:
        return 2 * self.out_features * _volume(input_shape) * self.steps

    def activation_elements(self, input_shape: Shape) -> int:
        return self.out_features * self.steps

    def intrinsic_parallelism(self, input_shape: Shape) -> float:
        return float(self.out_features) * self.steps / 64.0
