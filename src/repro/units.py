"""Unit helpers shared across the library.

The paper mixes units freely (GB footprints, GB/s links, 32 B sectors,
DRAM cycles).  Centralising the constants keeps every module consistent
and makes the Table 1 / Table 2 configuration readable.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

#: The paper's compression granularity: one memory-entry is 128 bytes.
MEMORY_ENTRY_BYTES = 128

#: GPU DRAM access granularity (GDDR5/5X/6 and HBM2 alike): 32 byte sectors.
SECTOR_BYTES = 32

#: Sectors per memory-entry (128 B / 32 B).
SECTORS_PER_ENTRY = MEMORY_ENTRY_BYTES // SECTOR_BYTES

#: Device-resident bytes for the mostly-zero 16x target class.
ZERO_CLASS_BYTES = 8

#: Bytes per metadata line (Section 3.2): size metadata is prefetched
#: one DRAM sector at a time, so the line matches the sector.
METADATA_LINE_BYTES = SECTOR_BYTES

#: Metadata bits per 128 B memory-entry.
METADATA_BITS_PER_ENTRY = 4

#: Entries covered by one metadata line (64 with the paper's codes).
ENTRIES_PER_METADATA_LINE = (
    METADATA_LINE_BYTES * 8 // METADATA_BITS_PER_ENTRY
)

#: Words (uint32) per memory-entry; BPC operates on 32-bit words.
WORDS_PER_ENTRY = MEMORY_ENTRY_BYTES // 4

#: The free compressed sizes assumed by the paper's Fig. 3 study.
FREE_COMPRESSED_SIZES = (0, 8, 16, 32, 64, 80, 96, 128)

#: Page size used by the paper's spatial analysis (Fig. 6).
PAGE_BYTES = 8 * KIB

#: Memory-entries per 8 KB page.
ENTRIES_PER_PAGE = PAGE_BYTES // MEMORY_ENTRY_BYTES


def bytes_to_human(num_bytes: float) -> str:
    """Render a byte count like ``2.83GB`` (decimal units, as Table 1 does)."""
    if num_bytes >= GB:
        return f"{num_bytes / GB:.2f}GB"
    if num_bytes >= MB:
        return f"{num_bytes / MB:.2f}MB"
    if num_bytes >= KB:
        return f"{num_bytes / KB:.2f}KB"
    return f"{num_bytes:.0f}B"


def gbps_to_bytes_per_cycle(gbps: float, clock_hz: float) -> float:
    """Convert a link bandwidth in GB/s to bytes per clock cycle."""
    return gbps * 1e9 / clock_hz
