"""Benchmark catalog (paper Table 1) plus per-benchmark character.

The catalog records the published footprints and, for the performance
studies, the *memory-access character* of each benchmark that the
paper's Section 4 discusses qualitatively: DL training kernels are
streaming and fully coalesced; 354.cg and 360.ilbdc are random-gather
codes that touch single sectors; FF_Lulesh is latency-sensitive;
FF_HPGMG performs synchronous host copies in its native form.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.units import GB, MB


class Suite(enum.Enum):
    """Benchmark suite groupings used throughout the evaluation."""

    HPC_SPECACCEL = "SpecAccel"
    HPC_FASTFORWARD = "FastForward"
    DL_TRAINING = "DL"

    @property
    def is_hpc(self) -> bool:
        return self is not Suite.DL_TRAINING


class AccessPattern(enum.Enum):
    """Dominant device-memory access pattern of the traced kernel."""

    STREAMING = "streaming"  # unit-stride, fully coalesced (DL GEMMs)
    STRIDED = "strided"  # regular but partially coalesced stencils
    RANDOM = "random"  # gather/scatter touching single sectors


@dataclass(frozen=True)
class TraceCharacter:
    """Parameters steering the synthetic trace generator.

    Attributes:
        pattern: Dominant address pattern.
        sectors_per_access: Average 32 B sectors touched per warp
            memory instruction (4 = fully coalesced 128 B).
        compute_per_memory: Arithmetic instructions per memory
            instruction (higher = less bandwidth-bound).
        load_fraction: Fraction of memory instructions that are loads.
        working_set_fraction: Fraction of the footprint the traced
            kernel touches (hot set).
        latency_sensitivity: 0..1; how exposed the kernel is to added
            memory latency (FF_Lulesh is the paper's example).
        host_traffic_fraction: Fraction of memory traffic that goes to
            host memory even without compression (FF_HPGMG's native
            synchronous copies).
    """

    pattern: AccessPattern
    sectors_per_access: float
    compute_per_memory: float
    load_fraction: float = 0.7
    working_set_fraction: float = 0.5
    latency_sensitivity: float = 0.2
    host_traffic_fraction: float = 0.0
    stride_entries: int = 3


@dataclass(frozen=True)
class Benchmark:
    """One Table 1 benchmark."""

    name: str
    suite: Suite
    footprint_bytes: int
    description: str
    character: TraceCharacter

    @property
    def is_hpc(self) -> bool:
        return self.suite.is_hpc


def _hpc(pattern: AccessPattern, sectors: float, compute: float, **kw) -> TraceCharacter:
    return TraceCharacter(pattern, sectors, compute, **kw)


#: Table 1, in paper order, with Section-4 character annotations.
ALL_BENCHMARKS: tuple[Benchmark, ...] = (
    Benchmark(
        "351.palm",
        Suite.HPC_SPECACCEL,
        int(2.89 * GB),
        "Large-eddy atmospheric simulation (PALM)",
        _hpc(AccessPattern.STRIDED, 3.2, 15.0, working_set_fraction=0.8,
             latency_sensitivity=0.25, stride_entries=16),
    ),
    Benchmark(
        "352.ep",
        Suite.HPC_SPECACCEL,
        int(2.75 * GB),
        "Embarrassingly parallel random-number kernel (NAS EP)",
        _hpc(AccessPattern.STREAMING, 4.0, 28.0, working_set_fraction=0.35,
             latency_sensitivity=0.1),
    ),
    Benchmark(
        "354.cg",
        Suite.HPC_SPECACCEL,
        int(1.23 * GB),
        "Conjugate gradient, sparse matrix-vector (NAS CG)",
        _hpc(AccessPattern.RANDOM, 1.1, 3.0, working_set_fraction=0.7,
             latency_sensitivity=0.35),
    ),
    Benchmark(
        "355.seismic",
        Suite.HPC_SPECACCEL,
        int(2.83 * GB),
        "Seismic wave propagation",
        _hpc(AccessPattern.STRIDED, 3.6, 15.0, working_set_fraction=0.85,
             latency_sensitivity=0.15, stride_entries=16),
    ),
    Benchmark(
        "356.sp",
        Suite.HPC_SPECACCEL,
        int(2.83 * GB),
        "Scalar penta-diagonal solver (NAS SP)",
        _hpc(AccessPattern.STRIDED, 3.0, 11.0, working_set_fraction=0.8,
             latency_sensitivity=0.25),
    ),
    Benchmark(
        "357.csp",
        Suite.HPC_SPECACCEL,
        int(1.44 * GB),
        "C version of the SP solver",
        _hpc(AccessPattern.STRIDED, 3.0, 13.5, working_set_fraction=0.75,
             latency_sensitivity=0.25),
    ),
    Benchmark(
        "360.ilbdc",
        Suite.HPC_SPECACCEL,
        int(1.94 * GB),
        "Lattice-Boltzmann flow solver (list-based)",
        _hpc(AccessPattern.RANDOM, 1.2, 2.5, working_set_fraction=0.95,
             latency_sensitivity=0.3),
    ),
    Benchmark(
        "370.bt",
        Suite.HPC_SPECACCEL,
        int(1.21 * MB),
        "Block tri-diagonal solver (NAS BT)",
        _hpc(AccessPattern.STRIDED, 2.8, 11.0, working_set_fraction=0.9,
             latency_sensitivity=0.25),
    ),
    Benchmark(
        "FF_HPGMG",
        Suite.HPC_FASTFORWARD,
        int(2.32 * GB),
        "High-performance geometric multigrid (finite volume)",
        _hpc(AccessPattern.STRIDED, 2.6, 8.0, working_set_fraction=0.7,
             latency_sensitivity=0.3, host_traffic_fraction=0.06,
             stride_entries=5),
    ),
    Benchmark(
        "FF_Lulesh",
        Suite.HPC_FASTFORWARD,
        int(1.59 * GB),
        "Unstructured shock hydrodynamics proxy app",
        _hpc(AccessPattern.STREAMING, 3.4, 9.0, working_set_fraction=0.75,
             latency_sensitivity=0.85),
    ),
    Benchmark(
        "BigLSTM",
        Suite.DL_TRAINING,
        int(2.71 * GB),
        "2-layer LSTM language model, 8192+1024 recurrent state",
        _hpc(AccessPattern.STREAMING, 4.0, 12.0, working_set_fraction=0.6,
             latency_sensitivity=0.1),
    ),
    Benchmark(
        "AlexNet",
        Suite.DL_TRAINING,
        int(8.85 * GB),
        "CNN, ImageNet training under Caffe",
        _hpc(AccessPattern.STREAMING, 4.0, 11.0, working_set_fraction=0.55,
             latency_sensitivity=0.1),
    ),
    Benchmark(
        "Inception_V2",
        Suite.DL_TRAINING,
        int(3.21 * GB),
        "CNN, ImageNet training under Caffe",
        _hpc(AccessPattern.STREAMING, 4.0, 12.5, working_set_fraction=0.55,
             latency_sensitivity=0.1),
    ),
    Benchmark(
        "SqueezeNet",
        Suite.DL_TRAINING,
        int(2.03 * GB),
        "SqueezeNet v1.1, ImageNet training under Caffe",
        _hpc(AccessPattern.STREAMING, 4.0, 11.5, working_set_fraction=0.6,
             latency_sensitivity=0.1),
    ),
    Benchmark(
        "VGG16",
        Suite.DL_TRAINING,
        int(11.08 * GB),
        "CNN, ImageNet training under Caffe",
        _hpc(AccessPattern.STREAMING, 4.0, 13.0, working_set_fraction=0.5,
             latency_sensitivity=0.1),
    ),
    Benchmark(
        "ResNet50",
        Suite.DL_TRAINING,
        int(4.50 * GB),
        "CNN, ImageNet training under Caffe",
        _hpc(AccessPattern.STREAMING, 4.0, 12.0, working_set_fraction=0.55,
             latency_sensitivity=0.1),
    ),
)

HPC_BENCHMARKS: tuple[Benchmark, ...] = tuple(
    b for b in ALL_BENCHMARKS if b.is_hpc
)
DL_BENCHMARKS: tuple[Benchmark, ...] = tuple(
    b for b in ALL_BENCHMARKS if not b.is_hpc
)

_BY_NAME = {b.name: b for b in ALL_BENCHMARKS}

#: Aliases accepted by :func:`get_benchmark` (paper uses both spellings).
_ALIASES = {
    "FF_HPGMG-FV": "FF_HPGMG",
    "SqueezeNetv1.1": "SqueezeNet",
    "Inception V2": "Inception_V2",
}


def get_benchmark(name: str) -> Benchmark:
    """Look up a benchmark by name (paper spellings accepted)."""
    canonical = _ALIASES.get(name, name)
    try:
        return _BY_NAME[canonical]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
