"""Data-pattern primitives with known Bit-Plane-Compression behaviour.

Each 128 B memory-entry generated here belongs to an
:class:`EntryClass` whose BPC-compressed size lands (with high
probability) in a known 32 B-sector bucket:

========  ==========================  ===========  ==============
Class     Pattern                     BPC size     Device sectors
========  ==========================  ===========  ==============
ZERO      all-zero entry              ~2 B         1 (16x-able)
CONST     one repeated word           ~6 B         1 (16x-able)
SECTOR1   random walk, 4-bit deltas   ~26 B        1
SECTOR2   random walk, 11-bit deltas  ~55 B        2
SECTOR3   random walk, 19-bit deltas  ~87 B        3
SECTOR4   uniform random words        128 B        4
========  ==========================  ===========  ==============

Random walks are what BPC is designed for — they model the
homogeneous numeric arrays (fields, indices, activations) that the
paper observes dominate GPU workloads.  The class → sector mapping is
verified empirically by ``tests/test_workloads.py``.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.units import WORDS_PER_ENTRY


class EntryClass(enum.IntEnum):
    """Compressibility class of one 128 B memory-entry."""

    ZERO = 0
    CONST = 1
    SECTOR1 = 2
    SECTOR2 = 3
    SECTOR3 = 4
    SECTOR4 = 5

    @property
    def nominal_sectors(self) -> int:
        """Device sectors the class occupies once sector-quantised."""
        return _NOMINAL_SECTORS[self]

    @property
    def nominal_free_bytes(self) -> int:
        """Free-size quantisation (Fig. 3 study) of the class."""
        return _NOMINAL_FREE[self]

    @property
    def zero_class_eligible(self) -> bool:
        """Whether entries of this class fit the 16x (8 B) slot."""
        return self in (EntryClass.ZERO, EntryClass.CONST)


_NOMINAL_SECTORS = {
    EntryClass.ZERO: 1,
    EntryClass.CONST: 1,
    EntryClass.SECTOR1: 1,
    EntryClass.SECTOR2: 2,
    EntryClass.SECTOR3: 3,
    EntryClass.SECTOR4: 4,
}

_NOMINAL_FREE = {
    EntryClass.ZERO: 0,
    EntryClass.CONST: 8,
    EntryClass.SECTOR1: 32,
    EntryClass.SECTOR2: 64,
    EntryClass.SECTOR3: 96,
    EntryClass.SECTOR4: 128,
}

#: Random-walk delta magnitude (bits) per sectored class.
_DELTA_BITS = {
    EntryClass.SECTOR1: 4,
    EntryClass.SECTOR2: 11,
    EntryClass.SECTOR3: 19,
}

#: Number of classes (used for vectorised mixing).
NUM_CLASSES = len(EntryClass)


def generate_entries(
    classes: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Generate one 128 B entry per requested class.

    Args:
        classes: ``(n,)`` integer array of :class:`EntryClass` values.
        rng: Source of randomness.

    Returns:
        ``(n, 32)`` uint32 array of memory-entry words.
    """
    classes = np.asarray(classes, dtype=np.int64)
    n = classes.size
    blocks = np.zeros((n, WORDS_PER_ENTRY), dtype=np.uint32)

    const_mask = classes == EntryClass.CONST
    count = int(const_mask.sum())
    if count:
        # Repeated non-zero words: float-one-like palette plus small ints.
        palette = np.array(
            [0x3F800000, 0x3F000000, 0x00000001, 0x0000FFFF, 0x40490FDB],
            dtype=np.uint32,
        )
        choice = rng.integers(0, palette.size, count)
        blocks[const_mask] = palette[choice][:, None]

    for cls, bits in _DELTA_BITS.items():
        mask = classes == cls
        count = int(mask.sum())
        if not count:
            continue
        blocks[mask] = _random_walk(count, bits, rng)

    mask = classes == EntryClass.SECTOR4
    count = int(mask.sum())
    if count:
        blocks[mask] = rng.integers(
            0, 2**32, (count, WORDS_PER_ENTRY), dtype=np.uint32
        )
    return blocks


def _random_walk(n: int, delta_bits: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` entries whose word-to-word deltas span ``delta_bits`` bits.

    BPC's compressed size for such entries is dominated by
    ``delta_bits`` raw bit-planes (~32 bits each); the sign planes
    collapse into a single zero-run.
    """
    bound = 1 << delta_bits
    deltas = rng.integers(-bound, bound, (n, WORDS_PER_ENTRY - 1), dtype=np.int64)
    base = rng.integers(0, 1 << 14, (n, 1), dtype=np.int64)
    words = np.concatenate([base, base + np.cumsum(deltas, axis=1)], axis=1)
    return (words & 0xFFFF_FFFF).astype(np.uint32)


def nominal_sectors_for(classes: np.ndarray) -> np.ndarray:
    """Vectorised nominal sector count per class value."""
    table = np.array([_NOMINAL_SECTORS[c] for c in EntryClass], dtype=np.int64)
    return table[np.asarray(classes, dtype=np.int64)]


def nominal_free_bytes_for(classes: np.ndarray) -> np.ndarray:
    """Vectorised nominal free-size bytes per class value."""
    table = np.array([_NOMINAL_FREE[c] for c in EntryClass], dtype=np.int64)
    return table[np.asarray(classes, dtype=np.int64)]


def zero_class_eligible_for(classes: np.ndarray) -> np.ndarray:
    """Vectorised 16x (8 B slot) eligibility per class value."""
    table = np.array([c.zero_class_eligible for c in EntryClass])
    return table[np.asarray(classes, dtype=np.int64)]
