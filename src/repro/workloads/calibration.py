"""Per-benchmark allocation specifications.

Every benchmark is modelled as the set of ``cudamalloc`` allocations
its run creates.  Each allocation has a *class mix* — probabilities
over the :class:`~repro.workloads.valuemodels.EntryClass` buckets — a
spatial *layout* (how classes arrange within the allocation: the
paper's Fig. 6 heatmaps), per-snapshot *churn* (DL frameworks reuse
pool memory: Fig. 8), and optional *drift* of the mix over the run
(355.seismic's zeros filling in over time: Fig. 3).

Calibration principles (matching the paper's observations):

* HPC allocations are *bimodal*: either dominated by one class with a
  thin (<2 %) tail of less-compressible entries, or outright
  incompressible.  This is why per-allocation targets give HPC nearly
  free compression (buddy accesses well under 1 %).
* DL allocations are pool-backed and mixed: activations/gradients
  carry a 4–8 % above-target tail, and a sizeable scratch region is
  incompressible.  This produces the paper's ~4–6 % buddy accesses
  and the large gap between naive and per-allocation designs.
* 352.ep, VGG16, and friends carry large mostly-zero regions — the
  motivation for the 16x zero-page class.
* FF_HPGMG's struct-of-arrays stripes defeat per-allocation targets
  (the paper: >80 % Buddy Threshold would be needed), so its achieved
  ratio sits well below its best-achievable compression.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Layout identifiers (see :mod:`repro.workloads.snapshots`).
LAYOUT_UNIFORM = "uniform"
LAYOUT_BLOCKED = "blocked"
LAYOUT_STRIPED = "striped"


@dataclass(frozen=True)
class ClassMix:
    """A probability distribution over entry classes."""

    zero: float = 0.0
    const: float = 0.0
    sector1: float = 0.0
    sector2: float = 0.0
    sector3: float = 0.0
    sector4: float = 0.0

    def __post_init__(self) -> None:
        total = self.as_array().sum()
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"class mix sums to {total}, expected 1.0")

    def as_array(self) -> np.ndarray:
        return np.array(
            [self.zero, self.const, self.sector1, self.sector2, self.sector3,
             self.sector4],
            dtype=np.float64,
        )

    def blend(self, other: "ClassMix", weight: float) -> "ClassMix":
        """Linear interpolation ``(1-weight)*self + weight*other``."""
        mixed = (1.0 - weight) * self.as_array() + weight * other.as_array()
        return ClassMix(*mixed)


@dataclass(frozen=True)
class AllocationSpec:
    """One modelled ``cudamalloc`` region of a benchmark.

    Attributes:
        name: Allocation label (used in reports and Fig. 6 plots).
        fraction: Fraction of the benchmark footprint.
        mix: Class mix at the start of the run.
        end_mix: Class mix at the end of the run (defaults to ``mix``);
            snapshots interpolate between the two.
        layout: Spatial arrangement of classes within the allocation.
        stripe_period: Stripe period in entries (``striped`` layout).
        churn: Fraction of entries re-rolled from the mix each
            snapshot (models DL memory-pool reuse).
        block_run: Mean run length in entries for ``blocked`` layout.
        access_weight: Relative dynamic access intensity per byte —
            DL scratch buffers are touched every layer while weight
            tensors are read once per pass and cached.  The trace
            generator sizes each allocation's share of the hot set by
            ``fraction * access_weight``.
    """

    name: str
    fraction: float
    mix: ClassMix
    end_mix: ClassMix | None = None
    layout: str = LAYOUT_BLOCKED
    stripe_period: int = 8
    churn: float = 0.0
    block_run: int = 256
    access_weight: float = 1.0

    def mix_at(self, progress: float) -> ClassMix:
        """Class mix at run progress ``progress`` in [0, 1]."""
        if self.end_mix is None:
            return self.mix
        return self.mix.blend(self.end_mix, float(np.clip(progress, 0.0, 1.0)))


@dataclass(frozen=True)
class BenchmarkDataSpec:
    """Allocation list for one benchmark."""

    benchmark: str
    allocations: tuple[AllocationSpec, ...]

    def __post_init__(self) -> None:
        total = sum(a.fraction for a in self.allocations)
        if not np.isclose(total, 1.0, atol=1e-3):
            raise ValueError(
                f"{self.benchmark}: allocation fractions sum to {total}"
            )


def _m(**kw: float) -> ClassMix:
    """Shorthand mix constructor."""
    return ClassMix(**kw)


# ---------------------------------------------------------------------------
# HPC benchmarks: bimodal allocations (Fig. 6 left panels).
# ---------------------------------------------------------------------------
_HPC_SPECS = (
    BenchmarkDataSpec(
        "351.palm",
        (
            AllocationSpec("flow_fields", 0.42,
                           _m(sector1=0.10, sector2=0.896, sector3=0.003, sector4=0.001)),
            AllocationSpec("scalars", 0.24,
                           _m(const=0.06, sector1=0.935, sector2=0.005)),
            AllocationSpec("spectra", 0.06, _m(sector3=0.10, sector4=0.90)),
            AllocationSpec("halo_buffers", 0.18,
                           _m(zero=0.862, const=0.12, sector1=0.018),
                           access_weight=0.4),
            AllocationSpec("statistics", 0.10,
                           _m(sector2=0.645, sector3=0.35, sector4=0.005)),
        ),
    ),
    BenchmarkDataSpec(
        "352.ep",
        (
            # The result pool stays mostly zero for the whole run —
            # the flagship 16x zero-page case.  Its share is sized so
            # the promotion keeps the program under the 4x carve-out
            # cap.
            AllocationSpec("result_pool", 0.55,
                           _m(zero=0.947, const=0.05, sector4=0.003),
                           access_weight=0.15),
            AllocationSpec("rng_state", 0.12, _m(sector3=0.04, sector4=0.96),
                           access_weight=2.5),
            AllocationSpec("partial_sums", 0.18,
                           _m(sector1=0.98, sector2=0.018, sector4=0.002)),
            AllocationSpec("histogram", 0.15,
                           _m(sector1=0.55, sector2=0.448, sector4=0.002)),
        ),
    ),
    BenchmarkDataSpec(
        "354.cg",
        (
            AllocationSpec("matrix_values", 0.58, _m(sector3=0.03, sector4=0.97)),
            AllocationSpec("column_indices", 0.20, _m(sector3=0.50, sector4=0.50)),
            AllocationSpec("vectors", 0.10, _m(sector3=0.12, sector4=0.88)),
            AllocationSpec("row_pointers", 0.12,
                           _m(const=0.02, sector1=0.975, sector2=0.005)),
        ),
    ),
    BenchmarkDataSpec(
        "355.seismic",
        (
            AllocationSpec(
                "wavefields", 0.60,
                _m(zero=0.90, const=0.04, sector2=0.055, sector3=0.004, sector4=0.001),
                end_mix=_m(zero=0.05, const=0.03, sector1=0.05, sector2=0.862,
                           sector3=0.006, sector4=0.002),
            ),
            AllocationSpec("velocity_model", 0.22,
                           _m(sector1=0.05, sector2=0.942, sector3=0.006, sector4=0.002)),
            AllocationSpec(
                "absorbing_boundaries", 0.10,
                _m(zero=0.72, const=0.10, sector2=0.18),
                end_mix=_m(zero=0.20, const=0.06, sector2=0.732, sector3=0.008),
            ),
            AllocationSpec("receivers", 0.08, _m(sector1=0.995, sector2=0.005)),
        ),
    ),
    BenchmarkDataSpec(
        "356.sp",
        (
            AllocationSpec("solution", 0.38,
                           _m(sector1=0.04, sector2=0.956, sector3=0.003, sector4=0.001)),
            AllocationSpec("rhs", 0.24,
                           _m(const=0.04, sector1=0.956, sector2=0.004)),
            AllocationSpec("forcing", 0.22,
                           _m(zero=0.87, const=0.115, sector1=0.015),
                           access_weight=0.3),
            AllocationSpec("lhs_work", 0.08, _m(sector3=0.40, sector4=0.60)),
            AllocationSpec("residuals", 0.08,
                           _m(sector2=0.99, sector3=0.006, sector4=0.004)),
        ),
    ),
    BenchmarkDataSpec(
        "357.csp",
        (
            AllocationSpec("solution", 0.40,
                           _m(sector1=0.04, sector2=0.952, sector3=0.005, sector4=0.003)),
            AllocationSpec("rhs", 0.22,
                           _m(const=0.03, sector1=0.966, sector2=0.004)),
            AllocationSpec("forcing", 0.18,
                           _m(zero=0.875, const=0.11, sector1=0.015),
                           access_weight=0.3),
            AllocationSpec("lhs_work", 0.12, _m(sector3=0.45, sector4=0.55)),
            AllocationSpec("residuals", 0.08,
                           _m(sector2=0.992, sector3=0.005, sector4=0.003)),
        ),
    ),
    BenchmarkDataSpec(
        "360.ilbdc",
        (
            AllocationSpec("distributions", 0.64,
                           _m(sector2=0.995, sector3=0.003, sector4=0.002)),
            AllocationSpec("adjacency_lists", 0.18, _m(sector3=0.30, sector4=0.70)),
            AllocationSpec("node_flags", 0.12,
                           _m(const=0.25, sector1=0.74, sector2=0.01)),
            AllocationSpec("macroscopic", 0.06,
                           _m(sector2=0.985, sector3=0.01, sector4=0.005)),
        ),
    ),
    BenchmarkDataSpec(
        "370.bt",
        (
            AllocationSpec("block_matrices", 0.60, _m(sector3=0.15, sector4=0.85)),
            AllocationSpec("solution", 0.25,
                           _m(sector1=0.05, sector2=0.945, sector4=0.005)),
            AllocationSpec("rhs", 0.15,
                           _m(const=0.02, sector1=0.975, sector2=0.005)),
        ),
    ),
    BenchmarkDataSpec(
        "FF_HPGMG",
        (
            # Arrays of heterogeneous structs: striped compressibility
            # (the paper calls this pattern out explicitly).  The S4
            # stripe share keeps every compressed target above the
            # 30 % Buddy Threshold, so this region stays at 1x even
            # though its data averages ~1.5x compressible.
            AllocationSpec(
                "box_structs", 0.48,
                _m(sector1=0.30, sector2=0.25, sector4=0.45),
                layout=LAYOUT_STRIPED, stripe_period=8,
            ),
            AllocationSpec("fine_grids", 0.28,
                           _m(sector1=0.04, sector2=0.952, sector4=0.008)),
            AllocationSpec("coarse_grids", 0.16,
                           _m(zero=0.725, const=0.26, sector4=0.015),
                           access_weight=0.4),
            AllocationSpec("restriction_maps", 0.08,
                           _m(const=0.02, sector1=0.96, sector2=0.02)),
        ),
    ),
    BenchmarkDataSpec(
        "FF_Lulesh",
        (
            AllocationSpec("nodal_fields", 0.44,
                           _m(sector1=0.045, sector2=0.952, sector4=0.003)),
            AllocationSpec("element_fields", 0.32,
                           _m(sector2=0.972, sector3=0.02, sector4=0.008)),
            AllocationSpec("connectivity", 0.08, _m(sector3=0.55, sector4=0.45)),
            AllocationSpec("symmetry_planes", 0.16,
                           _m(zero=0.825, const=0.16, sector1=0.015),
                           access_weight=0.3),
        ),
    ),
)

# ---------------------------------------------------------------------------
# DL benchmarks: pool-allocated, mixed compressibility, churn (Fig. 8).
# ---------------------------------------------------------------------------
_DL_CHURN = 0.25  # fraction of pool entries repurposed between snapshots


def _dl_spec(
    benchmark: str,
    weights: tuple[float, ClassMix],
    activations: tuple[float, ClassMix],
    gradients: tuple[float, ClassMix],
    workspace: tuple[float, ClassMix],
    zero_pool: tuple[float, ClassMix] | None = None,
) -> BenchmarkDataSpec:
    """DL allocation template: weights / activations / gradients / scratch."""
    allocations = [
        AllocationSpec("weights", weights[0], weights[1],
                       layout=LAYOUT_BLOCKED, churn=0.02, access_weight=0.6),
        AllocationSpec("activations", activations[0], activations[1],
                       layout=LAYOUT_UNIFORM, churn=_DL_CHURN,
                       access_weight=1.5),
        AllocationSpec("gradients", gradients[0], gradients[1],
                       layout=LAYOUT_UNIFORM, churn=_DL_CHURN,
                       access_weight=1.2),
        AllocationSpec("workspace", workspace[0], workspace[1],
                       layout=LAYOUT_UNIFORM, churn=2 * _DL_CHURN,
                       access_weight=2.2),
    ]
    if zero_pool is not None:
        allocations.append(
            AllocationSpec("reserved_pool", zero_pool[0], zero_pool[1],
                           layout=LAYOUT_BLOCKED, churn=0.01,
                           access_weight=0.2)
        )
    return BenchmarkDataSpec(benchmark, tuple(allocations))


#: BPC on fp32 weight tensors: mostly 3 sectors, thin 4-sector tail.
_WEIGHTS_MIX = _m(sector2=0.05, sector3=0.90, sector4=0.05)

#: Incompressible scratch/workspace (im2col buffers, cuDNN workspace).
#: These regions are what keep the naive whole-program design from
#: compressing DL workloads: at a whole-program 1.33x target they all
#: overflow to buddy-memory, while per-allocation targets leave them
#: uncompressed at no cost.
_SCRATCH_MIX = _m(sector2=0.08, sector3=0.12, sector4=0.80)

_DL_SPECS = (
    _dl_spec(
        "BigLSTM",
        weights=(0.34, _m(sector2=0.05, sector3=0.91, sector4=0.04)),
        activations=(0.26, _m(zero=0.12, sector1=0.10, sector2=0.72, sector3=0.04, sector4=0.02)),
        gradients=(0.14, _m(sector2=0.94, sector3=0.04, sector4=0.02)),
        workspace=(0.26, _SCRATCH_MIX),
    ),
    _dl_spec(
        "AlexNet",
        weights=(0.38, _m(sector2=0.06, sector3=0.88, sector4=0.06)),
        activations=(0.22, _m(zero=0.18, sector1=0.12, sector2=0.58, sector3=0.07, sector4=0.05)),
        gradients=(0.12, _m(sector2=0.92, sector3=0.05, sector4=0.03)),
        workspace=(0.18, _SCRATCH_MIX),
        zero_pool=(0.10, _m(zero=0.93, const=0.06, sector4=0.01)),
    ),
    _dl_spec(
        "Inception_V2",
        weights=(0.22, _WEIGHTS_MIX),
        activations=(0.30, _m(zero=0.26, sector1=0.12, sector2=0.54, sector3=0.05, sector4=0.03)),
        gradients=(0.18, _m(sector2=0.93, sector3=0.04, sector4=0.03)),
        workspace=(0.22, _SCRATCH_MIX),
        zero_pool=(0.08, _m(zero=0.94, const=0.05, sector4=0.01)),
    ),
    _dl_spec(
        "SqueezeNet",
        weights=(0.12, _WEIGHTS_MIX),
        activations=(0.38, _m(zero=0.16, sector1=0.10, sector2=0.66, sector3=0.05, sector4=0.03)),
        gradients=(0.20, _m(sector2=0.92, sector3=0.05, sector4=0.03)),
        workspace=(0.30, _SCRATCH_MIX),
    ),
    _dl_spec(
        "VGG16",
        weights=(0.24, _WEIGHTS_MIX),
        activations=(0.28, _m(zero=0.30, sector1=0.15, sector2=0.49, sector3=0.04, sector4=0.02)),
        gradients=(0.12, _m(sector2=0.93, sector3=0.04, sector4=0.03)),
        workspace=(0.20, _SCRATCH_MIX),
        zero_pool=(0.16, _m(zero=0.95, const=0.04, sector4=0.01)),
    ),
    _dl_spec(
        "ResNet50",
        weights=(0.20, _WEIGHTS_MIX),
        activations=(0.36, _m(zero=0.18, sector1=0.12, sector2=0.62, sector3=0.05, sector4=0.03)),
        gradients=(0.20, _m(sector2=0.92, sector3=0.05, sector4=0.03)),
        workspace=(0.16, _SCRATCH_MIX),
        zero_pool=(0.08, _m(zero=0.93, const=0.06, sector4=0.01)),
    ),
)

_SPECS = {spec.benchmark: spec for spec in _HPC_SPECS + _DL_SPECS}


def data_spec(benchmark: str) -> BenchmarkDataSpec:
    """Allocation spec for a benchmark name."""
    try:
        return _SPECS[benchmark]
    except KeyError:
        known = ", ".join(sorted(_SPECS))
        raise KeyError(f"no data spec for {benchmark!r}; known: {known}") from None


def all_specs() -> tuple[BenchmarkDataSpec, ...]:
    """All benchmark data specs, catalog order."""
    return tuple(_SPECS.values())
