"""Synthetic GPU memory-dump generator.

Mirrors the paper's methodology (Section 3.1): the run of each
benchmark is divided into ten regions and a dump of the allocated
device memory is taken at each region boundary.  Dumps are generated
from the calibrated allocation specs in
:mod:`repro.workloads.calibration`:

* each entry has a *latent* value that selects its compressibility
  class through the allocation's (possibly drifting) class mix;
* latents are spatially arranged per the allocation layout
  (homogeneous blocks, stripes, or i.i.d.), reproducing Fig. 6;
* a churn fraction of latents re-rolls between snapshots, reproducing
  the DL pool-reuse behaviour behind Fig. 8;
* the *profile* role generates a perturbed, smaller dataset — the
  paper profiles on a train dataset / smaller batch — so target
  ratios chosen from profiling see realistic drift at evaluation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from functools import lru_cache

import numpy as np

from repro import rng as rng_lib
from repro.units import KIB, MEMORY_ENTRY_BYTES
from repro.workloads.calibration import (
    LAYOUT_BLOCKED,
    LAYOUT_STRIPED,
    LAYOUT_UNIFORM,
    AllocationSpec,
    BenchmarkDataSpec,
    ClassMix,
    data_spec,
)
from repro.workloads.catalog import get_benchmark
from repro.workloads.valuemodels import generate_entries

#: Snapshots per run, per the paper.
SNAPSHOTS_PER_RUN = 10

#: Fraction of blocked-layout entries re-rolled i.i.d. from the mix —
#: the scattered off-class entries visible inside the homogeneous
#: regions of the paper's Fig. 6 heatmaps.
_BLOCKED_SPECKLE = 0.08

#: Roles for :class:`SnapshotConfig`.
ROLE_REFERENCE = "reference"
ROLE_PROFILE = "profile"


@dataclass(frozen=True)
class SnapshotConfig:
    """Scaling and reproducibility knobs for snapshot generation.

    Attributes:
        scale: Footprint scale factor relative to Table 1 (the paper's
            multi-GB dumps are impractical in pure Python).
        min_footprint_bytes: Scaled footprints are clamped below this
            so tiny benchmarks (370.bt is 1.21 MB native) still yield
            meaningful histograms.
        snapshots: Dumps per run.
        seed: Global experiment seed.
        role: ``reference`` or ``profile`` (see module docstring).
        profile_scale_factor: Additional shrink applied to profile
            datasets.
        profile_jitter: Log-normal sigma applied to profile class
            mixes, modelling train-vs-reference dataset drift.
    """

    scale: float = 1.0 / 16384
    min_footprint_bytes: int = 512 * KIB
    snapshots: int = SNAPSHOTS_PER_RUN
    seed: int = rng_lib.DEFAULT_SEED
    role: str = ROLE_REFERENCE
    profile_scale_factor: float = 0.5
    profile_jitter: float = 0.10

    def as_profile(self) -> "SnapshotConfig":
        """The profile-role twin of this configuration."""
        return replace(self, role=ROLE_PROFILE)


@dataclass
class AllocationSnapshot:
    """One allocation's contents at one dump point."""

    spec: AllocationSpec
    classes: np.ndarray  # (n,) EntryClass values
    data: np.ndarray  # (n, 32) uint32 memory-entry words

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def entries(self) -> int:
        return int(self.classes.size)

    @property
    def bytes(self) -> int:
        return self.entries * MEMORY_ENTRY_BYTES


@dataclass
class MemorySnapshot:
    """One full-device memory dump of a benchmark."""

    benchmark: str
    index: int
    progress: float
    allocations: list[AllocationSnapshot]

    @property
    def entries(self) -> int:
        return sum(a.entries for a in self.allocations)

    @property
    def footprint_bytes(self) -> int:
        return self.entries * MEMORY_ENTRY_BYTES

    def allocation(self, name: str) -> AllocationSnapshot:
        for alloc in self.allocations:
            if alloc.name == name:
                return alloc
        raise KeyError(f"no allocation {name!r} in {self.benchmark}")

    def stacked_data(self) -> np.ndarray:
        """All entries of the dump as one ``(n, 32)`` array."""
        return np.concatenate([a.data for a in self.allocations], axis=0)

    def stacked_classes(self) -> np.ndarray:
        """All entry classes of the dump as one ``(n,)`` array."""
        return np.concatenate([a.classes for a in self.allocations])

    def entry_state(self):
        """Reduce the dump to its per-entry compression state.

        Returns the compact
        :class:`~repro.core.profile_tensor.EntryStateTensor` (nominal
        sectors, zero-slot eligibility, allocation layout) the
        simulators consume.  Cached access goes through
        :func:`repro.core.profiler.entry_state_tensor`, which serves
        this reduction from the per-process memo or the engine result
        cache instead of regenerating the dump.
        """
        from repro.core.profile_tensor import EntryStateTensor
        from repro.workloads.valuemodels import (
            nominal_sectors_for,
            zero_class_eligible_for,
        )

        allocations = self.allocations
        empty = np.zeros(0, dtype=np.int64)
        return EntryStateTensor(
            benchmark=self.benchmark,
            index=self.index,
            names=tuple(a.name for a in allocations),
            fractions=np.array([a.spec.fraction for a in allocations]),
            access_weights=np.array(
                [a.spec.access_weight for a in allocations]
            ),
            entry_counts=np.array(
                [a.entries for a in allocations], dtype=np.int64
            ),
            sectors=np.concatenate(
                [nominal_sectors_for(a.classes) for a in allocations] or [empty]
            ),
            zero_fit=np.concatenate(
                [zero_class_eligible_for(a.classes) for a in allocations]
                or [empty.astype(bool)]
            ),
        )


def _entry_counts(spec: BenchmarkDataSpec, config: SnapshotConfig) -> list[int]:
    """Scaled entry count per allocation."""
    footprint = get_benchmark(spec.benchmark).footprint_bytes * config.scale
    footprint = max(footprint, config.min_footprint_bytes)
    if config.role == ROLE_PROFILE:
        footprint *= config.profile_scale_factor
    total = int(footprint // MEMORY_ENTRY_BYTES)
    return [max(64, int(round(alloc.fraction * total))) for alloc in spec.allocations]


def _effective_mix(
    alloc: AllocationSpec, spec: BenchmarkDataSpec, config: SnapshotConfig
) -> AllocationSpec:
    """Apply profile-role jitter to an allocation's mixes."""
    if config.role != ROLE_PROFILE or config.profile_jitter <= 0:
        return alloc
    rng = rng_lib.generator(
        f"{spec.benchmark}/{alloc.name}/profile-jitter", config.seed
    )

    def jitter(mix: ClassMix) -> ClassMix:
        probs = mix.as_array()
        noisy = probs * np.exp(
            rng.normal(0.0, config.profile_jitter, probs.size)
        )
        nonzero = noisy.sum()
        return ClassMix(*(noisy / nonzero))

    end = jitter(alloc.end_mix) if alloc.end_mix is not None else None
    return replace(alloc, mix=jitter(alloc.mix), end_mix=end)


def _base_latents(
    alloc: AllocationSpec, n: int, stream: str, seed: int
) -> np.ndarray:
    """Spatially arranged latent values in [0, 1)."""
    rng = rng_lib.generator(stream, seed)
    if alloc.layout == LAYOUT_UNIFORM:
        return rng.random(n)
    if alloc.layout == LAYOUT_BLOCKED:
        # Cap run lengths so even small (scaled or profile-role)
        # allocations contain enough independent blocks to sample
        # their class mix representatively.
        mean_run = max(1, min(alloc.block_run, n // 64))
        lengths = []
        covered = 0
        while covered < n:
            run = 1 + int(rng.geometric(1.0 / mean_run))
            lengths.append(run)
            covered += run
        # Stratified block values: the empirical block-class mix then
        # tracks the target mix with O(1/k) discrepancy instead of the
        # O(1/sqrt(k)) of i.i.d. draws, keeping the profile dataset
        # representative of the reference run at small scales.
        k = len(lengths)
        values = rng.permutation((np.arange(k) + rng.random(k)) / k)
        latents = np.repeat(values, lengths)[:n]
        # Per-entry speckle: scattered odd entries inside homogeneous
        # regions, as the Fig. 6 heatmaps show.
        speckle = rng.random(n) < _BLOCKED_SPECKLE
        latents[speckle] = rng.random(int(speckle.sum()))
        return latents
    if alloc.layout == LAYOUT_STRIPED:
        pattern = rng.random(alloc.stripe_period)
        repeats = -(-n // alloc.stripe_period)
        return np.tile(pattern, repeats)[:n]
    raise ValueError(f"unknown layout {alloc.layout!r}")


def _latents_at(
    alloc: AllocationSpec,
    n: int,
    index: int,
    benchmark: str,
    config: SnapshotConfig,
) -> np.ndarray:
    """Latents after ``index`` churn steps."""
    stream = f"{benchmark}/{alloc.name}/{config.role}"
    latents = _base_latents(alloc, n, f"{stream}/base", config.seed)
    if alloc.churn <= 0:
        return latents
    for step in range(1, index + 1):
        rng = rng_lib.generator(f"{stream}/churn/{step}", config.seed)
        mask = rng.random(n) < alloc.churn
        count = int(mask.sum())
        if count:
            latents[mask] = rng.random(count)
    return latents


def _classes_from_latents(latents: np.ndarray, mix: ClassMix) -> np.ndarray:
    """Map latents through the mix's inverse CDF to entry classes."""
    boundaries = np.cumsum(mix.as_array())
    boundaries[-1] = 1.0 + 1e-12  # guard against rounding at the top
    return np.searchsorted(boundaries, latents, side="right").astype(np.int64)


def generate_snapshot(
    benchmark: str, index: int, config: SnapshotConfig | None = None
) -> MemorySnapshot:
    """Generate dump ``index`` (0-based) of a benchmark's run.

    Results are memoised per process (see :func:`clear_snapshot_cache`):
    the profile/evaluate pipeline and the experiment engine's worker
    processes ask for the same dumps repeatedly, and regeneration —
    not analysis — would otherwise dominate the sweep hot path.  The
    returned snapshot's arrays are marked read-only because they are
    shared between callers; analyses that need to modify entries must
    copy (``stacked_data`` already returns a fresh array).
    """
    config = config or SnapshotConfig()
    if not 0 <= index < config.snapshots:
        raise ValueError(f"snapshot index {index} outside 0..{config.snapshots - 1}")
    return _generate_snapshot_cached(get_benchmark(benchmark).name, index, config)


#: Entries kept by the per-process snapshot memo (override with the
#: ``REPRO_SNAPSHOT_CACHE`` environment variable; 0 disables).
_SNAPSHOT_CACHE_SIZE = int(os.environ.get("REPRO_SNAPSHOT_CACHE", "64"))


def clear_snapshot_cache() -> None:
    """Drop the per-process snapshot memo (tests, memory pressure)."""
    _generate_snapshot_cached.cache_clear()


#: Snapshots actually generated by this process (memo hits excluded).
_GENERATION_COUNT = 0


def generation_count() -> int:
    """Dumps generated (not served from the memo) by this process.

    The profile/evaluate pipeline's "profile once" contract is
    asserted against this counter: a sweep over N design points must
    generate each dump of the profile and reference runs exactly once.
    """
    return _GENERATION_COUNT


@lru_cache(maxsize=_SNAPSHOT_CACHE_SIZE)
def _generate_snapshot_cached(
    benchmark: str, index: int, config: SnapshotConfig
) -> MemorySnapshot:
    snapshot = _generate_snapshot(benchmark, index, config)
    for alloc in snapshot.allocations:
        alloc.classes.flags.writeable = False
        alloc.data.flags.writeable = False
    return snapshot


def _generate_snapshot(
    benchmark: str, index: int, config: SnapshotConfig
) -> MemorySnapshot:
    global _GENERATION_COUNT
    _GENERATION_COUNT += 1
    spec = data_spec(get_benchmark(benchmark).name)
    counts = _entry_counts(spec, config)
    progress = index / max(config.snapshots - 1, 1)

    allocations = []
    for alloc, n in zip(spec.allocations, counts):
        effective = _effective_mix(alloc, spec, config)
        latents = _latents_at(effective, n, index, spec.benchmark, config)
        classes = _classes_from_latents(latents, effective.mix_at(progress))
        data_rng = rng_lib.generator(
            f"{spec.benchmark}/{alloc.name}/{config.role}/data/{index}", config.seed
        )
        data = generate_entries(classes, data_rng)
        allocations.append(AllocationSnapshot(effective, classes, data))
    return MemorySnapshot(spec.benchmark, index, progress, allocations)


def generate_run(
    benchmark: str, config: SnapshotConfig | None = None
):
    """Yield all dumps of a benchmark run, in order."""
    config = config or SnapshotConfig()
    for index in range(config.snapshots):
        yield generate_snapshot(benchmark, index, config)
