"""Synthetic warp-instruction trace generator.

Builds :class:`repro.gpusim.trace.KernelTrace` objects whose memory
behaviour matches each benchmark's published character (see
:class:`repro.workloads.catalog.TraceCharacter`): DL training kernels
stream fully coalesced GEMM tiles; 354.cg and 360.ilbdc gather single
sectors at random; stencil codes stride with partial coalescing;
FF_HPGMG issues a share of native host-memory copies; FF_Lulesh has
little memory-level parallelism and is exposed to added latency.

Addresses fall inside the same scaled allocation layout the snapshot
generator produces, so the compression state (entry sectors, buddy
overflow) lines up entry-for-entry with the static studies.  The
layout is consumed through the cached
:func:`repro.core.profiler.entry_state_tensor` reduction rather than a
full memory dump, so trace generation triggers zero snapshot
regeneration once the per-entry state is warm (memoised in-process or
persisted in the engine result cache).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import rng as rng_lib
from repro.core.profile_tensor import EntryStateTensor
from repro.core.profiler import entry_state_tensor
from repro.gpusim.trace import ColumnarTrace, KernelTrace, Op
from repro.units import MEMORY_ENTRY_BYTES, SECTOR_BYTES
from repro.workloads.catalog import AccessPattern, get_benchmark
from repro.workloads.snapshots import MemorySnapshot, SnapshotConfig, generate_snapshot


@dataclass(frozen=True)
class TraceConfig:
    """Trace-generation knobs.

    Attributes:
        sm_count: SMs to spread warps over (must match the simulator).
        warps_per_sm: Resident warps per SM.
        memory_instructions_per_warp: Loads+stores per warp.
        snapshot_config: Scaling used for the address space (must
            match the snapshot the compression state is built from).
        snapshot_index: Which dump supplies the allocation layout.
        seed: RNG seed.
    """

    sm_count: int = 16
    warps_per_sm: int = 32
    memory_instructions_per_warp: int = 96
    snapshot_config: SnapshotConfig = SnapshotConfig(scale=1.0 / 2048)
    snapshot_index: int = 5
    seed: int = rng_lib.DEFAULT_SEED


def layout_snapshot(benchmark: str, config: TraceConfig) -> MemorySnapshot:
    """The full memory dump behind a trace's allocation layout.

    Kept for callers needing the dump's data words; the trace
    generator itself consumes the compact :func:`layout_state`.
    """
    return generate_snapshot(
        benchmark, config.snapshot_index, config.snapshot_config
    )


def layout_state(benchmark: str, config: TraceConfig) -> EntryStateTensor:
    """The cached per-entry state supplying a trace's layout."""
    return entry_state_tensor(
        benchmark, config.snapshot_config, config.snapshot_index
    )


def generate_trace(
    benchmark: str, config: TraceConfig | None = None
) -> KernelTrace:
    """Generate the dominant-kernel trace of a benchmark."""
    config = config or TraceConfig()
    bench = get_benchmark(benchmark)
    character = bench.character
    layout = layout_state(bench.name, config)
    footprint = layout.footprint_bytes
    rng = rng_lib.generator(f"trace/{bench.name}", config.seed)

    ranges = layout.allocation_ranges()
    total_warps = config.sm_count * config.warps_per_sm
    hot_map = _hot_entry_map(layout, character.working_set_fraction)
    # Low MLP for latency-sensitive kernels (FF_Lulesh), high for
    # throughput kernels that cover latency with independent loads.
    max_outstanding = max(1, round(12 * (1.0 - character.latency_sensitivity)))

    columns = [
        _warp_stream(
            warp_index, total_warps, footprint, hot_map, character,
            config, rng,
        )
        for warp_index in range(total_warps)
    ]
    lengths = np.array([ops.size for ops, _, _ in columns], dtype=np.int64)
    starts = np.zeros(total_warps + 1, dtype=np.int64)
    np.cumsum(lengths, out=starts[1:])
    columnar = ColumnarTrace(
        ops=np.concatenate([ops for ops, _, _ in columns]).astype(np.int8),
        a=np.concatenate([a for _, a, _ in columns]),
        b=np.concatenate([b for _, _, b in columns]),
        warp_starts=starts,
        warp_sm=(
            np.arange(total_warps, dtype=np.int32) % config.sm_count
        ),
        warp_mlp=np.full(total_warps, max_outstanding, dtype=np.int32),
    )
    return KernelTrace(
        benchmark=bench.name,
        footprint_bytes=footprint,
        allocation_ranges=ranges,
        host_traffic_fraction=character.host_traffic_fraction,
        columnar=columnar,
    )


def _hot_entry_map(
    layout: EntryStateTensor, working_set_fraction: float
) -> np.ndarray:
    """The kernel's hot set as an array of global entry indices.

    Every allocation contributes chunks of consecutive entries sized
    by ``fraction * access_weight``, so the dynamic access mix over
    allocations reflects their access intensity (DL scratch buffers
    are touched every layer; weight tensors are read once and cached)
    while streaming locality within chunks is preserved.
    """
    weights = np.array(
        [
            float(fraction) * float(weight)
            for fraction, weight in zip(
                layout.fractions, layout.access_weights
            )
        ]
    )
    weights = weights / weights.sum()
    total_hot = max(
        64, int(layout.entries * np.clip(working_set_fraction, 0.05, 1.0))
    )
    pieces = []
    base = 0
    for count, weight in zip(layout.entry_counts, weights):
        n = int(count)
        hot = min(n, max(4, int(round(total_hot * weight))))
        # Evenly spaced chunks of consecutive entries inside the
        # allocation keep DRAM row and metadata-line locality.
        chunks = max(1, hot // 256)
        chunk_len = hot // chunks
        starts = np.linspace(0, max(n - chunk_len, 0), chunks).astype(np.int64)
        for start in starts:
            pieces.append(base + start + np.arange(chunk_len, dtype=np.int64))
        base += n
    hot_map = np.concatenate(pieces)
    return hot_map


def _warp_stream(
    warp_index: int,
    total_warps: int,
    footprint: int,
    hot_map: np.ndarray,
    character,
    config: TraceConfig,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One warp's instruction stream as ``(ops, a, b)`` columns.

    Streaming and strided kernels follow grid-stride loops — warp
    ``w`` touches hot entries ``w, w+W, w+2W, ...`` — which is how
    real GPU kernels cover large arrays and what gives them DRAM row
    locality and shared metadata lines.

    The whole stream is assembled with array operations: each memory
    instruction optionally follows a compute run (``compute[i] > 0``),
    so instruction rows are scattered to ``i + cumsum(has_compute)``.
    """
    hot_entries = hot_map.size

    count = config.memory_instructions_per_warp
    is_load = rng.random(count) < character.load_fraction
    host = rng.random(count) < character.host_traffic_fraction
    compute = rng.poisson(character.compute_per_memory, count)

    pattern = character.pattern
    if pattern is AccessPattern.STREAMING:
        indices = (np.arange(count) * total_warps + warp_index) % hot_entries
        sectors = np.full(count, 4)
        first = np.zeros(count, dtype=np.int64)
    elif pattern is AccessPattern.STRIDED:
        # Stencil sweep: grid-stride over a strided index space, with
        # partially coalesced accesses.  The stride models the
        # stencil's plane extent: wide-plane codes (351.palm,
        # 355.seismic) revisit metadata lines far apart.
        stride = character.stride_entries
        indices = (
            (np.arange(count) * total_warps + warp_index) * stride
        ) % hot_entries
        mean = character.sectors_per_access
        sectors = np.clip(rng.poisson(mean, count), 1, 4)
        first = rng.integers(0, 4, count)
    else:  # RANDOM gather/scatter over the whole hot region
        indices = rng.integers(0, hot_entries, count)
        sectors = np.ones(count, dtype=np.int64)
        first = rng.integers(0, 4, count)

    sectors = sectors.astype(np.int64)
    addresses = hot_map[indices] * MEMORY_ENTRY_BYTES
    addresses = addresses + (
        np.minimum(first, 4 - sectors) * SECTOR_BYTES
    )
    addresses[host] += footprint  # the native host region

    has_compute = compute > 0
    mem_rows = np.arange(count, dtype=np.int64) + np.cumsum(has_compute)
    rows = count + int(has_compute.sum())
    ops = np.empty(rows, dtype=np.int64)
    a = np.empty(rows, dtype=np.int64)
    b = np.zeros(rows, dtype=np.int64)
    compute_rows = mem_rows[has_compute] - 1
    ops[compute_rows] = int(Op.COMPUTE)
    a[compute_rows] = compute[has_compute]
    ops[mem_rows] = np.where(is_load, int(Op.LOAD), int(Op.STORE))
    a[mem_rows] = addresses
    b[mem_rows] = sectors
    return ops, a, b
