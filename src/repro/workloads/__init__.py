"""Synthetic workload substrate.

The paper's inputs — GPU memory dumps and SASS traces of SpecAccel,
DOE FastForward and Caffe DL training runs — are proprietary.  This
package provides the synthetic equivalents described in DESIGN.md:

* :mod:`repro.workloads.catalog` — Table 1 benchmark metadata plus the
  memory-access character each benchmark exhibits.
* :mod:`repro.workloads.valuemodels` — data-pattern primitives with
  analytically known Bit-Plane-Compression behaviour.
* :mod:`repro.workloads.calibration` — per-benchmark allocation specs
  calibrated so the measured BPC statistics match Fig. 3 / Fig. 6 /
  Fig. 8 of the paper.
* :mod:`repro.workloads.snapshots` — the memory-dump generator (ten
  snapshots per run, profile and reference roles).
* :mod:`repro.workloads.traces` — warp-instruction trace generator for
  the GPU performance simulator.
"""

from repro.workloads.catalog import (
    ALL_BENCHMARKS,
    DL_BENCHMARKS,
    HPC_BENCHMARKS,
    Benchmark,
    Suite,
    get_benchmark,
)
from repro.workloads.snapshots import (
    MemorySnapshot,
    AllocationSnapshot,
    SnapshotConfig,
    generate_snapshot,
    generate_run,
)

__all__ = [
    "ALL_BENCHMARKS",
    "DL_BENCHMARKS",
    "HPC_BENCHMARKS",
    "Benchmark",
    "Suite",
    "get_benchmark",
    "MemorySnapshot",
    "AllocationSnapshot",
    "SnapshotConfig",
    "generate_snapshot",
    "generate_run",
]
