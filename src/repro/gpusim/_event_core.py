"""Exact-order event core over compacted struct-of-arrays state.

This module is the extraction point of the hot loops of
:mod:`repro.gpusim.vector_sim`: the exact ``(ready, sequence)``
event scheduler of :class:`~repro.gpusim.vector_sim.VectorizedSimulator`
(:func:`run_exact`) and the frozen-order tape replay of
:class:`~repro.gpusim.vector_sim.RelaxedSimulator`
(:func:`replay_tape`).  Both operate on **flat arrays only** — the
caller hands over a fixed tuple of C-contiguous ``int64``/``float64``
NumPy columns plus scalar tuples, and gets back a counter tuple (and,
when recording, the compacted tape columns).  No dicts, tuples-per-row
or Python objects cross the boundary, which is what makes the loop
compilable.

Two interchangeable implementations sit behind the same interface:

* the pure-Python fallback in this file — always available, and the
  reference for the contract;
* the optional C extension :mod:`repro.gpusim._event_core_ext`
  (``_event_core_ext.c``, built by ``setup.py build_ext``) — a
  line-for-line transcription of the fallback using the same IEEE
  double operations in the same order, so counters *and* cycles are
  bit-identical between the two (``tests/test_event_core.py`` pins
  this; the CI ``compiled-core`` job diffs full study digests).

Selection happens once at import: the extension is used when it
imports and its ``ABI`` constant matches :data:`EXT_ABI` (a stale
``.so`` from an older layout is ignored, not trusted).  Setting
``REPRO_NO_EXT=1`` in the environment forces the pure-Python path;
:func:`force_python` forces it temporarily (the benchmark suite uses
it to measure the compiled speedup in one process).

Array-pack layout
-----------------

``run_exact`` takes ``(arrays, iscalars, fscalars, record)``.
``arrays`` is a 30-tuple indexed by the ``A_*`` constants below; slots
that do not apply to the mode are ``None``.  All per-row columns are
``int64`` except ``busy``/``serv_*`` (``float64``).  ``iscalars`` /
``fscalars`` are indexed by ``I_*`` / ``F_*``.  The recorded tape is
a 12-tuple of parallel columns — ``kind`` (int8), ``w``/``sm``
(int32), three ``float64`` payload columns ``f0..f2`` and six
``int32`` payload columns ``i0..i5`` — with exactly one row per
scheduler pop (``n_rows + warp_count`` rows total).  Per-kind payload
mapping (kinds are the ``_T_*`` codes of ``vector_sim``):

====  ==========================  =========================================
kind  event                       payload
====  ==========================  =========================================
0     compute                     ``f0``\\=busy
1     load, cache hit             ``f0``\\=latency
2/6   load fill / RMW store fill  ``f0``\\=serv ``f1``\\=mserv ``f2``\\=wbserv
                                  ``i0``\\=ch ``i1``\\=mmiss ``i2``\\=mch
                                  ``i3``\\=bnum ``i4``\\=wbch ``i5``\\=wbbnum
3/7   host load / host store      ``i0``\\=hnum
4     store, no timing            —
5     store w/ dirty writeback    ``f2``\\=wbserv ``i4``\\=wbch ``i5``\\=wbbnum
8     warp end                    —
====  ==========================  =========================================

At ~57 B per event the columns replace per-event tuples costing
88–224 B each (tuple header + boxed floats), which is what makes very
long relaxed tapes safe to hold (`tests/test_event_core.py` pins the
reduction).
"""

from __future__ import annotations

import array
import gc
import os
from contextlib import contextmanager
from itertools import repeat

import numpy as np

#: Bump when the array-pack layout changes; a compiled extension whose
#: ``ABI`` constant differs is silently ignored (stale build).
EXT_ABI = 2

_ext = None
_ext_error: str | None = None
_ext_stale = False
if os.environ.get("REPRO_NO_EXT"):
    _ext_error = "disabled by REPRO_NO_EXT"
else:
    try:
        import importlib

        _candidate = importlib.import_module("repro.gpusim._event_core_ext")
    except ImportError as exc:
        _ext_error = f"extension not built ({exc})"
    else:
        if getattr(_candidate, "ABI", None) == EXT_ABI:
            _ext = _candidate
        else:
            _ext_stale = True
            _ext_error = (
                "stale extension build: ABI "
                f"{getattr(_candidate, 'ABI', None)!r} != {EXT_ABI}"
            )

#: Session-scoped override (see :func:`force_python`).
_forced_python = False


def compiled_active() -> bool:
    """Whether calls currently dispatch to the C extension."""
    return _ext is not None and not _forced_python


def describe() -> dict:
    """Attribution record for perf reports (``repro doctor``)."""
    return {
        "event_core": "compiled" if compiled_active() else "python",
        "extension_available": _ext is not None,
        "extension_abi": EXT_ABI,
        "extension_stale": _ext_stale,
        "forced_python": _forced_python or _ext is None,
        "detail": None if _ext is not None else _ext_error,
    }


@contextmanager
def force_python():
    """Temporarily route through the pure-Python implementation.

    Used by the benchmarks to measure compiled-vs-fallback speedups in
    a single process; a no-op when the extension is absent anyway.
    """
    global _forced_python
    previous = _forced_python
    _forced_python = True
    try:
        yield
    finally:
        _forced_python = previous


# -- array-pack indices (mirrored in _event_core_ext.c) ---------------------
(
    A_CODES, A_BUSY, A_LID, A_MASK, A_L1FLAT, A_L2SET,
    A_CHAN, A_ROW, A_BANK,
    A_DEV, A_SERV_HIT, A_SERV_MISS,
    A_BUD, A_BNUM, A_HBYTES, A_HNUM,
    A_MTAG, A_MSLOT, A_MCHAN, A_MROW, A_MBANK,
    A_WB_DEV, A_WB_SERV, A_WB_BUD, A_WB_BNUM,
    A_WB_IDEAL_BYTES, A_WB_IDEAL_SERV,
    A_WARP_START, A_WARP_SM, A_WARP_MLP,
) = range(30)

(
    I_WARP_COUNT, I_SM_COUNT, I_CHANNELS, I_BANKS,
    I_LINE_BYTES, I_ROW_BYTES, I_ENTRIES,
    I_L1_SETS, I_L1_WAYS, I_L2_SETS, I_L2_WAYS,
    I_META_SLOTS, I_META_WAYS,
    I_IDEAL, I_USE_META, I_FULL_MASK, I_META_LINE_BYTES,
) = range(17)

(
    F_INTERVAL, F_L1_LAT, F_L2_LAT, F_DRAM_LAT,
    F_LINK_BPC, F_LINK_LAT, F_FILL_TAIL,
    F_META_SERV_HIT, F_META_SERV_MISS,
    F_ROW_HIT_OV, F_ROW_MISS_OV,
) = range(11)

#: Replay scalar packs (subset of the above, see :func:`replay_tape`).
(
    RI_WARP_COUNT, RI_SM_COUNT, RI_CHANNELS,
) = range(3)
(
    RF_INTERVAL, RF_DRAM_LAT, RF_ARRIVAL_LAT,
    RF_LINK_BPC, RF_LINK_LAT, RF_FILL_TAIL,
) = range(6)


def run_exact(arrays, iscalars, fscalars, record, geo_cache=None,
              state_cache=None):
    """One exact-order simulation over the packed columns.

    Returns ``(counters, tape_cols)`` where ``counters`` is
    ``(cycles, l1_hits, l1_misses, l2_hits, l2_misses, dram_bytes,
    link_read_bytes, link_write_bytes, meta_hits, meta_misses,
    buddy_fills, demand_fills)`` and ``tape_cols`` is the 12-column
    tape pack (``None`` unless ``record``).

    ``geo_cache``/``state_cache`` are optional dicts the pure-Python
    implementation uses to keep its derived row tuples across runs of
    the same geometry/state (the compiled path reads the arrays
    directly and ignores them).
    """
    if _ext is not None and not _forced_python:
        # The extension parses scalars with the exact C long-long /
        # double converters; normalise any NumPy scalars up front.
        iscalars = tuple(int(v) for v in iscalars)
        fscalars = tuple(float(v) for v in fscalars)
        tape_cols = None
        if record:
            n_events = arrays[A_CODES].shape[0] + int(iscalars[I_WARP_COUNT])
            tape_cols = (
                np.zeros(n_events, dtype=np.int8),
                np.zeros(n_events, dtype=np.int32),
                np.zeros(n_events, dtype=np.int32),
                np.zeros(n_events, dtype=np.float64),
                np.zeros(n_events, dtype=np.float64),
                np.zeros(n_events, dtype=np.float64),
                np.zeros(n_events, dtype=np.int32),
                np.zeros(n_events, dtype=np.int32),
                np.zeros(n_events, dtype=np.int32),
                np.zeros(n_events, dtype=np.int32),
                np.zeros(n_events, dtype=np.int32),
                np.zeros(n_events, dtype=np.int32),
            )
        counters = _ext.run_exact(arrays, iscalars, fscalars, tape_cols)
        return counters, tape_cols
    return _run_exact_py(
        arrays, iscalars, fscalars, record, geo_cache, state_cache
    )


def replay_tape(tape_cols, warp_mlp, iscalars, fscalars) -> float:
    """Recompute end-to-end cycles along a recorded tape pack.

    ``iscalars`` is ``(warp_count, sm_count, channels)`` and
    ``fscalars`` is ``(interval, dram_lat, arrival_lat, link_bpc,
    link_lat, fill_tail)`` (the ``RI_*``/``RF_*`` indices).
    """
    if _ext is not None and not _forced_python:
        return _ext.replay(
            tape_cols,
            warp_mlp,
            tuple(int(v) for v in iscalars),
            tuple(float(v) for v in fscalars),
        )
    return _replay_py(tape_cols, warp_mlp, iscalars, fscalars)


def replay_tape_many(tape_cols, warp_mlp, iscalars, fscalars_list):
    """Replay one tape at several interconnects in a single pass.

    ``fscalars_list`` is a sequence of ``RF_*`` packs, one per
    requested link point; the return value is a tuple of per-link
    cycle counts, each bit-identical to a serial :func:`replay_tape`
    call with the same pack (``tests/test_event_core.py`` pins the
    identity for both builds, and the compiled and fallback paths
    against each other).  The win over the serial loop is one pass
    over the tape columns instead of one per link: replay control
    flow — which branches fire, when a warp's MLP window pops —
    depends only on the tape payloads and integer counts, which are
    link-invariant, so all links advance together and only the small
    per-link clock state differs.
    """
    packs = tuple(tuple(float(v) for v in pack) for pack in fscalars_list)
    if not packs:
        return ()
    if _ext is not None and not _forced_python:
        return _ext.replay_many(
            tape_cols,
            warp_mlp,
            tuple(int(v) for v in iscalars),
            packs,
        )
    return _replay_many_py(tape_cols, warp_mlp, iscalars, packs)


def _record_row(cols, k, w, sm, f0=0.0, f1=0.0, f2=0.0,
                i0=0, i1=0, i2=0, i3=0, i4=0, i5=0):
    tk, tw, tsm, tf0, tf1, tf2, ti0, ti1, ti2, ti3, ti4, ti5 = cols
    tk.append(k)
    tw.append(w)
    tsm.append(sm)
    tf0.append(f0)
    tf1.append(f1)
    tf2.append(f2)
    ti0.append(i0)
    ti1.append(i1)
    ti2.append(i2)
    ti3.append(i3)
    ti4.append(i4)
    ti5.append(i5)


def _cached(cache, key, build):
    if cache is None:
        return build()
    value = cache.get(key)
    if value is None:
        value = build()
        cache[key] = value
    return value


def _run_exact_py(arrays, iscalars, fscalars, record, geo_cache,
                  state_cache):
    """The always-available pure-Python event core.

    A verbatim port of the historical inline loop of
    ``VectorizedSimulator.run``; the compiled extension transcribes
    *this* function.  Derived row tuples (zips of the input columns)
    are memoised in the caller-owned caches so repeated runs over the
    same geometry pay the conversion once, matching the old
    list-of-tuples columns' steady-state speed.
    """
    from heapq import heappop, heappushpop

    (
        codes_a, busy_a, lid_a, mask_a, l1flat_a, l2set_a,
        chan_a, row_a, bank_a,
        dev_a, servh_a, servm_a,
        bud_a, bnum_a, hbytes_a, hnum_a,
        mtag_a, mslot_a, mchan_a, mrow_a, mbank_a,
        wbdev_a, wbserv_a, wbbud_a, wbbnum_a, wbib_a, wbis_a,
        wstart_a, wsm_a, wmlp_a,
    ) = arrays
    warp_count = int(iscalars[I_WARP_COUNT])
    channels = int(iscalars[I_CHANNELS])
    banks = int(iscalars[I_BANKS])
    line_bytes = int(iscalars[I_LINE_BYTES])
    row_bytes = int(iscalars[I_ROW_BYTES])
    entries = int(iscalars[I_ENTRIES])
    l1_sets_total = int(iscalars[I_L1_SETS])
    l1_ways = int(iscalars[I_L1_WAYS])
    l2_sets = int(iscalars[I_L2_SETS])
    l2_ways = int(iscalars[I_L2_WAYS])
    meta_slots = int(iscalars[I_META_SLOTS])
    meta_ways = int(iscalars[I_META_WAYS])
    ideal = bool(iscalars[I_IDEAL])
    use_meta = bool(iscalars[I_USE_META])
    full_mask = int(iscalars[I_FULL_MASK])
    meta_line_bytes = int(iscalars[I_META_LINE_BYTES])

    interval = fscalars[F_INTERVAL]
    l1_lat = fscalars[F_L1_LAT]
    l2_lat = fscalars[F_L2_LAT]
    dram_lat = fscalars[F_DRAM_LAT]
    link_bpc = fscalars[F_LINK_BPC]
    link_lat = fscalars[F_LINK_LAT]
    fill_tail = fscalars[F_FILL_TAIL]
    meta_serv_hit = fscalars[F_META_SERV_HIT]
    meta_serv_miss = fscalars[F_META_SERV_MISS]
    row_hit_ov = fscalars[F_ROW_HIT_OV]
    row_miss_ov = fscalars[F_ROW_MISS_OV]

    # -- derived row tuples (memoised per geometry/state) -------------
    codes = _cached(geo_cache, ("codes", id(codes_a)), codes_a.tolist)
    busy_col = _cached(geo_cache, "busy", busy_a.tolist)
    probe_rows = _cached(
        geo_cache,
        "probe",
        lambda: list(
            zip(
                lid_a.tolist(), mask_a.tolist(),
                l1flat_a.tolist(), l2set_a.tolist(),
            )
        ),
    )
    host_rows = (
        _cached(
            geo_cache,
            "host",
            lambda: list(zip(hbytes_a.tolist(), hnum_a.tolist())),
        )
        if hbytes_a is not None
        else None
    )
    meta_rows = (
        _cached(
            geo_cache,
            "meta",
            lambda: list(
                zip(
                    mtag_a.tolist(), mslot_a.tolist(), mchan_a.tolist(),
                    mrow_a.tolist(), mbank_a.tolist(),
                )
            ),
        )
        if use_meta
        else None
    )

    def _build_fill():
        fm_iter = mask_a.tolist() if ideal else repeat(full_mask)
        base = (
            dev_a.tolist(), servh_a.tolist(), servm_a.tolist(),
            chan_a.tolist(), row_a.tolist(), bank_a.tolist(), fm_iter,
        )
        if use_meta:
            return list(zip(*base, bud_a.tolist(), bnum_a.tolist()))
        return list(zip(*base))

    fill_rows = _cached(state_cache, "fill", _build_fill)

    def _build_wb():
        return (
            wbdev_a.tolist() if wbdev_a is not None else None,
            wbserv_a.tolist() if wbserv_a is not None else None,
            wbbud_a.tolist() if wbbud_a is not None else None,
            wbbnum_a.tolist() if wbbnum_a is not None else None,
            wbib_a.tolist() if wbib_a is not None else None,
            wbis_a.tolist() if wbis_a is not None else None,
        )

    wb_dev, wb_serv, wb_bud, wb_bnum, wb_ideal_bytes, wb_ideal_serv = (
        _cached(state_cache, "wb", _build_wb)
    )

    starts, warp_sm, warp_mlp = _cached(
        geo_cache,
        "warps",
        lambda: (wstart_a.tolist(), wsm_a.tolist(), wmlp_a.tolist()),
    )

    # -- memory-system state ------------------------------------------
    l1_masks: list[dict] = [{} for _ in range(l1_sets_total)]
    l2_masks: list[dict] = [{} for _ in range(l2_sets)]
    l2_dirty: list[dict] = [{} for _ in range(l2_sets)]
    meta_flat: list[list] = [[] for _ in range(meta_slots)]

    next_free = [0.0] * channels
    open_rows = [-1] * (channels * banks)
    link_read_free = 0.0
    link_write_free = 0.0

    # -- counters ------------------------------------------------------
    l1_hits = l1_misses = 0
    l2_hits = l2_misses = 0
    dram_bytes = 0
    link_read_bytes = link_write_bytes = 0
    meta_hits = meta_misses = 0
    buddy_fills = demand_fills = 0
    rmw_counter = 0

    # NOTE: the event core below is fully inlined — no closures.  A
    # nested helper capturing the loop's counters would turn them (and
    # every other shared local) into cell variables, degrading the
    # hottest loads/stores from LOAD_FAST to LOAD_DEREF across the
    # whole loop (~2.5x slower core).  The writeback and RMW-fill
    # blocks are therefore spelled out at each of their call sites.

    # -- warp state ----------------------------------------------------
    ips = starts[:warp_count]
    ends = starts[1:]
    outstanding: list[list] = [[] for _ in range(warp_count)]
    out_heads = [0] * warp_count
    sm_free = [0.0] * int(iscalars[I_SM_COUNT])
    heap = [(0.0, w, w) for w in range(warp_count)]
    sequence = warp_count
    finish = 0.0
    pushpop = heappushpop

    if record:
        tcols = (
            array.array("b"), array.array("i"), array.array("i"),
            array.array("d"), array.array("d"), array.array("d"),
            array.array("i"), array.array("i"), array.array("i"),
            array.array("i"), array.array("i"), array.array("i"),
        )
        rec = _record_row

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        # -- the event core -------------------------------------------
        event = heappop(heap) if heap else None
        while event is not None:
            ready, _, w = event
            i = ips[w]
            if i == ends[w]:
                out = outstanding[w]
                head = out_heads[w]
                if len(out) > head:
                    last = max(out[head:])
                    if last > finish:
                        finish = last
                if ready > finish:
                    finish = ready
                if record:
                    rec(tcols, 8, w, 0)
                event = heappop(heap) if heap else None
                continue
            ips[w] = i + 1
            sm = warp_sm[w]
            free = sm_free[sm]
            issue = ready if ready > free else free
            code = codes[i]

            if code == 0:  # _COMPUTE
                next_ready = issue + busy_col[i]
                sm_free[sm] = next_ready
                if record:
                    rec(tcols, 0, w, sm, busy_col[i])
            elif code == 1:  # _LOAD
                sm_free[sm] = issue + interval
                lid, msk, flat1, s2 = probe_rows[i]
                d1 = l1_masks[flat1]
                e1 = d1.get(lid)
                if e1 is not None and e1 & msk == msk:
                    l1_hits += 1
                    del d1[lid]
                    d1[lid] = e1
                    done = issue + l1_lat
                    if record:
                        rec(tcols, 1, w, sm, l1_lat)
                else:
                    l1_misses += 1
                    d2 = l2_masks[s2]
                    e2 = d2.get(lid)
                    if e2 is not None and e2 & msk == msk:
                        l2_hits += 1
                        del d2[lid]
                        d2[lid] = e2
                        done = issue + l2_lat
                        if record:
                            rec(tcols, 1, w, sm, l2_lat)
                    else:
                        l2_misses += 1
                        arrival = issue + l2_lat
                        demand_fills += 1
                        if record:
                            r_serv = r_mserv = r_wbserv = 0.0
                            r_ch = r_mmiss = r_mch = 0
                            r_bnum = r_wbch = r_wbbnum = 0
                        if use_meta:
                            (
                                dev, sh, sm_, ch, rw, bk, fm, bud, bnum,
                            ) = fill_rows[i]
                        else:
                            dev, sh, sm_, ch, rw, bk, fm = fill_rows[i]
                        # The sectored baseline requests even a
                        # zero-sector fill (degenerate traces):
                        # the oracle charges the channel overhead.
                        if dev or ideal:
                            if open_rows[bk] == rw:
                                serv = sh
                            else:
                                serv = sm_
                                open_rows[bk] = rw
                            free = next_free[ch]
                            start = free if free > arrival else arrival
                            end = start + serv
                            next_free[ch] = end
                            dram_bytes += dev
                            done = end + dram_lat
                            if record:
                                r_serv = serv
                                r_ch = ch
                        else:
                            done = arrival
                        if use_meta:
                            mt, ms, mc, mr, mb = meta_rows[i]
                            ways = meta_flat[ms]
                            if mt in ways:
                                ways.remove(mt)
                                ways.append(mt)
                                meta_hits += 1
                                meta_ready = arrival
                            else:
                                meta_misses += 1
                                ways.append(mt)
                                if len(ways) > meta_ways:
                                    ways.pop(0)
                                if open_rows[mb] == mr:
                                    serv = meta_serv_hit
                                else:
                                    serv = meta_serv_miss
                                    open_rows[mb] = mr
                                free = next_free[mc]
                                start = (
                                    free if free > arrival else arrival
                                )
                                end = start + serv
                                next_free[mc] = end
                                dram_bytes += meta_line_bytes
                                meta_ready = end + dram_lat
                                if meta_ready > done:
                                    done = meta_ready
                                if record:
                                    r_mmiss = 1
                                    r_mserv = serv
                                    r_mch = mc
                            if bud:
                                start = (
                                    link_read_free
                                    if link_read_free > meta_ready
                                    else meta_ready
                                )
                                end = start + bnum / link_bpc
                                link_read_free = end
                                link_read_bytes += bud
                                buddy_fills += 1
                                t = end + link_lat
                                if t > done:
                                    done = t
                                if record:
                                    r_bnum = bnum
                        # Install (full line for compressed fills).
                        if e2 is not None:
                            del d2[lid]
                            d2[lid] = e2 | fm
                        else:
                            if len(d2) >= l2_ways:
                                victim = next(iter(d2))
                                del d2[victim]
                                dirty_mask = l2_dirty[s2].pop(victim, 0)
                                if dirty_mask:
                                    # Writeback (dirty eviction).
                                    if ideal:
                                        num = wb_ideal_bytes[dirty_mask]
                                        serv = wb_ideal_serv[dirty_mask]
                                    else:
                                        ventry = victim % entries
                                        num = wb_dev[ventry]
                                        serv = wb_serv[ventry]
                                    if num:
                                        vch = victim % channels
                                        vrow = victim * line_bytes // row_bytes
                                        vbk = vch * banks + vrow % banks
                                        if open_rows[vbk] == vrow:
                                            serv = serv + row_hit_ov
                                        else:
                                            serv = serv + row_miss_ov
                                            open_rows[vbk] = vrow
                                        vfree = next_free[vch]
                                        vstart = (
                                            vfree
                                            if vfree > arrival
                                            else arrival
                                        )
                                        next_free[vch] = vstart + serv
                                        dram_bytes += num
                                        if record:
                                            r_wbserv = serv
                                            r_wbch = vch
                                    if use_meta:
                                        vbud = wb_bud[victim % entries]
                                        if vbud:
                                            vstart = (
                                                link_write_free
                                                if link_write_free
                                                > arrival
                                                else arrival
                                            )
                                            link_write_free = (
                                                vstart
                                                + wb_bnum[
                                                    victim % entries
                                                ]
                                                / link_bpc
                                            )
                                            link_write_bytes += vbud
                                            if record:
                                                r_wbbnum = wb_bnum[
                                                    victim % entries
                                                ]
                            d2[lid] = fm
                        done = done + fill_tail
                        if record:
                            rec(
                                tcols, 2, w, sm, r_serv, r_mserv,
                                r_wbserv, r_ch, r_mmiss, r_mch, r_bnum,
                                r_wbch, r_wbbnum,
                            )
                    # L1 fill (never dirty; evictions are silent).
                    if e1 is not None:
                        del d1[lid]
                        d1[lid] = e1 | msk
                    else:
                        if len(d1) >= l1_ways:
                            del d1[next(iter(d1))]
                        d1[lid] = msk
                out = outstanding[w]
                out.append(done)
                head = out_heads[w]
                if len(out) - head >= warp_mlp[w]:
                    next_ready = out[head]
                    out_heads[w] = head + 1
                else:
                    next_ready = issue + interval
            elif code == 2 or code == 5:  # _STORE / _STORE_RMW
                sm_free[sm] = issue + interval
                lid, msk, flat1, s2 = probe_rows[i]
                if record:
                    r_fill = 0
                    r_serv = r_mserv = r_wbserv = 0.0
                    r_ch = r_mmiss = r_mch = 0
                    r_bnum = r_wbch = r_wbbnum = 0
                if code == 5:
                    # Partial store into a compressed entry: every
                    # fourth pays the read-modify-write fetch
                    # unless the line is fully resident.  This is
                    # the load-miss fill at arrival ``issue``; the
                    # completion time is discarded because stores
                    # do not stall the warp.
                    rmw_counter += 1
                    if not rmw_counter % 4:
                        d2 = l2_masks[s2]
                        e2 = d2.get(lid)
                        if e2 is not None and e2 & full_mask == full_mask:
                            l2_hits += 1
                            del d2[lid]
                            d2[lid] = e2
                        else:
                            l2_misses += 1
                            demand_fills += 1
                            if record:
                                r_fill = 1
                            if use_meta:
                                (
                                    dev, sh, sm_, ch, rw, bk, fm,
                                    bud, bnum,
                                ) = fill_rows[i]
                            else:
                                dev, sh, sm_, ch, rw, bk, fm = (
                                    fill_rows[i]
                                )
                            if dev:
                                if open_rows[bk] == rw:
                                    serv = sh
                                else:
                                    serv = sm_
                                    open_rows[bk] = rw
                                free = next_free[ch]
                                start = free if free > issue else issue
                                next_free[ch] = start + serv
                                dram_bytes += dev
                                if record:
                                    r_serv = serv
                                    r_ch = ch
                            if use_meta:
                                meta_ready = issue
                                mt, ms, mc, mr, mb = meta_rows[i]
                                ways = meta_flat[ms]
                                if mt in ways:
                                    ways.remove(mt)
                                    ways.append(mt)
                                    meta_hits += 1
                                else:
                                    meta_misses += 1
                                    ways.append(mt)
                                    if len(ways) > meta_ways:
                                        ways.pop(0)
                                    if open_rows[mb] == mr:
                                        serv = meta_serv_hit
                                    else:
                                        serv = meta_serv_miss
                                        open_rows[mb] = mr
                                    free = next_free[mc]
                                    start = (
                                        free if free > issue else issue
                                    )
                                    end = start + serv
                                    next_free[mc] = end
                                    dram_bytes += meta_line_bytes
                                    meta_ready = end + dram_lat
                                    if record:
                                        r_mmiss = 1
                                        r_mserv = serv
                                        r_mch = mc
                                if bud:
                                    start = (
                                        link_read_free
                                        if link_read_free > meta_ready
                                        else meta_ready
                                    )
                                    link_read_free = (
                                        start + bnum / link_bpc
                                    )
                                    link_read_bytes += bud
                                    buddy_fills += 1
                                    if record:
                                        r_bnum = bnum
                            # Install the whole line.
                            if e2 is not None:
                                del d2[lid]
                                d2[lid] = e2 | fm
                            else:
                                if len(d2) >= l2_ways:
                                    victim = next(iter(d2))
                                    del d2[victim]
                                    dirty_mask = l2_dirty[s2].pop(
                                        victim, 0
                                    )
                                    if dirty_mask:
                                        # Writeback (RMW is only
                                        # taken in the compressed
                                        # modes).
                                        ventry = victim % entries
                                        num = wb_dev[ventry]
                                        serv = wb_serv[ventry]
                                        if num:
                                            vch = victim % channels
                                            vrow = victim * line_bytes // row_bytes
                                            vbk = (
                                                vch * banks
                                                + vrow % banks
                                            )
                                            if open_rows[vbk] == vrow:
                                                serv = serv + row_hit_ov
                                            else:
                                                serv = (
                                                    serv + row_miss_ov
                                                )
                                                open_rows[vbk] = vrow
                                            vfree = next_free[vch]
                                            vstart = (
                                                vfree
                                                if vfree > issue
                                                else issue
                                            )
                                            next_free[vch] = (
                                                vstart + serv
                                            )
                                            dram_bytes += num
                                            if record:
                                                r_wbserv = serv
                                                r_wbch = vch
                                        if use_meta:
                                            vbud = wb_bud[ventry]
                                            if vbud:
                                                vstart = (
                                                    link_write_free
                                                    if link_write_free
                                                    > issue
                                                    else issue
                                                )
                                                link_write_free = (
                                                    vstart
                                                    + wb_bnum[ventry]
                                                    / link_bpc
                                                )
                                                link_write_bytes += (
                                                    vbud
                                                )
                                                if record:
                                                    r_wbbnum = wb_bnum[
                                                        ventry
                                                    ]
                                d2[lid] = fm
                d2 = l2_masks[s2]
                e2 = d2.get(lid)
                if e2 is not None:
                    del d2[lid]
                    d2[lid] = e2 | msk
                    dirty = l2_dirty[s2]
                    dirty[lid] = dirty.get(lid, 0) | msk
                else:
                    if len(d2) >= l2_ways:
                        victim = next(iter(d2))
                        del d2[victim]
                        dirty_mask = l2_dirty[s2].pop(victim, 0)
                        if dirty_mask:
                            # Writeback (dirty eviction).
                            if ideal:
                                num = wb_ideal_bytes[dirty_mask]
                                serv = wb_ideal_serv[dirty_mask]
                            else:
                                ventry = victim % entries
                                num = wb_dev[ventry]
                                serv = wb_serv[ventry]
                            if num:
                                vch = victim % channels
                                vrow = victim * line_bytes // row_bytes
                                vbk = vch * banks + vrow % banks
                                if open_rows[vbk] == vrow:
                                    serv = serv + row_hit_ov
                                else:
                                    serv = serv + row_miss_ov
                                    open_rows[vbk] = vrow
                                vfree = next_free[vch]
                                vstart = (
                                    vfree if vfree > issue else issue
                                )
                                next_free[vch] = vstart + serv
                                dram_bytes += num
                                if record:
                                    r_wbserv = serv
                                    r_wbch = vch
                            if use_meta:
                                vbud = wb_bud[victim % entries]
                                if vbud:
                                    vstart = (
                                        link_write_free
                                        if link_write_free > issue
                                        else issue
                                    )
                                    link_write_free = (
                                        vstart
                                        + wb_bnum[victim % entries]
                                        / link_bpc
                                    )
                                    link_write_bytes += vbud
                                    if record:
                                        r_wbbnum = wb_bnum[
                                            victim % entries
                                        ]
                    d2[lid] = msk
                    l2_dirty[s2][lid] = msk
                next_ready = issue + interval
                if record:
                    if r_fill:
                        rec(
                            tcols, 6, w, sm, r_serv, r_mserv, r_wbserv,
                            r_ch, r_mmiss, r_mch, r_bnum, r_wbch,
                            r_wbbnum,
                        )
                    elif r_wbserv or r_wbbnum:
                        rec(
                            tcols, 5, w, sm, 0.0, 0.0, r_wbserv,
                            0, 0, 0, 0, r_wbch, r_wbbnum,
                        )
                    else:
                        rec(tcols, 4, w, sm)
            elif code == 3:  # _HOST_LOAD
                sm_free[sm] = issue + interval
                hbytes, hnum = host_rows[i]
                start = (
                    link_read_free if link_read_free > issue else issue
                )
                end = start + hnum / link_bpc
                link_read_free = end
                link_read_bytes += hbytes
                done = end + link_lat
                if record:
                    rec(tcols, 3, w, sm, 0.0, 0.0, 0.0, hnum)
                out = outstanding[w]
                out.append(done)
                head = out_heads[w]
                if len(out) - head >= warp_mlp[w]:
                    next_ready = out[head]
                    out_heads[w] = head + 1
                else:
                    next_ready = issue + interval
            else:  # _HOST_STORE: fire-and-forget remote write
                sm_free[sm] = issue + interval
                hbytes, hnum = host_rows[i]
                start = (
                    link_write_free if link_write_free > issue else issue
                )
                link_write_free = start + hnum / link_bpc
                link_write_bytes += hbytes
                next_ready = issue + interval
                if record:
                    rec(tcols, 7, w, sm, 0.0, 0.0, 0.0, hnum)

            sequence += 1
            continuation = (next_ready, sequence, w)
            if heap:
                # A continuation that precedes the whole heap is
                # the next event by construction — skip the sift.
                if continuation < heap[0]:
                    event = continuation
                else:
                    event = pushpop(heap, continuation)
            else:
                event = continuation
    finally:
        if gc_was_enabled:
            gc.enable()

    # -- drain + counters ---------------------------------------------
    cycles = max(
        finish,
        max(next_free),
        link_read_free,
        link_write_free,
        max(sm_free),
    )
    counters = (
        cycles, l1_hits, l1_misses, l2_hits, l2_misses, dram_bytes,
        link_read_bytes, link_write_bytes, meta_hits, meta_misses,
        buddy_fills, demand_fills,
    )
    if not record:
        return counters, None
    tape_cols = (
        np.frombuffer(tcols[0], dtype=np.int8),
        np.frombuffer(tcols[1], dtype=np.intc),
        np.frombuffer(tcols[2], dtype=np.intc),
        np.frombuffer(tcols[3], dtype=np.float64),
        np.frombuffer(tcols[4], dtype=np.float64),
        np.frombuffer(tcols[5], dtype=np.float64),
        np.frombuffer(tcols[6], dtype=np.intc),
        np.frombuffer(tcols[7], dtype=np.intc),
        np.frombuffer(tcols[8], dtype=np.intc),
        np.frombuffer(tcols[9], dtype=np.intc),
        np.frombuffer(tcols[10], dtype=np.intc),
        np.frombuffer(tcols[11], dtype=np.intc),
    )
    return counters, tape_cols


def _replay_py(tape_cols, warp_mlp_a, iscalars, fscalars) -> float:
    """Pure-Python tape replay over the compacted columns.

    The tape is consumed strictly in order, so the columns are zipped
    into a transient row iterator — one tuple unpack per event, the
    same per-event cost as the historical list-of-tuples tape, with no
    retained tuple storage.
    """
    warp_count = int(iscalars[RI_WARP_COUNT])
    sm_count = int(iscalars[RI_SM_COUNT])
    channels = int(iscalars[RI_CHANNELS])
    interval = fscalars[RF_INTERVAL]
    dram_lat = fscalars[RF_DRAM_LAT]
    arrival_lat = fscalars[RF_ARRIVAL_LAT]
    link_bpc = fscalars[RF_LINK_BPC]
    link_lat = fscalars[RF_LINK_LAT]
    fill_tail = fscalars[RF_FILL_TAIL]

    next_free = [0.0] * channels
    sm_free = [0.0] * sm_count
    link_read_free = 0.0
    link_write_free = 0.0
    warp_mlp = warp_mlp_a.tolist()
    ready = [0.0] * warp_count
    outstanding: list[list] = [[] for _ in range(warp_count)]
    out_heads = [0] * warp_count
    finish = 0.0

    rows = zip(*(column.tolist() for column in tape_cols))

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for kind, w, sm, f0, f1, f2, i0, i1, i2, i3, i4, i5 in rows:
            if kind == 0:  # compute
                r = ready[w]
                free = sm_free[sm]
                issue = r if r > free else free
                t = issue + f0
                sm_free[sm] = t
                ready[w] = t
            elif kind == 1:  # load, cache hit
                r = ready[w]
                free = sm_free[sm]
                issue = r if r > free else free
                sm_free[sm] = issue + interval
                done = issue + f0
                out = outstanding[w]
                out.append(done)
                head = out_heads[w]
                if len(out) - head >= warp_mlp[w]:
                    ready[w] = out[head]
                    out_heads[w] = head + 1
                else:
                    ready[w] = issue + interval
            elif kind == 2:  # load, demand fill
                r = ready[w]
                free = sm_free[sm]
                issue = r if r > free else free
                sm_free[sm] = issue + interval
                arrival = issue + arrival_lat
                if f0:  # serv
                    free = next_free[i0]
                    start = free if free > arrival else arrival
                    end = start + f0
                    next_free[i0] = end
                    done = end + dram_lat
                else:
                    done = arrival
                meta_ready = arrival
                if i1:  # mmiss
                    free = next_free[i2]
                    start = free if free > arrival else arrival
                    end = start + f1
                    next_free[i2] = end
                    meta_ready = end + dram_lat
                    if meta_ready > done:
                        done = meta_ready
                if i3:  # bnum
                    start = (
                        link_read_free
                        if link_read_free > meta_ready
                        else meta_ready
                    )
                    end = start + i3 / link_bpc
                    link_read_free = end
                    t = end + link_lat
                    if t > done:
                        done = t
                if f2:  # wbserv
                    free = next_free[i4]
                    start = free if free > arrival else arrival
                    next_free[i4] = start + f2
                if i5:  # wbbnum
                    start = (
                        link_write_free
                        if link_write_free > arrival
                        else arrival
                    )
                    link_write_free = start + i5 / link_bpc
                done = done + fill_tail
                out = outstanding[w]
                out.append(done)
                head = out_heads[w]
                if len(out) - head >= warp_mlp[w]:
                    ready[w] = out[head]
                    out_heads[w] = head + 1
                else:
                    ready[w] = issue + interval
            elif kind == 4:  # store, no memory-system timing
                r = ready[w]
                free = sm_free[sm]
                issue = r if r > free else free
                sm_free[sm] = issue + interval
                ready[w] = issue + interval
            elif kind == 5:  # store with dirty-eviction writeback
                r = ready[w]
                free = sm_free[sm]
                issue = r if r > free else free
                sm_free[sm] = issue + interval
                if f2:
                    free = next_free[i4]
                    start = free if free > issue else issue
                    next_free[i4] = start + f2
                if i5:
                    start = (
                        link_write_free
                        if link_write_free > issue
                        else issue
                    )
                    link_write_free = start + i5 / link_bpc
                ready[w] = issue + interval
            elif kind == 6:  # store with read-modify-write fill
                r = ready[w]
                free = sm_free[sm]
                issue = r if r > free else free
                sm_free[sm] = issue + interval
                if f0:
                    free = next_free[i0]
                    start = free if free > issue else issue
                    next_free[i0] = start + f0
                meta_ready = issue
                if i1:
                    free = next_free[i2]
                    start = free if free > issue else issue
                    end = start + f1
                    next_free[i2] = end
                    meta_ready = end + dram_lat
                if i3:
                    start = (
                        link_read_free
                        if link_read_free > meta_ready
                        else meta_ready
                    )
                    link_read_free = start + i3 / link_bpc
                if f2:
                    free = next_free[i4]
                    start = free if free > issue else issue
                    next_free[i4] = start + f2
                if i5:
                    start = (
                        link_write_free
                        if link_write_free > issue
                        else issue
                    )
                    link_write_free = start + i5 / link_bpc
                ready[w] = issue + interval
            elif kind == 3:  # host load over the link
                r = ready[w]
                free = sm_free[sm]
                issue = r if r > free else free
                sm_free[sm] = issue + interval
                start = (
                    link_read_free if link_read_free > issue else issue
                )
                end = start + i0 / link_bpc
                link_read_free = end
                done = end + link_lat
                out = outstanding[w]
                out.append(done)
                head = out_heads[w]
                if len(out) - head >= warp_mlp[w]:
                    ready[w] = out[head]
                    out_heads[w] = head + 1
                else:
                    ready[w] = issue + interval
            elif kind == 7:  # host store over the link
                r = ready[w]
                free = sm_free[sm]
                issue = r if r > free else free
                sm_free[sm] = issue + interval
                start = (
                    link_write_free if link_write_free > issue else issue
                )
                link_write_free = start + i0 / link_bpc
                ready[w] = issue + interval
            else:  # warp end
                out = outstanding[w]
                head = out_heads[w]
                if len(out) > head:
                    last = max(out[head:])
                    if last > finish:
                        finish = last
                r = ready[w]
                if r > finish:
                    finish = r
    finally:
        if gc_was_enabled:
            gc.enable()

    return max(
        finish,
        max(next_free),
        link_read_free,
        link_write_free,
        max(sm_free),
    )


def _replay_many_py(tape_cols, warp_mlp_a, iscalars, fscalars_list):
    """NumPy-over-links twin of :func:`_replay_py`.

    One lane of float64 clock state per requested link: every scalar
    recurrence of :func:`_replay_py` (``r if r > free else free``
    maxes, ``+`` accumulations, the ``bytes / link_bpc`` divisions)
    becomes the elementwise ``np.maximum`` / ``+`` / ``/`` over the
    lane axis.  Elementwise IEEE double ops are computed per lane
    exactly as the scalar ops are, in the same order, so each lane is
    bit-identical to a serial replay at that link.  Branches and the
    MLP pop decision read only tape payloads and integer counts —
    link-invariant scalars — so the shared control flow is exact, not
    approximate.  Lane arrays are always rebound, never mutated, so
    completion arrays retained in ``outstanding`` stay frozen.
    """
    n_links = len(fscalars_list)
    warp_count = int(iscalars[RI_WARP_COUNT])
    sm_count = int(iscalars[RI_SM_COUNT])
    channels = int(iscalars[RI_CHANNELS])
    packs = np.asarray(fscalars_list, dtype=np.float64)
    interval = packs[:, RF_INTERVAL].copy()
    dram_lat = packs[:, RF_DRAM_LAT].copy()
    arrival_lat = packs[:, RF_ARRIVAL_LAT].copy()
    link_bpc = packs[:, RF_LINK_BPC].copy()
    link_lat = packs[:, RF_LINK_LAT].copy()
    fill_tail = packs[:, RF_FILL_TAIL].copy()

    maximum = np.maximum
    next_free = np.zeros((channels, n_links))
    sm_free = np.zeros((sm_count, n_links))
    link_read_free = np.zeros(n_links)
    link_write_free = np.zeros(n_links)
    warp_mlp = warp_mlp_a.tolist()
    ready = np.zeros((warp_count, n_links))
    outstanding: list[list] = [[] for _ in range(warp_count)]
    out_heads = [0] * warp_count
    finish = np.zeros(n_links)

    rows = zip(*(column.tolist() for column in tape_cols))

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for kind, w, sm, f0, f1, f2, i0, i1, i2, i3, i4, i5 in rows:
            if kind == 0:  # compute
                t = maximum(ready[w], sm_free[sm]) + f0
                sm_free[sm] = t
                ready[w] = t
            elif kind == 1:  # load, cache hit
                issue = maximum(ready[w], sm_free[sm])
                sm_free[sm] = issue + interval
                done = issue + f0
                out = outstanding[w]
                out.append(done)
                head = out_heads[w]
                if len(out) - head >= warp_mlp[w]:
                    ready[w] = out[head]
                    out_heads[w] = head + 1
                else:
                    ready[w] = issue + interval
            elif kind == 2:  # load, demand fill
                issue = maximum(ready[w], sm_free[sm])
                sm_free[sm] = issue + interval
                arrival = issue + arrival_lat
                if f0:  # serv
                    end = maximum(next_free[i0], arrival) + f0
                    next_free[i0] = end
                    done = end + dram_lat
                else:
                    done = arrival
                meta_ready = arrival
                if i1:  # mmiss
                    end = maximum(next_free[i2], arrival) + f1
                    next_free[i2] = end
                    meta_ready = end + dram_lat
                    done = maximum(done, meta_ready)
                if i3:  # bnum
                    end = maximum(link_read_free, meta_ready) + i3 / link_bpc
                    link_read_free = end
                    done = maximum(done, end + link_lat)
                if f2:  # wbserv
                    next_free[i4] = maximum(next_free[i4], arrival) + f2
                if i5:  # wbbnum
                    link_write_free = (
                        maximum(link_write_free, arrival) + i5 / link_bpc
                    )
                done = done + fill_tail
                out = outstanding[w]
                out.append(done)
                head = out_heads[w]
                if len(out) - head >= warp_mlp[w]:
                    ready[w] = out[head]
                    out_heads[w] = head + 1
                else:
                    ready[w] = issue + interval
            elif kind == 4:  # store, no memory-system timing
                issue = maximum(ready[w], sm_free[sm])
                sm_free[sm] = issue + interval
                ready[w] = issue + interval
            elif kind == 5:  # store with dirty-eviction writeback
                issue = maximum(ready[w], sm_free[sm])
                sm_free[sm] = issue + interval
                if f2:
                    next_free[i4] = maximum(next_free[i4], issue) + f2
                if i5:
                    link_write_free = (
                        maximum(link_write_free, issue) + i5 / link_bpc
                    )
                ready[w] = issue + interval
            elif kind == 6:  # store with read-modify-write fill
                issue = maximum(ready[w], sm_free[sm])
                sm_free[sm] = issue + interval
                if f0:
                    next_free[i0] = maximum(next_free[i0], issue) + f0
                meta_ready = issue
                if i1:
                    end = maximum(next_free[i2], issue) + f1
                    next_free[i2] = end
                    meta_ready = end + dram_lat
                if i3:
                    link_read_free = (
                        maximum(link_read_free, meta_ready) + i3 / link_bpc
                    )
                if f2:
                    next_free[i4] = maximum(next_free[i4], issue) + f2
                if i5:
                    link_write_free = (
                        maximum(link_write_free, issue) + i5 / link_bpc
                    )
                ready[w] = issue + interval
            elif kind == 3:  # host load over the link
                issue = maximum(ready[w], sm_free[sm])
                sm_free[sm] = issue + interval
                end = maximum(link_read_free, issue) + i0 / link_bpc
                link_read_free = end
                done = end + link_lat
                out = outstanding[w]
                out.append(done)
                head = out_heads[w]
                if len(out) - head >= warp_mlp[w]:
                    ready[w] = out[head]
                    out_heads[w] = head + 1
                else:
                    ready[w] = issue + interval
            elif kind == 7:  # host store over the link
                issue = maximum(ready[w], sm_free[sm])
                sm_free[sm] = issue + interval
                link_write_free = (
                    maximum(link_write_free, issue) + i0 / link_bpc
                )
                ready[w] = issue + interval
            else:  # warp end
                out = outstanding[w]
                head = out_heads[w]
                if len(out) > head:
                    last = out[head]
                    for done in out[head + 1:]:
                        last = maximum(last, done)
                    finish = maximum(finish, last)
                finish = maximum(finish, ready[w])
    finally:
        if gc_was_enabled:
            gc.enable()

    cycles = maximum(finish, next_free.max(axis=0))
    cycles = maximum(cycles, link_read_free)
    cycles = maximum(cycles, link_write_free)
    cycles = maximum(cycles, sm_free.max(axis=0))
    return tuple(float(c) for c in cycles)
