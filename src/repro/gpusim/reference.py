"""Cycle-stepped reference machine — the Fig. 10 silicon proxy.

The paper validates its fast dependency-driven simulator against real
V100 silicon and against GPGPUSim, showing ~0.99 correlation and a two
orders-of-magnitude speed gap.  Without silicon, we reproduce the
methodology with this deliberately detailed machine: it steps every
core cycle, walks each SM's warps in greedy-then-oldest order, and
models the same memory system.  The correlation study then measures
how faithfully (and how much faster) the fast simulator tracks it.

The machine consumes the :class:`ColumnarTrace` representation
directly: instruction streams are flat op/operand columns indexed per
warp through the CSR offsets, so a columnar-native trace (everything
the generator emits) is simulated without ever materialising the
legacy per-warp tuple lists.  Only the issue logic reads the columns —
the memory system is shared with the legacy engine unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.compression import CompressionState
from repro.gpusim.config import GPUConfig
from repro.gpusim.simulator import SimResult, _MemorySystem, _aggregate_hit_rate
from repro.gpusim.trace import KernelTrace, Op


@dataclass
class _WarpState:
    """Per-warp microarchitectural state.

    ``pc`` indexes the trace's flat instruction columns and runs over
    ``[start, end)`` — the warp's CSR row range — rather than over a
    per-warp list.
    """

    pc: int
    end: int
    max_outstanding: int
    busy_until: float = 0.0
    compute_left: int = 0
    last_issue: float = -1.0
    outstanding: tuple = ()

    @property
    def done(self) -> bool:
        return self.pc >= self.end and self.compute_left == 0


class CycleSteppedReference:
    """The slow, cycle-accurate-style reference simulator."""

    def __init__(self, config: GPUConfig) -> None:
        self.config = config

    def run(self, trace: KernelTrace, state: CompressionState) -> SimResult:
        config = self.config
        memory = _MemorySystem(config, state)
        if trace.host_traffic_fraction > 0:
            memory.host_base = trace.footprint_bytes

        # Flat instruction columns (plain lists: the per-cycle loop
        # below indexes them scalar-wise, where ndarray item access
        # would dominate).
        col = trace.columnar()
        ops = col.ops.tolist()
        operand_a = col.a.tolist()
        operand_b = col.b.tolist()
        starts = col.warp_starts.tolist()
        warp_sm = col.warp_sm.tolist()
        warp_mlp = col.warp_mlp.tolist()

        # Group warps per SM, preserving age order (GTO = greedy then
        # oldest: keep issuing the same warp until it stalls, then
        # fall back to the oldest ready one).
        sms: list[list[_WarpState]] = [[] for _ in range(config.sm_count)]
        for index in range(col.warp_count):
            sms[warp_sm[index]].append(
                _WarpState(starts[index], starts[index + 1], warp_mlp[index])
            )
        greedy: list[int | None] = [None] * config.sm_count

        cycle = 0.0
        live = sum(len(s) for s in sms)
        issue_slots = config.schedulers_per_sm
        compute_code = int(Op.COMPUTE)
        load_code = int(Op.LOAD)
        while live > 0:
            for sm_index, warps in enumerate(sms):
                for _ in range(issue_slots):
                    warp = self._pick(warps, greedy, sm_index, cycle)
                    if warp is None:
                        break
                    if self._issue(
                        warp, sm_index, memory, cycle,
                        ops, operand_a, operand_b,
                        compute_code, load_code,
                    ):
                        greedy[sm_index] = warps.index(warp)
                    if warp.done:
                        live -= 1
                        greedy[sm_index] = None
            cycle += 1.0
            if cycle > 50_000_000:  # pragma: no cover - runaway guard
                raise RuntimeError("reference simulation did not converge")

        # Same completion semantics as the fast simulator: DRAM posts
        # and the interconnect's fire-and-forget write direction must
        # drain, or the two machines diverge on write-tailed kernels.
        cycles = max(cycle, memory.dram.busy_until, memory.link.busy_until)
        meta = memory.metadata.stats
        return SimResult(
            benchmark=trace.benchmark,
            mode=state.mode.value,
            cycles=cycles,
            instructions=trace.instruction_count,
            l1_hit_rate=_aggregate_hit_rate(memory.l1s),
            l2_hit_rate=memory.l2.hit_rate,
            dram_bytes=memory.dram.bytes_moved,
            link_bytes=memory.link.total_bytes,
            metadata_hit_rate=meta.hit_rate,
            buddy_fills=memory.buddy_fills,
            demand_fills=memory.demand_fills,
        )

    # ------------------------------------------------------------------
    def _pick(self, warps, greedy, sm_index, cycle):
        """Greedy-then-oldest warp selection."""
        favourite = greedy[sm_index]
        if favourite is not None and favourite < len(warps):
            warp = warps[favourite]
            if not warp.done and warp.busy_until <= cycle:
                return warp
        for warp in warps:  # list order == age order
            if not warp.done and warp.busy_until <= cycle:
                return warp
        return None

    def _issue(
        self, warp: _WarpState, sm: int, memory, cycle: float,
        ops, operand_a, operand_b, compute_code, load_code,
    ) -> bool:
        """Issue one instruction from the warp; returns success."""
        if warp.compute_left > 0:
            warp.compute_left -= 1
            if warp.compute_left == 0:
                warp.pc += 1
            return True
        pc = warp.pc
        op = ops[pc]
        if op == compute_code:
            warp.compute_left = operand_a[pc] - 1
            if warp.compute_left == 0:
                warp.pc += 1
            return True
        if op == load_code:
            done = memory.load(sm, operand_a[pc], operand_b[pc], cycle)
            warp.outstanding = warp.outstanding + (done,)
            if len(warp.outstanding) >= warp.max_outstanding:
                warp.busy_until = warp.outstanding[0]
                warp.outstanding = warp.outstanding[1:]
            warp.pc += 1
            return True
        memory.store(sm, operand_a[pc], operand_b[pc], cycle)
        warp.pc += 1
        return True
