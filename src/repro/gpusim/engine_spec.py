"""The unified engine-selection surface: :class:`EngineSpec`.

Engine selection used to be a pair of ad-hoc keyword arguments
(``engine="relaxed", verify=0.5``) copied across
:func:`~repro.analysis.perf_study.run_perf_study`,
:func:`~repro.analysis.correlation_study.run_correlation_study` and
the CLI, each with its own validation.  :class:`EngineSpec` is the one
place those knobs are parsed and validated:

* ``name`` — the simulator core (one of
  :data:`~repro.gpusim.simulator.ENGINES`);
* ``verify`` — the relaxed engine's sampled oracle cross-check
  fraction (0.0 for the exact engines);
* ``tolerance`` — an optional override of the relaxed engine's pinned
  verification tolerances (see :func:`check_relaxed_contract`).

The string form (``"relaxed"``, ``"relaxed:verify=0.5"``,
``"relaxed:verify=1.0,tolerance=0.02"``) is accepted everywhere an
:class:`EngineSpec` is, so CLI flags and config files need no extra
plumbing.  The legacy keyword pair keeps working through
:meth:`EngineSpec.coerce`, which emits a :class:`DeprecationWarning`
naming the replacement.

``tolerance`` is deliberately *not* an experiment parameter: it only
changes when a verified run raises, never the simulated result, so
threading it into cached design points would fork cache keys for
bit-identical data.  :meth:`EngineSpec.study_params` therefore rejects
it — a custom tolerance is a direct-simulation knob
(:meth:`EngineSpec.simulator`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.gpusim.simulator import ENGINES

#: Default spec: the exact batched engine, no cross-checking.
DEFAULT_ENGINE = "vectorized"


@dataclass(frozen=True)
class EngineSpec:
    """One validated engine selection (name + verify + tolerance)."""

    name: str = DEFAULT_ENGINE
    verify: float = 0.0
    tolerance: float | None = None

    def __post_init__(self) -> None:
        if self.name not in ENGINES:
            raise ValueError(
                f"unknown engine {self.name!r}; expected one of {ENGINES}"
            )
        if not 0.0 <= self.verify <= 1.0:
            raise ValueError(
                f"verify must be a fraction in [0, 1], got {self.verify!r}"
            )
        if self.verify and self.name != "relaxed":
            raise ValueError(
                "verify= cross-checking is the relaxed engine's escape "
                f"hatch; engine {self.name!r} is already exact"
            )
        if self.tolerance is not None:
            if self.name != "relaxed":
                raise ValueError(
                    "tolerance= loosens the relaxed engine's verification "
                    f"contract; engine {self.name!r} has no tolerances"
                )
            if self.tolerance <= 0.0:
                raise ValueError(
                    f"tolerance must be positive, got {self.tolerance!r}"
                )

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> EngineSpec:
        """Parse the string form: ``name[:key=value,...]``.

        Examples: ``"vectorized"``, ``"relaxed:verify=0.5"``,
        ``"relaxed:verify=1.0,tolerance=0.02"``.
        """
        name, _, options = text.strip().partition(":")
        kwargs: dict[str, float] = {}
        for item in filter(None, options.split(",")):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep or key not in ("verify", "tolerance"):
                raise ValueError(
                    f"bad engine spec option {item!r} in {text!r}; "
                    "expected verify=FRACTION or tolerance=FRACTION"
                )
            try:
                kwargs[key] = float(value)
            except ValueError:
                raise ValueError(
                    f"bad engine spec value {value!r} for {key} in {text!r}"
                ) from None
        return cls(name, **kwargs)

    @classmethod
    def coerce(
        cls,
        spec: EngineSpec | str | None = None,
        *,
        engine: str | None = None,
        verify: float | None = None,
        where: str = "this function",
    ) -> EngineSpec:
        """The single funnel from old and new call surfaces to a spec.

        ``spec`` is the preferred argument (an :class:`EngineSpec` or
        its string form); the legacy ``engine=`` / ``verify=`` keyword
        pair keeps working but emits a :class:`DeprecationWarning`
        naming the replacement.  Mixing both is an error.
        """
        legacy = engine is not None or verify is not None
        if spec is not None:
            if legacy:
                raise TypeError(
                    f"{where} got both engine_spec= and the legacy "
                    "engine=/verify= kwargs; pass only engine_spec="
                )
            return spec if isinstance(spec, EngineSpec) else cls.parse(spec)
        if legacy:
            replacement = cls(engine or DEFAULT_ENGINE, verify or 0.0)
            warnings.warn(
                f"the engine=/verify= kwargs of {where} are deprecated; "
                f"pass engine_spec={str(replacement)!r} "
                "(an EngineSpec or its string form) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            return replacement
        return cls()

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        options = []
        if self.verify:
            options.append(f"verify={self.verify:g}")
        if self.tolerance is not None:
            options.append(f"tolerance={self.tolerance:g}")
        return self.name + (":" + ",".join(options) if options else "")

    def simulator(self, config):
        """A :class:`DependencyDrivenSimulator` honouring this spec."""
        from repro.gpusim.simulator import DependencyDrivenSimulator

        return DependencyDrivenSimulator(
            config, self.name, self.verify, tolerance=self.tolerance
        )

    def study_params(self) -> dict[str, object]:
        """This spec as cached-experiment parameters.

        Only ``name`` and ``verify`` are cache axes.  A custom
        ``tolerance`` is rejected: it cannot reach the workers without
        becoming a parameter axis, which would fork cache keys for
        results the tolerance provably does not change.
        """
        if self.tolerance is not None:
            raise ValueError(
                "a custom tolerance is a direct-simulation knob "
                "(EngineSpec.simulator); cached studies pin the default "
                "relaxed tolerances so their cache keys stay stable"
            )
        return {"engine": self.name, "verify": self.verify}
