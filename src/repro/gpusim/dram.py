"""HBM2 channel model.

Each channel is a bandwidth-limited queue with row-buffer locality:
a request occupies its channel for the pin-transfer time plus a
row-hit or row-miss command overhead, behind earlier requests, then
completes after the fixed DRAM latency.  The overhead split is what
gives streaming traffic near-peak throughput while random 32 B
gathers achieve a small fraction of peak — the asymmetry behind
Fig. 11's over-fetch results (354.cg, 360.ilbdc).

Addresses interleave across channels at line granularity, the same
hash the paper assumes for both data and metadata.
"""

from __future__ import annotations

import numpy as np

#: DRAM row size assumed for row-buffer locality.
ROW_BYTES = 2048

#: Banks per channel: each holds one open row.  Out-of-order arrival
#: from hundreds of warps still hits open rows across the bank set,
#: approximating an FR-FCFS controller.
BANKS_PER_CHANNEL = 16

#: Channel occupancy (cycles) added on a row-buffer hit / miss.
ROW_HIT_OVERHEAD = 0.25
ROW_MISS_OVERHEAD = 2.0


class ChannelSet:
    """A set of bandwidth-limited DRAM channels with banked open rows."""

    def __init__(
        self, channels: int, bytes_per_cycle: float, latency: int,
        line_bytes: int = 128,
    ) -> None:
        self.channels = channels
        self.bytes_per_cycle = bytes_per_cycle
        self.latency = latency
        self.line_bytes = line_bytes
        self._next_free = np.zeros(channels, dtype=np.float64)
        self._open_rows = [
            np.full(BANKS_PER_CHANNEL, -1, dtype=np.int64)
            for _ in range(channels)
        ]
        self.bytes_moved = 0
        self.requests = 0
        self.row_hits = 0

    def channel_of(self, address: int) -> int:
        return (address // self.line_bytes) % self.channels

    def request(self, address: int, num_bytes: int, arrival: float) -> float:
        """Issue a transfer; returns its completion time (cycles)."""
        channel = self.channel_of(address)
        row = address // ROW_BYTES
        bank = row % BANKS_PER_CHANNEL
        open_rows = self._open_rows[channel]
        if open_rows[bank] == row:
            overhead = ROW_HIT_OVERHEAD
            self.row_hits += 1
        else:
            overhead = ROW_MISS_OVERHEAD
            open_rows[bank] = row
        service = num_bytes / self.bytes_per_cycle + overhead
        start = max(float(self._next_free[channel]), arrival)
        self._next_free[channel] = start + service
        self.bytes_moved += num_bytes
        self.requests += 1
        return start + service + self.latency

    def post(self, address: int, num_bytes: int, arrival: float) -> None:
        """Fire-and-forget transfer (stores, writebacks): consumes
        bandwidth without a completion dependency."""
        self.request(address, num_bytes, arrival)

    # -- batched reservation API ---------------------------------------
    def decompose(
        self, addresses
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized geometry split of an address array.

        Returns ``(channels, rows, flat banks)`` where the flat bank
        index is ``channel * BANKS_PER_CHANNEL + bank`` — the
        coordinates a batched engine precomputes once per trace
        instead of re-deriving on every request.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        channels = (addresses // self.line_bytes) % self.channels
        rows = addresses // ROW_BYTES
        banks = channels * BANKS_PER_CHANNEL + rows % BANKS_PER_CHANNEL
        return channels, rows, banks

    def request_many(self, addresses, byte_counts, arrivals) -> np.ndarray:
        """Batched :meth:`request`; returns per-request completions.

        Channel occupancy and open-row state are order-dependent, so
        requests are reserved in argument order — identical timings
        and counters to an equivalent scalar sequence.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        byte_counts = np.asarray(byte_counts, dtype=np.int64)
        arrivals = np.asarray(arrivals, dtype=np.float64)
        done = np.empty(addresses.size, dtype=np.float64)
        for position, (address, count, arrival) in enumerate(
            zip(addresses.tolist(), byte_counts.tolist(), arrivals.tolist())
        ):
            done[position] = self.request(address, count, arrival)
        return done

    @property
    def busy_until(self) -> float:
        return float(self._next_free.max())

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.requests if self.requests else 0.0
