"""Per-entry compression state for the memory pipeline.

The simulator needs, for every 128 B line, how many sectors the entry
compresses to, whether it fits its allocation's device budget, and how
many sectors overflow to buddy-memory.  The state is built from the
same calibrated dumps the static studies use, via the cached
:class:`~repro.core.profile_tensor.EntryStateTensor` reduction (entry
classes map to compressed sector counts, validated against the BPC
codec by the workload tests); the allocation's annotated target
supplies the device budget.  Building from
:func:`repro.core.profiler.entry_state_tensor` means a warm perf or
correlation sweep constructs its states without regenerating a single
snapshot.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.entry import TargetRatio
from repro.core.profile_tensor import EntryStateTensor
from repro.units import MEMORY_ENTRY_BYTES, SECTOR_BYTES, ZERO_CLASS_BYTES
from repro.workloads.snapshots import MemorySnapshot


class CompressionMode(enum.Enum):
    """Fig. 11's three memory-system configurations."""

    IDEAL = "ideal"  # uncompressed, unlimited-capacity baseline
    BANDWIDTH = "bandwidth"  # L2<->DRAM link compression only
    BUDDY = "buddy"  # full Buddy Compression


class CompressionState:
    """Vectorised per-entry compression facts for one placed benchmark.

    Attributes:
        mode: Active compression mode.
        sectors: ``(n,)`` compressed sectors per entry (1..4).
        budgets: ``(n,)`` device-resident sectors per entry (0 == 16x).
        zero_fit: ``(n,)`` whether the entry fits the 8 B zero slot.
        buddy_sectors: ``(n,)`` sectors fetched remotely per access.
    """

    def __init__(
        self,
        mode: CompressionMode,
        sectors: np.ndarray,
        budgets: np.ndarray,
        zero_fit: np.ndarray,
    ) -> None:
        self.mode = mode
        self.sectors = sectors.astype(np.int8)
        self.budgets = budgets.astype(np.int8)
        self.zero_fit = zero_fit.astype(bool)
        overflow = np.maximum(0, self.sectors - np.maximum(self.budgets, 0))
        # 16x entries that miss the 8 B slot fetch everything remotely.
        in_zero_class = self.budgets == 0
        overflow = np.where(
            in_zero_class,
            np.where(self.zero_fit, 0, self.sectors),
            overflow,
        )
        self.buddy_sectors = overflow.astype(np.int8)

    # ------------------------------------------------------------------
    @classmethod
    def ideal(cls, footprint_bytes: int) -> "CompressionState":
        """Uncompressed baseline covering a footprint."""
        n = max(1, footprint_bytes // MEMORY_ENTRY_BYTES)
        return cls(
            CompressionMode.IDEAL,
            np.full(n, 4, dtype=np.int8),
            np.full(n, 4, dtype=np.int8),
            np.zeros(n, dtype=bool),
        )

    @classmethod
    def from_entry_state(
        cls,
        state: EntryStateTensor,
        selection: dict[str, TargetRatio],
        mode: CompressionMode = CompressionMode.BUDDY,
    ) -> "CompressionState":
        """Build from a cached per-entry state plus a target selection.

        In ``BANDWIDTH`` mode targets are ignored (every entry is
        device-resident, compression only shrinks transfers).
        """
        if mode is CompressionMode.BUDDY:
            budgets = state.budget_per_entry(selection)
        else:
            budgets = np.full(state.entries, 4, dtype=np.int8)
        return cls(mode, state.sectors, budgets, state.zero_fit)

    @classmethod
    def from_snapshot(
        cls,
        snapshot: MemorySnapshot,
        selection: dict[str, TargetRatio],
        mode: CompressionMode = CompressionMode.BUDDY,
    ) -> "CompressionState":
        """Build from an explicit (already generated) memory snapshot."""
        return cls.from_entry_state(snapshot.entry_state(), selection, mode)

    # ------------------------------------------------------------------
    @property
    def entries(self) -> int:
        return int(self.sectors.size)

    def entry_of(self, address: int) -> int:
        return (address // MEMORY_ENTRY_BYTES) % self.entries

    def device_transfer_bytes(self, entry: int) -> int:
        """Bytes moved over DRAM pins when filling this entry's line."""
        if self.mode is CompressionMode.IDEAL:
            return MEMORY_ENTRY_BYTES
        sectors = int(self.sectors[entry])
        if self.mode is CompressionMode.BANDWIDTH:
            return sectors * SECTOR_BYTES
        budget = int(self.budgets[entry])
        if budget == 0:
            # 16x entries: only those fitting the 8 B slot read it from
            # device memory.  Entries that miss the zero class live
            # entirely in buddy-memory (buddy_sectors covers the whole
            # entry), so charging the slot read too would double-count
            # DRAM traffic for exactly the entries that never touch it.
            return ZERO_CLASS_BYTES if self.zero_fit[entry] else 0
        return min(sectors, budget) * SECTOR_BYTES

    def buddy_transfer_bytes(self, entry: int) -> int:
        """Bytes fetched over the interconnect for this entry."""
        if self.mode is not CompressionMode.BUDDY:
            return 0
        return int(self.buddy_sectors[entry]) * SECTOR_BYTES

    # -- whole-table views (the vectorized engine's entry tables) ------
    def device_transfer_bytes_table(self) -> np.ndarray:
        """``(entries,)`` int64 :meth:`device_transfer_bytes` for every
        entry at once — the per-entry DRAM cost the batched engine
        gathers per access instead of re-deriving per instruction."""
        n = self.entries
        if self.mode is CompressionMode.IDEAL:
            return np.full(n, MEMORY_ENTRY_BYTES, dtype=np.int64)
        sectors = self.sectors.astype(np.int64)
        if self.mode is CompressionMode.BANDWIDTH:
            return sectors * SECTOR_BYTES
        budgets = self.budgets.astype(np.int64)
        compressed = np.minimum(sectors, budgets) * SECTOR_BYTES
        zero_slot = np.where(self.zero_fit, ZERO_CLASS_BYTES, 0)
        return np.where(budgets == 0, zero_slot, compressed)

    def buddy_transfer_bytes_table(self) -> np.ndarray:
        """``(entries,)`` int64 :meth:`buddy_transfer_bytes` per entry."""
        if self.mode is not CompressionMode.BUDDY:
            return np.zeros(self.entries, dtype=np.int64)
        return self.buddy_sectors.astype(np.int64) * SECTOR_BYTES

    def buddy_access_fraction(self) -> float:
        """Fraction of entries requiring any buddy traffic."""
        if self.mode is not CompressionMode.BUDDY or self.entries == 0:
            return 0.0
        return float((self.buddy_sectors > 0).mean())
