"""The dependency-driven performance simulator (fast path).

Warps advance through their instruction streams subject to three
resource classes — SM issue slots, DRAM channel bandwidth, and
interconnect bandwidth — plus fixed latencies.  A warp issues until it
exceeds its memory-level parallelism, then blocks on its oldest
outstanding load, which is the dependency-driven approximation the
paper's (and NVIDIA's NUMA-GPU line of) simulators use.

The memory pipeline implements the three Fig.-11 modes:

* ``IDEAL`` fills only the requested 32 B sectors;
* ``BANDWIDTH`` fills whole lines at the compressed transfer size and
  pays decompression latency — faster for streaming, slower for
  single-sector random access (over-fetch);
* ``BUDDY`` adds the metadata cache (misses consume DRAM bandwidth;
  buddy fetches cannot start until the metadata arrives) and sources
  overflow sectors over the interconnect.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.metadata_cache import MetadataCache
from repro.gpusim.cache import FULL_MASK, SectoredCache, sector_mask
from repro.gpusim.compression import CompressionMode, CompressionState
from repro.gpusim.config import GPUConfig
from repro.gpusim.dram import ChannelSet
from repro.gpusim.interconnect import Interconnect
from repro.gpusim.trace import KernelTrace, Op
from repro.units import (
    ENTRIES_PER_METADATA_LINE,
    MEMORY_ENTRY_BYTES,
    METADATA_LINE_BYTES,
    SECTOR_BYTES,
)


@dataclass
class SimResult:
    """Simulation outcome and pipeline statistics."""

    benchmark: str
    mode: str
    cycles: float
    instructions: int
    l1_hit_rate: float
    l2_hit_rate: float
    dram_bytes: int
    link_bytes: int
    metadata_hit_rate: float
    buddy_fills: int
    demand_fills: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class _MemorySystem:
    """L1s, L2, DRAM channels, interconnect and the metadata path."""

    def __init__(self, config: GPUConfig, state: CompressionState) -> None:
        self.config = config
        self.state = state
        self.l1s = [
            SectoredCache(config.l1_bytes, config.l1_ways, config.line_bytes)
            for _ in range(config.sm_count)
        ]
        self.l2 = SectoredCache(config.l2_bytes, config.l2_ways, config.line_bytes)
        self.dram = ChannelSet(
            config.dram_channels,
            config.dram_bytes_per_cycle_per_channel,
            config.dram_latency,
            config.line_bytes,
        )
        self.link = Interconnect(config)
        self.metadata = MetadataCache(
            config.metadata_cache_bytes,
            config.metadata_cache_ways,
            config.metadata_cache_slices,
        )
        self.host_base = None  # set by simulator for native host regions
        self.buddy_fills = 0
        self.demand_fills = 0
        self._rmw_counter = 0

    # ------------------------------------------------------------------
    def load(self, sm: int, address: int, sectors: int, now: float) -> float:
        """Issue a load; returns data-ready time."""
        config = self.config
        line = address - address % MEMORY_ENTRY_BYTES
        mask = sector_mask((address % MEMORY_ENTRY_BYTES) // SECTOR_BYTES, sectors)

        if self.host_base is not None and address >= self.host_base:
            # Native host-memory access (FF_HPGMG): always remote.
            return self.link.read(sectors * SECTOR_BYTES, now)

        l1 = self.l1s[sm]
        if l1.lookup(line, mask):
            return now + config.l1_latency
        if self.l2.lookup(line, mask):
            l1.fill(line, mask)
            return now + config.l2_latency
        ready = self._fill_l2(line, mask, now + config.l2_latency)
        l1.fill(line, mask)
        return ready + config.l2_latency

    def store(self, sm: int, address: int, sectors: int, now: float) -> None:
        """Issue a store through the write buffer (no warp stall)."""
        line = address - address % MEMORY_ENTRY_BYTES
        mask = sector_mask((address % MEMORY_ENTRY_BYTES) // SECTOR_BYTES, sectors)
        if self.host_base is not None and address >= self.host_base:
            self.link.write(sectors * SECTOR_BYTES, now)
            return
        if self.state.mode is not CompressionMode.IDEAL and sectors < 4:
            # Writing into a compressed entry is a read-modify-write:
            # the rest of the line must be fetched to recompress (the
            # paper's motivation for cache-block granularity).  The
            # warp does not stall, but the bandwidth is consumed.
            # Write-combining in the L2 absorbs most partial stores;
            # every fourth one pays the RMW fetch.
            self._rmw_counter += 1
            if self._rmw_counter % 4 == 0 and not self.l2.lookup(line, FULL_MASK):
                self._fill_l2(line, FULL_MASK, now)
        evicted = self.l2.fill(line, mask, dirty=True)
        if evicted is not None:
            self._writeback(evicted[0], now, evicted[1])

    # ------------------------------------------------------------------
    def _fill_l2(self, line: int, mask: int, now: float) -> float:
        """Demand fill into L2; returns completion time."""
        state = self.state
        self.demand_fills += 1
        if state.mode is CompressionMode.IDEAL:
            # Sectored fill: only the requested sectors move.
            requested = bin(mask).count("1")
            done = self.dram.request(line, requested * SECTOR_BYTES, now)
            evicted = self.l2.fill(line, mask)
            if evicted is not None:
                self._writeback(evicted[0], now, evicted[1])
            return done

        entry = state.entry_of(line)
        device_bytes = state.device_transfer_bytes(entry)
        # 16x entries outside the zero class live entirely in
        # buddy-memory: no device access exists to pay row overhead,
        # latency or channel occupancy for.
        device_done = (
            self.dram.request(line, device_bytes, now) if device_bytes else now
        )
        done = device_done

        if state.mode is CompressionMode.BUDDY:
            entry_index = line // MEMORY_ENTRY_BYTES
            meta_ready = now
            if not self.metadata.access_entry(entry_index):
                # Metadata fetched in parallel with the device data,
                # from the dedicated region (one line per 64 entries).
                meta_addr = (
                    entry_index // ENTRIES_PER_METADATA_LINE
                ) * METADATA_LINE_BYTES
                meta_ready = self.dram.request(
                    meta_addr, METADATA_LINE_BYTES, now
                )
                done = max(done, meta_ready)
            buddy_bytes = state.buddy_transfer_bytes(entry)
            if buddy_bytes:
                # The buddy fetch needs the metadata outcome first
                # (the paper does not speculate into the link).
                buddy_done = self.link.read(buddy_bytes, meta_ready)
                done = max(done, buddy_done)
                self.buddy_fills += 1

        # Compressed fills install the whole line (over-fetch effect).
        evicted = self.l2.fill(line, FULL_MASK)
        if evicted is not None:
            self._writeback(evicted[0], now, evicted[1])
        return done + self.config.decompression_latency

    def _writeback(self, line: int, now: float, dirty_mask: int) -> None:
        """Dirty eviction: post the written data back to storage.

        The uncompressed (IDEAL) baseline is sectored in both
        directions: only the sectors actually written move.  The
        compressed modes recompress at entry granularity, so they
        post the whole compressed entry regardless of the mask.
        """
        state = self.state
        if state.mode is CompressionMode.IDEAL:
            dirty_sectors = bin(dirty_mask).count("1")
            self.dram.post(line, dirty_sectors * SECTOR_BYTES, now)
            return
        entry = state.entry_of(line)
        device_bytes = state.device_transfer_bytes(entry)
        if device_bytes:
            self.dram.post(line, device_bytes, now)
        if state.mode is CompressionMode.BUDDY:
            buddy_bytes = state.buddy_transfer_bytes(entry)
            if buddy_bytes:
                self.link.write(buddy_bytes, now)


#: Engines selectable on :class:`DependencyDrivenSimulator`.
ENGINES = ("vectorized", "relaxed", "legacy")


class DependencyDrivenSimulator:
    """The fast simulator (Fig. 10's subject; Fig. 11's instrument).

    Three interchangeable engines implement the same machine (the
    full three-way contract is documented in ``docs/engines.md``):

    * ``"vectorized"`` (default) — the batched-event core in
      :mod:`repro.gpusim.vector_sim`: per-access quantities resolve as
      whole-trace array operations, events advance in the same
      ``(ready, sequence)`` order over prepared columns.  Identical
      counters and bit-identical cycles to the oracle, everywhere.
    * ``"relaxed"`` — the frozen-order tape engine
      (:class:`repro.gpusim.vector_sim.RelaxedSimulator`): traffic is
      resolved once, in the exact event order of the reference
      interconnect, and every other link bandwidth replays the frozen
      tape.  Exact at the reference interconnect; counters and cycles
      within the pinned tolerances elsewhere.  ``verify`` selects the
      fraction of runs cross-checked against the legacy oracle
      (``verify=1.0`` checks every run; the sample is deterministic
      per design point), and ``tolerance`` optionally overrides the
      pinned verification tolerances for those cross-checks.
    * ``"legacy"`` — the original per-access engine below, kept as the
      correctness oracle.

    The equivalence contracts are pinned by ``tests/test_vector_sim.py``
    and ``tests/test_relaxed_sim.py``.
    """

    def __init__(
        self,
        config: GPUConfig,
        engine: str = "vectorized",
        verify: float = 0.0,
        tolerance: float | None = None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        if verify and engine != "relaxed":
            raise ValueError(
                "verify= cross-checking is the relaxed engine's escape "
                f"hatch; engine {engine!r} is already exact"
            )
        if tolerance is not None and engine != "relaxed":
            raise ValueError(
                "tolerance= loosens the relaxed engine's verification "
                f"contract; engine {engine!r} has no tolerances"
            )
        self.config = config
        self.engine = engine
        self.verify = verify
        self.tolerance = tolerance

    @classmethod
    def from_spec(cls, config: GPUConfig, spec) -> DependencyDrivenSimulator:
        """Build from an :class:`repro.gpusim.engine_spec.EngineSpec`
        (or its string form) — the preferred selection surface."""
        from repro.gpusim.engine_spec import EngineSpec

        if not isinstance(spec, EngineSpec):
            spec = EngineSpec.parse(spec)
        return cls(config, spec.name, spec.verify, tolerance=spec.tolerance)

    def run(self, trace: KernelTrace, state: CompressionState) -> SimResult:
        """Simulate a kernel trace under a compression state."""
        if self.engine == "vectorized":
            from repro.gpusim.vector_sim import VectorizedSimulator

            return VectorizedSimulator(self.config).run(trace, state)
        if self.engine == "relaxed":
            from repro.gpusim.vector_sim import RelaxedSimulator

            return RelaxedSimulator(
                self.config, self.verify, self.tolerance
            ).run(trace, state)
        return self._run_legacy(trace, state)

    def _run_legacy(
        self, trace: KernelTrace, state: CompressionState
    ) -> SimResult:
        """The per-access oracle engine (one heap event per probe)."""
        config = self.config
        memory = _MemorySystem(config, state)
        if trace.host_traffic_fraction > 0:
            memory.host_base = trace.footprint_bytes

        issue_interval = config.issue_interval
        sm_free = [0.0] * config.sm_count
        warps = trace.warps
        # (ready_time, sequence, warp_index, pc, outstanding_loads)
        heap: list = []
        for index, warp in enumerate(warps):
            heapq.heappush(heap, (0.0, index, index, 0, ()))

        finish = 0.0
        sequence = len(warps)
        while heap:
            ready, _, index, pc, outstanding = heapq.heappop(heap)
            warp = warps[index]
            if pc >= len(warp.instructions):
                finish = max(finish, ready, *outstanding) if outstanding else max(finish, ready)
                continue
            op, a, b = warp.instructions[pc]
            sm = warp.sm
            issue = max(ready, sm_free[sm])

            if op == Op.COMPUTE:
                # a back-to-back arithmetic instructions: they occupy
                # the SM's issue slots; ALU latency pipelines away.
                busy = a * issue_interval
                sm_free[sm] = issue + busy
                next_ready = issue + busy
            elif op == Op.LOAD:
                sm_free[sm] = issue + issue_interval
                done = memory.load(sm, a, b, issue)
                outstanding = outstanding + (done,)
                if len(outstanding) >= warp.max_outstanding:
                    # Block on the oldest outstanding load.
                    next_ready = outstanding[0]
                    outstanding = outstanding[1:]
                else:
                    next_ready = issue + issue_interval
            else:  # STORE
                sm_free[sm] = issue + issue_interval
                memory.store(sm, a, b, issue)
                next_ready = issue + issue_interval

            sequence += 1
            heapq.heappush(heap, (next_ready, sequence, index, pc + 1, outstanding))

        # Final time covers in-flight fire-and-forget traffic too: DRAM
        # posts *and* the interconnect's write direction must drain
        # before the kernel's memory state is complete.
        cycles = max(
            finish,
            memory.dram.busy_until,
            memory.link.busy_until,
            max(sm_free),
        )
        meta = memory.metadata.stats
        return SimResult(
            benchmark=trace.benchmark,
            mode=state.mode.value,
            cycles=cycles,
            instructions=trace.instruction_count,
            l1_hit_rate=_aggregate_hit_rate(memory.l1s),
            l2_hit_rate=memory.l2.hit_rate,
            dram_bytes=memory.dram.bytes_moved,
            link_bytes=memory.link.total_bytes,
            metadata_hit_rate=meta.hit_rate,
            buddy_fills=memory.buddy_fills,
            demand_fills=memory.demand_fills,
        )


def _aggregate_hit_rate(caches) -> float:
    hits = sum(c.hits for c in caches)
    total = hits + sum(c.misses for c in caches)
    return hits / total if total else 0.0
