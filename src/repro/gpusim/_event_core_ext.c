/* Compiled twin of repro/gpusim/_event_core.py.
 *
 * This extension is a line-for-line transcription of the pure-Python
 * event core (`_run_exact_py` / `_replay_py`) over the same packed
 * struct-of-arrays interface.  The contract is bit identity: every
 * floating-point operation is an IEEE-754 double op issued in the
 * same order as the Python implementation (the build disables FP
 * contraction so no fused multiply-adds sneak in), every integer
 * quantity is an int64, and the scheduler heap reproduces heapq's
 * strict (ready, sequence) total order.  tests/test_event_core.py
 * asserts the identity per run; the CI `compiled-core` job diffs
 * whole-study digests against the REPRO_NO_EXT fallback.
 *
 * The Python-side dict/list structures map to flat arrays:
 *
 *  - insertion-ordered dict per cache set (key order == LRU order,
 *    oldest first)  ->  per-set line/mask/dirty arrays + a fill
 *    count, index 0 the LRU way; a touch shifts the entry to the
 *    back, an insert evicts index 0 when the set is full;
 *  - the metadata cache's per-set tag list (append on hit/miss,
 *    pop(0) past capacity)  ->  a tag array with one slack slot;
 *  - per-warp outstanding-completion lists  ->  one flat double
 *    array partitioned by each warp's trace-row span (a warp issues
 *    at most one completion per row).
 *
 * ABI is checked by _event_core.py at import; bump it when the
 * array-pack layout changes.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <stdlib.h>

#define EXT_ABI 2

/* arrays-tuple slots (mirrors _event_core.A_*) */
enum {
    A_CODES, A_BUSY, A_LID, A_MASK, A_L1FLAT, A_L2SET,
    A_CHAN, A_ROW, A_BANK,
    A_DEV, A_SERV_HIT, A_SERV_MISS,
    A_BUD, A_BNUM, A_HBYTES, A_HNUM,
    A_MTAG, A_MSLOT, A_MCHAN, A_MROW, A_MBANK,
    A_WB_DEV, A_WB_SERV, A_WB_BUD, A_WB_BNUM,
    A_WB_IDEAL_BYTES, A_WB_IDEAL_SERV,
    A_WARP_START, A_WARP_SM, A_WARP_MLP,
    A_COUNT
};

/* iscalars slots (mirrors _event_core.I_*) */
enum {
    I_WARP_COUNT, I_SM_COUNT, I_CHANNELS, I_BANKS,
    I_LINE_BYTES, I_ROW_BYTES, I_ENTRIES,
    I_L1_SETS, I_L1_WAYS, I_L2_SETS, I_L2_WAYS,
    I_META_SLOTS, I_META_WAYS,
    I_IDEAL, I_USE_META, I_FULL_MASK, I_META_LINE_BYTES,
    I_COUNT
};

/* fscalars slots (mirrors _event_core.F_*) */
enum {
    F_INTERVAL, F_L1_LAT, F_L2_LAT, F_DRAM_LAT,
    F_LINK_BPC, F_LINK_LAT, F_FILL_TAIL,
    F_META_SERV_HIT, F_META_SERV_MISS,
    F_ROW_HIT_OV, F_ROW_MISS_OV,
    F_COUNT
};

/* replay scalar slots (mirrors _event_core.RI_* / RF_*) */
enum { RI_WARP_COUNT, RI_SM_COUNT, RI_CHANNELS, RI_COUNT };
enum {
    RF_INTERVAL, RF_DRAM_LAT, RF_ARRIVAL_LAT,
    RF_LINK_BPC, RF_LINK_LAT, RF_FILL_TAIL,
    RF_COUNT
};

typedef struct {
    Py_buffer view;
    int has;
} Buf;

static int
get_buf(PyObject *obj, Buf *b, int writable)
{
    b->has = 0;
    if (obj == Py_None)
        return 0;
    if (PyObject_GetBuffer(
            obj, &b->view,
            writable ? (PyBUF_C_CONTIGUOUS | PyBUF_WRITABLE)
                     : PyBUF_C_CONTIGUOUS) < 0)
        return -1;
    b->has = 1;
    return 0;
}

static void
release_bufs(Buf *bufs, Py_ssize_t n)
{
    for (Py_ssize_t i = 0; i < n; i++)
        if (bufs[i].has)
            PyBuffer_Release(&bufs[i].view);
}

static int
unpack_i64(PyObject *tup, int64_t *out, Py_ssize_t n)
{
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *item = PyTuple_GetItem(tup, i);
        if (item == NULL)
            return -1;
        out[i] = (int64_t)PyLong_AsLongLong(item);
        if (out[i] == -1 && PyErr_Occurred())
            return -1;
    }
    return 0;
}

static int
unpack_f64(PyObject *tup, double *out, Py_ssize_t n)
{
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *item = PyTuple_GetItem(tup, i);
        if (item == NULL)
            return -1;
        out[i] = PyFloat_AsDouble(item);
        if (out[i] == -1.0 && PyErr_Occurred())
            return -1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* The scheduler heap: strict (ready, seq) total order, identical to  */
/* heapq over (ready, seq, w) tuples (seq is unique, so w never       */
/* participates in a comparison).                                     */
/* ------------------------------------------------------------------ */
typedef struct {
    double ready;
    int64_t seq;
    int64_t w;
} Ev;

static inline int
ev_lt(const Ev *a, const Ev *b)
{
    return a->ready < b->ready ||
           (a->ready == b->ready && a->seq < b->seq);
}

static void
heap_siftdown(Ev *h, Py_ssize_t n, Py_ssize_t pos)
{
    Ev item = h[pos];
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= n)
            break;
        if (child + 1 < n && ev_lt(&h[child + 1], &h[child]))
            child++;
        if (!ev_lt(&h[child], &item))
            break;
        h[pos] = h[child];
        pos = child;
    }
    h[pos] = item;
}

static Ev
heap_pop(Ev *h, Py_ssize_t *n)
{
    Ev top = h[0];
    (*n)--;
    if (*n > 0) {
        h[0] = h[*n];
        heap_siftdown(h, *n, 0);
    }
    return top;
}

/* ------------------------------------------------------------------ */
/* LRU sets over flat arrays (index 0 = least recently used).         */
/* ------------------------------------------------------------------ */
static inline Py_ssize_t
lru_find(const int64_t *line, int32_t cnt, int64_t lid)
{
    for (int32_t j = 0; j < cnt; j++)
        if (line[j] == lid)
            return j;
    return -1;
}

static inline void
lru_touch(int64_t *line, int64_t *mask, int64_t *dirty,
          int32_t cnt, Py_ssize_t j, int64_t newmask)
{
    int64_t lid = line[j];
    int64_t d = dirty != NULL ? dirty[j] : 0;
    for (Py_ssize_t k = j; k + 1 < cnt; k++) {
        line[k] = line[k + 1];
        mask[k] = mask[k + 1];
        if (dirty != NULL)
            dirty[k] = dirty[k + 1];
    }
    line[cnt - 1] = lid;
    mask[cnt - 1] = newmask;
    if (dirty != NULL)
        dirty[cnt - 1] = d;
}

/* Insert `lid` as most-recent.  When the set is full the LRU way
 * (index 0) is evicted; its line/dirty-mask land in *victim /
 * *victim_dirty and 1 is returned. */
static inline int
lru_insert(int64_t *line, int64_t *mask, int64_t *dirty,
           int32_t *cnt, int32_t ways, int64_t lid, int64_t newmask,
           int64_t newdirty, int64_t *victim, int64_t *victim_dirty)
{
    int evicted = 0;
    int32_t n = *cnt;
    if (n >= ways) {
        *victim = line[0];
        *victim_dirty = dirty != NULL ? dirty[0] : 0;
        evicted = 1;
        for (int32_t k = 0; k + 1 < n; k++) {
            line[k] = line[k + 1];
            mask[k] = mask[k + 1];
            if (dirty != NULL)
                dirty[k] = dirty[k + 1];
        }
        n--;
    }
    line[n] = lid;
    mask[n] = newmask;
    if (dirty != NULL)
        dirty[n] = newdirty;
    *cnt = n + 1;
    return evicted;
}

/* ------------------------------------------------------------------ */
/* run_exact(arrays, iscalars, fscalars, tape_cols_or_None)           */
/* ------------------------------------------------------------------ */
static PyObject *
run_exact(PyObject *self, PyObject *args)
{
    PyObject *arrays, *iscalars_o, *fscalars_o, *tape;
    if (!PyArg_ParseTuple(args, "OOOO", &arrays, &iscalars_o,
                          &fscalars_o, &tape))
        return NULL;

    int64_t isc[I_COUNT];
    double fsc[F_COUNT];
    if (unpack_i64(iscalars_o, isc, I_COUNT) < 0 ||
        unpack_f64(fscalars_o, fsc, F_COUNT) < 0)
        return NULL;

    Buf bufs[A_COUNT];
    for (Py_ssize_t k = 0; k < A_COUNT; k++)
        bufs[k].has = 0;
    Buf tbufs[12];
    for (Py_ssize_t k = 0; k < 12; k++)
        tbufs[k].has = 0;

    PyObject *result = NULL;

    for (Py_ssize_t k = 0; k < A_COUNT; k++) {
        PyObject *item = PyTuple_GetItem(arrays, k);
        if (item == NULL || get_buf(item, &bufs[k], 0) < 0)
            goto cleanup;
    }
    int record = tape != Py_None;
    if (record) {
        for (Py_ssize_t k = 0; k < 12; k++) {
            PyObject *item = PyTuple_GetItem(tape, k);
            if (item == NULL || get_buf(item, &tbufs[k], 1) < 0)
                goto cleanup;
        }
    }

#define I64A(idx) ((const int64_t *)bufs[idx].view.buf)
#define F64A(idx) ((const double *)bufs[idx].view.buf)

    const int64_t *codes = I64A(A_CODES);
    const double *busy_col = F64A(A_BUSY);
    const int64_t *lid_a = I64A(A_LID);
    const int64_t *mask_a = I64A(A_MASK);
    const int64_t *l1flat_a = I64A(A_L1FLAT);
    const int64_t *l2set_a = I64A(A_L2SET);
    const int64_t *chan_a = I64A(A_CHAN);
    const int64_t *row_a = I64A(A_ROW);
    const int64_t *bank_a = I64A(A_BANK);
    const int64_t *dev_a = I64A(A_DEV);
    const double *servh_a = F64A(A_SERV_HIT);
    const double *servm_a = F64A(A_SERV_MISS);
    const int64_t *bud_a = bufs[A_BUD].has ? I64A(A_BUD) : NULL;
    const int64_t *bnum_a = bufs[A_BNUM].has ? I64A(A_BNUM) : NULL;
    const int64_t *hbytes_a = bufs[A_HBYTES].has ? I64A(A_HBYTES) : NULL;
    const int64_t *hnum_a = bufs[A_HNUM].has ? I64A(A_HNUM) : NULL;
    const int64_t *mtag_a = I64A(A_MTAG);
    const int64_t *mslot_a = I64A(A_MSLOT);
    const int64_t *mchan_a = I64A(A_MCHAN);
    const int64_t *mrow_a = I64A(A_MROW);
    const int64_t *mbank_a = I64A(A_MBANK);
    const int64_t *wb_dev = bufs[A_WB_DEV].has ? I64A(A_WB_DEV) : NULL;
    const double *wb_serv = bufs[A_WB_SERV].has ? F64A(A_WB_SERV) : NULL;
    const int64_t *wb_bud = bufs[A_WB_BUD].has ? I64A(A_WB_BUD) : NULL;
    const int64_t *wb_bnum = bufs[A_WB_BNUM].has ? I64A(A_WB_BNUM) : NULL;
    const int64_t *wb_ideal_bytes =
        bufs[A_WB_IDEAL_BYTES].has ? I64A(A_WB_IDEAL_BYTES) : NULL;
    const double *wb_ideal_serv =
        bufs[A_WB_IDEAL_SERV].has ? F64A(A_WB_IDEAL_SERV) : NULL;
    const int64_t *warp_start = I64A(A_WARP_START);
    const int64_t *warp_sm = I64A(A_WARP_SM);
    const int64_t *warp_mlp = I64A(A_WARP_MLP);

    int8_t *tk = record ? (int8_t *)tbufs[0].view.buf : NULL;
    int32_t *tw = record ? (int32_t *)tbufs[1].view.buf : NULL;
    int32_t *tsm = record ? (int32_t *)tbufs[2].view.buf : NULL;
    double *tf0 = record ? (double *)tbufs[3].view.buf : NULL;
    double *tf1 = record ? (double *)tbufs[4].view.buf : NULL;
    double *tf2 = record ? (double *)tbufs[5].view.buf : NULL;
    int32_t *ti0 = record ? (int32_t *)tbufs[6].view.buf : NULL;
    int32_t *ti1 = record ? (int32_t *)tbufs[7].view.buf : NULL;
    int32_t *ti2 = record ? (int32_t *)tbufs[8].view.buf : NULL;
    int32_t *ti3 = record ? (int32_t *)tbufs[9].view.buf : NULL;
    int32_t *ti4 = record ? (int32_t *)tbufs[10].view.buf : NULL;
    int32_t *ti5 = record ? (int32_t *)tbufs[11].view.buf : NULL;
    Py_ssize_t tidx = 0;

    const int64_t warp_count = isc[I_WARP_COUNT];
    const int64_t sm_count = isc[I_SM_COUNT];
    const int64_t channels = isc[I_CHANNELS];
    const int64_t banks = isc[I_BANKS];
    const int64_t line_bytes = isc[I_LINE_BYTES];
    const int64_t row_bytes = isc[I_ROW_BYTES];
    const int64_t entries = isc[I_ENTRIES];
    const int64_t l1_sets_total = isc[I_L1_SETS];
    const int32_t l1_ways = (int32_t)isc[I_L1_WAYS];
    const int64_t l2_sets = isc[I_L2_SETS];
    const int32_t l2_ways = (int32_t)isc[I_L2_WAYS];
    const int64_t meta_slots = isc[I_META_SLOTS];
    const int32_t meta_ways = (int32_t)isc[I_META_WAYS];
    const int ideal = isc[I_IDEAL] != 0;
    const int use_meta = isc[I_USE_META] != 0;
    const int64_t full_mask = isc[I_FULL_MASK];
    const int64_t meta_line_bytes = isc[I_META_LINE_BYTES];

    const double interval = fsc[F_INTERVAL];
    const double l1_lat = fsc[F_L1_LAT];
    const double l2_lat = fsc[F_L2_LAT];
    const double dram_lat = fsc[F_DRAM_LAT];
    const double link_bpc = fsc[F_LINK_BPC];
    const double link_lat = fsc[F_LINK_LAT];
    const double fill_tail = fsc[F_FILL_TAIL];
    const double meta_serv_hit = fsc[F_META_SERV_HIT];
    const double meta_serv_miss = fsc[F_META_SERV_MISS];
    const double row_hit_ov = fsc[F_ROW_HIT_OV];
    const double row_miss_ov = fsc[F_ROW_MISS_OV];

    const Py_ssize_t n_rows =
        (Py_ssize_t)(bufs[A_CODES].view.len / (Py_ssize_t)sizeof(int64_t));

    /* working state */
    int64_t *l1_line = NULL, *l1_mask = NULL;
    int32_t *l1_cnt = NULL;
    int64_t *l2_line = NULL, *l2_mask = NULL, *l2_dirty = NULL;
    int32_t *l2_cnt = NULL;
    int64_t *meta_tag = NULL;
    int32_t *meta_cnt = NULL;
    double *next_free = NULL, *sm_free = NULL, *out = NULL;
    int64_t *open_rows = NULL, *ips = NULL;
    int64_t *out_len = NULL, *out_head = NULL;
    Ev *heap = NULL;

    l1_line = malloc(sizeof(int64_t) * (size_t)(l1_sets_total * l1_ways));
    l1_mask = malloc(sizeof(int64_t) * (size_t)(l1_sets_total * l1_ways));
    l1_cnt = calloc((size_t)l1_sets_total, sizeof(int32_t));
    l2_line = malloc(sizeof(int64_t) * (size_t)(l2_sets * l2_ways));
    l2_mask = malloc(sizeof(int64_t) * (size_t)(l2_sets * l2_ways));
    l2_dirty = malloc(sizeof(int64_t) * (size_t)(l2_sets * l2_ways));
    l2_cnt = calloc((size_t)l2_sets, sizeof(int32_t));
    meta_tag = malloc(sizeof(int64_t) * (size_t)(meta_slots * (meta_ways + 1)));
    meta_cnt = calloc((size_t)meta_slots, sizeof(int32_t));
    next_free = calloc((size_t)channels, sizeof(double));
    sm_free = calloc((size_t)sm_count, sizeof(double));
    out = malloc(sizeof(double) * (size_t)(n_rows > 0 ? n_rows : 1));
    open_rows = malloc(sizeof(int64_t) * (size_t)(channels * banks));
    ips = malloc(sizeof(int64_t) * (size_t)(warp_count > 0 ? warp_count : 1));
    out_len = calloc((size_t)(warp_count > 0 ? warp_count : 1),
                     sizeof(int64_t));
    out_head = calloc((size_t)(warp_count > 0 ? warp_count : 1),
                      sizeof(int64_t));
    heap = malloc(sizeof(Ev) * (size_t)(warp_count > 0 ? warp_count : 1));
    if (!l1_line || !l1_mask || !l1_cnt || !l2_line || !l2_mask ||
        !l2_dirty || !l2_cnt || !meta_tag || !meta_cnt || !next_free ||
        !sm_free || !out || !open_rows || !ips || !out_len || !out_head ||
        !heap) {
        PyErr_NoMemory();
        goto cleanup_state;
    }
    for (int64_t k = 0; k < channels * banks; k++)
        open_rows[k] = -1;
    for (int64_t w = 0; w < warp_count; w++) {
        ips[w] = warp_start[w];
        heap[w] = (Ev){0.0, w, w};
    }
    Py_ssize_t heap_len = (Py_ssize_t)warp_count;

    double link_read_free = 0.0;
    double link_write_free = 0.0;
    double finish = 0.0;
    int64_t l1_hits = 0, l1_misses = 0;
    int64_t l2_hits = 0, l2_misses = 0;
    int64_t dram_bytes = 0;
    int64_t link_read_bytes = 0, link_write_bytes = 0;
    int64_t meta_hits = 0, meta_misses = 0;
    int64_t buddy_fills = 0, demand_fills = 0;
    int64_t sequence = warp_count;
    int64_t rmw_counter = 0;

    int has_event = 0;
    Ev ev;
    if (heap_len > 0) {
        ev = heap_pop(heap, &heap_len);
        has_event = 1;
    }
    while (has_event) {
        double ready = ev.ready;
        int64_t w = ev.w;
        int64_t i = ips[w];
        if (i == warp_start[w + 1]) {
            int64_t head = out_head[w];
            int64_t base = warp_start[w];
            if (out_len[w] > head) {
                double last = out[base + head];
                for (int64_t k = head + 1; k < out_len[w]; k++)
                    if (out[base + k] > last)
                        last = out[base + k];
                if (last > finish)
                    finish = last;
            }
            if (ready > finish)
                finish = ready;
            if (record) {
                tk[tidx] = 8;
                tw[tidx] = (int32_t)w;
                tidx++;
            }
            if (heap_len > 0) {
                ev = heap_pop(heap, &heap_len);
            } else {
                has_event = 0;
            }
            continue;
        }
        ips[w] = i + 1;
        int64_t sm = warp_sm[w];
        double free_t = sm_free[sm];
        double issue = ready > free_t ? ready : free_t;
        int64_t code = codes[i];
        double next_ready = 0.0;

        if (code == 0) { /* _COMPUTE */
            next_ready = issue + busy_col[i];
            sm_free[sm] = next_ready;
            if (record) {
                tk[tidx] = 0;
                tw[tidx] = (int32_t)w;
                tsm[tidx] = (int32_t)sm;
                tf0[tidx] = busy_col[i];
                tidx++;
            }
        } else if (code == 1) { /* _LOAD */
            sm_free[sm] = issue + interval;
            int64_t lid = lid_a[i];
            int64_t msk = mask_a[i];
            int64_t flat1 = l1flat_a[i];
            int64_t s2 = l2set_a[i];
            int64_t *d1_line = l1_line + flat1 * l1_ways;
            int64_t *d1_mask = l1_mask + flat1 * l1_ways;
            int32_t c1 = l1_cnt[flat1];
            Py_ssize_t j1 = lru_find(d1_line, c1, lid);
            int64_t e1 = j1 >= 0 ? d1_mask[j1] : 0;
            double done;
            if (j1 >= 0 && (e1 & msk) == msk) {
                l1_hits++;
                lru_touch(d1_line, d1_mask, NULL, c1, j1, e1);
                done = issue + l1_lat;
                if (record) {
                    tk[tidx] = 1;
                    tw[tidx] = (int32_t)w;
                    tsm[tidx] = (int32_t)sm;
                    tf0[tidx] = l1_lat;
                    tidx++;
                }
            } else {
                l1_misses++;
                int64_t *d2_line = l2_line + s2 * l2_ways;
                int64_t *d2_mask = l2_mask + s2 * l2_ways;
                int64_t *d2_dirty = l2_dirty + s2 * l2_ways;
                int32_t c2 = l2_cnt[s2];
                Py_ssize_t j2 = lru_find(d2_line, c2, lid);
                int64_t e2 = j2 >= 0 ? d2_mask[j2] : 0;
                if (j2 >= 0 && (e2 & msk) == msk) {
                    l2_hits++;
                    lru_touch(d2_line, d2_mask, d2_dirty, c2, j2, e2);
                    done = issue + l2_lat;
                    if (record) {
                        tk[tidx] = 1;
                        tw[tidx] = (int32_t)w;
                        tsm[tidx] = (int32_t)sm;
                        tf0[tidx] = l2_lat;
                        tidx++;
                    }
                } else {
                    l2_misses++;
                    double arrival = issue + l2_lat;
                    demand_fills++;
                    double r_serv = 0.0, r_mserv = 0.0, r_wbserv = 0.0;
                    int32_t r_ch = 0, r_mmiss = 0, r_mch = 0;
                    int32_t r_bnum = 0, r_wbch = 0, r_wbbnum = 0;
                    int64_t dev = dev_a[i];
                    int64_t fm = ideal ? msk : full_mask;
                    /* The sectored baseline requests even a
                     * zero-sector fill (degenerate traces): the
                     * oracle charges the channel overhead. */
                    if (dev != 0 || ideal) {
                        int64_t bk = bank_a[i];
                        int64_t rw = row_a[i];
                        int64_t ch = chan_a[i];
                        double serv;
                        if (open_rows[bk] == rw) {
                            serv = servh_a[i];
                        } else {
                            serv = servm_a[i];
                            open_rows[bk] = rw;
                        }
                        double cf = next_free[ch];
                        double start = cf > arrival ? cf : arrival;
                        double end = start + serv;
                        next_free[ch] = end;
                        dram_bytes += dev;
                        done = end + dram_lat;
                        r_serv = serv;
                        r_ch = (int32_t)ch;
                    } else {
                        done = arrival;
                    }
                    if (use_meta) {
                        int64_t mt = mtag_a[i];
                        int64_t ms = mslot_a[i];
                        int64_t *tags = meta_tag + ms * (meta_ways + 1);
                        int32_t mc_n = meta_cnt[ms];
                        Py_ssize_t jm = lru_find(tags, mc_n, mt);
                        double meta_ready;
                        if (jm >= 0) {
                            for (Py_ssize_t k = jm; k + 1 < mc_n; k++)
                                tags[k] = tags[k + 1];
                            tags[mc_n - 1] = mt;
                            meta_hits++;
                            meta_ready = arrival;
                        } else {
                            meta_misses++;
                            tags[mc_n] = mt;
                            mc_n++;
                            if (mc_n > meta_ways) {
                                for (int32_t k = 0; k + 1 < mc_n; k++)
                                    tags[k] = tags[k + 1];
                                mc_n--;
                            }
                            meta_cnt[ms] = mc_n;
                            int64_t mb = mbank_a[i];
                            int64_t mr = mrow_a[i];
                            int64_t mc = mchan_a[i];
                            double serv;
                            if (open_rows[mb] == mr) {
                                serv = meta_serv_hit;
                            } else {
                                serv = meta_serv_miss;
                                open_rows[mb] = mr;
                            }
                            double cf = next_free[mc];
                            double start = cf > arrival ? cf : arrival;
                            double end = start + serv;
                            next_free[mc] = end;
                            dram_bytes += meta_line_bytes;
                            meta_ready = end + dram_lat;
                            if (meta_ready > done)
                                done = meta_ready;
                            r_mmiss = 1;
                            r_mserv = serv;
                            r_mch = (int32_t)mc;
                        }
                        int64_t bud = bud_a[i];
                        if (bud != 0) {
                            int64_t bnum = bnum_a[i];
                            double start = link_read_free > meta_ready
                                               ? link_read_free
                                               : meta_ready;
                            double end = start + (double)bnum / link_bpc;
                            link_read_free = end;
                            link_read_bytes += bud;
                            buddy_fills++;
                            double t = end + link_lat;
                            if (t > done)
                                done = t;
                            r_bnum = (int32_t)bnum;
                        }
                    }
                    /* Install (full line for compressed fills). */
                    if (j2 >= 0) {
                        lru_touch(d2_line, d2_mask, d2_dirty, c2, j2,
                                  e2 | fm);
                    } else {
                        int64_t victim, dirty_mask;
                        if (lru_insert(d2_line, d2_mask, d2_dirty,
                                       &l2_cnt[s2], l2_ways, lid, fm, 0,
                                       &victim, &dirty_mask) &&
                            dirty_mask != 0) {
                            /* Writeback (dirty eviction). */
                            int64_t num;
                            double serv;
                            if (ideal) {
                                num = wb_ideal_bytes[dirty_mask];
                                serv = wb_ideal_serv[dirty_mask];
                            } else {
                                int64_t ventry = victim % entries;
                                num = wb_dev[ventry];
                                serv = wb_serv[ventry];
                            }
                            if (num != 0) {
                                int64_t vch = victim % channels;
                                int64_t vrow =
                                    victim * line_bytes / row_bytes;
                                int64_t vbk = vch * banks + vrow % banks;
                                if (open_rows[vbk] == vrow) {
                                    serv = serv + row_hit_ov;
                                } else {
                                    serv = serv + row_miss_ov;
                                    open_rows[vbk] = vrow;
                                }
                                double vf = next_free[vch];
                                double vstart =
                                    vf > arrival ? vf : arrival;
                                next_free[vch] = vstart + serv;
                                dram_bytes += num;
                                r_wbserv = serv;
                                r_wbch = (int32_t)vch;
                            }
                            if (use_meta) {
                                int64_t ventry = victim % entries;
                                int64_t vbud = wb_bud[ventry];
                                if (vbud != 0) {
                                    double vstart =
                                        link_write_free > arrival
                                            ? link_write_free
                                            : arrival;
                                    link_write_free =
                                        vstart +
                                        (double)wb_bnum[ventry] /
                                            link_bpc;
                                    link_write_bytes += vbud;
                                    r_wbbnum = (int32_t)wb_bnum[ventry];
                                }
                            }
                        }
                    }
                    done = done + fill_tail;
                    if (record) {
                        tk[tidx] = 2;
                        tw[tidx] = (int32_t)w;
                        tsm[tidx] = (int32_t)sm;
                        tf0[tidx] = r_serv;
                        tf1[tidx] = r_mserv;
                        tf2[tidx] = r_wbserv;
                        ti0[tidx] = r_ch;
                        ti1[tidx] = r_mmiss;
                        ti2[tidx] = r_mch;
                        ti3[tidx] = r_bnum;
                        ti4[tidx] = r_wbch;
                        ti5[tidx] = r_wbbnum;
                        tidx++;
                    }
                }
                /* L1 fill (never dirty; evictions are silent). */
                if (j1 >= 0) {
                    lru_touch(d1_line, d1_mask, NULL, c1, j1, e1 | msk);
                } else {
                    int64_t victim, vd;
                    lru_insert(d1_line, d1_mask, NULL, &l1_cnt[flat1],
                               l1_ways, lid, msk, 0, &victim, &vd);
                }
            }
            int64_t base = warp_start[w];
            out[base + out_len[w]] = done;
            out_len[w]++;
            int64_t head = out_head[w];
            if (out_len[w] - head >= warp_mlp[w]) {
                next_ready = out[base + head];
                out_head[w] = head + 1;
            } else {
                next_ready = issue + interval;
            }
        } else if (code == 2 || code == 5) { /* _STORE / _STORE_RMW */
            sm_free[sm] = issue + interval;
            int64_t lid = lid_a[i];
            int64_t msk = mask_a[i];
            int64_t s2 = l2set_a[i];
            int32_t r_fill = 0;
            double r_serv = 0.0, r_mserv = 0.0, r_wbserv = 0.0;
            int32_t r_ch = 0, r_mmiss = 0, r_mch = 0;
            int32_t r_bnum = 0, r_wbch = 0, r_wbbnum = 0;
            int64_t *d2_line = l2_line + s2 * l2_ways;
            int64_t *d2_mask = l2_mask + s2 * l2_ways;
            int64_t *d2_dirty = l2_dirty + s2 * l2_ways;
            if (code == 5) {
                /* Partial store into a compressed entry: every fourth
                 * pays the read-modify-write fetch unless the line is
                 * fully resident.  This is the load-miss fill at
                 * arrival ``issue``; the completion time is discarded
                 * because stores do not stall the warp. */
                rmw_counter++;
                if (rmw_counter % 4 == 0) {
                    int32_t c2 = l2_cnt[s2];
                    Py_ssize_t j2 = lru_find(d2_line, c2, lid);
                    int64_t e2 = j2 >= 0 ? d2_mask[j2] : 0;
                    if (j2 >= 0 && (e2 & full_mask) == full_mask) {
                        l2_hits++;
                        lru_touch(d2_line, d2_mask, d2_dirty, c2, j2, e2);
                    } else {
                        l2_misses++;
                        demand_fills++;
                        r_fill = 1;
                        int64_t dev = dev_a[i];
                        int64_t fm = ideal ? msk : full_mask;
                        if (dev != 0) {
                            int64_t bk = bank_a[i];
                            int64_t rw = row_a[i];
                            int64_t ch = chan_a[i];
                            double serv;
                            if (open_rows[bk] == rw) {
                                serv = servh_a[i];
                            } else {
                                serv = servm_a[i];
                                open_rows[bk] = rw;
                            }
                            double cf = next_free[ch];
                            double start = cf > issue ? cf : issue;
                            next_free[ch] = start + serv;
                            dram_bytes += dev;
                            r_serv = serv;
                            r_ch = (int32_t)ch;
                        }
                        if (use_meta) {
                            double meta_ready = issue;
                            int64_t mt = mtag_a[i];
                            int64_t ms = mslot_a[i];
                            int64_t *tags =
                                meta_tag + ms * (meta_ways + 1);
                            int32_t mc_n = meta_cnt[ms];
                            Py_ssize_t jm = lru_find(tags, mc_n, mt);
                            if (jm >= 0) {
                                for (Py_ssize_t k = jm; k + 1 < mc_n;
                                     k++)
                                    tags[k] = tags[k + 1];
                                tags[mc_n - 1] = mt;
                                meta_hits++;
                            } else {
                                meta_misses++;
                                tags[mc_n] = mt;
                                mc_n++;
                                if (mc_n > meta_ways) {
                                    for (int32_t k = 0; k + 1 < mc_n;
                                         k++)
                                        tags[k] = tags[k + 1];
                                    mc_n--;
                                }
                                meta_cnt[ms] = mc_n;
                                int64_t mb = mbank_a[i];
                                int64_t mr = mrow_a[i];
                                int64_t mc = mchan_a[i];
                                double serv;
                                if (open_rows[mb] == mr) {
                                    serv = meta_serv_hit;
                                } else {
                                    serv = meta_serv_miss;
                                    open_rows[mb] = mr;
                                }
                                double cf = next_free[mc];
                                double start = cf > issue ? cf : issue;
                                double end = start + serv;
                                next_free[mc] = end;
                                dram_bytes += meta_line_bytes;
                                meta_ready = end + dram_lat;
                                r_mmiss = 1;
                                r_mserv = serv;
                                r_mch = (int32_t)mc;
                            }
                            int64_t bud = bud_a[i];
                            if (bud != 0) {
                                int64_t bnum = bnum_a[i];
                                double start =
                                    link_read_free > meta_ready
                                        ? link_read_free
                                        : meta_ready;
                                link_read_free =
                                    start + (double)bnum / link_bpc;
                                link_read_bytes += bud;
                                buddy_fills++;
                                r_bnum = (int32_t)bnum;
                            }
                        }
                        /* Install the whole line. */
                        if (j2 >= 0) {
                            lru_touch(d2_line, d2_mask, d2_dirty, c2,
                                      j2, e2 | fm);
                        } else {
                            int64_t victim, dirty_mask;
                            if (lru_insert(d2_line, d2_mask, d2_dirty,
                                           &l2_cnt[s2], l2_ways, lid,
                                           fm, 0, &victim,
                                           &dirty_mask) &&
                                dirty_mask != 0) {
                                /* Writeback (RMW is only taken in the
                                 * compressed modes). */
                                int64_t ventry = victim % entries;
                                int64_t num = wb_dev[ventry];
                                double serv = wb_serv[ventry];
                                if (num != 0) {
                                    int64_t vch = victim % channels;
                                    int64_t vrow =
                                        victim * line_bytes / row_bytes;
                                    int64_t vbk =
                                        vch * banks + vrow % banks;
                                    if (open_rows[vbk] == vrow) {
                                        serv = serv + row_hit_ov;
                                    } else {
                                        serv = serv + row_miss_ov;
                                        open_rows[vbk] = vrow;
                                    }
                                    double vf = next_free[vch];
                                    double vstart =
                                        vf > issue ? vf : issue;
                                    next_free[vch] = vstart + serv;
                                    dram_bytes += num;
                                    r_wbserv = serv;
                                    r_wbch = (int32_t)vch;
                                }
                                if (use_meta) {
                                    int64_t vbud = wb_bud[ventry];
                                    if (vbud != 0) {
                                        double vstart =
                                            link_write_free > issue
                                                ? link_write_free
                                                : issue;
                                        link_write_free =
                                            vstart +
                                            (double)wb_bnum[ventry] /
                                                link_bpc;
                                        link_write_bytes += vbud;
                                        r_wbbnum =
                                            (int32_t)wb_bnum[ventry];
                                    }
                                }
                            }
                        }
                    }
                }
            }
            /* The store itself (fresh probe: the RMW fill above may
             * have changed the set). */
            {
                int32_t c2 = l2_cnt[s2];
                Py_ssize_t j2 = lru_find(d2_line, c2, lid);
                if (j2 >= 0) {
                    int64_t e2 = d2_mask[j2];
                    lru_touch(d2_line, d2_mask, d2_dirty, c2, j2,
                              e2 | msk);
                    d2_dirty[c2 - 1] |= msk;
                } else {
                    int64_t victim, dirty_mask;
                    if (lru_insert(d2_line, d2_mask, d2_dirty,
                                   &l2_cnt[s2], l2_ways, lid, msk, msk,
                                   &victim, &dirty_mask) &&
                        dirty_mask != 0) {
                        /* Writeback (dirty eviction). */
                        int64_t num;
                        double serv;
                        if (ideal) {
                            num = wb_ideal_bytes[dirty_mask];
                            serv = wb_ideal_serv[dirty_mask];
                        } else {
                            int64_t ventry = victim % entries;
                            num = wb_dev[ventry];
                            serv = wb_serv[ventry];
                        }
                        if (num != 0) {
                            int64_t vch = victim % channels;
                            int64_t vrow =
                                victim * line_bytes / row_bytes;
                            int64_t vbk = vch * banks + vrow % banks;
                            if (open_rows[vbk] == vrow) {
                                serv = serv + row_hit_ov;
                            } else {
                                serv = serv + row_miss_ov;
                                open_rows[vbk] = vrow;
                            }
                            double vf = next_free[vch];
                            double vstart = vf > issue ? vf : issue;
                            next_free[vch] = vstart + serv;
                            dram_bytes += num;
                            r_wbserv = serv;
                            r_wbch = (int32_t)vch;
                        }
                        if (use_meta) {
                            int64_t ventry = victim % entries;
                            int64_t vbud = wb_bud[ventry];
                            if (vbud != 0) {
                                double vstart =
                                    link_write_free > issue
                                        ? link_write_free
                                        : issue;
                                link_write_free =
                                    vstart +
                                    (double)wb_bnum[ventry] / link_bpc;
                                link_write_bytes += vbud;
                                r_wbbnum = (int32_t)wb_bnum[ventry];
                            }
                        }
                    }
                }
            }
            next_ready = issue + interval;
            if (record) {
                if (r_fill) {
                    tk[tidx] = 6;
                    tw[tidx] = (int32_t)w;
                    tsm[tidx] = (int32_t)sm;
                    tf0[tidx] = r_serv;
                    tf1[tidx] = r_mserv;
                    tf2[tidx] = r_wbserv;
                    ti0[tidx] = r_ch;
                    ti1[tidx] = r_mmiss;
                    ti2[tidx] = r_mch;
                    ti3[tidx] = r_bnum;
                    ti4[tidx] = r_wbch;
                    ti5[tidx] = r_wbbnum;
                } else if (r_wbserv != 0.0 || r_wbbnum != 0) {
                    tk[tidx] = 5;
                    tw[tidx] = (int32_t)w;
                    tsm[tidx] = (int32_t)sm;
                    tf2[tidx] = r_wbserv;
                    ti4[tidx] = r_wbch;
                    ti5[tidx] = r_wbbnum;
                } else {
                    tk[tidx] = 4;
                    tw[tidx] = (int32_t)w;
                    tsm[tidx] = (int32_t)sm;
                }
                tidx++;
            }
        } else if (code == 3) { /* _HOST_LOAD */
            sm_free[sm] = issue + interval;
            int64_t hbytes = hbytes_a[i];
            int64_t hnum = hnum_a[i];
            double start =
                link_read_free > issue ? link_read_free : issue;
            double end = start + (double)hnum / link_bpc;
            link_read_free = end;
            link_read_bytes += hbytes;
            double done = end + link_lat;
            if (record) {
                tk[tidx] = 3;
                tw[tidx] = (int32_t)w;
                tsm[tidx] = (int32_t)sm;
                ti0[tidx] = (int32_t)hnum;
                tidx++;
            }
            int64_t base = warp_start[w];
            out[base + out_len[w]] = done;
            out_len[w]++;
            int64_t head = out_head[w];
            if (out_len[w] - head >= warp_mlp[w]) {
                next_ready = out[base + head];
                out_head[w] = head + 1;
            } else {
                next_ready = issue + interval;
            }
        } else { /* _HOST_STORE: fire-and-forget remote write */
            sm_free[sm] = issue + interval;
            int64_t hbytes = hbytes_a[i];
            int64_t hnum = hnum_a[i];
            double start =
                link_write_free > issue ? link_write_free : issue;
            link_write_free = start + (double)hnum / link_bpc;
            link_write_bytes += hbytes;
            next_ready = issue + interval;
            if (record) {
                tk[tidx] = 7;
                tw[tidx] = (int32_t)w;
                tsm[tidx] = (int32_t)sm;
                ti0[tidx] = (int32_t)hnum;
                tidx++;
            }
        }

        sequence++;
        Ev cont = {next_ready, sequence, w};
        if (heap_len > 0) {
            /* A continuation that precedes the whole heap is the
             * next event by construction — skip the sift. */
            if (ev_lt(&cont, &heap[0])) {
                ev = cont;
            } else {
                ev = heap[0];
                heap[0] = cont;
                heap_siftdown(heap, heap_len, 0);
            }
        } else {
            ev = cont;
        }
    }

    /* drain */
    {
        double cycles = finish;
        for (int64_t c = 0; c < channels; c++)
            if (next_free[c] > cycles)
                cycles = next_free[c];
        if (link_read_free > cycles)
            cycles = link_read_free;
        if (link_write_free > cycles)
            cycles = link_write_free;
        for (int64_t s = 0; s < sm_count; s++)
            if (sm_free[s] > cycles)
                cycles = sm_free[s];
        result = Py_BuildValue(
            "(dLLLLLLLLLLL)", cycles,
            (long long)l1_hits, (long long)l1_misses,
            (long long)l2_hits, (long long)l2_misses,
            (long long)dram_bytes,
            (long long)link_read_bytes, (long long)link_write_bytes,
            (long long)meta_hits, (long long)meta_misses,
            (long long)buddy_fills, (long long)demand_fills);
    }

cleanup_state:
    free(l1_line); free(l1_mask); free(l1_cnt);
    free(l2_line); free(l2_mask); free(l2_dirty); free(l2_cnt);
    free(meta_tag); free(meta_cnt);
    free(next_free); free(sm_free); free(out);
    free(open_rows); free(ips); free(out_len); free(out_head);
    free(heap);
cleanup:
    release_bufs(bufs, A_COUNT);
    release_bufs(tbufs, 12);
    return result;
}

/* ------------------------------------------------------------------ */
/* replay(tape_cols, warp_mlp, iscalars, fscalars) -> cycles          */
/* ------------------------------------------------------------------ */
static PyObject *
replay(PyObject *self, PyObject *args)
{
    PyObject *tape, *mlp_obj, *iscalars_o, *fscalars_o;
    if (!PyArg_ParseTuple(args, "OOOO", &tape, &mlp_obj, &iscalars_o,
                          &fscalars_o))
        return NULL;

    int64_t isc[RI_COUNT];
    double fsc[RF_COUNT];
    if (unpack_i64(iscalars_o, isc, RI_COUNT) < 0 ||
        unpack_f64(fscalars_o, fsc, RF_COUNT) < 0)
        return NULL;

    Buf tbufs[12];
    for (Py_ssize_t k = 0; k < 12; k++)
        tbufs[k].has = 0;
    Buf mlp_buf;
    mlp_buf.has = 0;

    PyObject *result = NULL;
    double *next_free = NULL, *sm_free = NULL, *ready = NULL, *out = NULL;
    int64_t *out_base = NULL, *out_len = NULL, *out_head = NULL;

    for (Py_ssize_t k = 0; k < 12; k++) {
        PyObject *item = PyTuple_GetItem(tape, k);
        if (item == NULL || get_buf(item, &tbufs[k], 0) < 0)
            goto cleanup;
    }
    if (get_buf(mlp_obj, &mlp_buf, 0) < 0)
        goto cleanup;

    const int8_t *tk = (const int8_t *)tbufs[0].view.buf;
    const int32_t *tw = (const int32_t *)tbufs[1].view.buf;
    const int32_t *tsm = (const int32_t *)tbufs[2].view.buf;
    const double *tf0 = (const double *)tbufs[3].view.buf;
    const double *tf1 = (const double *)tbufs[4].view.buf;
    const double *tf2 = (const double *)tbufs[5].view.buf;
    const int32_t *ti0 = (const int32_t *)tbufs[6].view.buf;
    const int32_t *ti1 = (const int32_t *)tbufs[7].view.buf;
    const int32_t *ti2 = (const int32_t *)tbufs[8].view.buf;
    const int32_t *ti3 = (const int32_t *)tbufs[9].view.buf;
    const int32_t *ti4 = (const int32_t *)tbufs[10].view.buf;
    const int32_t *ti5 = (const int32_t *)tbufs[11].view.buf;
    const int64_t *warp_mlp = (const int64_t *)mlp_buf.view.buf;
    const Py_ssize_t n_events = tbufs[0].view.len;

    const int64_t warp_count = isc[RI_WARP_COUNT];
    const int64_t sm_count = isc[RI_SM_COUNT];
    const int64_t channels = isc[RI_CHANNELS];
    const double interval = fsc[RF_INTERVAL];
    const double dram_lat = fsc[RF_DRAM_LAT];
    const double arrival_lat = fsc[RF_ARRIVAL_LAT];
    const double link_bpc = fsc[RF_LINK_BPC];
    const double link_lat = fsc[RF_LINK_LAT];
    const double fill_tail = fsc[RF_FILL_TAIL];

    next_free = calloc((size_t)channels, sizeof(double));
    sm_free = calloc((size_t)sm_count, sizeof(double));
    ready = calloc((size_t)(warp_count > 0 ? warp_count : 1),
                   sizeof(double));
    out_base = calloc((size_t)(warp_count > 0 ? warp_count : 1),
                      sizeof(int64_t));
    out_len = calloc((size_t)(warp_count > 0 ? warp_count : 1),
                     sizeof(int64_t));
    out_head = calloc((size_t)(warp_count > 0 ? warp_count : 1),
                      sizeof(int64_t));
    if (!next_free || !sm_free || !ready || !out_base || !out_len ||
        !out_head) {
        PyErr_NoMemory();
        goto cleanup;
    }
    /* Partition one flat completion array by each warp's number of
     * completing events (kinds 1/2/3). */
    Py_ssize_t total_out = 0;
    for (Py_ssize_t e = 0; e < n_events; e++) {
        int8_t kind = tk[e];
        if (kind == 1 || kind == 2 || kind == 3) {
            out_base[tw[e]]++;
            total_out++;
        }
    }
    {
        int64_t acc = 0;
        for (int64_t w = 0; w < warp_count; w++) {
            int64_t c = out_base[w];
            out_base[w] = acc;
            acc += c;
        }
    }
    out = malloc(sizeof(double) * (size_t)(total_out > 0 ? total_out : 1));
    if (!out) {
        PyErr_NoMemory();
        goto cleanup;
    }

    double link_read_free = 0.0;
    double link_write_free = 0.0;
    double finish = 0.0;

    for (Py_ssize_t e = 0; e < n_events; e++) {
        int8_t kind = tk[e];
        int64_t w = tw[e];
        int64_t sm = tsm[e];
        if (kind == 8) { /* warp end */
            int64_t head = out_head[w];
            int64_t base = out_base[w];
            if (out_len[w] > head) {
                double last = out[base + head];
                for (int64_t k = head + 1; k < out_len[w]; k++)
                    if (out[base + k] > last)
                        last = out[base + k];
                if (last > finish)
                    finish = last;
            }
            if (ready[w] > finish)
                finish = ready[w];
            continue;
        }
        double r = ready[w];
        double free_t = sm_free[sm];
        double issue = r > free_t ? r : free_t;
        if (kind == 0) { /* compute */
            double t = issue + tf0[e];
            sm_free[sm] = t;
            ready[w] = t;
            continue;
        }
        sm_free[sm] = issue + interval;
        if (kind == 1) { /* load, cache hit */
            double done = issue + tf0[e];
            int64_t base = out_base[w];
            out[base + out_len[w]] = done;
            out_len[w]++;
            int64_t head = out_head[w];
            if (out_len[w] - head >= warp_mlp[w]) {
                ready[w] = out[base + head];
                out_head[w] = head + 1;
            } else {
                ready[w] = issue + interval;
            }
        } else if (kind == 2) { /* load, demand fill */
            double arrival = issue + arrival_lat;
            double done;
            double serv = tf0[e];
            if (serv != 0.0) {
                int64_t ch = ti0[e];
                double cf = next_free[ch];
                double start = cf > arrival ? cf : arrival;
                double end = start + serv;
                next_free[ch] = end;
                done = end + dram_lat;
            } else {
                done = arrival;
            }
            double meta_ready = arrival;
            if (ti1[e]) { /* mmiss */
                int64_t mch = ti2[e];
                double cf = next_free[mch];
                double start = cf > arrival ? cf : arrival;
                double end = start + tf1[e];
                next_free[mch] = end;
                meta_ready = end + dram_lat;
                if (meta_ready > done)
                    done = meta_ready;
            }
            if (ti3[e]) { /* bnum */
                double start = link_read_free > meta_ready
                                   ? link_read_free
                                   : meta_ready;
                double end = start + (double)ti3[e] / link_bpc;
                link_read_free = end;
                double t = end + link_lat;
                if (t > done)
                    done = t;
            }
            if (tf2[e] != 0.0) { /* wbserv */
                int64_t wbch = ti4[e];
                double cf = next_free[wbch];
                double start = cf > arrival ? cf : arrival;
                next_free[wbch] = start + tf2[e];
            }
            if (ti5[e]) { /* wbbnum */
                double start = link_write_free > arrival
                                   ? link_write_free
                                   : arrival;
                link_write_free = start + (double)ti5[e] / link_bpc;
            }
            done = done + fill_tail;
            int64_t base = out_base[w];
            out[base + out_len[w]] = done;
            out_len[w]++;
            int64_t head = out_head[w];
            if (out_len[w] - head >= warp_mlp[w]) {
                ready[w] = out[base + head];
                out_head[w] = head + 1;
            } else {
                ready[w] = issue + interval;
            }
        } else if (kind == 4) { /* store, no memory-system timing */
            ready[w] = issue + interval;
        } else if (kind == 5) { /* store with dirty-eviction writeback */
            if (tf2[e] != 0.0) {
                int64_t wbch = ti4[e];
                double cf = next_free[wbch];
                double start = cf > issue ? cf : issue;
                next_free[wbch] = start + tf2[e];
            }
            if (ti5[e]) {
                double start = link_write_free > issue
                                   ? link_write_free
                                   : issue;
                link_write_free = start + (double)ti5[e] / link_bpc;
            }
            ready[w] = issue + interval;
        } else if (kind == 6) { /* store with read-modify-write fill */
            if (tf0[e] != 0.0) {
                int64_t ch = ti0[e];
                double cf = next_free[ch];
                double start = cf > issue ? cf : issue;
                next_free[ch] = start + tf0[e];
            }
            double meta_ready = issue;
            if (ti1[e]) {
                int64_t mch = ti2[e];
                double cf = next_free[mch];
                double start = cf > issue ? cf : issue;
                double end = start + tf1[e];
                next_free[mch] = end;
                meta_ready = end + dram_lat;
            }
            if (ti3[e]) {
                double start = link_read_free > meta_ready
                                   ? link_read_free
                                   : meta_ready;
                link_read_free = start + (double)ti3[e] / link_bpc;
            }
            if (tf2[e] != 0.0) {
                int64_t wbch = ti4[e];
                double cf = next_free[wbch];
                double start = cf > issue ? cf : issue;
                next_free[wbch] = start + tf2[e];
            }
            if (ti5[e]) {
                double start = link_write_free > issue
                                   ? link_write_free
                                   : issue;
                link_write_free = start + (double)ti5[e] / link_bpc;
            }
            ready[w] = issue + interval;
        } else if (kind == 3) { /* host load over the link */
            double start =
                link_read_free > issue ? link_read_free : issue;
            double end = start + (double)ti0[e] / link_bpc;
            link_read_free = end;
            double done = end + link_lat;
            int64_t base = out_base[w];
            out[base + out_len[w]] = done;
            out_len[w]++;
            int64_t head = out_head[w];
            if (out_len[w] - head >= warp_mlp[w]) {
                ready[w] = out[base + head];
                out_head[w] = head + 1;
            } else {
                ready[w] = issue + interval;
            }
        } else { /* kind == 7: host store over the link */
            double start =
                link_write_free > issue ? link_write_free : issue;
            link_write_free = start + (double)ti0[e] / link_bpc;
            ready[w] = issue + interval;
        }
    }

    {
        double cycles = finish;
        for (int64_t c = 0; c < channels; c++)
            if (next_free[c] > cycles)
                cycles = next_free[c];
        if (link_read_free > cycles)
            cycles = link_read_free;
        if (link_write_free > cycles)
            cycles = link_write_free;
        for (int64_t s = 0; s < sm_count; s++)
            if (sm_free[s] > cycles)
                cycles = sm_free[s];
        result = PyFloat_FromDouble(cycles);
    }

cleanup:
    free(next_free); free(sm_free); free(ready); free(out);
    free(out_base); free(out_len); free(out_head);
    release_bufs(tbufs, 12);
    if (mlp_buf.has)
        PyBuffer_Release(&mlp_buf.view);
    return result;
}

/* ------------------------------------------------------------------ */
/* replay_many(tape_cols, warp_mlp, iscalars, fscalars_packs)         */
/*     -> tuple of per-link cycles                                    */
/*                                                                    */
/* Batched twin of replay(): one pass over the tape advances every    */
/* requested link together.  Control flow (branches, the MLP pop)     */
/* depends only on link-invariant tape payloads, so it is hoisted to  */
/* the event level; the per-link clock state lives in link-minor      */
/* arrays (state[slot * n_links + l]) walked by a tight inner loop    */
/* over the RF_* hot scalars.  Each lane performs exactly the IEEE    */
/* double ops of a serial replay() at that link, in the same order,   */
/* so the per-link results are bit-identical to serial calls (and to  */
/* _replay_many_py's NumPy lanes).                                    */
/* ------------------------------------------------------------------ */
static PyObject *
replay_many(PyObject *self, PyObject *args)
{
    PyObject *tape, *mlp_obj, *iscalars_o, *fpacks_o;
    if (!PyArg_ParseTuple(args, "OOOO", &tape, &mlp_obj, &iscalars_o,
                          &fpacks_o))
        return NULL;

    int64_t isc[RI_COUNT];
    if (unpack_i64(iscalars_o, isc, RI_COUNT) < 0)
        return NULL;
    if (!PyTuple_Check(fpacks_o)) {
        PyErr_SetString(PyExc_TypeError,
                        "fscalars_packs must be a tuple of RF_* tuples");
        return NULL;
    }
    const Py_ssize_t n_links = PyTuple_Size(fpacks_o);
    if (n_links == 0)
        return PyTuple_New(0);

    Buf tbufs[12];
    for (Py_ssize_t k = 0; k < 12; k++)
        tbufs[k].has = 0;
    Buf mlp_buf;
    mlp_buf.has = 0;

    PyObject *result = NULL;
    double *fsc = NULL;
    double *next_free = NULL, *sm_free = NULL, *ready = NULL, *out = NULL;
    double *link_read_free = NULL, *link_write_free = NULL, *finish = NULL;
    int64_t *out_base = NULL, *out_len = NULL, *out_head = NULL;

    fsc = malloc(sizeof(double) * (size_t)n_links * RF_COUNT);
    if (!fsc) {
        PyErr_NoMemory();
        goto cleanup;
    }
    for (Py_ssize_t l = 0; l < n_links; l++) {
        PyObject *pack = PyTuple_GetItem(fpacks_o, l);
        if (pack == NULL ||
            unpack_f64(pack, fsc + l * RF_COUNT, RF_COUNT) < 0)
            goto cleanup;
    }

    for (Py_ssize_t k = 0; k < 12; k++) {
        PyObject *item = PyTuple_GetItem(tape, k);
        if (item == NULL || get_buf(item, &tbufs[k], 0) < 0)
            goto cleanup;
    }
    if (get_buf(mlp_obj, &mlp_buf, 0) < 0)
        goto cleanup;

    const int8_t *tk = (const int8_t *)tbufs[0].view.buf;
    const int32_t *tw = (const int32_t *)tbufs[1].view.buf;
    const int32_t *tsm = (const int32_t *)tbufs[2].view.buf;
    const double *tf0 = (const double *)tbufs[3].view.buf;
    const double *tf1 = (const double *)tbufs[4].view.buf;
    const double *tf2 = (const double *)tbufs[5].view.buf;
    const int32_t *ti0 = (const int32_t *)tbufs[6].view.buf;
    const int32_t *ti1 = (const int32_t *)tbufs[7].view.buf;
    const int32_t *ti2 = (const int32_t *)tbufs[8].view.buf;
    const int32_t *ti3 = (const int32_t *)tbufs[9].view.buf;
    const int32_t *ti4 = (const int32_t *)tbufs[10].view.buf;
    const int32_t *ti5 = (const int32_t *)tbufs[11].view.buf;
    const int64_t *warp_mlp = (const int64_t *)mlp_buf.view.buf;
    const Py_ssize_t n_events = tbufs[0].view.len;

    const int64_t warp_count = isc[RI_WARP_COUNT];
    const int64_t sm_count = isc[RI_SM_COUNT];
    const int64_t channels = isc[RI_CHANNELS];

    next_free = calloc((size_t)channels * n_links, sizeof(double));
    sm_free = calloc((size_t)sm_count * n_links, sizeof(double));
    ready = calloc((size_t)(warp_count > 0 ? warp_count : 1) * n_links,
                   sizeof(double));
    link_read_free = calloc((size_t)n_links, sizeof(double));
    link_write_free = calloc((size_t)n_links, sizeof(double));
    finish = calloc((size_t)n_links, sizeof(double));
    out_base = calloc((size_t)(warp_count > 0 ? warp_count : 1),
                      sizeof(int64_t));
    out_len = calloc((size_t)(warp_count > 0 ? warp_count : 1),
                     sizeof(int64_t));
    out_head = calloc((size_t)(warp_count > 0 ? warp_count : 1),
                      sizeof(int64_t));
    if (!next_free || !sm_free || !ready || !link_read_free ||
        !link_write_free || !finish || !out_base || !out_len ||
        !out_head) {
        PyErr_NoMemory();
        goto cleanup;
    }
    /* Partition one flat completion array by each warp's number of
     * completing events (kinds 1/2/3); one lane block per event. */
    Py_ssize_t total_out = 0;
    for (Py_ssize_t e = 0; e < n_events; e++) {
        int8_t kind = tk[e];
        if (kind == 1 || kind == 2 || kind == 3) {
            out_base[tw[e]]++;
            total_out++;
        }
    }
    {
        int64_t acc = 0;
        for (int64_t w = 0; w < warp_count; w++) {
            int64_t c = out_base[w];
            out_base[w] = acc;
            acc += c;
        }
    }
    out = malloc(sizeof(double) *
                 (size_t)(total_out > 0 ? total_out : 1) * n_links);
    if (!out) {
        PyErr_NoMemory();
        goto cleanup;
    }

    for (Py_ssize_t e = 0; e < n_events; e++) {
        int8_t kind = tk[e];
        int64_t w = tw[e];
        int64_t sm = tsm[e];
        if (kind == 8) { /* warp end */
            int64_t head = out_head[w];
            int64_t base = out_base[w];
            for (Py_ssize_t l = 0; l < n_links; l++) {
                if (out_len[w] > head) {
                    double last = out[(base + head) * n_links + l];
                    for (int64_t k = head + 1; k < out_len[w]; k++) {
                        double v = out[(base + k) * n_links + l];
                        if (v > last)
                            last = v;
                    }
                    if (last > finish[l])
                        finish[l] = last;
                }
                if (ready[w * n_links + l] > finish[l])
                    finish[l] = ready[w * n_links + l];
            }
            continue;
        }
        if (kind == 0) { /* compute */
            double busy = tf0[e];
            for (Py_ssize_t l = 0; l < n_links; l++) {
                double r = ready[w * n_links + l];
                double free_t = sm_free[sm * n_links + l];
                double issue = r > free_t ? r : free_t;
                double t = issue + busy;
                sm_free[sm * n_links + l] = t;
                ready[w * n_links + l] = t;
            }
            continue;
        }
        if (kind == 1) { /* load, cache hit */
            int64_t base = out_base[w];
            int64_t pos = out_len[w];
            int64_t head = out_head[w];
            int pop = (pos + 1 - head >= warp_mlp[w]);
            double lat = tf0[e];
            for (Py_ssize_t l = 0; l < n_links; l++) {
                const double *f = fsc + l * RF_COUNT;
                double r = ready[w * n_links + l];
                double free_t = sm_free[sm * n_links + l];
                double issue = r > free_t ? r : free_t;
                sm_free[sm * n_links + l] = issue + f[RF_INTERVAL];
                out[(base + pos) * n_links + l] = issue + lat;
                if (pop)
                    ready[w * n_links + l] =
                        out[(base + head) * n_links + l];
                else
                    ready[w * n_links + l] = issue + f[RF_INTERVAL];
            }
            out_len[w] = pos + 1;
            if (pop)
                out_head[w] = head + 1;
        } else if (kind == 2) { /* load, demand fill */
            int64_t base = out_base[w];
            int64_t pos = out_len[w];
            int64_t head = out_head[w];
            int pop = (pos + 1 - head >= warp_mlp[w]);
            double serv = tf0[e];
            double mserv = tf1[e];
            double wbserv = tf2[e];
            int64_t ch = ti0[e];
            int64_t mmiss = ti1[e];
            int64_t mch = ti2[e];
            int64_t bnum = ti3[e];
            int64_t wbch = ti4[e];
            int64_t wbbnum = ti5[e];
            for (Py_ssize_t l = 0; l < n_links; l++) {
                const double *f = fsc + l * RF_COUNT;
                double r = ready[w * n_links + l];
                double free_t = sm_free[sm * n_links + l];
                double issue = r > free_t ? r : free_t;
                sm_free[sm * n_links + l] = issue + f[RF_INTERVAL];
                double arrival = issue + f[RF_ARRIVAL_LAT];
                double done;
                if (serv != 0.0) {
                    double cf = next_free[ch * n_links + l];
                    double start = cf > arrival ? cf : arrival;
                    double end = start + serv;
                    next_free[ch * n_links + l] = end;
                    done = end + f[RF_DRAM_LAT];
                } else {
                    done = arrival;
                }
                double meta_ready = arrival;
                if (mmiss) {
                    double cf = next_free[mch * n_links + l];
                    double start = cf > arrival ? cf : arrival;
                    double end = start + mserv;
                    next_free[mch * n_links + l] = end;
                    meta_ready = end + f[RF_DRAM_LAT];
                    if (meta_ready > done)
                        done = meta_ready;
                }
                if (bnum) {
                    double start = link_read_free[l] > meta_ready
                                       ? link_read_free[l]
                                       : meta_ready;
                    double end = start + (double)bnum / f[RF_LINK_BPC];
                    link_read_free[l] = end;
                    double t = end + f[RF_LINK_LAT];
                    if (t > done)
                        done = t;
                }
                if (wbserv != 0.0) {
                    double cf = next_free[wbch * n_links + l];
                    double start = cf > arrival ? cf : arrival;
                    next_free[wbch * n_links + l] = start + wbserv;
                }
                if (wbbnum) {
                    double start = link_write_free[l] > arrival
                                       ? link_write_free[l]
                                       : arrival;
                    link_write_free[l] =
                        start + (double)wbbnum / f[RF_LINK_BPC];
                }
                done = done + f[RF_FILL_TAIL];
                out[(base + pos) * n_links + l] = done;
                if (pop)
                    ready[w * n_links + l] =
                        out[(base + head) * n_links + l];
                else
                    ready[w * n_links + l] = issue + f[RF_INTERVAL];
            }
            out_len[w] = pos + 1;
            if (pop)
                out_head[w] = head + 1;
        } else if (kind == 4) { /* store, no memory-system timing */
            for (Py_ssize_t l = 0; l < n_links; l++) {
                const double *f = fsc + l * RF_COUNT;
                double r = ready[w * n_links + l];
                double free_t = sm_free[sm * n_links + l];
                double issue = r > free_t ? r : free_t;
                sm_free[sm * n_links + l] = issue + f[RF_INTERVAL];
                ready[w * n_links + l] = issue + f[RF_INTERVAL];
            }
        } else if (kind == 5) { /* store with dirty-eviction writeback */
            double wbserv = tf2[e];
            int64_t wbch = ti4[e];
            int64_t wbbnum = ti5[e];
            for (Py_ssize_t l = 0; l < n_links; l++) {
                const double *f = fsc + l * RF_COUNT;
                double r = ready[w * n_links + l];
                double free_t = sm_free[sm * n_links + l];
                double issue = r > free_t ? r : free_t;
                sm_free[sm * n_links + l] = issue + f[RF_INTERVAL];
                if (wbserv != 0.0) {
                    double cf = next_free[wbch * n_links + l];
                    double start = cf > issue ? cf : issue;
                    next_free[wbch * n_links + l] = start + wbserv;
                }
                if (wbbnum) {
                    double start = link_write_free[l] > issue
                                       ? link_write_free[l]
                                       : issue;
                    link_write_free[l] =
                        start + (double)wbbnum / f[RF_LINK_BPC];
                }
                ready[w * n_links + l] = issue + f[RF_INTERVAL];
            }
        } else if (kind == 6) { /* store with read-modify-write fill */
            double serv = tf0[e];
            double mserv = tf1[e];
            double wbserv = tf2[e];
            int64_t ch = ti0[e];
            int64_t mmiss = ti1[e];
            int64_t mch = ti2[e];
            int64_t bnum = ti3[e];
            int64_t wbch = ti4[e];
            int64_t wbbnum = ti5[e];
            for (Py_ssize_t l = 0; l < n_links; l++) {
                const double *f = fsc + l * RF_COUNT;
                double r = ready[w * n_links + l];
                double free_t = sm_free[sm * n_links + l];
                double issue = r > free_t ? r : free_t;
                sm_free[sm * n_links + l] = issue + f[RF_INTERVAL];
                if (serv != 0.0) {
                    double cf = next_free[ch * n_links + l];
                    double start = cf > issue ? cf : issue;
                    next_free[ch * n_links + l] = start + serv;
                }
                double meta_ready = issue;
                if (mmiss) {
                    double cf = next_free[mch * n_links + l];
                    double start = cf > issue ? cf : issue;
                    double end = start + mserv;
                    next_free[mch * n_links + l] = end;
                    meta_ready = end + f[RF_DRAM_LAT];
                }
                if (bnum) {
                    double start = link_read_free[l] > meta_ready
                                       ? link_read_free[l]
                                       : meta_ready;
                    link_read_free[l] =
                        start + (double)bnum / f[RF_LINK_BPC];
                }
                if (wbserv != 0.0) {
                    double cf = next_free[wbch * n_links + l];
                    double start = cf > issue ? cf : issue;
                    next_free[wbch * n_links + l] = start + wbserv;
                }
                if (wbbnum) {
                    double start = link_write_free[l] > issue
                                       ? link_write_free[l]
                                       : issue;
                    link_write_free[l] =
                        start + (double)wbbnum / f[RF_LINK_BPC];
                }
                ready[w * n_links + l] = issue + f[RF_INTERVAL];
            }
        } else if (kind == 3) { /* host load over the link */
            int64_t base = out_base[w];
            int64_t pos = out_len[w];
            int64_t head = out_head[w];
            int pop = (pos + 1 - head >= warp_mlp[w]);
            int64_t hnum = ti0[e];
            for (Py_ssize_t l = 0; l < n_links; l++) {
                const double *f = fsc + l * RF_COUNT;
                double r = ready[w * n_links + l];
                double free_t = sm_free[sm * n_links + l];
                double issue = r > free_t ? r : free_t;
                sm_free[sm * n_links + l] = issue + f[RF_INTERVAL];
                double start = link_read_free[l] > issue
                                   ? link_read_free[l]
                                   : issue;
                double end = start + (double)hnum / f[RF_LINK_BPC];
                link_read_free[l] = end;
                out[(base + pos) * n_links + l] = end + f[RF_LINK_LAT];
                if (pop)
                    ready[w * n_links + l] =
                        out[(base + head) * n_links + l];
                else
                    ready[w * n_links + l] = issue + f[RF_INTERVAL];
            }
            out_len[w] = pos + 1;
            if (pop)
                out_head[w] = head + 1;
        } else { /* kind 7: host store over the link */
            int64_t hnum = ti0[e];
            for (Py_ssize_t l = 0; l < n_links; l++) {
                const double *f = fsc + l * RF_COUNT;
                double r = ready[w * n_links + l];
                double free_t = sm_free[sm * n_links + l];
                double issue = r > free_t ? r : free_t;
                sm_free[sm * n_links + l] = issue + f[RF_INTERVAL];
                double start = link_write_free[l] > issue
                                   ? link_write_free[l]
                                   : issue;
                link_write_free[l] =
                    start + (double)hnum / f[RF_LINK_BPC];
                ready[w * n_links + l] = issue + f[RF_INTERVAL];
            }
        }
    }

    result = PyTuple_New(n_links);
    if (result == NULL)
        goto cleanup;
    for (Py_ssize_t l = 0; l < n_links; l++) {
        double cycles = finish[l];
        for (int64_t c = 0; c < channels; c++)
            if (next_free[c * n_links + l] > cycles)
                cycles = next_free[c * n_links + l];
        if (link_read_free[l] > cycles)
            cycles = link_read_free[l];
        if (link_write_free[l] > cycles)
            cycles = link_write_free[l];
        for (int64_t s = 0; s < sm_count; s++)
            if (sm_free[s * n_links + l] > cycles)
                cycles = sm_free[s * n_links + l];
        PyObject *value = PyFloat_FromDouble(cycles);
        if (value == NULL) {
            Py_CLEAR(result);
            goto cleanup;
        }
        PyTuple_SET_ITEM(result, l, value);
    }

cleanup:
    free(fsc);
    free(next_free); free(sm_free); free(ready); free(out);
    free(link_read_free); free(link_write_free); free(finish);
    free(out_base); free(out_len); free(out_head);
    release_bufs(tbufs, 12);
    if (mlp_buf.has)
        PyBuffer_Release(&mlp_buf.view);
    return result;
}

static PyMethodDef event_core_methods[] = {
    {"run_exact", run_exact, METH_VARARGS,
     "run_exact(arrays, iscalars, fscalars, tape_cols_or_None) -> "
     "counter tuple"},
    {"replay", replay, METH_VARARGS,
     "replay(tape_cols, warp_mlp, iscalars, fscalars) -> cycles"},
    {"replay_many", replay_many, METH_VARARGS,
     "replay_many(tape_cols, warp_mlp, iscalars, fscalars_packs) -> "
     "tuple of per-link cycles"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef event_core_module = {
    PyModuleDef_HEAD_INIT,
    "repro.gpusim._event_core_ext",
    "Compiled exact-order event core (see _event_core.py).",
    -1,
    event_core_methods,
};

PyMODINIT_FUNC
PyInit__event_core_ext(void)
{
    PyObject *m = PyModule_Create(&event_core_module);
    if (m == NULL)
        return NULL;
    if (PyModule_AddIntConstant(m, "ABI", EXT_ABI) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
