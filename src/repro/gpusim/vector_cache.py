"""Array-backed sectored cache for the batched-event engine.

:class:`VectorSectoredCache` keeps the same model as
:class:`repro.gpusim.cache.SectoredCache` — LRU, set-associative,
128 B lines with 32 B sector validity and per-line dirty sector masks
— but holds its state in per-set structures built for the vectorized
simulator's event core instead of one ``OrderedDict`` per set:

* ``set_masks[s]`` — sector-presence mask per resident line, in an
  insertion-ordered dict whose key order *is* the LRU stamp order
  (least recent first; a touch deletes and re-inserts);
* ``set_dirty[s]`` — dirty sector mask, held only for dirty lines.

The event core consumes :meth:`decompose` (whole-trace set/line
resolution) and the per-set structures directly — its probes and
fills are inlined over them.  The batched entry points
(:meth:`probe_many`, :meth:`fill_many`) are the bulk/offline API over
the same state: they decompose whole address arrays with NumPy and
resolve the LRU transitions in arrival order, because cache state
transitions are inherently order-dependent (a probe's outcome depends
on every earlier fill) and the sequential resolve is what keeps the
counters and eviction stream identical to the legacy cache.  The
equivalence property tests drive both caches with the same random
operation sequences and pin hits, misses and evictions.

:meth:`state_arrays` exports the occupancy as dense
``(sets, ways)`` tag / sector-mask / dirty-mask / LRU-stamp arrays
for inspection and digesting.

Place in the columnar resolution scheme
---------------------------------------

:meth:`decompose` is the cache's contribution to the vectorized
engine's build step (:func:`repro.gpusim.vector_sim._geometry_columns`):
the line id and set index of every access in a trace are computed in
one whole-array operation and stored in the shared geometry columns.
Those columns are keyed per ``(trace, machine geometry)`` and shared
by *every* compression state, because compression changes how many
bytes an access moves but never which line or set it touches; the
per-state tables (transfer sizes, service times) are in turn shared
by every link bandwidth, because the interconnect only scales runtime
divisions.  At simulation time only the order-dependent residue — the
per-set dict transitions above — runs per event; everything
derivable from the address alone was resolved up front, once.
"""

from __future__ import annotations

import numpy as np

from repro.units import SECTORS_PER_ENTRY

FULL_MASK = (1 << SECTORS_PER_ENTRY) - 1


class VectorSectoredCache:
    """LRU, set-associative, sectored cache over per-set ordered maps.

    Args:
        capacity_bytes: Total data capacity.
        ways: Associativity.
        line_bytes: Line size (128 B throughout the paper).
    """

    def __init__(self, capacity_bytes: int, ways: int, line_bytes: int = 128):
        lines = max(1, capacity_bytes // line_bytes)
        self.ways = min(ways, lines)
        self.sets = max(1, lines // self.ways)
        self.line_bytes = line_bytes
        #: line id -> sector mask; dict order is LRU order (LRU first).
        self.set_masks: list[dict[int, int]] = [{} for _ in range(self.sets)]
        #: line id -> dirty sector mask; holds only dirty lines.
        self.set_dirty: list[dict[int, int]] = [{} for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    # -- scalar operations (SectoredCache-compatible) ------------------
    def lookup(self, address: int, sector_mask: int) -> bool:
        """Probe for all sectors in ``sector_mask``; updates LRU."""
        line = address // self.line_bytes
        masks = self.set_masks[line % self.sets]
        present = masks.get(line)
        if present is not None and present & sector_mask == sector_mask:
            del masks[line]  # re-insertion moves the line to MRU
            masks[line] = present
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, address: int, sector_mask: int, dirty: bool = False):
        """Install sectors; returns evicted (address, dirty_mask) or None."""
        line = address // self.line_bytes
        index = line % self.sets
        masks = self.set_masks[index]
        present = masks.get(line)
        if present is not None:
            del masks[line]
            masks[line] = present | sector_mask
            if dirty:
                dirty_map = self.set_dirty[index]
                dirty_map[line] = dirty_map.get(line, 0) | sector_mask
            return None
        evicted = None
        if len(masks) >= self.ways:
            victim = next(iter(masks))  # LRU = oldest key
            del masks[victim]
            victim_dirty = self.set_dirty[index].pop(victim, 0)
            if victim_dirty:
                evicted = (victim * self.line_bytes, victim_dirty)
        masks[line] = sector_mask
        if dirty:
            self.set_dirty[index][line] = sector_mask
        return evicted

    # -- batched operations --------------------------------------------
    def decompose(self, addresses) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized address split: ``(line ids, set indices)``."""
        lines = np.asarray(addresses, dtype=np.int64) // self.line_bytes
        return lines, lines % self.sets

    def probe_many(self, addresses, sector_masks) -> np.ndarray:
        """Batched :meth:`lookup`; returns a boolean hit array."""
        lines, _ = self.decompose(addresses)
        masks = np.asarray(sector_masks, dtype=np.int64)
        hits = np.empty(lines.size, dtype=bool)
        line_bytes = self.line_bytes
        for position, (line, mask) in enumerate(
            zip(lines.tolist(), masks.tolist())
        ):
            hits[position] = self.lookup(line * line_bytes, mask)
        return hits

    def fill_many(
        self, addresses, sector_masks, dirty: bool = False
    ) -> list[tuple[int, int]]:
        """Batched :meth:`fill`; returns the dirty evictions in order."""
        lines, _ = self.decompose(addresses)
        masks = np.asarray(sector_masks, dtype=np.int64)
        evictions = []
        line_bytes = self.line_bytes
        for line, mask in zip(lines.tolist(), masks.tolist()):
            evicted = self.fill(line * line_bytes, mask, dirty)
            if evicted is not None:
                evictions.append(evicted)
        return evictions

    # -- exports --------------------------------------------------------
    def state_arrays(self):
        """Dense ``(sets, ways)`` tag/mask/dirty/stamp array snapshot.

        Tags are global line ids (-1 for empty ways); stamps rank
        recency within each set (0 = least recent).
        """
        shape = (self.sets, self.ways)
        tags = np.full(shape, -1, dtype=np.int64)
        masks = np.zeros(shape, dtype=np.int16)
        dirty = np.zeros(shape, dtype=np.int16)
        stamps = np.full(shape, -1, dtype=np.int64)
        for index in range(self.sets):
            for stamp, (line, mask) in enumerate(
                self.set_masks[index].items()
            ):
                tags[index, stamp] = line
                masks[index, stamp] = mask
                dirty[index, stamp] = self.set_dirty[index].get(line, 0)
                stamps[index, stamp] = stamp
        return tags, masks, dirty, stamps

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
