"""GPU interconnect (NVLink) model.

A full-duplex link: reads (buddy-memory fetches, native host reads)
and writes (writebacks to buddy slots) occupy independent directions,
each a single bandwidth-limited queue with a fixed remote-access
latency.  The paper sweeps the unidirectional bandwidth from 50 to
200 GB/s; 150 GB/s is six NVLink2 bricks.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.config import GPUConfig

#: Per-transaction overhead (request/response headers, flit padding).
#: Buddy fetches are small (1–3 sectors), and small NVLink transfers
#: only achieve ~half the nominal link bandwidth — this is what makes
#: the 50 GB/s point of the paper's sweep collapse under buddy
#: traffic while 150 GB/s rides comfortably.
TRANSACTION_OVERHEAD_BYTES = 64


class Interconnect:
    """Full-duplex bandwidth-limited link."""

    def __init__(self, config: GPUConfig) -> None:
        self.bytes_per_cycle = config.link.bytes_per_cycle(config.clock_hz)
        self.latency = config.link.latency_cycles
        self._read_free = 0.0
        self._write_free = 0.0
        self.read_bytes = 0
        self.write_bytes = 0

    def read(self, num_bytes: int, arrival: float) -> float:
        """A remote read; returns completion time."""
        service = (num_bytes + TRANSACTION_OVERHEAD_BYTES) / self.bytes_per_cycle
        start = max(self._read_free, arrival)
        self._read_free = start + service
        self.read_bytes += num_bytes
        return start + service + self.latency

    def write(self, num_bytes: int, arrival: float) -> None:
        """A remote write (fire-and-forget through the write buffer)."""
        service = (num_bytes + TRANSACTION_OVERHEAD_BYTES) / self.bytes_per_cycle
        start = max(self._write_free, arrival)
        self._write_free = start + service
        self.write_bytes += num_bytes

    # -- batched reservation API ---------------------------------------
    def read_many(self, byte_counts, arrivals):
        """Batched :meth:`read`; reservations resolve in order."""
        byte_counts = np.asarray(byte_counts, dtype=np.int64)
        arrivals = np.asarray(arrivals, dtype=np.float64)
        done = np.empty(byte_counts.size, dtype=np.float64)
        for position, (count, arrival) in enumerate(
            zip(byte_counts.tolist(), arrivals.tolist())
        ):
            done[position] = self.read(count, arrival)
        return done

    def write_many(self, byte_counts, arrivals) -> None:
        """Batched :meth:`write`; reservations resolve in order."""
        byte_counts = np.asarray(byte_counts, dtype=np.int64)
        arrivals = np.asarray(arrivals, dtype=np.float64)
        for count, arrival in zip(byte_counts.tolist(), arrivals.tolist()):
            self.write(count, arrival)

    @property
    def busy_until(self) -> float:
        """Cycle at which both link directions have drained.

        Reads are waited on by their issuing warps, but writes are
        fire-and-forget: without this bound a kernel whose tail is
        writeback traffic (buddy-slot or host writes) would report
        completion while the link is still transferring.
        """
        return max(self._read_free, self._write_free)

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes
