"""Simulator configuration (paper Table 2).

``GPUConfig`` defaults mirror Table 2's P100/V100-class machine.  For
pure-Python simulation the traces and capacities are scaled down
together (:func:`scaled_config`); clock-domain ratios, bandwidth
ratios (the 6:1 HBM2-to-NVLink2 gap that drives Fig. 11) and latencies
are preserved, which is what the relative-performance studies depend
on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.units import KIB, MIB


@dataclass(frozen=True)
class LinkConfig:
    """GPU interconnect (NVLink2 by default).

    Attributes:
        bandwidth_gbps: Unidirectional full-duplex bandwidth.  The
            paper sweeps 50–200; 150 is six NVLink2 bricks.
        latency_cycles: Core-clock round-trip latency of a remote
            access.
    """

    bandwidth_gbps: float = 150.0
    latency_cycles: int = 700
    #: Effective-bandwidth derate.  The scaled machine's DRAM runs at
    #: ~50 % pin efficiency (row overheads); derating the link by the
    #: same factor preserves the paper's nominal device:link ratios —
    #: 6:1 at 150 GB/s, 18:1 at 50 — which are what Fig. 11 sweeps.
    derate: float = 1.0

    def bytes_per_cycle(self, clock_hz: float) -> float:
        return self.bandwidth_gbps * 1e9 / clock_hz * self.derate


@dataclass(frozen=True)
class GPUConfig:
    """Table 2 machine description.

    Attributes mirror the paper: 1.3 GHz cores with two
    greedy-then-oldest schedulers per SM, sectored caches with 128 B
    lines and 32 B sectors, 32 HBM2 channels at 900 GB/s aggregate,
    six NVLink2 bricks, a 4-way metadata cache, and an 11-DRAM-cycle
    (de)compression latency.
    """

    # Core
    sm_count: int = 56
    warps_per_sm: int = 64
    schedulers_per_sm: int = 2
    clock_hz: float = 1.3e9

    # Caches
    l1_bytes: int = 24 * KIB
    l1_ways: int = 4
    l2_bytes: int = 4 * MIB
    l2_ways: int = 16
    line_bytes: int = 128
    l1_latency: int = 30
    l2_latency: int = 190

    # Off-chip
    dram_channels: int = 32
    dram_bandwidth_gbps: float = 900.0
    dram_latency: int = 320
    dram_clock_hz: float = 0.875e9
    link: LinkConfig = LinkConfig()

    # Buddy compression additions
    metadata_cache_bytes: int = 128 * KIB  # 4 KB x 32 L2 slices
    metadata_cache_ways: int = 4
    metadata_cache_slices: int = 8
    decompression_dram_cycles: int = 11

    @property
    def decompression_latency(self) -> int:
        """Decompression latency converted to core cycles."""
        scale = self.clock_hz / self.dram_clock_hz
        return int(round(self.decompression_dram_cycles * scale))

    @property
    def dram_bytes_per_cycle_per_channel(self) -> float:
        return (
            self.dram_bandwidth_gbps * 1e9 / self.clock_hz / self.dram_channels
        )

    @property
    def issue_interval(self) -> float:
        """Core cycles between instruction issues on one SM."""
        return 1.0 / self.schedulers_per_sm

    def with_link(self, bandwidth_gbps: float) -> "GPUConfig":
        """This configuration with a different interconnect bandwidth."""
        return replace(
            self, link=replace(self.link, bandwidth_gbps=bandwidth_gbps)
        )


def scaled_config(
    sm_count: int = 16,
    warps_per_sm: int = 32,
    schedulers_per_sm: int = 4,
    l1_bytes: int = 2 * KIB,
    l2_bytes: int = 96 * KIB,
    dram_channels: int = 6,
    metadata_cache_bytes: int = 4 * KIB,
    metadata_cache_ways: int = 2,
    metadata_cache_slices: int = 2,
    link_gbps: float = 150.0,
) -> GPUConfig:
    """A scaled-down machine matched to scaled workload footprints.

    Capacity knobs shrink together with the 1/4096-scaled traces; the
    bandwidth ratio between device memory and the interconnect — the
    quantity Fig. 11 sweeps — is preserved exactly, and the warp
    population is sized so streaming kernels saturate DRAM as they do
    on the real machine.
    """
    return GPUConfig(
        sm_count=sm_count,
        warps_per_sm=warps_per_sm,
        schedulers_per_sm=schedulers_per_sm,
        l1_bytes=l1_bytes,
        l2_bytes=l2_bytes,
        dram_channels=dram_channels,
        metadata_cache_bytes=metadata_cache_bytes,
        metadata_cache_ways=metadata_cache_ways,
        metadata_cache_slices=metadata_cache_slices,
        link=LinkConfig(bandwidth_gbps=link_gbps, derate=0.5),
    )
