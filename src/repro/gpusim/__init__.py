"""Dependency-driven GPU performance simulator.

A Python reimplementation of the class of simulator the paper uses
(Section 4.1): in-order SMs with greedy-then-oldest warp scheduling, a
sectored two-level cache hierarchy, HBM2 channels, and NVLink bricks,
driven by warp-instruction traces.  Compression hooks implement the
three memory-system modes of Fig. 11:

* ``ideal`` — no compression, unlimited-capacity baseline;
* ``bandwidth`` — link compression between L2 and DRAM only;
* ``buddy`` — full Buddy Compression: metadata cache, buddy-memory
  overflow sectors over the interconnect, decompression latency.

The simulator ships three engines behind one front door
(:class:`DependencyDrivenSimulator`): the default ``"vectorized"``
batched-event core (:mod:`repro.gpusim.vector_sim`), the
``"relaxed"`` frozen-order tape engine
(:class:`~repro.gpusim.vector_sim.RelaxedSimulator`, with its
``verify=`` oracle cross-check), and the ``"legacy"`` per-access
oracle both are pinned against.  The three-way contract is documented
in ``docs/engines.md``.  :mod:`repro.gpusim.reference` provides a
cycle-stepped reference machine used as the silicon proxy for the
Fig. 10 correlation study.
"""

from repro.gpusim.config import GPUConfig, LinkConfig, scaled_config
from repro.gpusim.compression import CompressionMode, CompressionState
from repro.gpusim.engine_spec import EngineSpec
from repro.gpusim.simulator import ENGINES, DependencyDrivenSimulator, SimResult
from repro.gpusim.trace import ColumnarTrace, KernelTrace, WarpTrace
from repro.gpusim.vector_cache import VectorSectoredCache
from repro.gpusim.vector_sim import (
    REFERENCE_LINK_GBPS,
    RELAXED_COUNTER_TOLERANCE,
    RELAXED_CYCLE_TOLERANCE,
    RelaxedSimulator,
    RelaxedVerificationError,
    VectorizedSimulator,
    check_relaxed_contract,
)

__all__ = [
    "GPUConfig",
    "LinkConfig",
    "scaled_config",
    "CompressionMode",
    "CompressionState",
    "DependencyDrivenSimulator",
    "EngineSpec",
    "VectorizedSimulator",
    "RelaxedSimulator",
    "RelaxedVerificationError",
    "check_relaxed_contract",
    "REFERENCE_LINK_GBPS",
    "RELAXED_COUNTER_TOLERANCE",
    "RELAXED_CYCLE_TOLERANCE",
    "VectorSectoredCache",
    "ENGINES",
    "SimResult",
    "ColumnarTrace",
    "KernelTrace",
    "WarpTrace",
]
