"""Dependency-driven GPU performance simulator.

A Python reimplementation of the class of simulator the paper uses
(Section 4.1): in-order SMs with greedy-then-oldest warp scheduling, a
sectored two-level cache hierarchy, HBM2 channels, and NVLink bricks,
driven by warp-instruction traces.  Compression hooks implement the
three memory-system modes of Fig. 11:

* ``ideal`` — no compression, unlimited-capacity baseline;
* ``bandwidth`` — link compression between L2 and DRAM only;
* ``buddy`` — full Buddy Compression: metadata cache, buddy-memory
  overflow sectors over the interconnect, decompression latency.

The simulator ships two engines behind one front door
(:class:`DependencyDrivenSimulator`): the default ``"vectorized"``
batched-event core (:mod:`repro.gpusim.vector_sim`) and the
``"legacy"`` per-access oracle it is pinned against.
:mod:`repro.gpusim.reference` provides a cycle-stepped reference
machine used as the silicon proxy for the Fig. 10 correlation study.
"""

from repro.gpusim.config import GPUConfig, LinkConfig, scaled_config
from repro.gpusim.compression import CompressionMode, CompressionState
from repro.gpusim.simulator import ENGINES, DependencyDrivenSimulator, SimResult
from repro.gpusim.trace import ColumnarTrace, KernelTrace, WarpTrace
from repro.gpusim.vector_cache import VectorSectoredCache
from repro.gpusim.vector_sim import VectorizedSimulator

__all__ = [
    "GPUConfig",
    "LinkConfig",
    "scaled_config",
    "CompressionMode",
    "CompressionState",
    "DependencyDrivenSimulator",
    "VectorizedSimulator",
    "VectorSectoredCache",
    "ENGINES",
    "SimResult",
    "ColumnarTrace",
    "KernelTrace",
    "WarpTrace",
]
