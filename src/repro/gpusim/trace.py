"""Warp-instruction trace intermediate representation.

The paper drives its simulator with SASS traces of 1–9 billion warp
instructions; we use the same shape at reduced length.  A trace is a
set of per-warp instruction streams over three operations:

* ``COMPUTE n`` — n back-to-back arithmetic instructions;
* ``LOAD addr sectors`` — a coalesced global load touching
  ``sectors`` 32 B sectors of the 128 B line at ``addr``;
* ``STORE addr sectors`` — a global store (fire-and-forget through
  the write buffer).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Op(enum.IntEnum):
    COMPUTE = 0
    LOAD = 1
    STORE = 2


@dataclass
class WarpTrace:
    """One warp's instruction stream.

    Attributes:
        sm: Home SM index.
        instructions: List of ``(op, operand_a, operand_b)`` tuples:
            ``(COMPUTE, n, 0)``, ``(LOAD, address, sectors)`` or
            ``(STORE, address, sectors)``.
        max_outstanding: Loads in flight before the warp stalls —
            the memory-level parallelism the kernel's independent
            instructions allow (latency-sensitive kernels have 1).
    """

    sm: int
    instructions: list[tuple[int, int, int]]
    max_outstanding: int = 4

    @property
    def instruction_count(self) -> int:
        return sum(
            instr[1] if instr[0] == Op.COMPUTE else 1
            for instr in self.instructions
        )


@dataclass
class KernelTrace:
    """A traced kernel: all warps plus address-space metadata."""

    benchmark: str
    warps: list[WarpTrace]
    footprint_bytes: int
    #: Address ranges per allocation: name -> (start, end) byte offsets.
    allocation_ranges: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: Fraction of accesses that natively target host memory
    #: (FF_HPGMG's synchronous copies) — served over the link even
    #: without compression.
    host_traffic_fraction: float = 0.0

    @property
    def warp_count(self) -> int:
        return len(self.warps)

    @property
    def instruction_count(self) -> int:
        return sum(w.instruction_count for w in self.warps)

    @property
    def memory_instruction_count(self) -> int:
        return sum(
            sum(1 for i in w.instructions if i[0] != Op.COMPUTE)
            for w in self.warps
        )

    def allocation_of(self, address: int) -> str:
        """Name of the allocation owning a byte address."""
        for name, (start, end) in self.allocation_ranges.items():
            if start <= address < end:
                return name
        raise KeyError(f"address {address:#x} outside all allocations")
