"""Warp-instruction trace intermediate representation.

The paper drives its simulator with SASS traces of 1–9 billion warp
instructions; we use the same shape at reduced length.  A trace is a
set of per-warp instruction streams over three operations:

* ``COMPUTE n`` — n back-to-back arithmetic instructions;
* ``LOAD addr sectors`` — a coalesced global load touching
  ``sectors`` 32 B sectors of the 128 B line at ``addr``;
* ``STORE addr sectors`` — a global store (fire-and-forget through
  the write buffer).

Traces carry two interchangeable representations of the same streams:

* :class:`ColumnarTrace` — structured NumPy arrays (op codes,
  operands, CSR warp offsets, per-warp SM ids and MLP limits).  This
  is what the trace generator emits and what the vectorized simulator
  consumes; per-access quantities are derived from it with whole-array
  operations instead of per-instruction Python work.
* per-warp ``(op, a, b)`` tuple lists (:class:`WarpTrace`) — the
  legacy representation the per-access oracle engine walks.  It is
  materialised lazily from the columns, so a run confined to the
  columnar consumers (the vectorized and relaxed engines, the
  cycle-stepped reference, the metadata study) never builds a single
  tuple; :data:`tuple_materialisations` counts every decode so tests
  can pin that property.

Both views decode to identical instruction streams; the equivalence
tests pin this.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class Op(enum.IntEnum):
    COMPUTE = 0
    LOAD = 1
    STORE = 2


#: Per-process count of columnar-to-tuple decodes.  The columnar
#: consumers must never bump it; tests pin the counter the same way
#: ``repro.core.profiler.bulk_compression_call_count`` pins the
#: one-bulk-call profiling contract.
tuple_materialisations = 0


@dataclass
class WarpTrace:
    """One warp's instruction stream.

    Attributes:
        sm: Home SM index.
        instructions: List of ``(op, operand_a, operand_b)`` tuples:
            ``(COMPUTE, n, 0)``, ``(LOAD, address, sectors)`` or
            ``(STORE, address, sectors)``.
        max_outstanding: Loads in flight before the warp stalls —
            the memory-level parallelism the kernel's independent
            instructions allow (latency-sensitive kernels have 1).
    """

    sm: int
    instructions: list[tuple[int, int, int]]
    max_outstanding: int = 4

    @property
    def instruction_count(self) -> int:
        return sum(
            instr[1] if instr[0] == Op.COMPUTE else 1
            for instr in self.instructions
        )


@dataclass
class ColumnarTrace:
    """All warps' instruction streams as structured NumPy arrays.

    Attributes:
        ops: ``(n,)`` int8 op codes (:class:`Op` values) over every
            instruction row of every warp, concatenated in warp order.
        a: ``(n,)`` int64 first operands (compute run length or byte
            address).
        b: ``(n,)`` int64 second operands (0 or sector count).
        warp_starts: ``(w + 1,)`` int64 CSR offsets: warp ``i`` owns
            rows ``warp_starts[i]:warp_starts[i + 1]``.
        warp_sm: ``(w,)`` int32 home SM per warp.
        warp_mlp: ``(w,)`` int32 ``max_outstanding`` per warp.
    """

    ops: np.ndarray
    a: np.ndarray
    b: np.ndarray
    warp_starts: np.ndarray
    warp_sm: np.ndarray
    warp_mlp: np.ndarray

    @property
    def warp_count(self) -> int:
        return int(self.warp_sm.size)

    @property
    def instruction_count(self) -> int:
        compute = self.ops == int(Op.COMPUTE)
        return int(self.a[compute].sum() + np.count_nonzero(~compute))

    @property
    def memory_instruction_count(self) -> int:
        return int(np.count_nonzero(self.ops != int(Op.COMPUTE)))

    @classmethod
    def from_warps(cls, warps: list[WarpTrace]) -> "ColumnarTrace":
        rows = [np.array(w.instructions, dtype=np.int64).reshape(-1, 3)
                for w in warps]
        lengths = np.array([r.shape[0] for r in rows], dtype=np.int64)
        stacked = (
            np.concatenate(rows, axis=0)
            if rows else np.empty((0, 3), dtype=np.int64)
        )
        starts = np.zeros(len(warps) + 1, dtype=np.int64)
        np.cumsum(lengths, out=starts[1:])
        return cls(
            ops=stacked[:, 0].astype(np.int8),
            a=stacked[:, 1].copy(),
            b=stacked[:, 2].copy(),
            warp_starts=starts,
            warp_sm=np.array([w.sm for w in warps], dtype=np.int32),
            warp_mlp=np.array(
                [w.max_outstanding for w in warps], dtype=np.int32
            ),
        )

    def materialise_warps(self) -> list[WarpTrace]:
        """Decode the columns back into per-warp tuple lists."""
        global tuple_materialisations
        tuple_materialisations += 1
        ops = self.ops.tolist()
        a = self.a.tolist()
        b = self.b.tolist()
        starts = self.warp_starts.tolist()
        sms = self.warp_sm.tolist()
        mlps = self.warp_mlp.tolist()
        warps = []
        for w in range(self.warp_count):
            lo, hi = starts[w], starts[w + 1]
            instructions = [
                (ops[i], a[i], b[i]) for i in range(lo, hi)
            ]
            warps.append(
                WarpTrace(sms[w], instructions, max_outstanding=mlps[w])
            )
        return warps


class KernelTrace:
    """A traced kernel: all warps plus address-space metadata.

    Holds either representation (or both); each converts to the other
    on first use and is cached.  Construct with ``warps`` (the legacy
    path, used by unit tests building streams by hand) or with
    ``columnar`` (the generator's native output).
    """

    def __init__(
        self,
        benchmark: str,
        warps: list[WarpTrace] | None = None,
        footprint_bytes: int = 0,
        allocation_ranges: dict[str, tuple[int, int]] | None = None,
        host_traffic_fraction: float = 0.0,
        columnar: ColumnarTrace | None = None,
    ) -> None:
        if warps is None and columnar is None:
            raise ValueError("KernelTrace needs warps or columnar data")
        self.benchmark = benchmark
        self.footprint_bytes = footprint_bytes
        #: Address ranges per allocation: name -> (start, end) offsets.
        self.allocation_ranges = dict(allocation_ranges or {})
        #: Fraction of accesses that natively target host memory
        #: (FF_HPGMG's synchronous copies) — served over the link even
        #: without compression.
        self.host_traffic_fraction = host_traffic_fraction
        self._warps = warps
        self._columnar = columnar

    # -- representations ----------------------------------------------
    @property
    def warps(self) -> list[WarpTrace]:
        """Per-warp tuple lists (legacy/reference engines)."""
        if self._warps is None:
            self._warps = self._columnar.materialise_warps()
        return self._warps

    def columnar(self) -> ColumnarTrace:
        """Structured-array view (vectorized engine)."""
        if self._columnar is None:
            self._columnar = ColumnarTrace.from_warps(self._warps)
        return self._columnar

    # -- summary properties -------------------------------------------
    @property
    def warp_count(self) -> int:
        if self._columnar is not None:
            return self._columnar.warp_count
        return len(self._warps)

    @property
    def instruction_count(self) -> int:
        return self.columnar().instruction_count

    @property
    def memory_instruction_count(self) -> int:
        return self.columnar().memory_instruction_count

    def allocation_of(self, address: int) -> str:
        """Name of the allocation owning a byte address."""
        for name, (start, end) in self.allocation_ranges.items():
            if start <= address < end:
                return name
        raise KeyError(f"address {address:#x} outside all allocations")
