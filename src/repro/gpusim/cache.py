"""Sectored set-associative cache model.

Both L1 and L2 use 128 B lines with 32 B sector validity, matching the
paper's hierarchy.  A lookup hits only if every requested sector is
present; fills may populate single sectors (the uncompressed baseline)
or whole lines (compressed fills, which is the over-fetch effect
Section 4.2 discusses).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.units import SECTORS_PER_ENTRY

FULL_MASK = (1 << SECTORS_PER_ENTRY) - 1


class SectoredCache:
    """LRU, set-associative, sectored cache.

    Args:
        capacity_bytes: Total data capacity.
        ways: Associativity.
        line_bytes: Line size (128 B throughout the paper).
    """

    def __init__(self, capacity_bytes: int, ways: int, line_bytes: int = 128):
        lines = max(1, capacity_bytes // line_bytes)
        self.ways = min(ways, lines)
        self.sets = max(1, lines // self.ways)
        self.line_bytes = line_bytes
        # per set: OrderedDict tag -> [sector_mask, dirty_mask] (LRU
        # first).  The dirty mask records which sectors were written,
        # so evictions can post a sectored writeback instead of the
        # whole line.
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        return line % self.sets, line // self.sets

    def lookup(self, address: int, sector_mask: int) -> bool:
        """Probe for all sectors in ``sector_mask``; updates LRU."""
        index, tag = self._locate(address)
        entry = self._sets[index].get(tag)
        if entry is not None and (entry[0] & sector_mask) == sector_mask:
            self._sets[index].move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, address: int, sector_mask: int, dirty: bool = False):
        """Install sectors; returns evicted (address, dirty_mask) or None.

        A dirty fill marks exactly its sectors dirty; the eviction
        result carries the accumulated dirty mask so the writeback can
        post only the written sectors (the sectored baseline the paper
        assumes).  Clean evictions return ``None``.
        """
        index, tag = self._locate(address)
        ways = self._sets[index]
        entry = ways.get(tag)
        if entry is not None:
            entry[0] |= sector_mask
            if dirty:
                entry[1] |= sector_mask
            ways.move_to_end(tag)
            return None
        evicted = None
        if len(ways) >= self.ways:
            old_tag, old_entry = ways.popitem(last=False)
            if old_entry[1]:
                evicted = (
                    (old_tag * self.sets + index) * self.line_bytes,
                    old_entry[1],
                )
        ways[tag] = [sector_mask, sector_mask if dirty else 0]
        return evicted

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


def sector_mask(first_sector: int, count: int) -> int:
    """Bit mask for ``count`` sectors starting at ``first_sector``."""
    if not 0 <= first_sector < SECTORS_PER_ENTRY:
        raise ValueError(f"first sector {first_sector} outside line")
    count = min(count, SECTORS_PER_ENTRY - first_sector)
    return ((1 << count) - 1) << first_sector
