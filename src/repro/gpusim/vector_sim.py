"""Vectorized batched-event core for the dependency-driven simulator.

The legacy engine (:mod:`repro.gpusim.simulator`) resolves every
instruction with a stack of Python method calls — heap pop, sector
mask arithmetic, ``OrderedDict`` cache probes, per-access
``CompressionState`` lookups, DRAM channel decomposition.  Profiling
shows those per-access recomputations dominating the Fig. 10/11 hot
path, yet almost all of them are static for a given ``(trace, state,
machine)``: the address never changes, so neither do the sector mask,
the cache set, the DRAM channel/row/bank, the metadata line, the
compressed transfer sizes or the per-hop service times.

This engine therefore splits the simulation into:

1. **Columnar resolution** — every per-access quantity is computed
   for the *whole trace at once* with array operations over the
   :class:`ColumnarTrace` columns and the :class:`CompressionState`
   entry tables
   (:meth:`~repro.gpusim.compression.CompressionState.device_transfer_bytes_table`
   /
   :meth:`~repro.gpusim.compression.CompressionState.buddy_transfer_bytes_table`),
   using the batched geometry helpers (:meth:`ChannelSet.decompose`,
   :meth:`VectorSectoredCache.decompose`).  Trace/machine geometry
   (:func:`_geometry_columns`) is shared by every compression state;
   the per-state tables (:func:`_state_columns`) are shared by every
   link bandwidth — so the Fig. 11 sweep resolves each benchmark's
   accesses once, not once per design point.  Everything is kept as
   flat C-contiguous ``int64``/``float64`` columns.
2. **An event core** (:mod:`repro.gpusim._event_core`) that advances
   ready warps in the *exact* ``(ready time, sequence)`` order of the
   legacy scheduler over those flat columns.  Cache, DRAM and
   interconnect state transitions are inherently order-dependent, so
   each round's accesses resolve sequentially — but all the
   per-access *derivation* already happened in step 1.  The core has
   two interchangeable implementations behind one interface: an
   always-available pure-Python loop and an optional compiled C
   extension (``_event_core_ext``) that is bit-identical to it (see
   the module docstring of :mod:`repro.gpusim._event_core` for the
   selection rules and ``REPRO_NO_EXT``).

The result is the oracle contract the studies rely on: identical
integer traffic counters (``dram_bytes``, ``link_bytes``, fills, hit
counts) and bit-identical cycle counts to the legacy engine, at a
fraction of the wall-clock (``bench_fig11_performance.py`` pins the
speedup; ``tests/test_vector_sim.py`` pins the equivalence and
``tests/test_event_core.py`` pins compiled == pure-Python).

Why the columns are layered the way they are
--------------------------------------------

The resolution tables deliberately split along reuse boundaries:

* :func:`_geometry_columns` depends only on ``(trace, machine
  geometry)`` — addresses, sector masks, cache sets, DRAM
  channel/row/bank coordinates, metadata-line slots.  Every
  compression state of a trace shares one copy, because compression
  never moves an access, it only changes how many bytes the access
  transfers.
* :func:`_state_columns` adds the per-``CompressionState`` tables —
  compressed device/buddy transfer sizes and the per-hop service
  times derived from them.  These are keyed without the interconnect
  (:func:`_machine_key`): link bandwidth only scales the runtime
  divisions inside the event core, so one per-state resolution
  serves the whole Fig. 11 link sweep.

The relaxed engine (below) adds a third layer with the same shape:
the **event tape** recorded by one exact-order run is keyed per
``(trace, state, machine geometry)`` and replayed at every link
bandwidth of the sweep.

The relaxed engine
------------------

``engine="relaxed"`` (:class:`RelaxedSimulator`) trades exact
scheduling for wall-clock by *freezing the event order*.  One
exact-order pass at the canonical reference interconnect
(:data:`REFERENCE_LINK_GBPS`, the paper's six-brick NVLink2 point that
Fig. 11 normalises against) records a compact per-event tape — who
issued, what it hit, which DRAM channel/row service it consumed,
how many buddy bytes moved.  Every other link bandwidth *replays*
that tape: the order and all traffic outcomes are frozen, and only
the timing recurrences (SM issue slots, channel queues, link
occupancy, warp memory-level parallelism) are recomputed.

The contract this buys (pinned by ``tests/test_relaxed_sim.py``):

* at the reference interconnect the relaxed engine *is* the exact
  engine — bit-identical counters and cycles;
* traffic counters are link-invariant by construction, and within
  :data:`RELAXED_COUNTER_TOLERANCE` of the legacy oracle at every
  other link (the oracle's own counters drift by a similar margin
  across the sweep, because scheduling feeds back into cache order);
* cycles are within :data:`RELAXED_CYCLE_TOLERANCE` everywhere, and
  *exact* where order is provably immaterial — single-warp traces,
  traces whose warps share no memory-system resources, and any
  IDEAL-mode trace without host traffic (no link dependence at all);
* ``verify=`` cross-checks a deterministic sample of runs against
  the legacy oracle at full fidelity and raises
  :class:`RelaxedVerificationError` on a contract violation.
"""

from __future__ import annotations

import hashlib
import struct
import weakref
from collections import OrderedDict
from dataclasses import replace

import numpy as np

from repro.core.metadata_cache import MetadataCache
from repro.gpusim import _event_core
from repro.gpusim.compression import CompressionMode, CompressionState
from repro.gpusim.config import GPUConfig
from repro.gpusim.dram import (
    BANKS_PER_CHANNEL,
    ROW_BYTES,
    ROW_HIT_OVERHEAD,
    ROW_MISS_OVERHEAD,
    ChannelSet,
)
from repro.gpusim.interconnect import TRANSACTION_OVERHEAD_BYTES
from repro.gpusim.trace import KernelTrace, Op
from repro.gpusim.vector_cache import VectorSectoredCache
from repro.units import (
    ENTRIES_PER_METADATA_LINE,
    MEMORY_ENTRY_BYTES,
    METADATA_LINE_BYTES,
    SECTOR_BYTES,
    SECTORS_PER_ENTRY,
)

#: Event codes: compute / local load / local store / host load /
#: host store / local store needing the read-modify-write check.
_COMPUTE, _LOAD, _STORE, _HOST_LOAD, _HOST_STORE, _STORE_RMW = range(6)

#: Dirty-sector population count for 4-bit masks (sectored writebacks).
_POPCOUNT4 = [bin(mask).count("1") for mask in range(16)]

_FULL = (1 << SECTORS_PER_ENTRY) - 1

#: The canonical interconnect the relaxed engine resolves traffic at:
#: six NVLink2 bricks, the point Fig. 11 normalises against.  Tape
#: order (and therefore every traffic counter) is frozen at this
#: bandwidth and shared by the whole link sweep.
REFERENCE_LINK_GBPS = 150.0

#: Pinned relaxed-engine tolerances.  Off the reference interconnect,
#: the frozen order deviates from the oracle's link-specific schedule;
#: the observed drift on the Fig. 10/11 grids is well under these
#: bounds (see tests/test_relaxed_sim.py, which sweeps the full grid
#: and asserts the margins).  Counters get a relative bound plus an
#: absolute floor of :data:`RELAXED_COUNTER_FLOOR_EVENTS` transfer
#: events: a benchmark with almost no buddy traffic (370.bt moves a
#: few dozen buddy fills) sees the oracle's *own* counters wander by
#: a handful of borderline evictions between link points, so a purely
#: relative bound on a tiny counter would be noise-tight.
RELAXED_CYCLE_TOLERANCE = 0.01
RELAXED_COUNTER_TOLERANCE = 0.02
RELAXED_COUNTER_FLOOR_EVENTS = 16


class RelaxedVerificationError(AssertionError):
    """A relaxed-engine result broke its contract against the oracle."""


#: Per-trace column memos.  Values hold their states/configs strongly
#: (keeping ids valid); entries die with their trace.
_GEOMETRY_MEMO: "weakref.WeakKeyDictionary[KernelTrace, dict]" = (
    weakref.WeakKeyDictionary()
)
_STATE_MEMO: "weakref.WeakKeyDictionary[KernelTrace, dict]" = (
    weakref.WeakKeyDictionary()
)
#: Relaxed-engine tape memo: (state id, machine key, link latency,
#: link derate) -> (state, tape, reference SimResult).
_TAPE_MEMO: "weakref.WeakKeyDictionary[KernelTrace, dict]" = (
    weakref.WeakKeyDictionary()
)


def _machine_key(config: GPUConfig):
    """Machine geometry key: everything except the interconnect.

    Link bandwidth only scales runtime divisions, so one column
    resolution serves the whole Fig. 11 link sweep.
    """
    return replace(config, link=None)


class _Geometry:
    """Per-(trace, machine) columns shared by every compression state.

    Every slot is a flat C-contiguous ``int64``/``float64`` column (or
    a plain int for the cache-shape scalars) — the struct-of-arrays
    pack the event core consumes directly.  ``rows_cache`` is the
    pure-Python core's memo for the transient row tuples it derives
    from these columns (the compiled core reads the arrays in place).
    """

    __slots__ = (
        "codes_ideal", "codes_packed", "busy",
        "lid", "mask", "l1flat", "l2set", "chan", "row", "bank", "count",
        "hbytes", "hnum",
        "mtag", "mslot", "mchan", "mrow", "mbank",
        "warp_start", "warp_sm", "warp_mlp",
        "l1_sets_total", "l1_ways", "l2_sets", "l2_ways",
        "meta_slots", "meta_ways",
        "rows_cache",
    )


class _StateColumns:
    """Per-(trace, state, machine) resolution tables (flat columns)."""

    __slots__ = (
        "codes", "dev", "serv_hit", "serv_miss", "bud", "bnum",
        "entries", "use_meta", "ideal",
        "wb_dev", "wb_serv", "wb_bud", "wb_bnum",
        "wb_ideal_bytes", "wb_ideal_serv",
        "rows_cache",
    )


def _geometry_columns(trace: KernelTrace, config: GPUConfig) -> _Geometry:
    key = _machine_key(config)
    per_trace = _GEOMETRY_MEMO.get(trace)
    if per_trace is None:
        per_trace = {}
        _GEOMETRY_MEMO[trace] = per_trace
    geometry = per_trace.get(key)
    if geometry is not None:
        return geometry

    col = trace.columnar()
    ops = col.ops.astype(np.int64)
    a = col.a
    b = col.b
    is_mem = ops != int(Op.COMPUTE)
    host_base = (
        trace.footprint_bytes if trace.host_traffic_fraction > 0 else None
    )
    host = (
        (a >= host_base) & is_mem
        if host_base is not None
        else np.zeros(ops.size, dtype=bool)
    )

    # Event codes for the sectored baseline and the compressed modes
    # (the latter mark partial local stores for the RMW check).
    codes_ideal = ops.copy()
    codes_ideal[host & (ops == int(Op.LOAD))] = _HOST_LOAD
    codes_ideal[host & (ops == int(Op.STORE))] = _HOST_STORE
    codes_packed = codes_ideal.copy()
    codes_packed[
        (ops == int(Op.STORE)) & (b < SECTORS_PER_ENTRY) & ~host
    ] = _STORE_RMW

    # Address geometry: line ids, sector masks, cache sets, DRAM
    # coordinates — one batched decompose per trace.
    lid = a // MEMORY_ENTRY_BYTES
    first = (a % MEMORY_ENTRY_BYTES) // SECTOR_BYTES
    count = np.minimum(b, SECTORS_PER_ENTRY - first)
    mask = ((1 << count) - 1) << first
    l1_proto = VectorSectoredCache(
        config.l1_bytes, config.l1_ways, config.line_bytes
    )
    l2_proto = VectorSectoredCache(
        config.l2_bytes, config.l2_ways, config.line_bytes
    )
    _, l1set = l1_proto.decompose(a)
    _, l2set = l2_proto.decompose(a)
    # The owning SM is fixed per warp, so the flat per-(SM, set) L1
    # index resolves at build time too.
    row_counts = np.diff(col.warp_starts)
    row_sm = np.repeat(col.warp_sm.astype(np.int64), row_counts)
    l1flat = row_sm * l1_proto.sets + l1set

    dram = ChannelSet(
        config.dram_channels,
        config.dram_bytes_per_cycle_per_channel,
        config.dram_latency,
        config.line_bytes,
    )
    chan, row, bank = dram.decompose(lid * MEMORY_ENTRY_BYTES)

    def _i64(column):
        return np.ascontiguousarray(column, dtype=np.int64)

    geometry = _Geometry()
    geometry.codes_ideal = _i64(codes_ideal)
    geometry.codes_packed = _i64(codes_packed)
    geometry.busy = np.ascontiguousarray(
        np.where(is_mem, 0, a).astype(np.float64) * config.issue_interval
    )
    geometry.lid = _i64(lid)
    geometry.mask = _i64(mask)
    geometry.l1flat = _i64(l1flat)
    geometry.l2set = _i64(l2set)
    geometry.chan = _i64(chan)
    geometry.row = _i64(row)
    geometry.bank = _i64(bank)
    geometry.count = count

    if host_base is not None:
        hbytes = b * SECTOR_BYTES
        geometry.hbytes = _i64(hbytes)
        geometry.hnum = _i64(hbytes + TRANSACTION_OVERHEAD_BYTES)
    else:
        geometry.hbytes = geometry.hnum = None

    # Metadata line geometry (consumed by BUDDY states only).
    meta = MetadataCache(
        config.metadata_cache_bytes,
        config.metadata_cache_ways,
        config.metadata_cache_slices,
    )
    meta_line = lid // ENTRIES_PER_METADATA_LINE
    mslice = meta_line % meta.slices
    mset = (meta_line // meta.slices) % meta.sets_per_slice
    geometry.mslot = _i64(mslice * meta.sets_per_slice + mset)
    geometry.mtag = _i64(meta_line // (meta.slices * meta.sets_per_slice))
    mchan, mrow, mbank = dram.decompose(meta_line * METADATA_LINE_BYTES)
    geometry.mchan = _i64(mchan)
    geometry.mrow = _i64(mrow)
    geometry.mbank = _i64(mbank)

    # Warp cursors and cache shapes (the event core builds its own
    # stamp tables; only the geometry crosses the boundary).
    geometry.warp_start = _i64(col.warp_starts)
    geometry.warp_sm = _i64(col.warp_sm)
    geometry.warp_mlp = _i64(col.warp_mlp)
    geometry.l1_sets_total = config.sm_count * l1_proto.sets
    geometry.l1_ways = l1_proto.ways
    geometry.l2_sets = l2_proto.sets
    geometry.l2_ways = l2_proto.ways
    geometry.meta_slots = meta.slices * meta.sets_per_slice
    geometry.meta_ways = meta.ways
    geometry.rows_cache = {}

    per_trace[key] = geometry
    return geometry


def _state_columns(
    trace: KernelTrace, state: CompressionState, config: GPUConfig
) -> tuple[_Geometry, _StateColumns]:
    key = (id(state), _machine_key(config))
    per_trace = _STATE_MEMO.get(trace)
    if per_trace is None:
        per_trace = {}
        _STATE_MEMO[trace] = per_trace
    hit = per_trace.get(key)
    if hit is not None and hit[0] is state:
        return hit[1], hit[2]

    geometry = _geometry_columns(trace, config)
    mode = state.mode
    ideal = mode is CompressionMode.IDEAL
    use_meta = mode is CompressionMode.BUDDY
    chan_bpc = config.dram_bytes_per_cycle_per_channel

    entries = state.entries
    entry = geometry.lid % entries
    dev_table = state.device_transfer_bytes_table()
    buddy_table = state.buddy_transfer_bytes_table()
    if ideal:
        dev = geometry.count * SECTOR_BYTES  # sectored fill
    else:
        dev = np.take(dev_table, entry)
    serv = dev / chan_bpc

    columns = _StateColumns()
    columns.codes = (
        geometry.codes_ideal if ideal else geometry.codes_packed
    )
    columns.entries = entries
    columns.use_meta = use_meta
    columns.ideal = ideal
    columns.dev = np.ascontiguousarray(dev, dtype=np.int64)
    columns.serv_hit = np.ascontiguousarray(serv + ROW_HIT_OVERHEAD)
    columns.serv_miss = np.ascontiguousarray(serv + ROW_MISS_OVERHEAD)
    if use_meta:
        bud = np.take(buddy_table, entry)
        columns.bud = np.ascontiguousarray(bud, dtype=np.int64)
        columns.bnum = np.ascontiguousarray(
            bud + TRANSACTION_OVERHEAD_BYTES, dtype=np.int64
        )
    else:
        columns.bud = columns.bnum = None

    # Writeback tables: per-entry for the compressed modes, dirty-mask
    # indexed for the sectored IDEAL baseline.
    if ideal:
        wb_bytes = np.array(
            [
                _POPCOUNT4[m] * SECTOR_BYTES
                for m in range(1 << SECTORS_PER_ENTRY)
            ],
            dtype=np.int64,
        )
        columns.wb_ideal_bytes = wb_bytes
        columns.wb_ideal_serv = wb_bytes / chan_bpc
        columns.wb_dev = columns.wb_serv = None
        columns.wb_bud = columns.wb_bnum = None
    else:
        columns.wb_ideal_bytes = columns.wb_ideal_serv = None
        columns.wb_dev = np.ascontiguousarray(dev_table, dtype=np.int64)
        columns.wb_serv = np.ascontiguousarray(dev_table / chan_bpc)
        columns.wb_bud = np.ascontiguousarray(buddy_table, dtype=np.int64)
        columns.wb_bnum = np.ascontiguousarray(
            buddy_table + TRANSACTION_OVERHEAD_BYTES, dtype=np.int64
        )
    columns.rows_cache = {}
    per_trace[key] = (state, geometry, columns)
    return geometry, columns


class _Tape:
    """A frozen exact-order event stream plus its replay constants.

    ``cols`` holds the compacted struct-of-arrays event stream — the
    12-column pack of :mod:`repro.gpusim._event_core` (kind, warp, SM,
    three float payloads, six int payloads), one row per scheduler
    pop, in the exact ``(ready, sequence)`` order of the recording
    run.  Each row carries everything the timing replay needs — the
    *resolved* resource charges (DRAM service incl. row overhead,
    channel index, metadata outcome, link payload bytes, writeback
    charges).  Cache and row-buffer outcomes are order-determined, so
    they are part of the tape, not of the replay.

    Columns replaced the historical ``events: list[tuple]``: at ~57
    bytes per event they cost a fraction of the tuple stream's boxed
    floats, which is what makes very long tapes safe to memoise
    (``tests/test_event_core.py`` pins the reduction).
    """

    __slots__ = (
        "cols", "warp_mlp", "warp_count", "sm_count", "channels",
        "fill_tail",
    )

    def __init__(self) -> None:
        self.cols = None

    @property
    def event_count(self) -> int:
        return 0 if self.cols is None else int(self.cols[0].shape[0])

    @property
    def nbytes(self) -> int:
        """Retained tape storage (the column buffers)."""
        if self.cols is None:
            return 0
        return sum(int(column.nbytes) for column in self.cols)


#: Tape event kinds (the ``kind`` column; payload per kind is the
#: column mapping documented in :mod:`repro.gpusim._event_core`).
_T_COMPUTE = 0      # f0=busy
_T_LOAD_HIT = 1     # f0=latency
_T_LOAD_FILL = 2    # f0=serv f1=mserv f2=wbserv
#                     i0=ch i1=mmiss i2=mch i3=bnum i4=wbch i5=wbbnum
_T_HOST_LOAD = 3    # i0=hnum
_T_STORE = 4        # (no payload)
_T_STORE_WB = 5     # f2=wbserv i4=wbch i5=wbbnum
_T_STORE_RMW = 6    # same payload as _T_LOAD_FILL
_T_HOST_STORE = 7   # i0=hnum
_T_WARP_END = 8     # (no payload)


class VectorizedSimulator:
    """The batched-event engine behind ``engine="vectorized"``."""

    def __init__(self, config: GPUConfig) -> None:
        self.config = config

    def run(self, trace: KernelTrace, state: CompressionState, _tape=None):
        """Simulate a kernel trace under a compression state.

        Returns a :class:`repro.gpusim.simulator.SimResult` whose
        traffic counters are identical to the legacy engine's and
        whose cycle count is bit-identical.

        ``_tape`` (internal, used by :class:`RelaxedSimulator`) is a
        :class:`_Tape` to record the event stream into while running.
        """
        from repro.gpusim.simulator import SimResult

        config = self.config
        geometry, columns = _state_columns(trace, state, config)
        ideal = columns.ideal
        use_meta = columns.use_meta
        record = _tape is not None

        chan_bpc = config.dram_bytes_per_cycle_per_channel
        fill_tail = (
            0 if ideal else config.decompression_latency
        ) + config.l2_latency
        meta_serv = METADATA_LINE_BYTES / chan_bpc
        warp_count = geometry.warp_sm.shape[0]

        arrays = (
            columns.codes, geometry.busy,
            geometry.lid, geometry.mask, geometry.l1flat, geometry.l2set,
            geometry.chan, geometry.row, geometry.bank,
            columns.dev, columns.serv_hit, columns.serv_miss,
            columns.bud, columns.bnum,
            geometry.hbytes, geometry.hnum,
            geometry.mtag, geometry.mslot,
            geometry.mchan, geometry.mrow, geometry.mbank,
            columns.wb_dev, columns.wb_serv,
            columns.wb_bud, columns.wb_bnum,
            columns.wb_ideal_bytes, columns.wb_ideal_serv,
            geometry.warp_start, geometry.warp_sm, geometry.warp_mlp,
        )
        iscalars = (
            warp_count, config.sm_count,
            config.dram_channels, BANKS_PER_CHANNEL,
            config.line_bytes, ROW_BYTES, columns.entries,
            geometry.l1_sets_total, geometry.l1_ways,
            geometry.l2_sets, geometry.l2_ways,
            geometry.meta_slots, geometry.meta_ways,
            int(ideal), int(use_meta), _FULL, METADATA_LINE_BYTES,
        )
        fscalars = (
            config.issue_interval,
            float(config.l1_latency),
            float(config.l2_latency),
            float(config.dram_latency),
            config.link.bytes_per_cycle(config.clock_hz),
            float(config.link.latency_cycles),
            float(fill_tail),
            meta_serv + ROW_HIT_OVERHEAD,
            meta_serv + ROW_MISS_OVERHEAD,
            ROW_HIT_OVERHEAD,
            ROW_MISS_OVERHEAD,
        )

        counters, tape_cols = _event_core.run_exact(
            arrays, iscalars, fscalars, record,
            geo_cache=geometry.rows_cache,
            state_cache=columns.rows_cache,
        )
        (
            cycles, l1_hits, l1_misses, l2_hits, l2_misses, dram_bytes,
            link_read_bytes, link_write_bytes, meta_hits, meta_misses,
            buddy_fills, demand_fills,
        ) = counters

        if record:
            _tape.cols = tape_cols
            _tape.warp_mlp = geometry.warp_mlp
            _tape.warp_count = warp_count
            _tape.sm_count = config.sm_count
            _tape.channels = config.dram_channels
            _tape.fill_tail = float(fill_tail)

        l1_total = l1_hits + l1_misses
        l2_total = l2_hits + l2_misses
        meta_total = meta_hits + meta_misses
        return SimResult(
            benchmark=trace.benchmark,
            mode=state.mode.value,
            cycles=cycles,
            instructions=trace.instruction_count,
            l1_hit_rate=l1_hits / l1_total if l1_total else 0.0,
            l2_hit_rate=l2_hits / l2_total if l2_total else 0.0,
            dram_bytes=dram_bytes,
            link_bytes=link_read_bytes + link_write_bytes,
            metadata_hit_rate=meta_hits / meta_total if meta_total else 0.0,
            buddy_fills=buddy_fills,
            demand_fills=demand_fills,
        )


# ---------------------------------------------------------------------------
# The relaxed-order engine: frozen-order tape replay across the link
# sweep.
# ---------------------------------------------------------------------------
def _resolve_tape(
    trace: KernelTrace,
    state: CompressionState,
    config,
    need_tape: bool,
):
    """The memoised (tape, reference result) for a design point.

    Recording runs the exact engine once at the reference interconnect
    (:data:`REFERENCE_LINK_GBPS`); the tape and the reference
    :class:`SimResult` are shared by every link bandwidth of the same
    ``(trace, state, machine geometry)``.

    Recording is lazy: a point only ever simulated *at* the reference
    interconnect (``need_tape=False``) runs the plain exact engine and
    memoises just the result, so reference-only relaxed runs cost the
    same as vectorized ones and hold no tape.  The first off-reference
    request upgrades the memo by re-running with recording on (the
    rerun is deterministic, so the reference result is unchanged).
    """
    link = config.link
    key = (id(state), _machine_key(config), link.latency_cycles, link.derate)
    per_trace = _TAPE_MEMO.get(trace)
    if per_trace is None:
        per_trace = {}
        _TAPE_MEMO[trace] = per_trace
    hit = per_trace.get(key)
    if hit is not None and hit[0] is state and (
        hit[1] is not None or not need_tape
    ):
        return hit[1], hit[2]
    if link.bandwidth_gbps == REFERENCE_LINK_GBPS:
        ref_config = config
    else:
        ref_config = replace(
            config, link=replace(link, bandwidth_gbps=REFERENCE_LINK_GBPS)
        )
    tape = _Tape() if need_tape else None
    if need_tape:
        global _TAPE_RECORDINGS
        _TAPE_RECORDINGS += 1
    reference = VectorizedSimulator(ref_config).run(trace, state, _tape=tape)
    per_trace[key] = (state, tape, reference)
    return tape, reference


def _replay_tape(tape: _Tape, config) -> float:
    """Recompute end-to-end cycles along a frozen event tape.

    Every traffic outcome (hits, fills, row-buffer state, victim
    choices) is baked into the tape; only the timing recurrences — SM
    issue slots, DRAM channel queues, the two link directions and each
    warp's memory-level-parallelism window — are recomputed with the
    requested interconnect.  At the recording interconnect this
    reproduces the exact engine's cycle count bit for bit (the replay
    uses the same float operations in the same order).
    """
    return _event_core.replay_tape(
        tape.cols,
        tape.warp_mlp,
        (tape.warp_count, tape.sm_count, tape.channels),
        (
            config.issue_interval,
            float(config.dram_latency),
            float(config.l2_latency),
            config.link.bytes_per_cycle(config.clock_hz),
            float(config.link.latency_cycles),
            tape.fill_tail,
        ),
    )


# ---------------------------------------------------------------------------
# Tape persistence: a stable serialized form plus the ``sim.tape``
# cache namespace, so warm runs and fresh worker processes load tapes
# instead of re-recording them.
# ---------------------------------------------------------------------------

#: Bump when the serialized tape layout changes; stale entries are
#: re-recorded (the format version is part of both the envelope and
#: the cache key, so old blobs are simply never addressed again).
TAPE_FORMAT_VERSION = 1

_TAPE_MAGIC = b"RTAP"
#: Header: magic, format version, then event count / warp count /
#: SM count / DRAM channel count as int64 and fill_tail as float64.
_TAPE_HEADER = struct.Struct("<4sBxxxqqqqd")
#: Column dtypes of the 12-column struct-of-arrays pack, in tape
#: order (kind, warp, SM, three float payloads, six int payloads).
_TAPE_COL_DTYPES = (
    "int8", "int32", "int32",
    "float64", "float64", "float64",
    "int32", "int32", "int32", "int32", "int32", "int32",
)

#: Modules whose source feeds the tape cache salt: everything that
#: determines tape *content* — trace synthesis, compression state
#: derivation, and the recording engine itself.  Link bandwidth and
#: ``verify=`` sampling are deliberately absent from the key: one
#: tape serves the whole link sweep at any verify rate.
_TAPE_SALT_MODULES = (
    "repro.compression.base",
    "repro.compression.bpc",
    "repro.core.controller",
    "repro.core.profiler",
    "repro.core.targets",
    "repro.gpusim._event_core",
    "repro.gpusim.vector_sim",
    "repro.workloads.traces",
)

#: Process-global tape cache (a :class:`repro.engine.cache.ResultCache`)
#: installed by the engine runner; ``None`` = in-memory memo only.
_TAPE_CACHE = None

#: Recently ensured tape envelopes by digest — the transport for
#: planner-prebuilt tapes into worker processes, and an in-process
#: dedupe across `_TAPE_MEMO` misses (the memo is id(state)-keyed, so
#: an equal-but-distinct state object cannot find it there).
_TAPE_BLOBS: OrderedDict[str, dict] = OrderedDict()
_TAPE_BLOBS_MAX = 8

_TAPE_RECORDINGS = 0


def serialize_tape(tape: _Tape) -> bytes:
    """Serialize a recorded tape to its stable byte form.

    Layout: the :data:`_TAPE_HEADER` (magic ``RTAP``, format version,
    counts, ``fill_tail``), the ``warp_mlp`` int64 column, then the 12
    event columns in pack order at their :data:`_TAPE_COL_DTYPES`.
    Everything is little-endian and C-contiguous, so equal tapes have
    equal bytes regardless of which core recorded them.
    """
    if tape.cols is None:
        raise ValueError("cannot serialize an unrecorded tape")
    header = _TAPE_HEADER.pack(
        _TAPE_MAGIC,
        TAPE_FORMAT_VERSION,
        tape.event_count,
        tape.warp_count,
        tape.sm_count,
        tape.channels,
        float(tape.fill_tail),
    )
    parts = [
        header,
        np.ascontiguousarray(tape.warp_mlp, dtype=np.int64).tobytes(),
    ]
    for column, dtype in zip(tape.cols, _TAPE_COL_DTYPES):
        parts.append(np.ascontiguousarray(column, dtype=dtype).tobytes())
    return b"".join(parts)


def deserialize_tape(blob: bytes) -> _Tape:
    """Rebuild a :class:`_Tape` from :func:`serialize_tape` bytes.

    Raises ``ValueError`` on a wrong magic, an unknown format version,
    or a byte count that disagrees with the header — a torn or foreign
    blob must never replay as a plausible-looking tape.
    """
    if len(blob) < _TAPE_HEADER.size:
        raise ValueError("tape blob shorter than its header")
    magic, version, n_events, warp_count, sm_count, channels, fill_tail = (
        _TAPE_HEADER.unpack_from(blob)
    )
    if magic != _TAPE_MAGIC:
        raise ValueError(f"not a serialized tape (magic {magic!r})")
    if version != TAPE_FORMAT_VERSION:
        raise ValueError(
            f"serialized tape format {version} != {TAPE_FORMAT_VERSION}"
        )
    if n_events < 0 or warp_count < 0:
        raise ValueError("serialized tape header has negative counts")
    row_bytes = sum(np.dtype(d).itemsize for d in _TAPE_COL_DTYPES)
    expected = _TAPE_HEADER.size + 8 * warp_count + n_events * row_bytes
    if len(blob) != expected:
        raise ValueError(
            f"serialized tape is {len(blob)} bytes, header implies "
            f"{expected}"
        )
    offset = _TAPE_HEADER.size
    warp_mlp = np.frombuffer(
        blob, dtype=np.int64, count=warp_count, offset=offset
    ).copy()
    offset += 8 * warp_count
    cols = []
    for dtype in _TAPE_COL_DTYPES:
        spec = np.dtype(dtype)
        cols.append(
            np.frombuffer(
                blob, dtype=spec, count=n_events, offset=offset
            ).copy()
        )
        offset += n_events * spec.itemsize
    tape = _Tape()
    tape.cols = tuple(cols)
    tape.warp_mlp = warp_mlp
    tape.warp_count = int(warp_count)
    tape.sm_count = int(sm_count)
    tape.channels = int(channels)
    tape.fill_tail = float(fill_tail)
    return tape


def tape_cache_key(benchmark, trace_config, profile_config, config):
    """The ``sim.tape`` cache address of one recorded tape.

    Keyed by everything that determines tape content — the benchmark,
    the trace/profile configuration that synthesises its accesses and
    compression state, the machine geometry (:func:`_machine_key`) and
    the link *latency/derate* — salted with the source of
    :data:`_TAPE_SALT_MODULES`.  Link **bandwidth** and ``verify=``
    sampling are excluded: the whole Fig. 11 sweep, at any verify
    rate, shares one tape.
    """
    from repro.engine.cache import CacheKey, code_salt, param_digest

    digest = param_digest(
        "sim.tape",
        {
            "format": TAPE_FORMAT_VERSION,
            "benchmark": benchmark,
            "trace_config": trace_config,
            "profile_config": profile_config,
            "machine": _machine_key(config),
            "link_latency": config.link.latency_cycles,
            "link_derate": config.link.derate,
        },
        code_salt(_TAPE_SALT_MODULES),
    )
    return CacheKey("sim.tape", digest)


def set_tape_cache(cache):
    """Install the persistent tape cache; returns the previous one."""
    global _TAPE_CACHE
    previous = _TAPE_CACHE
    _TAPE_CACHE = cache
    return previous


def tape_recording_count() -> int:
    """Process-lifetime count of exact-order tape recordings."""
    return _TAPE_RECORDINGS


def seed_tape_preload(entries) -> None:
    """Seed the in-process envelope store (digest -> envelope).

    The runner calls this in worker processes with the envelopes the
    planner prebuilt in stage 0, so cacheless pools replay instead of
    re-recording.
    """
    for digest, envelope in (entries or {}).items():
        _remember_envelope(digest, envelope)


def _remember_envelope(digest: str, envelope: dict) -> None:
    _TAPE_BLOBS[digest] = envelope
    _TAPE_BLOBS.move_to_end(digest)
    while len(_TAPE_BLOBS) > _TAPE_BLOBS_MAX:
        _TAPE_BLOBS.popitem(last=False)


def _tape_envelope(tape: _Tape, reference) -> dict:
    return {
        "format": TAPE_FORMAT_VERSION,
        "tape": serialize_tape(tape),
        "reference": reference,
    }


def ensure_tape(key, trace, state, config) -> dict:
    """Get-or-record the tape envelope for one design point.

    Resolution order: the live ``_TAPE_MEMO`` (write-through to the
    persistent cache if it holds a tape the cache lacks), the
    preloaded envelope store, the persistent ``sim.tape`` cache
    (deserializing also seeds the memo, so the subsequent replays run
    off the in-memory tape), and finally an exact-order recording.
    Returns the ``{"format", "tape", "reference"}`` envelope.
    """
    link = config.link
    memo_key = (
        id(state), _machine_key(config), link.latency_cycles, link.derate
    )
    per_trace = _TAPE_MEMO.get(trace)
    hit = per_trace.get(memo_key) if per_trace is not None else None
    if hit is not None and hit[0] is state and hit[1] is not None:
        envelope = _tape_envelope(hit[1], hit[2])
        _remember_envelope(key.digest, envelope)
        if _TAPE_CACHE is not None and not _TAPE_CACHE.contains(key):
            _TAPE_CACHE.put(key, envelope)
        return envelope

    envelope = _TAPE_BLOBS.get(key.digest)
    if envelope is None and _TAPE_CACHE is not None:
        from repro.engine.cache import CacheMiss

        try:
            envelope = _TAPE_CACHE.get(key)
        except CacheMiss:
            envelope = None
    if envelope is not None and envelope.get("format") != TAPE_FORMAT_VERSION:
        envelope = None  # format drift: re-record

    if envelope is not None:
        tape = deserialize_tape(envelope["tape"])
        reference = envelope["reference"]
        if per_trace is None:
            per_trace = {}
            _TAPE_MEMO[trace] = per_trace
        per_trace[memo_key] = (state, tape, reference)
        _remember_envelope(key.digest, envelope)
        return envelope

    tape, reference = _resolve_tape(trace, state, config, need_tape=True)
    envelope = _tape_envelope(tape, reference)
    _remember_envelope(key.digest, envelope)
    if _TAPE_CACHE is not None:
        _TAPE_CACHE.put(key, envelope)
    return envelope


def replay_links(
    trace,
    state,
    config,
    links,
    verify: float = 0.0,
    tolerance: float | None = None,
    cache_key=None,
):
    """Run the relaxed engine at several link bandwidths in one pass.

    The batched twin of looping :class:`RelaxedSimulator` over
    ``config.with_link(link)`` — bit-identical to that loop, because
    every non-reference link replays the same frozen tape through
    :func:`repro.gpusim._event_core.replay_tape_many` (itself
    bit-identical per link to serial ``replay_tape``).  ``cache_key``
    (from :func:`tape_cache_key`) routes the tape through
    :func:`ensure_tape` first, so persistent-cache hits and planner
    preloads skip the recording.  ``verify`` keeps its per-point
    deterministic sampling: each link decides independently, exactly
    as the serial loop did.  Returns one ``SimResult`` per requested
    link, in order.
    """
    links = [float(link) for link in links]
    need_tape = any(link != REFERENCE_LINK_GBPS for link in links)
    if need_tape and cache_key is not None:
        ensure_tape(cache_key, trace, state, config)
    tape, reference = _resolve_tape(trace, state, config, need_tape=need_tape)

    off_reference = [
        link for link in links if link != REFERENCE_LINK_GBPS
    ]
    cycles_by_link = {}
    if off_reference:
        packs = []
        for link in off_reference:
            link_config = config.with_link(link)
            packs.append(
                (
                    link_config.issue_interval,
                    float(link_config.dram_latency),
                    float(link_config.l2_latency),
                    link_config.link.bytes_per_cycle(link_config.clock_hz),
                    float(link_config.link.latency_cycles),
                    tape.fill_tail,
                )
            )
        replayed = _event_core.replay_tape_many(
            tape.cols,
            tape.warp_mlp,
            (tape.warp_count, tape.sm_count, tape.channels),
            packs,
        )
        cycles_by_link = dict(zip(off_reference, replayed))

    results = []
    for link in links:
        at_reference = link == REFERENCE_LINK_GBPS
        if at_reference:
            result = reference
        else:
            result = replace(reference, cycles=cycles_by_link[link])
        link_config = config.with_link(link)
        if verify and _verify_selected(trace, state, link_config, verify):
            from repro.gpusim.simulator import DependencyDrivenSimulator

            oracle = DependencyDrivenSimulator(link_config, "legacy").run(
                trace, state
            )
            check_relaxed_contract(
                result, oracle, exact=at_reference, tolerance=tolerance
            )
        results.append(result)
    return results


#: Counters the relaxed contract compares against the oracle, with
#: the byte quantum of one event (a whole-entry transfer plus link
#: overhead for the byte counters; a single event for the fills).
_CONTRACT_COUNTERS = (
    ("dram_bytes", MEMORY_ENTRY_BYTES + TRANSACTION_OVERHEAD_BYTES),
    ("link_bytes", MEMORY_ENTRY_BYTES + TRANSACTION_OVERHEAD_BYTES),
    ("buddy_fills", 1),
    ("demand_fills", 1),
)
_CONTRACT_RATES = ("l1_hit_rate", "l2_hit_rate", "metadata_hit_rate")


def check_relaxed_contract(
    relaxed, oracle, exact: bool, tolerance: float | None = None
) -> None:
    """Assert a relaxed result against the legacy oracle's.

    ``exact`` (reference interconnect, single-warp traces, provably
    non-contending traces) demands bit-identical results; otherwise
    counters must sit within :data:`RELAXED_COUNTER_TOLERANCE`
    relative — with an absolute floor of
    :data:`RELAXED_COUNTER_FLOOR_EVENTS` transfer events, the scale
    of the oracle's own link-to-link ordering noise — and cycles
    within :data:`RELAXED_CYCLE_TOLERANCE`.  A non-``None``
    ``tolerance`` (from :class:`repro.gpusim.engine_spec.EngineSpec`)
    replaces the pinned pair at its pinned ratio: cycles within
    ``tolerance``, counters within ``2 * tolerance``.  Raises
    :class:`RelaxedVerificationError` on the first violation.
    """
    cycle_tolerance = (
        RELAXED_CYCLE_TOLERANCE if tolerance is None else tolerance
    )
    counter_tolerance = (
        RELAXED_COUNTER_TOLERANCE if tolerance is None else 2.0 * tolerance
    )
    if exact:
        for field in (
            ("benchmark", "mode", "cycles", "instructions")
            + tuple(name for name, _ in _CONTRACT_COUNTERS)
            + _CONTRACT_RATES
        ):
            got = getattr(relaxed, field)
            want = getattr(oracle, field)
            if got != want:
                raise RelaxedVerificationError(
                    f"relaxed engine diverged from the oracle on "
                    f"{field}: {got!r} != {want!r} (exact point)"
                )
        return
    if (relaxed.benchmark, relaxed.mode, relaxed.instructions) != (
        oracle.benchmark, oracle.mode, oracle.instructions
    ):
        raise RelaxedVerificationError(
            "relaxed engine simulated a different design point than "
            f"the oracle: {relaxed!r} vs {oracle!r}"
        )
    deviation = abs(relaxed.cycles - oracle.cycles) / oracle.cycles
    if deviation > cycle_tolerance:
        raise RelaxedVerificationError(
            f"relaxed cycles {relaxed.cycles} deviate from oracle "
            f"{oracle.cycles} by {deviation:.2%} "
            f"(> {cycle_tolerance:.2%})"
        )
    for field, quantum in _CONTRACT_COUNTERS:
        got = getattr(relaxed, field)
        want = getattr(oracle, field)
        slack = max(
            RELAXED_COUNTER_FLOOR_EVENTS * quantum,
            counter_tolerance * want,
        )
        if abs(got - want) > slack:
            raise RelaxedVerificationError(
                f"relaxed {field} {got} deviates from oracle {want} "
                f"by more than {counter_tolerance:.2%} "
                f"(+{RELAXED_COUNTER_FLOOR_EVENTS}-event floor)"
            )
    for field in _CONTRACT_RATES:
        got = getattr(relaxed, field)
        want = getattr(oracle, field)
        if abs(got - want) > counter_tolerance:
            raise RelaxedVerificationError(
                f"relaxed {field} {got:.4f} deviates from oracle "
                f"{want:.4f} by more than "
                f"{counter_tolerance:.2%} absolute"
            )


def _verify_selected(trace, state, config, fraction: float) -> bool:
    """Deterministic sampling for the ``verify=`` escape hatch.

    The decision hashes the design point's stable identity (not object
    ids), so a given point is either always or never cross-checked for
    a given fraction — reruns and parallel workers agree.
    """
    if fraction >= 1.0:
        return True
    key = (
        trace.benchmark,
        trace.instruction_count,
        state.mode.value,
        int(state.entries),
        config.link.bandwidth_gbps,
        config.sm_count,
        config.warps_per_sm,
    )
    digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64 < fraction


class RelaxedSimulator:
    """The relaxed-order engine behind ``engine="relaxed"``.

    One exact-order recording at :data:`REFERENCE_LINK_GBPS` per
    ``(trace, state, machine geometry)``; every other interconnect
    bandwidth replays the frozen tape.  ``verify`` is the sampled
    escape hatch: the fraction of runs (deterministically chosen per
    design point) that are cross-checked against the legacy oracle at
    full fidelity via :func:`check_relaxed_contract`; ``tolerance``
    optionally overrides that contract's pinned tolerances.
    """

    def __init__(
        self,
        config: GPUConfig,
        verify: float = 0.0,
        tolerance: float | None = None,
    ) -> None:
        self.config = config
        self.verify = verify
        self.tolerance = tolerance

    def run(self, trace: KernelTrace, state: CompressionState):
        config = self.config
        at_reference = (
            config.link.bandwidth_gbps == REFERENCE_LINK_GBPS
        )
        tape, reference = _resolve_tape(
            trace, state, config, need_tape=not at_reference
        )
        if at_reference:
            result = reference
        else:
            result = replace(
                reference, cycles=_replay_tape(tape, config)
            )
        if self.verify and _verify_selected(
            trace, state, config, self.verify
        ):
            from repro.gpusim.simulator import DependencyDrivenSimulator

            oracle = DependencyDrivenSimulator(config, "legacy").run(
                trace, state
            )
            check_relaxed_contract(
                result, oracle, exact=at_reference, tolerance=self.tolerance
            )
        return result
