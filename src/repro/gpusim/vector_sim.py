"""Vectorized batched-event core for the dependency-driven simulator.

The legacy engine (:mod:`repro.gpusim.simulator`) resolves every
instruction with a stack of Python method calls — heap pop, sector
mask arithmetic, ``OrderedDict`` cache probes, per-access
``CompressionState`` lookups, DRAM channel decomposition.  Profiling
shows those per-access recomputations dominating the Fig. 10/11 hot
path, yet almost all of them are static for a given ``(trace, state,
machine)``: the address never changes, so neither do the sector mask,
the cache set, the DRAM channel/row/bank, the metadata line, the
compressed transfer sizes or the per-hop service times.

This engine therefore splits the simulation into:

1. **Columnar resolution** — every per-access quantity is computed
   for the *whole trace at once* with array operations over the
   :class:`ColumnarTrace` columns and the :class:`CompressionState`
   entry tables
   (:meth:`~repro.gpusim.compression.CompressionState.device_transfer_bytes_table`
   /
   :meth:`~repro.gpusim.compression.CompressionState.buddy_transfer_bytes_table`),
   using the batched geometry helpers (:meth:`ChannelSet.decompose`,
   :meth:`VectorSectoredCache.decompose`).  Trace/machine geometry
   (:func:`_geometry_columns`) is shared by every compression state;
   the per-state tables (:func:`_state_columns`) are shared by every
   link bandwidth — so the Fig. 11 sweep resolves each benchmark's
   accesses once, not once per design point.
2. **An event core** (:meth:`VectorizedSimulator.run`) that advances
   ready warps in the *exact* ``(ready time, sequence)`` order of the
   legacy scheduler, with each event reduced to a row-tuple unpack
   over the prepared columns and a handful of float operations.
   Cache, DRAM and interconnect state transitions are inherently
   order-dependent, so each round's accesses resolve sequentially —
   but all the per-access *derivation* already happened in step 1.

The result is the oracle contract the studies rely on: identical
integer traffic counters (``dram_bytes``, ``link_bytes``, fills, hit
counts) and bit-identical cycle counts to the legacy engine, at a
fraction of the wall-clock (``bench_fig11_performance.py`` pins the
speedup; ``tests/test_vector_sim.py`` pins the equivalence).

Why the columns are layered the way they are
--------------------------------------------

The resolution tables deliberately split along reuse boundaries:

* :func:`_geometry_columns` depends only on ``(trace, machine
  geometry)`` — addresses, sector masks, cache sets, DRAM
  channel/row/bank coordinates, metadata-line slots.  Every
  compression state of a trace shares one copy, because compression
  never moves an access, it only changes how many bytes the access
  transfers.
* :func:`_state_columns` adds the per-``CompressionState`` tables —
  compressed device/buddy transfer sizes and the per-hop service
  times derived from them.  These are keyed without the interconnect
  (:func:`_machine_key`): link bandwidth only scales the runtime
  divisions inside the event core, so one per-state resolution
  serves the whole Fig. 11 link sweep.

The relaxed engine (below) adds a third layer with the same shape:
the **event tape** recorded by one exact-order run is keyed per
``(trace, state, machine geometry)`` and replayed at every link
bandwidth of the sweep.

The relaxed engine
------------------

``engine="relaxed"`` (:class:`RelaxedSimulator`) trades exact
scheduling for wall-clock by *freezing the event order*.  One
exact-order pass at the canonical reference interconnect
(:data:`REFERENCE_LINK_GBPS`, the paper's six-brick NVLink2 point that
Fig. 11 normalises against) records a compact per-event tape — who
issued, what it hit, which DRAM channel/row service it consumed,
how many buddy bytes moved.  Every other link bandwidth *replays*
that tape: the order and all traffic outcomes are frozen, and only
the timing recurrences (SM issue slots, channel queues, link
occupancy, warp memory-level parallelism) are recomputed.

The contract this buys (pinned by ``tests/test_relaxed_sim.py``):

* at the reference interconnect the relaxed engine *is* the exact
  engine — bit-identical counters and cycles;
* traffic counters are link-invariant by construction, and within
  :data:`RELAXED_COUNTER_TOLERANCE` of the legacy oracle at every
  other link (the oracle's own counters drift by a similar margin
  across the sweep, because scheduling feeds back into cache order);
* cycles are within :data:`RELAXED_CYCLE_TOLERANCE` everywhere, and
  *exact* where order is provably immaterial — single-warp traces,
  traces whose warps share no memory-system resources, and any
  IDEAL-mode trace without host traffic (no link dependence at all);
* ``verify=`` cross-checks a deterministic sample of runs against
  the legacy oracle at full fidelity and raises
  :class:`RelaxedVerificationError` on a contract violation.
"""

from __future__ import annotations

import gc
import hashlib
import weakref
from dataclasses import replace
from heapq import heappop, heappushpop
from itertools import repeat

import numpy as np

from repro.core.metadata_cache import MetadataCache
from repro.gpusim.compression import CompressionMode, CompressionState
from repro.gpusim.config import GPUConfig
from repro.gpusim.dram import (
    BANKS_PER_CHANNEL,
    ROW_BYTES,
    ROW_HIT_OVERHEAD,
    ROW_MISS_OVERHEAD,
    ChannelSet,
)
from repro.gpusim.interconnect import TRANSACTION_OVERHEAD_BYTES
from repro.gpusim.trace import KernelTrace, Op
from repro.gpusim.vector_cache import VectorSectoredCache
from repro.units import (
    ENTRIES_PER_METADATA_LINE,
    MEMORY_ENTRY_BYTES,
    METADATA_LINE_BYTES,
    SECTOR_BYTES,
    SECTORS_PER_ENTRY,
)

#: Event codes: compute / local load / local store / host load /
#: host store / local store needing the read-modify-write check.
_COMPUTE, _LOAD, _STORE, _HOST_LOAD, _HOST_STORE, _STORE_RMW = range(6)

#: Dirty-sector population count for 4-bit masks (sectored writebacks).
_POPCOUNT4 = [bin(mask).count("1") for mask in range(16)]

_FULL = (1 << SECTORS_PER_ENTRY) - 1

#: The canonical interconnect the relaxed engine resolves traffic at:
#: six NVLink2 bricks, the point Fig. 11 normalises against.  Tape
#: order (and therefore every traffic counter) is frozen at this
#: bandwidth and shared by the whole link sweep.
REFERENCE_LINK_GBPS = 150.0

#: Pinned relaxed-engine tolerances.  Off the reference interconnect,
#: the frozen order deviates from the oracle's link-specific schedule;
#: the observed drift on the Fig. 10/11 grids is well under these
#: bounds (see tests/test_relaxed_sim.py, which sweeps the full grid
#: and asserts the margins).  Counters get a relative bound plus an
#: absolute floor of :data:`RELAXED_COUNTER_FLOOR_EVENTS` transfer
#: events: a benchmark with almost no buddy traffic (370.bt moves a
#: few dozen buddy fills) sees the oracle's *own* counters wander by
#: a handful of borderline evictions between link points, so a purely
#: relative bound on a tiny counter would be noise-tight.
RELAXED_CYCLE_TOLERANCE = 0.01
RELAXED_COUNTER_TOLERANCE = 0.02
RELAXED_COUNTER_FLOOR_EVENTS = 16


class RelaxedVerificationError(AssertionError):
    """A relaxed-engine result broke its contract against the oracle."""


#: Per-trace column memos.  Values hold their states/configs strongly
#: (keeping ids valid); entries die with their trace.
_GEOMETRY_MEMO: "weakref.WeakKeyDictionary[KernelTrace, dict]" = (
    weakref.WeakKeyDictionary()
)
_STATE_MEMO: "weakref.WeakKeyDictionary[KernelTrace, dict]" = (
    weakref.WeakKeyDictionary()
)
#: Relaxed-engine tape memo: (state id, machine key, link latency,
#: link derate) -> (state, tape, reference SimResult).
_TAPE_MEMO: "weakref.WeakKeyDictionary[KernelTrace, dict]" = (
    weakref.WeakKeyDictionary()
)


def _machine_key(config: GPUConfig):
    """Machine geometry key: everything except the interconnect.

    Link bandwidth only scales runtime divisions, so one column
    resolution serves the whole Fig. 11 link sweep.
    """
    return replace(config, link=None)


class _Geometry:
    """Per-(trace, machine) columns shared by every compression state."""

    __slots__ = (
        "codes_ideal", "codes_packed", "busy", "probe_rows",
        "host_rows", "meta_rows", "lid", "l2set", "chan", "row", "bank",
        "count", "mask",
    )


class _StateColumns:
    """Per-(trace, state, machine) resolution tables."""

    __slots__ = (
        "codes", "fill_rows", "entries", "use_meta", "ideal",
        "wb_dev", "wb_serv", "wb_bud", "wb_bnum",
        "wb_ideal_bytes", "wb_ideal_serv",
    )


def _geometry_columns(trace: KernelTrace, config: GPUConfig) -> _Geometry:
    key = _machine_key(config)
    per_trace = _GEOMETRY_MEMO.get(trace)
    if per_trace is None:
        per_trace = {}
        _GEOMETRY_MEMO[trace] = per_trace
    geometry = per_trace.get(key)
    if geometry is not None:
        return geometry

    col = trace.columnar()
    ops = col.ops.astype(np.int64)
    a = col.a
    b = col.b
    is_mem = ops != int(Op.COMPUTE)
    host_base = (
        trace.footprint_bytes if trace.host_traffic_fraction > 0 else None
    )
    host = (
        (a >= host_base) & is_mem
        if host_base is not None
        else np.zeros(ops.size, dtype=bool)
    )

    # Event codes for the sectored baseline and the compressed modes
    # (the latter mark partial local stores for the RMW check).
    codes_ideal = ops.copy()
    codes_ideal[host & (ops == int(Op.LOAD))] = _HOST_LOAD
    codes_ideal[host & (ops == int(Op.STORE))] = _HOST_STORE
    codes_packed = codes_ideal.copy()
    codes_packed[
        (ops == int(Op.STORE)) & (b < SECTORS_PER_ENTRY) & ~host
    ] = _STORE_RMW

    # Address geometry: line ids, sector masks, cache sets, DRAM
    # coordinates — one batched decompose per trace.
    lid = a // MEMORY_ENTRY_BYTES
    first = (a % MEMORY_ENTRY_BYTES) // SECTOR_BYTES
    count = np.minimum(b, SECTORS_PER_ENTRY - first)
    mask = ((1 << count) - 1) << first
    l1_proto = VectorSectoredCache(
        config.l1_bytes, config.l1_ways, config.line_bytes
    )
    l2_proto = VectorSectoredCache(
        config.l2_bytes, config.l2_ways, config.line_bytes
    )
    _, l1set = l1_proto.decompose(a)
    _, l2set = l2_proto.decompose(a)
    # The owning SM is fixed per warp, so the flat per-(SM, set) L1
    # index resolves at build time too.
    row_counts = np.diff(col.warp_starts)
    row_sm = np.repeat(col.warp_sm.astype(np.int64), row_counts)
    l1flat = row_sm * l1_proto.sets + l1set

    dram = ChannelSet(
        config.dram_channels,
        config.dram_bytes_per_cycle_per_channel,
        config.dram_latency,
        config.line_bytes,
    )
    chan, row, bank = dram.decompose(lid * MEMORY_ENTRY_BYTES)

    geometry = _Geometry()
    geometry.codes_ideal = codes_ideal.tolist()
    geometry.codes_packed = codes_packed.tolist()
    geometry.busy = (
        np.where(is_mem, 0, a).astype(np.float64) * config.issue_interval
    ).tolist()
    geometry.probe_rows = list(
        zip(lid.tolist(), mask.tolist(), l1flat.tolist(), l2set.tolist())
    )
    geometry.lid = lid
    geometry.mask = mask
    geometry.l2set = l2set
    geometry.chan = chan
    geometry.row = row
    geometry.bank = bank
    geometry.count = count

    if host_base is not None:
        hbytes = b * SECTOR_BYTES
        geometry.host_rows = list(
            zip(
                hbytes.tolist(),
                (hbytes + TRANSACTION_OVERHEAD_BYTES).tolist(),
            )
        )
    else:
        geometry.host_rows = None

    # Metadata line geometry (consumed by BUDDY states only).
    meta = MetadataCache(
        config.metadata_cache_bytes,
        config.metadata_cache_ways,
        config.metadata_cache_slices,
    )
    meta_line = lid // ENTRIES_PER_METADATA_LINE
    mslice = meta_line % meta.slices
    mset = (meta_line // meta.slices) % meta.sets_per_slice
    mslot = mslice * meta.sets_per_slice + mset
    mtag = meta_line // (meta.slices * meta.sets_per_slice)
    mchan, mrow, mbank = dram.decompose(meta_line * METADATA_LINE_BYTES)
    geometry.meta_rows = list(
        zip(
            mtag.tolist(), mslot.tolist(), mchan.tolist(),
            mrow.tolist(), mbank.tolist(),
        )
    )
    per_trace[key] = geometry
    return geometry


def _state_columns(
    trace: KernelTrace, state: CompressionState, config: GPUConfig
) -> tuple[_Geometry, _StateColumns]:
    key = (id(state), _machine_key(config))
    per_trace = _STATE_MEMO.get(trace)
    if per_trace is None:
        per_trace = {}
        _STATE_MEMO[trace] = per_trace
    hit = per_trace.get(key)
    if hit is not None and hit[0] is state:
        return hit[1], hit[2]

    geometry = _geometry_columns(trace, config)
    mode = state.mode
    ideal = mode is CompressionMode.IDEAL
    use_meta = mode is CompressionMode.BUDDY
    chan_bpc = config.dram_bytes_per_cycle_per_channel

    entries = state.entries
    entry = geometry.lid % entries
    dev_table = state.device_transfer_bytes_table()
    buddy_table = state.buddy_transfer_bytes_table()
    if ideal:
        dev = geometry.count * SECTOR_BYTES  # sectored fill
        fmask = geometry.mask
    else:
        dev = np.take(dev_table, entry)
        fmask = repeat(_FULL)
    serv = dev / chan_bpc
    serv_hit = (serv + ROW_HIT_OVERHEAD).tolist()
    serv_miss = (serv + ROW_MISS_OVERHEAD).tolist()
    dev_list = dev.tolist()
    chan_list = geometry.chan.tolist()
    row_list = geometry.row.tolist()
    bank_list = geometry.bank.tolist()
    fmask_iter = fmask.tolist() if isinstance(fmask, np.ndarray) else fmask

    columns = _StateColumns()
    columns.codes = (
        geometry.codes_ideal if ideal else geometry.codes_packed
    )
    columns.entries = entries
    columns.use_meta = use_meta
    columns.ideal = ideal
    if use_meta:
        bud = np.take(buddy_table, entry)
        columns.fill_rows = list(
            zip(
                dev_list, serv_hit, serv_miss, chan_list, row_list,
                bank_list, fmask_iter, bud.tolist(),
                (bud + TRANSACTION_OVERHEAD_BYTES).tolist(),
            )
        )
    else:
        columns.fill_rows = list(
            zip(
                dev_list, serv_hit, serv_miss, chan_list, row_list,
                bank_list, fmask_iter,
            )
        )

    # Writeback tables: per-entry for the compressed modes, dirty-mask
    # indexed for the sectored IDEAL baseline.
    if ideal:
        wb_bytes = [
            _POPCOUNT4[m] * SECTOR_BYTES for m in range(1 << SECTORS_PER_ENTRY)
        ]
        columns.wb_ideal_bytes = wb_bytes
        columns.wb_ideal_serv = [n / chan_bpc for n in wb_bytes]
        columns.wb_dev = columns.wb_serv = None
        columns.wb_bud = columns.wb_bnum = None
    else:
        columns.wb_ideal_bytes = columns.wb_ideal_serv = None
        columns.wb_dev = dev_table.tolist()
        columns.wb_serv = (dev_table / chan_bpc).tolist()
        columns.wb_bud = buddy_table.tolist()
        columns.wb_bnum = (buddy_table + TRANSACTION_OVERHEAD_BYTES).tolist()
    per_trace[key] = (state, geometry, columns)
    return geometry, columns


class _Tape:
    """A frozen exact-order event stream plus its replay constants.

    ``events`` holds one tuple per scheduler pop, in the exact
    ``(ready, sequence)`` order of the recording run.  Each tuple
    starts with an event-kind code followed by everything the timing
    replay needs — warp, home SM, and the *resolved* resource charges
    (DRAM service incl. row overhead, channel index, metadata
    outcome, link payload bytes, writeback charges).  Cache and
    row-buffer outcomes are order-determined, so they are part of the
    tape, not of the replay.
    """

    __slots__ = (
        "events", "warp_mlp", "warp_count", "sm_count", "channels",
        "fill_tail",
    )

    def __init__(self) -> None:
        self.events: list[tuple] = []


#: Tape event kinds (first tuple element).
_T_COMPUTE = 0      # (k, w, sm, busy)
_T_LOAD_HIT = 1     # (k, w, sm, latency)
_T_LOAD_FILL = 2    # (k, w, sm, serv, ch, mmiss, mserv, mch, bnum,
#                      wbserv, wbch, wbbnum)
_T_HOST_LOAD = 3    # (k, w, sm, hnum)
_T_STORE = 4        # (k, w, sm)
_T_STORE_WB = 5     # (k, w, sm, wbserv, wbch, wbbnum)
_T_STORE_RMW = 6    # (k, w, sm, serv, ch, mmiss, mserv, mch, bnum,
#                      wbserv, wbch, wbbnum)
_T_HOST_STORE = 7   # (k, w, sm, hnum)
_T_WARP_END = 8     # (k, w)


class VectorizedSimulator:
    """The batched-event engine behind ``engine="vectorized"``."""

    def __init__(self, config: GPUConfig) -> None:
        self.config = config

    def run(self, trace: KernelTrace, state: CompressionState, _tape=None):
        """Simulate a kernel trace under a compression state.

        Returns a :class:`repro.gpusim.simulator.SimResult` whose
        traffic counters are identical to the legacy engine's and
        whose cycle count is bit-identical.

        ``_tape`` (internal, used by :class:`RelaxedSimulator`) is a
        :class:`_Tape` to record the event stream into while running.
        """
        from repro.gpusim.simulator import SimResult

        config = self.config
        geometry, columns = _state_columns(trace, state, config)
        col = trace.columnar()
        ideal = columns.ideal
        use_meta = columns.use_meta
        record = _tape is not None
        if record:
            tappend = _tape.events.append

        # -- machine constants ----------------------------------------
        interval = config.issue_interval
        l1_lat = config.l1_latency
        l2_lat = config.l2_latency
        dram_lat = config.dram_latency
        link_bpc = config.link.bytes_per_cycle(config.clock_hz)
        link_lat = config.link.latency_cycles
        fill_tail = (0 if ideal else config.decompression_latency) + l2_lat
        row_hit_ov = ROW_HIT_OVERHEAD
        row_miss_ov = ROW_MISS_OVERHEAD
        line_bytes = config.line_bytes
        row_bytes = ROW_BYTES
        banks = BANKS_PER_CHANNEL
        channels = config.dram_channels
        chan_bpc = config.dram_bytes_per_cycle_per_channel
        meta_serv_hit = METADATA_LINE_BYTES / chan_bpc + row_hit_ov
        meta_serv_miss = METADATA_LINE_BYTES / chan_bpc + row_miss_ov

        # -- column locals --------------------------------------------
        codes = columns.codes
        busy_col = geometry.busy
        probe_rows = geometry.probe_rows
        host_rows = geometry.host_rows
        meta_rows = geometry.meta_rows
        fill_rows = columns.fill_rows
        entries = columns.entries
        wb_dev = columns.wb_dev
        wb_serv = columns.wb_serv
        wb_bud = columns.wb_bud
        wb_bnum = columns.wb_bnum
        wb_ideal_bytes = columns.wb_ideal_bytes
        wb_ideal_serv = columns.wb_ideal_serv

        # -- memory-system state --------------------------------------
        l1s = [
            VectorSectoredCache(
                config.l1_bytes, config.l1_ways, config.line_bytes
            )
            for _ in range(config.sm_count)
        ]
        l2 = VectorSectoredCache(
            config.l2_bytes, config.l2_ways, config.line_bytes
        )
        l1_ways = l1s[0].ways
        l2_ways = l2.ways
        l1_masks: list[dict] = []
        for cache in l1s:
            l1_masks.extend(cache.set_masks)
        l2_masks = l2.set_masks
        l2_dirty = l2.set_dirty

        metadata = MetadataCache(
            config.metadata_cache_bytes,
            config.metadata_cache_ways,
            config.metadata_cache_slices,
        )
        meta_flat = [
            metadata._sets[s][t]
            for s in range(metadata.slices)
            for t in range(metadata.sets_per_slice)
        ]
        meta_ways = metadata.ways

        next_free = [0.0] * channels
        open_rows = [-1] * (channels * banks)
        link_read_free = 0.0
        link_write_free = 0.0

        # -- counters --------------------------------------------------
        l1_hits = l1_misses = 0
        l2_hits = l2_misses = 0
        dram_bytes = dram_requests = dram_row_hits = 0
        link_read_bytes = link_write_bytes = 0
        meta_hits = meta_misses = 0
        buddy_fills = demand_fills = 0
        rmw_counter = 0

        # NOTE: the event core below is fully inlined — no closures.
        # A nested helper capturing the loop's counters would turn
        # them (and every other shared local) into cell variables,
        # degrading the hottest loads/stores from LOAD_FAST to
        # LOAD_DEREF across the whole loop (~2.5x slower core).  The
        # writeback and RMW-fill blocks are therefore spelled out at
        # each of their call sites.

        # -- warp state ------------------------------------------------
        starts = col.warp_starts.tolist()
        warp_sm = col.warp_sm.tolist()
        warp_mlp = col.warp_mlp.tolist()
        warp_count = len(warp_sm)
        ips = starts[:warp_count]
        ends = starts[1:]
        outstanding: list[list] = [[] for _ in range(warp_count)]
        out_heads = [0] * warp_count
        sm_free = [0.0] * config.sm_count
        heap = [(0.0, w, w) for w in range(warp_count)]
        sequence = warp_count
        finish = 0.0
        pushpop = heappushpop

        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            # -- the event core ---------------------------------------
            event = heappop(heap) if heap else None
            while event is not None:
                ready, _, w = event
                i = ips[w]
                if i == ends[w]:
                    out = outstanding[w]
                    head = out_heads[w]
                    if len(out) > head:
                        last = max(out[head:])
                        if last > finish:
                            finish = last
                    if ready > finish:
                        finish = ready
                    if record:
                        tappend((8, w))
                    event = heappop(heap) if heap else None
                    continue
                ips[w] = i + 1
                sm = warp_sm[w]
                free = sm_free[sm]
                issue = ready if ready > free else free
                code = codes[i]

                if code == 0:  # _COMPUTE
                    next_ready = issue + busy_col[i]
                    sm_free[sm] = next_ready
                    if record:
                        tappend((0, w, sm, busy_col[i]))
                elif code == 1:  # _LOAD
                    sm_free[sm] = issue + interval
                    lid, msk, flat1, s2 = probe_rows[i]
                    d1 = l1_masks[flat1]
                    e1 = d1.get(lid)
                    if e1 is not None and e1 & msk == msk:
                        l1_hits += 1
                        del d1[lid]
                        d1[lid] = e1
                        done = issue + l1_lat
                        if record:
                            tappend((1, w, sm, l1_lat))
                    else:
                        l1_misses += 1
                        d2 = l2_masks[s2]
                        e2 = d2.get(lid)
                        if e2 is not None and e2 & msk == msk:
                            l2_hits += 1
                            del d2[lid]
                            d2[lid] = e2
                            done = issue + l2_lat
                            if record:
                                tappend((1, w, sm, l2_lat))
                        else:
                            l2_misses += 1
                            arrival = issue + l2_lat
                            demand_fills += 1
                            if record:
                                r_serv = r_mserv = r_wbserv = 0.0
                                r_ch = r_mmiss = r_mch = 0
                                r_bnum = r_wbch = r_wbbnum = 0
                            if use_meta:
                                (
                                    dev, sh, sm_, ch, rw, bk, fm, bud, bnum,
                                ) = fill_rows[i]
                            else:
                                dev, sh, sm_, ch, rw, bk, fm = fill_rows[i]
                            # The sectored baseline requests even a
                            # zero-sector fill (degenerate traces):
                            # the oracle charges the channel overhead.
                            if dev or ideal:
                                if open_rows[bk] == rw:
                                    serv = sh
                                    dram_row_hits += 1
                                else:
                                    serv = sm_
                                    open_rows[bk] = rw
                                free = next_free[ch]
                                start = free if free > arrival else arrival
                                end = start + serv
                                next_free[ch] = end
                                dram_bytes += dev
                                dram_requests += 1
                                done = end + dram_lat
                                if record:
                                    r_serv = serv
                                    r_ch = ch
                            else:
                                done = arrival
                            if use_meta:
                                mt, ms, mc, mr, mb = meta_rows[i]
                                ways = meta_flat[ms]
                                if mt in ways:
                                    ways.remove(mt)
                                    ways.append(mt)
                                    meta_hits += 1
                                    meta_ready = arrival
                                else:
                                    meta_misses += 1
                                    ways.append(mt)
                                    if len(ways) > meta_ways:
                                        ways.pop(0)
                                    if open_rows[mb] == mr:
                                        serv = meta_serv_hit
                                        dram_row_hits += 1
                                    else:
                                        serv = meta_serv_miss
                                        open_rows[mb] = mr
                                    free = next_free[mc]
                                    start = (
                                        free if free > arrival else arrival
                                    )
                                    end = start + serv
                                    next_free[mc] = end
                                    dram_bytes += METADATA_LINE_BYTES
                                    dram_requests += 1
                                    meta_ready = end + dram_lat
                                    if meta_ready > done:
                                        done = meta_ready
                                    if record:
                                        r_mmiss = 1
                                        r_mserv = serv
                                        r_mch = mc
                                if bud:
                                    start = (
                                        link_read_free
                                        if link_read_free > meta_ready
                                        else meta_ready
                                    )
                                    end = start + bnum / link_bpc
                                    link_read_free = end
                                    link_read_bytes += bud
                                    buddy_fills += 1
                                    t = end + link_lat
                                    if t > done:
                                        done = t
                                    if record:
                                        r_bnum = bnum
                            # Install (full line for compressed fills).
                            if e2 is not None:
                                del d2[lid]
                                d2[lid] = e2 | fm
                            else:
                                if len(d2) >= l2_ways:
                                    victim = next(iter(d2))
                                    del d2[victim]
                                    dirty_mask = l2_dirty[s2].pop(victim, 0)
                                    if dirty_mask:
                                        # Writeback (dirty eviction).
                                        if ideal:
                                            num = wb_ideal_bytes[dirty_mask]
                                            serv = wb_ideal_serv[dirty_mask]
                                        else:
                                            ventry = victim % entries
                                            num = wb_dev[ventry]
                                            serv = wb_serv[ventry]
                                        if num:
                                            vch = victim % channels
                                            vrow = victim * line_bytes // row_bytes
                                            vbk = vch * banks + vrow % banks
                                            if open_rows[vbk] == vrow:
                                                serv = serv + row_hit_ov
                                                dram_row_hits += 1
                                            else:
                                                serv = serv + row_miss_ov
                                                open_rows[vbk] = vrow
                                            vfree = next_free[vch]
                                            vstart = (
                                                vfree
                                                if vfree > arrival
                                                else arrival
                                            )
                                            next_free[vch] = vstart + serv
                                            dram_bytes += num
                                            dram_requests += 1
                                            if record:
                                                r_wbserv = serv
                                                r_wbch = vch
                                        if use_meta:
                                            vbud = wb_bud[victim % entries]
                                            if vbud:
                                                vstart = (
                                                    link_write_free
                                                    if link_write_free
                                                    > arrival
                                                    else arrival
                                                )
                                                link_write_free = (
                                                    vstart
                                                    + wb_bnum[
                                                        victim % entries
                                                    ]
                                                    / link_bpc
                                                )
                                                link_write_bytes += vbud
                                                if record:
                                                    r_wbbnum = wb_bnum[
                                                        victim % entries
                                                    ]
                                d2[lid] = fm
                            done = done + fill_tail
                            if record:
                                tappend((
                                    2, w, sm, r_serv, r_ch, r_mmiss,
                                    r_mserv, r_mch, r_bnum, r_wbserv,
                                    r_wbch, r_wbbnum,
                                ))
                        # L1 fill (never dirty; evictions are silent).
                        if e1 is not None:
                            del d1[lid]
                            d1[lid] = e1 | msk
                        else:
                            if len(d1) >= l1_ways:
                                del d1[next(iter(d1))]
                            d1[lid] = msk
                    out = outstanding[w]
                    out.append(done)
                    head = out_heads[w]
                    if len(out) - head >= warp_mlp[w]:
                        next_ready = out[head]
                        out_heads[w] = head + 1
                    else:
                        next_ready = issue + interval
                elif code == 2 or code == 5:  # _STORE / _STORE_RMW
                    sm_free[sm] = issue + interval
                    lid, msk, flat1, s2 = probe_rows[i]
                    if record:
                        r_fill = 0
                        r_serv = r_mserv = r_wbserv = 0.0
                        r_ch = r_mmiss = r_mch = 0
                        r_bnum = r_wbch = r_wbbnum = 0
                    if code == 5:
                        # Partial store into a compressed entry: every
                        # fourth pays the read-modify-write fetch
                        # unless the line is fully resident.  This is
                        # the load-miss fill at arrival ``issue``; the
                        # completion time is discarded because stores
                        # do not stall the warp.
                        rmw_counter += 1
                        if not rmw_counter % 4:
                            d2 = l2_masks[s2]
                            e2 = d2.get(lid)
                            if e2 is not None and e2 & _FULL == _FULL:
                                l2_hits += 1
                                del d2[lid]
                                d2[lid] = e2
                            else:
                                l2_misses += 1
                                demand_fills += 1
                                if record:
                                    r_fill = 1
                                if use_meta:
                                    (
                                        dev, sh, sm_, ch, rw, bk, fm,
                                        bud, bnum,
                                    ) = fill_rows[i]
                                else:
                                    dev, sh, sm_, ch, rw, bk, fm = (
                                        fill_rows[i]
                                    )
                                if dev:
                                    if open_rows[bk] == rw:
                                        serv = sh
                                        dram_row_hits += 1
                                    else:
                                        serv = sm_
                                        open_rows[bk] = rw
                                    free = next_free[ch]
                                    start = free if free > issue else issue
                                    next_free[ch] = start + serv
                                    dram_bytes += dev
                                    dram_requests += 1
                                    if record:
                                        r_serv = serv
                                        r_ch = ch
                                if use_meta:
                                    meta_ready = issue
                                    mt, ms, mc, mr, mb = meta_rows[i]
                                    ways = meta_flat[ms]
                                    if mt in ways:
                                        ways.remove(mt)
                                        ways.append(mt)
                                        meta_hits += 1
                                    else:
                                        meta_misses += 1
                                        ways.append(mt)
                                        if len(ways) > meta_ways:
                                            ways.pop(0)
                                        if open_rows[mb] == mr:
                                            serv = meta_serv_hit
                                            dram_row_hits += 1
                                        else:
                                            serv = meta_serv_miss
                                            open_rows[mb] = mr
                                        free = next_free[mc]
                                        start = (
                                            free if free > issue else issue
                                        )
                                        end = start + serv
                                        next_free[mc] = end
                                        dram_bytes += METADATA_LINE_BYTES
                                        dram_requests += 1
                                        meta_ready = end + dram_lat
                                        if record:
                                            r_mmiss = 1
                                            r_mserv = serv
                                            r_mch = mc
                                    if bud:
                                        start = (
                                            link_read_free
                                            if link_read_free > meta_ready
                                            else meta_ready
                                        )
                                        link_read_free = (
                                            start + bnum / link_bpc
                                        )
                                        link_read_bytes += bud
                                        buddy_fills += 1
                                        if record:
                                            r_bnum = bnum
                                # Install the whole line.
                                if e2 is not None:
                                    del d2[lid]
                                    d2[lid] = e2 | fm
                                else:
                                    if len(d2) >= l2_ways:
                                        victim = next(iter(d2))
                                        del d2[victim]
                                        dirty_mask = l2_dirty[s2].pop(
                                            victim, 0
                                        )
                                        if dirty_mask:
                                            # Writeback (RMW is only
                                            # taken in the compressed
                                            # modes).
                                            ventry = victim % entries
                                            num = wb_dev[ventry]
                                            serv = wb_serv[ventry]
                                            if num:
                                                vch = victim % channels
                                                vrow = victim * line_bytes // row_bytes
                                                vbk = (
                                                    vch * banks
                                                    + vrow % banks
                                                )
                                                if open_rows[vbk] == vrow:
                                                    serv = serv + row_hit_ov
                                                    dram_row_hits += 1
                                                else:
                                                    serv = (
                                                        serv + row_miss_ov
                                                    )
                                                    open_rows[vbk] = vrow
                                                vfree = next_free[vch]
                                                vstart = (
                                                    vfree
                                                    if vfree > issue
                                                    else issue
                                                )
                                                next_free[vch] = (
                                                    vstart + serv
                                                )
                                                dram_bytes += num
                                                dram_requests += 1
                                                if record:
                                                    r_wbserv = serv
                                                    r_wbch = vch
                                            if use_meta:
                                                vbud = wb_bud[ventry]
                                                if vbud:
                                                    vstart = (
                                                        link_write_free
                                                        if link_write_free
                                                        > issue
                                                        else issue
                                                    )
                                                    link_write_free = (
                                                        vstart
                                                        + wb_bnum[ventry]
                                                        / link_bpc
                                                    )
                                                    link_write_bytes += (
                                                        vbud
                                                    )
                                                    if record:
                                                        r_wbbnum = wb_bnum[
                                                            ventry
                                                        ]
                                    d2[lid] = fm
                    d2 = l2_masks[s2]
                    e2 = d2.get(lid)
                    if e2 is not None:
                        del d2[lid]
                        d2[lid] = e2 | msk
                        dirty = l2_dirty[s2]
                        dirty[lid] = dirty.get(lid, 0) | msk
                    else:
                        if len(d2) >= l2_ways:
                            victim = next(iter(d2))
                            del d2[victim]
                            dirty_mask = l2_dirty[s2].pop(victim, 0)
                            if dirty_mask:
                                # Writeback (dirty eviction).
                                if ideal:
                                    num = wb_ideal_bytes[dirty_mask]
                                    serv = wb_ideal_serv[dirty_mask]
                                else:
                                    ventry = victim % entries
                                    num = wb_dev[ventry]
                                    serv = wb_serv[ventry]
                                if num:
                                    vch = victim % channels
                                    vrow = victim * line_bytes // row_bytes
                                    vbk = vch * banks + vrow % banks
                                    if open_rows[vbk] == vrow:
                                        serv = serv + row_hit_ov
                                        dram_row_hits += 1
                                    else:
                                        serv = serv + row_miss_ov
                                        open_rows[vbk] = vrow
                                    vfree = next_free[vch]
                                    vstart = (
                                        vfree if vfree > issue else issue
                                    )
                                    next_free[vch] = vstart + serv
                                    dram_bytes += num
                                    dram_requests += 1
                                    if record:
                                        r_wbserv = serv
                                        r_wbch = vch
                                if use_meta:
                                    vbud = wb_bud[victim % entries]
                                    if vbud:
                                        vstart = (
                                            link_write_free
                                            if link_write_free > issue
                                            else issue
                                        )
                                        link_write_free = (
                                            vstart
                                            + wb_bnum[victim % entries]
                                            / link_bpc
                                        )
                                        link_write_bytes += vbud
                                        if record:
                                            r_wbbnum = wb_bnum[
                                                victim % entries
                                            ]
                        d2[lid] = msk
                        l2_dirty[s2][lid] = msk
                    next_ready = issue + interval
                    if record:
                        if r_fill:
                            tappend((
                                6, w, sm, r_serv, r_ch, r_mmiss, r_mserv,
                                r_mch, r_bnum, r_wbserv, r_wbch, r_wbbnum,
                            ))
                        elif r_wbserv or r_wbbnum:
                            tappend((
                                5, w, sm, r_wbserv, r_wbch, r_wbbnum,
                            ))
                        else:
                            tappend((4, w, sm))
                elif code == 3:  # _HOST_LOAD
                    sm_free[sm] = issue + interval
                    hbytes, hnum = host_rows[i]
                    start = (
                        link_read_free if link_read_free > issue else issue
                    )
                    end = start + hnum / link_bpc
                    link_read_free = end
                    link_read_bytes += hbytes
                    done = end + link_lat
                    if record:
                        tappend((3, w, sm, hnum))
                    out = outstanding[w]
                    out.append(done)
                    head = out_heads[w]
                    if len(out) - head >= warp_mlp[w]:
                        next_ready = out[head]
                        out_heads[w] = head + 1
                    else:
                        next_ready = issue + interval
                else:  # _HOST_STORE: fire-and-forget remote write
                    sm_free[sm] = issue + interval
                    hbytes, hnum = host_rows[i]
                    start = (
                        link_write_free if link_write_free > issue else issue
                    )
                    link_write_free = start + hnum / link_bpc
                    link_write_bytes += hbytes
                    next_ready = issue + interval
                    if record:
                        tappend((7, w, sm, hnum))

                sequence += 1
                continuation = (next_ready, sequence, w)
                if heap:
                    # A continuation that precedes the whole heap is
                    # the next event by construction — skip the sift.
                    if continuation < heap[0]:
                        event = continuation
                    else:
                        event = pushpop(heap, continuation)
                else:
                    event = continuation
        finally:
            if gc_was_enabled:
                gc.enable()

        if record:
            _tape.warp_mlp = warp_mlp
            _tape.warp_count = warp_count
            _tape.sm_count = config.sm_count
            _tape.channels = channels
            _tape.fill_tail = fill_tail

        # -- drain + result -------------------------------------------
        cycles = max(
            finish,
            max(next_free),
            link_read_free,
            link_write_free,
            max(sm_free),
        )
        l1_total = l1_hits + l1_misses
        l2_total = l2_hits + l2_misses
        meta_total = meta_hits + meta_misses
        return SimResult(
            benchmark=trace.benchmark,
            mode=state.mode.value,
            cycles=cycles,
            instructions=trace.instruction_count,
            l1_hit_rate=l1_hits / l1_total if l1_total else 0.0,
            l2_hit_rate=l2_hits / l2_total if l2_total else 0.0,
            dram_bytes=dram_bytes,
            link_bytes=link_read_bytes + link_write_bytes,
            metadata_hit_rate=meta_hits / meta_total if meta_total else 0.0,
            buddy_fills=buddy_fills,
            demand_fills=demand_fills,
        )


# ---------------------------------------------------------------------------
# The relaxed-order engine: frozen-order tape replay across the link
# sweep.
# ---------------------------------------------------------------------------
def _resolve_tape(
    trace: KernelTrace,
    state: CompressionState,
    config,
    need_tape: bool,
):
    """The memoised (tape, reference result) for a design point.

    Recording runs the exact engine once at the reference interconnect
    (:data:`REFERENCE_LINK_GBPS`); the tape and the reference
    :class:`SimResult` are shared by every link bandwidth of the same
    ``(trace, state, machine geometry)``.

    Recording is lazy: a point only ever simulated *at* the reference
    interconnect (``need_tape=False``) runs the plain exact engine and
    memoises just the result, so reference-only relaxed runs cost the
    same as vectorized ones and hold no tape.  The first off-reference
    request upgrades the memo by re-running with recording on (the
    rerun is deterministic, so the reference result is unchanged).
    """
    link = config.link
    key = (id(state), _machine_key(config), link.latency_cycles, link.derate)
    per_trace = _TAPE_MEMO.get(trace)
    if per_trace is None:
        per_trace = {}
        _TAPE_MEMO[trace] = per_trace
    hit = per_trace.get(key)
    if hit is not None and hit[0] is state and (
        hit[1] is not None or not need_tape
    ):
        return hit[1], hit[2]
    if link.bandwidth_gbps == REFERENCE_LINK_GBPS:
        ref_config = config
    else:
        ref_config = replace(
            config, link=replace(link, bandwidth_gbps=REFERENCE_LINK_GBPS)
        )
    tape = _Tape() if need_tape else None
    reference = VectorizedSimulator(ref_config).run(trace, state, _tape=tape)
    per_trace[key] = (state, tape, reference)
    return tape, reference


def _replay_tape(tape: _Tape, config) -> float:
    """Recompute end-to-end cycles along a frozen event tape.

    Every traffic outcome (hits, fills, row-buffer state, victim
    choices) is baked into the tape; only the timing recurrences — SM
    issue slots, DRAM channel queues, the two link directions and each
    warp's memory-level-parallelism window — are recomputed with the
    requested interconnect.  At the recording interconnect this
    reproduces the exact engine's cycle count bit for bit (the replay
    uses the same float operations in the same order).
    """
    interval = config.issue_interval
    dram_lat = config.dram_latency
    arrival_lat = config.l2_latency
    link_bpc = config.link.bytes_per_cycle(config.clock_hz)
    link_lat = config.link.latency_cycles
    fill_tail = tape.fill_tail

    next_free = [0.0] * tape.channels
    sm_free = [0.0] * tape.sm_count
    link_read_free = 0.0
    link_write_free = 0.0
    warp_count = tape.warp_count
    warp_mlp = tape.warp_mlp
    ready = [0.0] * warp_count
    outstanding: list[list] = [[] for _ in range(warp_count)]
    out_heads = [0] * warp_count
    finish = 0.0

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for row in tape.events:
            kind = row[0]
            if kind == 0:  # compute
                _, w, sm, busy = row
                r = ready[w]
                free = sm_free[sm]
                issue = r if r > free else free
                t = issue + busy
                sm_free[sm] = t
                ready[w] = t
            elif kind == 1:  # load, cache hit
                _, w, sm, lat = row
                r = ready[w]
                free = sm_free[sm]
                issue = r if r > free else free
                sm_free[sm] = issue + interval
                done = issue + lat
                out = outstanding[w]
                out.append(done)
                head = out_heads[w]
                if len(out) - head >= warp_mlp[w]:
                    ready[w] = out[head]
                    out_heads[w] = head + 1
                else:
                    ready[w] = issue + interval
            elif kind == 2:  # load, demand fill
                (
                    _, w, sm, serv, ch, mmiss, mserv, mch, bnum,
                    wbserv, wbch, wbbnum,
                ) = row
                r = ready[w]
                free = sm_free[sm]
                issue = r if r > free else free
                sm_free[sm] = issue + interval
                arrival = issue + arrival_lat
                if serv:
                    free = next_free[ch]
                    start = free if free > arrival else arrival
                    end = start + serv
                    next_free[ch] = end
                    done = end + dram_lat
                else:
                    done = arrival
                meta_ready = arrival
                if mmiss:
                    free = next_free[mch]
                    start = free if free > arrival else arrival
                    end = start + mserv
                    next_free[mch] = end
                    meta_ready = end + dram_lat
                    if meta_ready > done:
                        done = meta_ready
                if bnum:
                    start = (
                        link_read_free
                        if link_read_free > meta_ready
                        else meta_ready
                    )
                    end = start + bnum / link_bpc
                    link_read_free = end
                    t = end + link_lat
                    if t > done:
                        done = t
                if wbserv:
                    free = next_free[wbch]
                    start = free if free > arrival else arrival
                    next_free[wbch] = start + wbserv
                if wbbnum:
                    start = (
                        link_write_free
                        if link_write_free > arrival
                        else arrival
                    )
                    link_write_free = start + wbbnum / link_bpc
                done = done + fill_tail
                out = outstanding[w]
                out.append(done)
                head = out_heads[w]
                if len(out) - head >= warp_mlp[w]:
                    ready[w] = out[head]
                    out_heads[w] = head + 1
                else:
                    ready[w] = issue + interval
            elif kind == 4:  # store, no memory-system timing
                _, w, sm = row
                r = ready[w]
                free = sm_free[sm]
                issue = r if r > free else free
                sm_free[sm] = issue + interval
                ready[w] = issue + interval
            elif kind == 5:  # store with dirty-eviction writeback
                _, w, sm, wbserv, wbch, wbbnum = row
                r = ready[w]
                free = sm_free[sm]
                issue = r if r > free else free
                sm_free[sm] = issue + interval
                if wbserv:
                    free = next_free[wbch]
                    start = free if free > issue else issue
                    next_free[wbch] = start + wbserv
                if wbbnum:
                    start = (
                        link_write_free
                        if link_write_free > issue
                        else issue
                    )
                    link_write_free = start + wbbnum / link_bpc
                ready[w] = issue + interval
            elif kind == 6:  # store with read-modify-write fill
                (
                    _, w, sm, serv, ch, mmiss, mserv, mch, bnum,
                    wbserv, wbch, wbbnum,
                ) = row
                r = ready[w]
                free = sm_free[sm]
                issue = r if r > free else free
                sm_free[sm] = issue + interval
                if serv:
                    free = next_free[ch]
                    start = free if free > issue else issue
                    next_free[ch] = start + serv
                meta_ready = issue
                if mmiss:
                    free = next_free[mch]
                    start = free if free > issue else issue
                    end = start + mserv
                    next_free[mch] = end
                    meta_ready = end + dram_lat
                if bnum:
                    start = (
                        link_read_free
                        if link_read_free > meta_ready
                        else meta_ready
                    )
                    link_read_free = start + bnum / link_bpc
                if wbserv:
                    free = next_free[wbch]
                    start = free if free > issue else issue
                    next_free[wbch] = start + wbserv
                if wbbnum:
                    start = (
                        link_write_free
                        if link_write_free > issue
                        else issue
                    )
                    link_write_free = start + wbbnum / link_bpc
                ready[w] = issue + interval
            elif kind == 3:  # host load over the link
                _, w, sm, hnum = row
                r = ready[w]
                free = sm_free[sm]
                issue = r if r > free else free
                sm_free[sm] = issue + interval
                start = (
                    link_read_free if link_read_free > issue else issue
                )
                end = start + hnum / link_bpc
                link_read_free = end
                done = end + link_lat
                out = outstanding[w]
                out.append(done)
                head = out_heads[w]
                if len(out) - head >= warp_mlp[w]:
                    ready[w] = out[head]
                    out_heads[w] = head + 1
                else:
                    ready[w] = issue + interval
            elif kind == 7:  # host store over the link
                _, w, sm, hnum = row
                r = ready[w]
                free = sm_free[sm]
                issue = r if r > free else free
                sm_free[sm] = issue + interval
                start = (
                    link_write_free if link_write_free > issue else issue
                )
                link_write_free = start + hnum / link_bpc
                ready[w] = issue + interval
            else:  # warp end
                w = row[1]
                out = outstanding[w]
                head = out_heads[w]
                if len(out) > head:
                    last = max(out[head:])
                    if last > finish:
                        finish = last
                r = ready[w]
                if r > finish:
                    finish = r
    finally:
        if gc_was_enabled:
            gc.enable()

    return max(
        finish,
        max(next_free),
        link_read_free,
        link_write_free,
        max(sm_free),
    )


#: Counters the relaxed contract compares against the oracle, with
#: the byte quantum of one event (a whole-entry transfer plus link
#: overhead for the byte counters; a single event for the fills).
_CONTRACT_COUNTERS = (
    ("dram_bytes", MEMORY_ENTRY_BYTES + TRANSACTION_OVERHEAD_BYTES),
    ("link_bytes", MEMORY_ENTRY_BYTES + TRANSACTION_OVERHEAD_BYTES),
    ("buddy_fills", 1),
    ("demand_fills", 1),
)
_CONTRACT_RATES = ("l1_hit_rate", "l2_hit_rate", "metadata_hit_rate")


def check_relaxed_contract(
    relaxed, oracle, exact: bool, tolerance: float | None = None
) -> None:
    """Assert a relaxed result against the legacy oracle's.

    ``exact`` (reference interconnect, single-warp traces, provably
    non-contending traces) demands bit-identical results; otherwise
    counters must sit within :data:`RELAXED_COUNTER_TOLERANCE`
    relative — with an absolute floor of
    :data:`RELAXED_COUNTER_FLOOR_EVENTS` transfer events, the scale
    of the oracle's own link-to-link ordering noise — and cycles
    within :data:`RELAXED_CYCLE_TOLERANCE`.  A non-``None``
    ``tolerance`` (from :class:`repro.gpusim.engine_spec.EngineSpec`)
    replaces the pinned pair at its pinned ratio: cycles within
    ``tolerance``, counters within ``2 * tolerance``.  Raises
    :class:`RelaxedVerificationError` on the first violation.
    """
    cycle_tolerance = (
        RELAXED_CYCLE_TOLERANCE if tolerance is None else tolerance
    )
    counter_tolerance = (
        RELAXED_COUNTER_TOLERANCE if tolerance is None else 2.0 * tolerance
    )
    if exact:
        for field in (
            ("benchmark", "mode", "cycles", "instructions")
            + tuple(name for name, _ in _CONTRACT_COUNTERS)
            + _CONTRACT_RATES
        ):
            got = getattr(relaxed, field)
            want = getattr(oracle, field)
            if got != want:
                raise RelaxedVerificationError(
                    f"relaxed engine diverged from the oracle on "
                    f"{field}: {got!r} != {want!r} (exact point)"
                )
        return
    if (relaxed.benchmark, relaxed.mode, relaxed.instructions) != (
        oracle.benchmark, oracle.mode, oracle.instructions
    ):
        raise RelaxedVerificationError(
            "relaxed engine simulated a different design point than "
            f"the oracle: {relaxed!r} vs {oracle!r}"
        )
    deviation = abs(relaxed.cycles - oracle.cycles) / oracle.cycles
    if deviation > cycle_tolerance:
        raise RelaxedVerificationError(
            f"relaxed cycles {relaxed.cycles} deviate from oracle "
            f"{oracle.cycles} by {deviation:.2%} "
            f"(> {cycle_tolerance:.2%})"
        )
    for field, quantum in _CONTRACT_COUNTERS:
        got = getattr(relaxed, field)
        want = getattr(oracle, field)
        slack = max(
            RELAXED_COUNTER_FLOOR_EVENTS * quantum,
            counter_tolerance * want,
        )
        if abs(got - want) > slack:
            raise RelaxedVerificationError(
                f"relaxed {field} {got} deviates from oracle {want} "
                f"by more than {counter_tolerance:.2%} "
                f"(+{RELAXED_COUNTER_FLOOR_EVENTS}-event floor)"
            )
    for field in _CONTRACT_RATES:
        got = getattr(relaxed, field)
        want = getattr(oracle, field)
        if abs(got - want) > counter_tolerance:
            raise RelaxedVerificationError(
                f"relaxed {field} {got:.4f} deviates from oracle "
                f"{want:.4f} by more than "
                f"{counter_tolerance:.2%} absolute"
            )


def _verify_selected(trace, state, config, fraction: float) -> bool:
    """Deterministic sampling for the ``verify=`` escape hatch.

    The decision hashes the design point's stable identity (not object
    ids), so a given point is either always or never cross-checked for
    a given fraction — reruns and parallel workers agree.
    """
    if fraction >= 1.0:
        return True
    key = (
        trace.benchmark,
        trace.instruction_count,
        state.mode.value,
        int(state.entries),
        config.link.bandwidth_gbps,
        config.sm_count,
        config.warps_per_sm,
    )
    digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64 < fraction


class RelaxedSimulator:
    """The relaxed-order engine behind ``engine="relaxed"``.

    One exact-order recording at :data:`REFERENCE_LINK_GBPS` per
    ``(trace, state, machine geometry)``; every other interconnect
    bandwidth replays the frozen tape.  ``verify`` is the sampled
    escape hatch: the fraction of runs (deterministically chosen per
    design point) that are cross-checked against the legacy oracle at
    full fidelity via :func:`check_relaxed_contract`; ``tolerance``
    optionally overrides that contract's pinned tolerances.
    """

    def __init__(
        self,
        config: GPUConfig,
        verify: float = 0.0,
        tolerance: float | None = None,
    ) -> None:
        self.config = config
        self.verify = verify
        self.tolerance = tolerance

    def run(self, trace: KernelTrace, state: CompressionState):
        config = self.config
        at_reference = (
            config.link.bandwidth_gbps == REFERENCE_LINK_GBPS
        )
        tape, reference = _resolve_tape(
            trace, state, config, need_tape=not at_reference
        )
        if at_reference:
            result = reference
        else:
            result = replace(
                reference, cycles=_replay_tape(tape, config)
            )
        if self.verify and _verify_selected(
            trace, state, config, self.verify
        ):
            from repro.gpusim.simulator import DependencyDrivenSimulator

            oracle = DependencyDrivenSimulator(config, "legacy").run(
                trace, state
            )
            check_relaxed_contract(
                result, oracle, exact=at_reference, tolerance=self.tolerance
            )
        return result
