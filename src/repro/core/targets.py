"""Target-ratio selection policies.

Three design points from the paper's Fig. 7, in increasing refinement:

1. **Naive**: one conservative whole-program target ratio.
2. **Per-allocation**: the largest sector-aligned target whose
   overflow stays within the *Buddy Threshold* (Fig. 9 sweeps it;
   30 % is the final choice).
3. **Zero-page optimised** (the final design): additionally promotes
   allocations that are mostly-zero across the entire profiled run to
   the 16x class, subject to the 4x overall cap imposed by the
   buddy-memory carve-out size.

All policies are vectorised reductions over the columnar
:class:`~repro.core.profile_tensor.ProfileTensor`; the ``*_batch``
variants select for many thresholds from one profile at once (the
Fig. 9 sweep's hot path).  Every function accepts either a tensor or
a :class:`~repro.core.profiler.BenchmarkProfile` view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.entry import ALLOWED_TARGETS, TargetRatio
from repro.core.profile_tensor import TARGET_INDEX, ProfileTensor

#: The paper's default Buddy Threshold.
DEFAULT_THRESHOLD = 0.30

#: Guard on the naive whole-program choice: if more entries than this
#: would overflow, naive falls back to the next lower ratio (keeps the
#: single-target baseline from pathological 50 %+ buddy traffic on
#: bimodal programs such as 370.bt).
NAIVE_OVERFLOW_CAP = 0.35

#: Stability bound for the zero-page promotion: the allocation must
#: stay at least this zero across *every* profiled snapshot.
ZERO_PAGE_TOLERANCE = 0.03

#: Carve-out limit: buddy storage is 3x device memory, capping the
#: overall target compression ratio at 4x.
MAX_OVERALL_RATIO = 4.0

#: Target-axis indices of the sector-aligned targets, best-first.
_ALLOWED_INDICES = np.array(
    [TARGET_INDEX[target] for target in ALLOWED_TARGETS], dtype=np.intp
)

_X1_INDEX = TARGET_INDEX[TargetRatio.X1]
_X16_INDEX = TARGET_INDEX[TargetRatio.X16]


@dataclass(frozen=True)
class DesignPoint:
    """A named selection policy configuration (Fig. 7's x-axis)."""

    name: str
    per_allocation: bool
    zero_page: bool
    threshold: float = DEFAULT_THRESHOLD


#: Fig. 7's three design points.
NAIVE = DesignPoint("naive", per_allocation=False, zero_page=False)
PER_ALLOCATION = DesignPoint("per-allocation", per_allocation=True, zero_page=False)
FINAL = DesignPoint("final", per_allocation=True, zero_page=True)


def as_tensor(profile) -> ProfileTensor:
    """The columnar tensor behind a profile (or the tensor itself)."""
    if isinstance(profile, ProfileTensor):
        return profile
    return profile.tensor


# ---------------------------------------------------------------------------
# Index-space policies (the vectorised core).
# ---------------------------------------------------------------------------
def select_per_allocation_indices(
    tensor: ProfileTensor, thresholds: Sequence[float]
) -> np.ndarray:
    """``(len(thresholds), A)`` target indices for a threshold batch.

    For each threshold, each allocation gets the largest (best-first)
    sector-aligned target whose *worst-snapshot* overflow stays within
    it — the whole sweep reduced over one worst-overflow matrix.
    """
    worst = tensor.worst_overflow[_ALLOWED_INDICES, :]  # (4, A) best-first
    thresholds_arr = np.asarray(thresholds, dtype=np.float64)
    ok = worst[None, :, :] <= thresholds_arr[:, None, None]  # (T, 4, A)
    first = np.argmax(ok, axis=1)  # first best-first target that fits
    chosen = _ALLOWED_INDICES[first]
    return np.where(ok.any(axis=1), chosen, _X1_INDEX)


def select_naive_indices(
    tensor: ProfileTensor, overflow_cap: float = NAIVE_OVERFLOW_CAP
) -> np.ndarray:
    """``(A,)`` indices of one conservative whole-program target."""
    program = tensor.program_histogram()
    mean_sectors = program.mean_sectors()
    chosen = TargetRatio.X1
    for target in ALLOWED_TARGETS:  # best-first: 4x, 2x, 1.33x, 1x
        if target.device_sectors < mean_sectors:
            continue  # more aggressive than the program average
        if program.overflow_fraction(target) <= overflow_cap:
            chosen = target
            break
    return np.full(tensor.allocation_count, TARGET_INDEX[chosen], dtype=np.intp)


def apply_zero_page_indices(
    indices: np.ndarray,
    tensor: ProfileTensor,
    tolerance: float = ZERO_PAGE_TOLERANCE,
    max_overall_ratio: float = MAX_OVERALL_RATIO,
) -> np.ndarray:
    """Promote stably mostly-zero allocations to the 16x class.

    Promotion is greedy, largest allocation first, and stops when the
    overall target ratio would exceed the carve-out limit.
    """
    promoted = np.array(indices, dtype=np.intp)
    candidates = np.flatnonzero(
        tensor.worst_overflow[_X16_INDEX, :] <= tolerance
    )
    # Stable sort by descending fraction: ties keep allocation order,
    # exactly as the legacy ``sorted(..., key=lambda a: -a.fraction)``.
    order = candidates[
        np.argsort(-tensor.fractions[candidates], kind="stable")
    ]
    for position in order:
        trial = promoted.copy()
        trial[position] = _X16_INDEX
        if tensor.selection_ratio(trial) <= max_overall_ratio:
            promoted = trial
    return promoted


def select_indices(tensor: ProfileTensor, design: DesignPoint) -> np.ndarray:
    """Run a full design point's selection policy in index space."""
    if design.per_allocation:
        indices = select_per_allocation_indices(tensor, (design.threshold,))[0]
    else:
        indices = select_naive_indices(tensor)
    if design.zero_page:
        indices = apply_zero_page_indices(indices, tensor)
    return indices


# ---------------------------------------------------------------------------
# Dictionary-facing API (legacy shape).
# ---------------------------------------------------------------------------
def select_per_allocation(
    profile, threshold: float = DEFAULT_THRESHOLD
) -> dict[str, TargetRatio]:
    """Largest target per allocation with overflow <= ``threshold``.

    Overflow is judged conservatively against the *worst* profiled
    snapshot, not the run average: compressibility drifts over time
    (355.seismic) and the paper avoids that hazard by choosing
    conservative targets.
    """
    tensor = as_tensor(profile)
    indices = select_per_allocation_indices(tensor, (threshold,))[0]
    return tensor.selection_from_indices(indices)


def select_naive(
    profile,
    overflow_cap: float = NAIVE_OVERFLOW_CAP,
) -> dict[str, TargetRatio]:
    """One conservative whole-program target for every allocation.

    The target is the largest allowed ratio not exceeding the
    program's average compressibility (rounding the profiled mean
    down, as a conservative whole-program annotation would), subject
    to the overflow cap.
    """
    tensor = as_tensor(profile)
    return tensor.selection_from_indices(
        select_naive_indices(tensor, overflow_cap)
    )


def apply_zero_page(
    selection: dict[str, TargetRatio],
    profile,
    tolerance: float = ZERO_PAGE_TOLERANCE,
    max_overall_ratio: float = MAX_OVERALL_RATIO,
) -> dict[str, TargetRatio]:
    """Promote stably mostly-zero allocations to the 16x class."""
    tensor = as_tensor(profile)
    indices = apply_zero_page_indices(
        tensor.selection_indices(selection),
        tensor,
        tolerance,
        max_overall_ratio,
    )
    return tensor.selection_from_indices(indices)


def selection_ratio(
    selection: dict[str, TargetRatio], profile
) -> float:
    """Overall compression ratio a selection achieves.

    This is the paper's capacity metric: footprint divided by the
    device memory the annotated allocations reserve.
    """
    tensor = as_tensor(profile)
    return tensor.selection_ratio(tensor.selection_indices(selection))


def select(profile, design: DesignPoint) -> dict[str, TargetRatio]:
    """Run a full design point's selection policy."""
    tensor = as_tensor(profile)
    return tensor.selection_from_indices(select_indices(tensor, design))


def threshold_sweep(
    profile, thresholds: Iterable[float] = (0.10, 0.20, 0.30, 0.40)
) -> dict[float, dict[str, TargetRatio]]:
    """Fig. 9's x-axis: per-allocation selections across thresholds.

    All thresholds reduce over a single worst-overflow matrix — the
    profile is consulted once, not once per threshold.
    """
    tensor = as_tensor(profile)
    thresholds = tuple(thresholds)
    batch = select_per_allocation_indices(tensor, thresholds)
    return {
        threshold: tensor.selection_from_indices(batch[row])
        for row, threshold in enumerate(thresholds)
    }
