"""Target-ratio selection policies.

Three design points from the paper's Fig. 7, in increasing refinement:

1. **Naive**: one conservative whole-program target ratio.
2. **Per-allocation**: the largest sector-aligned target whose
   overflow stays within the *Buddy Threshold* (Fig. 9 sweeps it;
   30 % is the final choice).
3. **Zero-page optimised** (the final design): additionally promotes
   allocations that are mostly-zero across the entire profiled run to
   the 16x class, subject to the 4x overall cap imposed by the
   buddy-memory carve-out size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.entry import ALLOWED_TARGETS, TargetRatio
from repro.core.profiler import BenchmarkProfile
from repro.units import MEMORY_ENTRY_BYTES

#: The paper's default Buddy Threshold.
DEFAULT_THRESHOLD = 0.30

#: Guard on the naive whole-program choice: if more entries than this
#: would overflow, naive falls back to the next lower ratio (keeps the
#: single-target baseline from pathological 50 %+ buddy traffic on
#: bimodal programs such as 370.bt).
NAIVE_OVERFLOW_CAP = 0.35

#: Stability bound for the zero-page promotion: the allocation must
#: stay at least this zero across *every* profiled snapshot.
ZERO_PAGE_TOLERANCE = 0.03

#: Carve-out limit: buddy storage is 3x device memory, capping the
#: overall target compression ratio at 4x.
MAX_OVERALL_RATIO = 4.0


@dataclass(frozen=True)
class DesignPoint:
    """A named selection policy configuration (Fig. 7's x-axis)."""

    name: str
    per_allocation: bool
    zero_page: bool
    threshold: float = DEFAULT_THRESHOLD


#: Fig. 7's three design points.
NAIVE = DesignPoint("naive", per_allocation=False, zero_page=False)
PER_ALLOCATION = DesignPoint("per-allocation", per_allocation=True, zero_page=False)
FINAL = DesignPoint("final", per_allocation=True, zero_page=True)


def select_per_allocation(
    profile: BenchmarkProfile, threshold: float = DEFAULT_THRESHOLD
) -> dict[str, TargetRatio]:
    """Largest target per allocation with overflow <= ``threshold``.

    Overflow is judged conservatively against the *worst* profiled
    snapshot, not the run average: compressibility drifts over time
    (355.seismic) and the paper avoids that hazard by choosing
    conservative targets.
    """
    selection = {}
    for alloc in profile.allocations:
        chosen = TargetRatio.X1
        for target in ALLOWED_TARGETS:  # best-first
            if alloc.worst_overflow(target) <= threshold:
                chosen = target
                break
        selection[alloc.name] = chosen
    return selection


def select_naive(
    profile: BenchmarkProfile,
    overflow_cap: float = NAIVE_OVERFLOW_CAP,
) -> dict[str, TargetRatio]:
    """One conservative whole-program target for every allocation.

    The target is the largest allowed ratio not exceeding the
    program's average compressibility (rounding the profiled mean
    down, as a conservative whole-program annotation would), subject
    to the overflow cap.
    """
    histogram = profile.program_histogram()
    mean_sectors = histogram.mean_sectors()
    chosen = TargetRatio.X1
    for target in ALLOWED_TARGETS:  # best-first: 4x, 2x, 1.33x, 1x
        if target.device_sectors < mean_sectors:
            continue  # more aggressive than the program average
        if histogram.overflow_fraction(target) <= overflow_cap:
            chosen = target
            break
    return {alloc.name: chosen for alloc in profile.allocations}


def apply_zero_page(
    selection: dict[str, TargetRatio],
    profile: BenchmarkProfile,
    tolerance: float = ZERO_PAGE_TOLERANCE,
    max_overall_ratio: float = MAX_OVERALL_RATIO,
) -> dict[str, TargetRatio]:
    """Promote stably mostly-zero allocations to the 16x class.

    Promotion is greedy, largest allocation first, and stops when the
    overall target ratio would exceed the carve-out limit.
    """
    promoted = dict(selection)
    candidates = [
        alloc
        for alloc in profile.allocations
        if alloc.worst_zero_overflow <= tolerance
    ]
    for alloc in sorted(candidates, key=lambda a: -a.fraction):
        trial = dict(promoted)
        trial[alloc.name] = TargetRatio.X16
        if selection_ratio(trial, profile) <= max_overall_ratio:
            promoted = trial
    return promoted


def selection_ratio(
    selection: dict[str, TargetRatio], profile: BenchmarkProfile
) -> float:
    """Overall compression ratio a selection achieves.

    This is the paper's capacity metric: footprint divided by the
    device memory the annotated allocations reserve.
    """
    footprint = 0.0
    device = 0.0
    for alloc in profile.allocations:
        footprint += alloc.fraction * MEMORY_ENTRY_BYTES
        device += alloc.fraction * selection[alloc.name].device_bytes
    if device == 0:
        return 1.0
    return footprint / device


def select(
    profile: BenchmarkProfile, design: DesignPoint
) -> dict[str, TargetRatio]:
    """Run a full design point's selection policy."""
    if design.per_allocation:
        selection = select_per_allocation(profile, design.threshold)
    else:
        selection = select_naive(profile)
    if design.zero_page:
        selection = apply_zero_page(selection, profile)
    return selection


def threshold_sweep(
    profile: BenchmarkProfile, thresholds=(0.10, 0.20, 0.30, 0.40)
) -> dict[float, dict[str, TargetRatio]]:
    """Fig. 9's x-axis: per-allocation selections across thresholds."""
    return {
        threshold: select_per_allocation(profile, threshold)
        for threshold in thresholds
    }
