"""Split device/buddy allocator.

Models the paper's memory organisation: compressed allocations reserve
``entries * target.device_bytes`` of device memory, and every entry
owns a fixed pre-allocated overflow slot in the buddy-memory carve-out
(a physically contiguous region of host/disaggregated memory sized 3x
device memory, addressed GBBR + offset).  Because slots are fixed,
compressibility changes never move pages — the key design property.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.entry import TargetRatio
from repro.units import GIB, MEMORY_ENTRY_BYTES


class OutOfMemoryError(Exception):
    """Device memory or buddy carve-out exhausted."""


@dataclass(frozen=True)
class Allocation:
    """One placed allocation."""

    name: str
    entries: int
    target: TargetRatio
    device_base: int
    buddy_offset: int  # GBBR-relative; -1 when no buddy slots are needed

    @property
    def logical_bytes(self) -> int:
        """Uncompressed size the application sees."""
        return self.entries * MEMORY_ENTRY_BYTES

    @property
    def device_bytes(self) -> int:
        return self.entries * self.target.device_bytes

    @property
    def buddy_bytes(self) -> int:
        return self.entries * self.target.buddy_bytes

    def device_address(self, entry_index: int) -> int:
        """Device address of an entry's resident slot."""
        self._check(entry_index)
        return self.device_base + entry_index * self.target.device_bytes

    def buddy_address(self, entry_index: int) -> int:
        """GBBR-relative address of an entry's overflow slot."""
        self._check(entry_index)
        if self.buddy_offset < 0:
            raise ValueError(f"{self.name} has no buddy slots (1x target)")
        return self.buddy_offset + entry_index * self.target.buddy_bytes

    def _check(self, entry_index: int) -> None:
        if not 0 <= entry_index < self.entries:
            raise IndexError(
                f"entry {entry_index} outside 0..{self.entries - 1}"
            )


@dataclass
class BuddyAllocator:
    """Bump allocator over device memory plus the buddy carve-out.

    Attributes:
        device_capacity: GPU device memory in bytes.
        carve_out_ratio: Carve-out size as a multiple of device memory
            (3x supports a 4x maximum target ratio).
    """

    device_capacity: int = 12 * GIB
    carve_out_ratio: float = 3.0
    _device_used: int = field(default=0, init=False)
    _buddy_used: int = field(default=0, init=False)
    _allocations: dict[str, Allocation] = field(default_factory=dict, init=False)

    @property
    def buddy_capacity(self) -> int:
        return int(self.device_capacity * self.carve_out_ratio)

    @property
    def device_used(self) -> int:
        return self._device_used

    @property
    def buddy_used(self) -> int:
        return self._buddy_used

    @property
    def allocations(self) -> tuple[Allocation, ...]:
        return tuple(self._allocations.values())

    def allocate(
        self, name: str, logical_bytes: int, target: TargetRatio
    ) -> Allocation:
        """Place an allocation annotated with a target ratio.

        Args:
            name: Unique allocation label.
            logical_bytes: Uncompressed allocation size (rounded up to
                whole memory-entries).
            target: Annotated target compression ratio.

        Raises:
            OutOfMemoryError: Either region cannot fit the request.
            ValueError: Duplicate allocation name.
        """
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists")
        entries = -(-logical_bytes // MEMORY_ENTRY_BYTES)
        device_bytes = entries * target.device_bytes
        buddy_bytes = entries * target.buddy_bytes
        if self._device_used + device_bytes > self.device_capacity:
            raise OutOfMemoryError(
                f"{name}: needs {device_bytes} device bytes, "
                f"{self.device_capacity - self._device_used} free"
            )
        if self._buddy_used + buddy_bytes > self.buddy_capacity:
            raise OutOfMemoryError(
                f"{name}: needs {buddy_bytes} carve-out bytes, "
                f"{self.buddy_capacity - self._buddy_used} free"
            )
        allocation = Allocation(
            name=name,
            entries=entries,
            target=target,
            device_base=self._device_used,
            buddy_offset=self._buddy_used if buddy_bytes else -1,
        )
        self._device_used += device_bytes
        self._buddy_used += buddy_bytes
        self._allocations[name] = allocation
        return allocation

    def free(self, name: str) -> None:
        """Release an allocation (capacity only; bump offsets persist)."""
        allocation = self._allocations.pop(name, None)
        if allocation is None:
            raise KeyError(f"no allocation {name!r}")
        self._device_used -= allocation.device_bytes
        self._buddy_used -= allocation.buddy_bytes

    def effective_capacity_ratio(self) -> float:
        """Logical bytes placed per device byte consumed."""
        logical = sum(a.logical_bytes for a in self._allocations.values())
        if self._device_used == 0:
            return 1.0
        return logical / self._device_used
