"""The Buddy Compression engine facade.

:class:`BuddyCompressor` drives the paper's full static pipeline for a
benchmark: profile on the smaller dataset, pick per-allocation target
ratios for a design point, then evaluate the annotated program on the
reference dataset — compression ratio achieved, and the fraction of
memory-entries (and sectors) that must be sourced from buddy-memory
at every snapshot (Figs. 7, 8, 9).

Both the profile and the reference run are reduced to columnar
:class:`~repro.core.profile_tensor.ProfileTensor` form exactly once
per process (see :func:`repro.core.profiler.profile_tensor`), and
:meth:`BuddyCompressor.evaluate_many` evaluates a whole batch of
selections — a threshold or design-point sweep — as array reductions
over that single reference tensor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.compression.base import CompressionAlgorithm
from repro.compression.bpc import BPCCompressor
from repro.core import targets as targets_mod
from repro.core.allocator import BuddyAllocator
from repro.core.entry import TargetRatio
from repro.core.profile_tensor import ProfileTensor
from repro.core.profiler import BenchmarkProfile, profile_tensor
from repro.core.targets import DesignPoint
from repro.units import GIB, MEMORY_ENTRY_BYTES
from repro.workloads.snapshots import SnapshotConfig, generate_run


@dataclass(frozen=True)
class BuddyConfig:
    """Engine configuration (paper defaults)."""

    threshold: float = targets_mod.DEFAULT_THRESHOLD
    zero_tolerance: float = targets_mod.ZERO_PAGE_TOLERANCE
    naive_overflow_cap: float = targets_mod.NAIVE_OVERFLOW_CAP
    max_overall_ratio: float = targets_mod.MAX_OVERALL_RATIO
    snapshot_config: SnapshotConfig = field(default_factory=SnapshotConfig)


@dataclass
class SnapshotTraffic:
    """Buddy-memory traffic of one reference snapshot."""

    index: int
    entry_fraction: float  # fraction of entries needing any buddy access
    sector_fraction: float  # overflow sectors per entry (traffic weight)


@dataclass
class EvaluationResult:
    """Outcome of evaluating one design point on one benchmark."""

    benchmark: str
    design: str
    selection: dict[str, TargetRatio]
    compression_ratio: float
    per_snapshot: list[SnapshotTraffic]

    @property
    def buddy_access_fraction(self) -> float:
        """Mean fraction of entries requiring buddy accesses."""
        if not self.per_snapshot:
            return 0.0
        return float(np.mean([s.entry_fraction for s in self.per_snapshot]))

    @property
    def buddy_sector_fraction(self) -> float:
        """Mean overflow sectors per entry (traffic-weighted)."""
        if not self.per_snapshot:
            return 0.0
        return float(np.mean([s.sector_fraction for s in self.per_snapshot]))


#: Bulk selection-evaluation calls issued by this process.  One call
#: evaluates any number of (tensor, selections) groups, so a batched
#: server answering N coalesced requests advances this exactly once
#: per admission batch — the coalescing contract is pinned against it
#: the same way the profiler pins ``bulk_compression_call_count``.
_EVALUATE_BULK_CALLS = 0


def evaluate_bulk_call_count() -> int:
    """Bulk selection evaluations executed by this process."""
    return _EVALUATE_BULK_CALLS


def record_evaluate_bulk_call() -> None:
    """Record one bulk selection-evaluation call."""
    global _EVALUATE_BULK_CALLS
    _EVALUATE_BULK_CALLS += 1


def evaluate_selections_batch(groups) -> list[list[EvaluationResult]]:
    """Evaluate many selection groups in ONE bulk call.

    ``groups`` is a sequence of ``(reference, benchmark, selections,
    design_names)`` tuples, each pairing one reference
    :class:`~repro.core.profile_tensor.ProfileTensor` with the
    selections to measure against it.  Per group the result list is
    element-wise identical to
    :meth:`BuddyCompressor.evaluate_many` — the batch form exists so
    concurrent callers (the advisor service's admission queue) can
    coalesce their evaluations into a single counted call; the
    counter-pinned tests assert N coalesced requests advance
    :func:`evaluate_bulk_call_count` at most ``ceil(N / max_batch)``
    times.
    """
    record_evaluate_bulk_call()
    out: list[list[EvaluationResult]] = []
    for reference, benchmark, selections, design_names in groups:
        results = []
        for selection, design_name in zip(selections, design_names):
            indices = reference.selection_indices(selection)
            entry_fractions, sector_fractions = reference.traffic(indices)
            per_snapshot = [
                SnapshotTraffic(index, float(entry), float(sectors))
                for index, (entry, sectors) in enumerate(
                    zip(entry_fractions, sector_fractions)
                )
            ]
            results.append(
                EvaluationResult(
                    benchmark=benchmark,
                    design=design_name,
                    selection=selection,
                    compression_ratio=reference.selection_ratio(indices),
                    per_snapshot=per_snapshot,
                )
            )
        out.append(results)
    return out


class BuddyCompressor:
    """Profile / annotate / evaluate pipeline for one configuration."""

    def __init__(
        self,
        config: BuddyConfig | None = None,
        algorithm: CompressionAlgorithm | None = None,
    ) -> None:
        self.config = config or BuddyConfig()
        self.algorithm = algorithm or BPCCompressor()

    # ------------------------------------------------------------------
    def profile(self, benchmark: str) -> BenchmarkProfile:
        """Run the profiling pass (profile-role snapshots)."""
        return BenchmarkProfile(
            profile_tensor(
                benchmark,
                self.config.snapshot_config.as_profile(),
                self.algorithm,
            )
        )

    def reference_tensor(self, benchmark: str) -> ProfileTensor:
        """The reference run's columnar profile (memoised per process)."""
        return profile_tensor(
            benchmark, self.config.snapshot_config, self.algorithm
        )

    def select(
        self, profile: BenchmarkProfile, design: DesignPoint
    ) -> dict[str, TargetRatio]:
        """Choose target ratios for a design point."""
        tensor = targets_mod.as_tensor(profile)
        if design.per_allocation:
            indices = targets_mod.select_per_allocation_indices(
                tensor, (design.threshold,)
            )[0]
        else:
            indices = targets_mod.select_naive_indices(
                tensor, self.config.naive_overflow_cap
            )
        if design.zero_page:
            indices = targets_mod.apply_zero_page_indices(
                indices,
                tensor,
                self.config.zero_tolerance,
                self.config.max_overall_ratio,
            )
        return tensor.selection_from_indices(indices)

    def evaluate(
        self,
        benchmark: str,
        selection: dict[str, TargetRatio],
        design_name: str = "custom",
    ) -> EvaluationResult:
        """Measure a selection against the reference run."""
        return self.evaluate_many(benchmark, [selection], [design_name])[0]

    def evaluate_many(
        self,
        benchmark: str,
        selections: Sequence[dict[str, TargetRatio]],
        design_names: Sequence[str] | None = None,
    ) -> list[EvaluationResult]:
        """Measure many selections against one reference profiling pass.

        The reference run is reduced to its profile tensor once; every
        selection is then a pair of array reductions (capacity ratio
        and per-snapshot traffic), so a sweep's cost is one profiling
        pass plus O(selections) arithmetic on compact arrays.
        """
        if design_names is None:
            design_names = ["custom"] * len(selections)
        if len(design_names) != len(selections):
            raise ValueError(
                f"{len(design_names)} design names for "
                f"{len(selections)} selections"
            )
        reference = self.reference_tensor(benchmark)
        return evaluate_selections_batch(
            [(reference, benchmark, selections, design_names)]
        )[0]

    def run(
        self, benchmark: str, design: DesignPoint = targets_mod.FINAL
    ) -> EvaluationResult:
        """Full pipeline for one benchmark and design point."""
        profile = self.profile(benchmark)
        selection = self.select(profile, design)
        return self.evaluate(benchmark, selection, design.name)

    # ------------------------------------------------------------------
    def place(
        self,
        benchmark: str,
        selection: dict[str, TargetRatio],
        device_capacity: int = 12 * GIB,
    ) -> BuddyAllocator:
        """Build the device + carve-out layout for a selection.

        Uses the reference run's allocation sizes; raises
        :class:`repro.core.allocator.OutOfMemoryError` if the selection
        cannot fit, which is how capacity experiments detect failure.
        """
        snapshot = next(iter(generate_run(benchmark, self.config.snapshot_config)))
        allocator = BuddyAllocator(device_capacity=device_capacity)
        for alloc in snapshot.allocations:
            allocator.allocate(
                alloc.name,
                alloc.entries * MEMORY_ENTRY_BYTES,
                selection[alloc.name],
            )
        return allocator
