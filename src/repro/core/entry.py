"""Target compression ratios and per-entry sector arithmetic.

The paper allows per-allocation targets of 1x, 1.33x, 2x and 4x —
4, 3, 2 or 1 of the entry's four 32 B sectors resident in device
memory — chosen to keep sector interleaving simple and aligned.  The
zero-page optimisation adds an aggressive 16x class that keeps only
8 B per 128 B entry in device memory.
"""

from __future__ import annotations

import enum

from repro.units import (
    MEMORY_ENTRY_BYTES,
    SECTOR_BYTES,
    SECTORS_PER_ENTRY,
    ZERO_CLASS_BYTES,
)


class TargetRatio(enum.Enum):
    """An allocation's annotated target compression ratio."""

    X1 = "1x"
    X1_33 = "1.33x"
    X2 = "2x"
    X4 = "4x"
    X16 = "16x"  # the mostly-zero page class

    @property
    def device_sectors(self) -> int:
        """32 B sectors of each entry resident in device memory.

        The 16x class keeps a sub-sector 8 B slot; it reports 0 here
        and is special-cased by :attr:`device_bytes`.
        """
        return _DEVICE_SECTORS[self]

    @property
    def device_bytes(self) -> int:
        """Device-resident bytes per 128 B entry."""
        if self is TargetRatio.X16:
            return ZERO_CLASS_BYTES
        return self.device_sectors * SECTOR_BYTES

    @property
    def buddy_bytes(self) -> int:
        """Carve-out bytes reserved per entry (the overflow slot)."""
        return MEMORY_ENTRY_BYTES - self.device_bytes

    @property
    def ratio(self) -> float:
        """Nominal capacity expansion of the class."""
        return MEMORY_ENTRY_BYTES / self.device_bytes

    @classmethod
    def from_device_sectors(cls, sectors: int) -> "TargetRatio":
        """The sector-aligned target owning ``sectors`` device sectors."""
        for target, count in _DEVICE_SECTORS.items():
            if target is not cls.X16 and count == sectors:
                return target
        raise ValueError(f"no sector-aligned target with {sectors} sectors")


_DEVICE_SECTORS = {
    TargetRatio.X1: 4,
    TargetRatio.X1_33: 3,
    TargetRatio.X2: 2,
    TargetRatio.X4: 1,
    TargetRatio.X16: 0,
}

#: Sector-aligned targets the profiler may choose, best-first.
ALLOWED_TARGETS: tuple[TargetRatio, ...] = (
    TargetRatio.X4,
    TargetRatio.X2,
    TargetRatio.X1_33,
    TargetRatio.X1,
)


def buddy_sectors_needed(
    entry_sectors: int, target: TargetRatio, fits_zero_slot: bool = False
) -> int:
    """Sectors of an entry that must be fetched from buddy-memory.

    Args:
        entry_sectors: Compressed size of the entry in sectors (1–4).
        target: The owning allocation's target ratio.
        fits_zero_slot: Whether the entry compresses into the 8 B slot
            (only meaningful for the 16x class).

    Returns:
        0 when the entry fits its device-resident budget, otherwise
        the number of overflow sectors read over the interconnect.
    """
    if not 1 <= entry_sectors <= SECTORS_PER_ENTRY:
        raise ValueError(f"entry sectors {entry_sectors} outside 1..4")
    if target is TargetRatio.X16:
        # The 8 B slot only fits zero-class entries; anything larger
        # sources its compressed sectors entirely from buddy storage.
        return 0 if fits_zero_slot else entry_sectors
    return max(0, entry_sectors - target.device_sectors)
