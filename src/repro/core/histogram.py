"""Per-allocation compressed-size histograms.

The paper's profiler "periodically calculates a histogram of
compressed memory-entries per allocation"; target ratios are chosen
from these histograms.  :class:`SectorHistogram` is exactly that
object — counts of entries per sector bucket plus the count that fits
the 8 B zero-page slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.sectors import sectors_for_sizes
from repro.core.entry import TargetRatio
from repro.units import SECTORS_PER_ENTRY, ZERO_CLASS_BYTES


@dataclass
class SectorHistogram:
    """Counts of memory-entries by compressed sector footprint.

    Attributes:
        sector_counts: ``(4,)`` counts of entries needing 1..4 sectors.
        zero_fit: Entries whose compressed size is at most 8 B (these
            also appear in ``sector_counts[0]``).
    """

    sector_counts: np.ndarray = field(
        default_factory=lambda: np.zeros(SECTORS_PER_ENTRY, dtype=np.int64)
    )
    zero_fit: int = 0

    @classmethod
    def from_sizes(cls, sizes: np.ndarray) -> "SectorHistogram":
        """Build a histogram from raw compressed sizes in bytes."""
        sizes = np.asarray(sizes, dtype=np.int64)
        sectors = sectors_for_sizes(sizes)
        counts = np.bincount(sectors - 1, minlength=SECTORS_PER_ENTRY).astype(
            np.int64
        )
        return cls(counts, int((sizes <= ZERO_CLASS_BYTES).sum()))

    @property
    def total(self) -> int:
        return int(self.sector_counts.sum())

    def merge(self, other: "SectorHistogram") -> "SectorHistogram":
        """Histogram of the union of both entry populations."""
        return SectorHistogram(
            self.sector_counts + other.sector_counts,
            self.zero_fit + other.zero_fit,
        )

    def overflow_fraction(self, target: TargetRatio) -> float:
        """Fraction of entries that would need buddy accesses at ``target``."""
        if self.total == 0:
            return 0.0
        if target is TargetRatio.X16:
            return 1.0 - self.zero_fit / self.total
        overflowing = int(self.sector_counts[target.device_sectors :].sum())
        return overflowing / self.total

    def buddy_sector_fraction(self, target: TargetRatio) -> float:
        """Average overflow sectors per entry at ``target``.

        Unlike :meth:`overflow_fraction` (what fraction of entries
        touch buddy-memory at all), this weights by how many sectors
        each overflowing entry sources remotely — the quantity the
        traffic model needs.
        """
        if self.total == 0:
            return 0.0
        sectors = np.arange(1, SECTORS_PER_ENTRY + 1)
        if target is TargetRatio.X16:
            # Non-zero-fit entries fetch all their compressed sectors
            # remotely.  Approximate zero-fit entries as 1-sector.
            remote = self.sector_counts @ sectors - self.zero_fit
            return float(remote) / self.total
        overflow = np.maximum(0, sectors - target.device_sectors)
        return float(self.sector_counts @ overflow) / self.total

    def mean_sectors(self) -> float:
        """Average compressed sectors per entry."""
        if self.total == 0:
            return 0.0
        sectors = np.arange(1, SECTORS_PER_ENTRY + 1)
        return float(self.sector_counts @ sectors) / self.total
