"""Buddy Compression — the paper's primary contribution.

The engine follows the paper's flow end to end:

1. :mod:`repro.core.profiler` runs the profiling pass over a smaller
   dataset (the paper: SpecAccel ``train``, DL small batch) and builds
   the columnar :class:`~repro.core.profile_tensor.ProfileTensor` of
   per-allocation compressed-size histograms.
2. :mod:`repro.core.targets` turns the tensor into per-allocation
   target compression ratios under a Buddy Threshold, including the
   naive whole-program baseline and the 16x zero-page promotion.
3. :mod:`repro.core.allocator` and :mod:`repro.core.translation` model
   the split device/buddy layout: GBBR-relative carve-out addressing,
   page-table extension bits and the 4-bit-per-entry size metadata.
4. :mod:`repro.core.metadata_cache` models the sliced metadata cache
   (Fig. 5b).
5. :mod:`repro.core.controller` ties it together: profile → annotate →
   place → measure compression ratio and buddy traffic on the
   reference run (Figs. 7, 8, 9).
"""

from repro.core.entry import TargetRatio, ALLOWED_TARGETS
from repro.core.histogram import SectorHistogram
from repro.core.profile_tensor import EntryStateTensor, ProfileTensor
from repro.core.profiler import (
    AllocationProfile,
    BenchmarkProfile,
    entry_state_tensor,
    profile_benchmark,
    profile_tensor,
)
from repro.core.targets import (
    DesignPoint,
    select_naive,
    select_per_allocation,
    apply_zero_page,
    selection_ratio,
    threshold_sweep,
)
from repro.core.controller import BuddyCompressor, BuddyConfig, EvaluationResult

__all__ = [
    "TargetRatio",
    "ALLOWED_TARGETS",
    "SectorHistogram",
    "ProfileTensor",
    "EntryStateTensor",
    "AllocationProfile",
    "BenchmarkProfile",
    "entry_state_tensor",
    "profile_benchmark",
    "profile_tensor",
    "DesignPoint",
    "select_naive",
    "select_per_allocation",
    "apply_zero_page",
    "selection_ratio",
    "threshold_sweep",
    "BuddyCompressor",
    "BuddyConfig",
    "EvaluationResult",
]
