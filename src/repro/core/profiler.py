"""The profiling pass.

Mirrors Section 3.4: the application is first run on a representative
smaller dataset (SpecAccel's ``train`` set; a smaller mini-batch for
DL) while a tool snapshots memory and accumulates per-allocation
histograms of compressed memory-entry sizes.  The output feeds target
selection in :mod:`repro.core.targets`.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.compression.base import CompressionAlgorithm
from repro.compression.bpc import BPCCompressor
from repro.core.histogram import SectorHistogram
from repro.workloads.snapshots import (
    SnapshotConfig,
    generate_run,
)


@dataclass
class AllocationProfile:
    """Aggregated profiling data for one allocation.

    Attributes:
        name: Allocation label.
        fraction: Fraction of the benchmark footprint.
        merged: Histogram over all profiling snapshots.
        per_snapshot: One histogram per snapshot (stability checks —
            the zero-page class requires allocations that stay
            mostly-zero for the whole run).
    """

    name: str
    fraction: float
    merged: SectorHistogram
    per_snapshot: list[SectorHistogram]

    def worst_overflow(self, target) -> float:
        """Max over snapshots of the overflow fraction at ``target``.

        This is the "conservative" view the paper's profiler takes:
        355.seismic's compressibility halves over its run, and a
        target chosen from the run average would overflow massively
        late in execution.
        """
        return max(
            (h.overflow_fraction(target) for h in self.per_snapshot),
            default=1.0,
        )

    @property
    def worst_zero_overflow(self) -> float:
        """Max over snapshots of the 16x-class overflow fraction."""
        from repro.core.entry import TargetRatio

        return self.worst_overflow(TargetRatio.X16)


@dataclass
class BenchmarkProfile:
    """Profiling output for one benchmark run."""

    benchmark: str
    allocations: list[AllocationProfile]

    def allocation(self, name: str) -> AllocationProfile:
        for alloc in self.allocations:
            if alloc.name == name:
                return alloc
        raise KeyError(f"no allocation {name!r} in profile of {self.benchmark}")

    def program_histogram(self) -> SectorHistogram:
        """Whole-program histogram (what the naive design sees)."""
        merged = SectorHistogram()
        for alloc in self.allocations:
            merged = merged.merge(alloc.merged)
        return merged


def profile_snapshots(
    benchmark: str,
    snapshots,
    algorithm: CompressionAlgorithm | None = None,
) -> BenchmarkProfile:
    """Profile an explicit sequence of memory snapshots."""
    algorithm = algorithm or BPCCompressor()
    per_alloc: dict[str, list[SectorHistogram]] = {}
    fractions: dict[str, float] = {}
    for snapshot in snapshots:
        for alloc in snapshot.allocations:
            sizes = algorithm.compressed_sizes(alloc.data)
            histogram = SectorHistogram.from_sizes(sizes)
            per_alloc.setdefault(alloc.name, []).append(histogram)
            fractions[alloc.name] = alloc.spec.fraction
    profiles = []
    for name, histograms in per_alloc.items():
        merged = SectorHistogram()
        for histogram in histograms:
            merged = merged.merge(histogram)
        profiles.append(
            AllocationProfile(name, fractions[name], merged, histograms)
        )
    return BenchmarkProfile(benchmark, profiles)


def profile_benchmark(
    benchmark: str,
    config: SnapshotConfig | None = None,
    algorithm: CompressionAlgorithm | None = None,
) -> BenchmarkProfile:
    """Run the profiling pass on the benchmark's *profile* dataset."""
    config = (config or SnapshotConfig()).as_profile()
    return profile_snapshots(
        benchmark, generate_run(benchmark, config), algorithm
    )
