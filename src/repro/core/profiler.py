"""The profiling pass.

Mirrors Section 3.4: the application is first run on a representative
smaller dataset (SpecAccel's ``train`` set; a smaller mini-batch for
DL) while a tool snapshots memory and accumulates per-allocation
histograms of compressed memory-entry sizes.  The output feeds target
selection in :mod:`repro.core.targets`.

The canonical profile representation is the columnar
:class:`~repro.core.profile_tensor.ProfileTensor`; the
:class:`BenchmarkProfile` / :class:`AllocationProfile` classes kept
here are thin views over it for existing callers.  A tensor build is
one *stacked* pass: all allocations of all snapshots are compressed by
a single bulk ``compressed_sizes`` call (see
:func:`tensor_from_snapshots` and :func:`bulk_compression_call_count`).
Tensors are memoised per process and — when the experiment engine
installs its result cache via :func:`set_tensor_cache` — persisted on
disk, so a sweep profiles each (benchmark, config, algorithm)
combination exactly once no matter how many design points it
evaluates.  :func:`entry_state_tensor` extends the same memo/cache
treatment to the per-entry state the timing simulators consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.base import CompressionAlgorithm, as_blocks
from repro.compression.bpc import BPCCompressor
from repro.core.entry import TargetRatio
from repro.core.histogram import SectorHistogram
from repro.core.profile_tensor import TARGET_INDEX, EntryStateTensor, ProfileTensor
from repro.units import SECTORS_PER_ENTRY
from repro.workloads.snapshots import (
    SnapshotConfig,
    generate_run,
)


@dataclass
class AllocationProfile:
    """View of one allocation's row of a :class:`ProfileTensor`.

    Attributes:
        tensor: The owning profile tensor.
        position: Row on the tensor's allocation axis.
    """

    tensor: ProfileTensor
    position: int

    @property
    def name(self) -> str:
        return self.tensor.names[self.position]

    @property
    def fraction(self) -> float:
        """Fraction of the benchmark footprint."""
        return float(self.tensor.fractions[self.position])

    @property
    def merged(self) -> SectorHistogram:
        """Histogram over all profiling snapshots."""
        return self.tensor.merged_histogram(self.position)

    @property
    def per_snapshot(self) -> list[SectorHistogram]:
        """One histogram view per snapshot (stability checks)."""
        return [
            self.tensor.histogram(self.position, snapshot)
            for snapshot in range(self.tensor.snapshot_count)
        ]

    def worst_overflow(self, target: TargetRatio) -> float:
        """Max over snapshots of the overflow fraction at ``target``.

        This is the "conservative" view the paper's profiler takes:
        355.seismic's compressibility halves over its run, and a
        target chosen from the run average would overflow massively
        late in execution.
        """
        return float(
            self.tensor.worst_overflow[TARGET_INDEX[target], self.position]
        )

    @property
    def worst_zero_overflow(self) -> float:
        """Max over snapshots of the 16x-class overflow fraction."""
        return self.worst_overflow(TargetRatio.X16)


@dataclass
class BenchmarkProfile:
    """Profiling output for one benchmark run (a tensor view)."""

    tensor: ProfileTensor

    @property
    def benchmark(self) -> str:
        return self.tensor.benchmark

    @property
    def allocations(self) -> list[AllocationProfile]:
        return [
            AllocationProfile(self.tensor, position)
            for position in range(self.tensor.allocation_count)
        ]

    def allocation(self, name: str) -> AllocationProfile:
        return AllocationProfile(self.tensor, self.tensor.index(name))

    def program_histogram(self) -> SectorHistogram:
        """Whole-program histogram (what the naive design sees)."""
        return self.tensor.program_histogram()


# ---------------------------------------------------------------------------
# Tensor construction.
# ---------------------------------------------------------------------------
@dataclass
class _GatheredRun:
    """One benchmark run gathered for a stacked compression pass.

    Splitting the gather from the scatter lets
    :func:`profile_tensors_bulk` concatenate several runs' block
    arrays into a *single* ``compressed_sizes`` call — entries
    compress independently, so the merged call's sizes are
    element-wise identical to per-run calls.
    """

    benchmark: str
    names: tuple[str, ...]
    fractions: np.ndarray
    cells: list[tuple[int, int, int]]  # (position, snapshot, rows)
    blocks: list[np.ndarray]
    snapshot_count: int

    @property
    def rows(self) -> int:
        return sum(rows for _, _, rows in self.cells)


def _gather_run(benchmark: str, snapshots) -> _GatheredRun:
    """Gather a snapshot sequence's blocks and cell map for stacking."""
    order: dict[str, int] = {}
    fractions: dict[str, float] = {}
    blocks: list[np.ndarray] = []
    #: Cell map: (allocation position, snapshot index, entry rows).
    cells: list[tuple[int, int, int]] = []
    snapshot_count = 0
    for snapshot in snapshots:
        for alloc in snapshot.allocations:
            position = order.setdefault(alloc.name, len(order))
            # Per-allocation block framing (incl. padding of ragged
            # tails) must match what a per-cell compressed_sizes call
            # would have seen, so cells are normalised before stacking.
            cell_blocks = as_blocks(alloc.data)
            blocks.append(cell_blocks)
            cells.append((position, snapshot_count, cell_blocks.shape[0]))
            fractions[alloc.name] = alloc.spec.fraction
        snapshot_count += 1
    names = tuple(order)
    appearances = [0] * len(names)
    for position, _, _ in cells:
        appearances[position] += 1
    for name, seen in zip(names, appearances):
        if seen != snapshot_count:
            raise ValueError(
                f"allocation {name!r} present in {seen} of "
                f"{snapshot_count} snapshots; profiles must be rectangular"
            )
    return _GatheredRun(
        benchmark=benchmark,
        names=names,
        fractions=np.array([fractions[name] for name in names]),
        cells=cells,
        blocks=blocks,
        snapshot_count=snapshot_count,
    )


def _scatter_tensor(gathered: _GatheredRun, sizes: np.ndarray) -> ProfileTensor:
    """Scatter one run's slice of bulk sizes into its tensor columns."""
    names = gathered.names
    counts = np.zeros(
        (len(names), gathered.snapshot_count, SECTORS_PER_ENTRY), np.int64
    )
    zero_fit = np.zeros((len(names), gathered.snapshot_count), np.int64)
    offset = 0
    for position, snapshot, rows in gathered.cells:
        # One SectorHistogram.from_sizes call per cell keeps the
        # sector-bucket / zero-class rule defined in exactly one
        # place; the tensor stores its integer columns.
        histogram = SectorHistogram.from_sizes(sizes[offset : offset + rows])
        counts[position, snapshot] = histogram.sector_counts
        zero_fit[position, snapshot] = histogram.zero_fit
        offset += rows
    return ProfileTensor(
        benchmark=gathered.benchmark,
        names=names,
        fractions=gathered.fractions,
        counts=counts,
        zero_fit=zero_fit,
    )


def tensor_from_snapshots(
    benchmark: str,
    snapshots,
    algorithm: CompressionAlgorithm | None = None,
) -> ProfileTensor:
    """Build the columnar profile of an explicit snapshot sequence.

    The whole run is compressed in one stacked pass: every allocation
    of every snapshot is gathered into a single ``(N, 32)`` uint32
    block array alongside an (allocation, snapshot) cell map, one bulk
    :meth:`~repro.compression.base.CompressionAlgorithm.compressed_sizes`
    call sizes all of it, and the results are scattered back into the
    tensor's columns.  Per-cell ``compressed_sizes`` calls would give
    element-wise identical sizes (entries are compressed independently;
    the property tests pin this for every registered algorithm), but
    the stacked pass amortises the per-call dispatch across the run —
    the "compress in bulk, off the critical path" structure of the
    paper's offline profiler.
    """
    algorithm = algorithm or BPCCompressor()
    gathered = _gather_run(benchmark, snapshots)
    if not gathered.cells:
        return _scatter_tensor(gathered, np.zeros(0, dtype=np.int64))
    stacked = np.concatenate(gathered.blocks, axis=0)
    sizes = algorithm.compressed_sizes(stacked)
    record_bulk_compression_call()
    return _scatter_tensor(gathered, sizes)


# ---------------------------------------------------------------------------
# Memoised / cached tensor access.
# ---------------------------------------------------------------------------
#: Per-process tensor memo: (benchmark, config, algorithm key) -> tensor.
_TENSOR_MEMO: dict[tuple, ProfileTensor] = {}

#: Engine result cache for tensors (installed by the experiment runner).
_TENSOR_CACHE = None

#: Whether the per-process memos above are consulted at all.  The
#: advisor service disables them after installing its own hot cache
#: via :func:`set_tensor_cache`, so residency (and the hit/miss stats
#: the service reports) live in exactly one layer.
_TENSOR_MEMO_ENABLED = True

#: Modules whose source forms the on-disk tensor cache's code salt.
#: The compression algorithm's own defining module is appended per
#: call (see :func:`profile_tensor`), so editing any compressor
#: invalidates exactly the tensors built with it.
_TENSOR_SALT_MODULES = (
    "repro.compression.base",
    "repro.compression.sectors",
    "repro.core.histogram",
    "repro.core.profile_tensor",
    "repro.core.profiler",
    "repro.rng",
    "repro.workloads.calibration",
    "repro.workloads.catalog",
    "repro.workloads.snapshots",
    "repro.workloads.valuemodels",
)

#: Tensor builds actually executed (memo and disk hits excluded).
_PROFILE_PASSES = 0

#: Bulk ``compressed_sizes`` calls issued by the stacked profiling
#: pass.  One tensor build performs exactly one, so a sweep's total
#: equals its distinct (benchmark, config, algorithm) combinations.
_BULK_COMPRESSION_CALLS = 0

#: Per-entry state builds actually executed (memo and disk hits
#: excluded).  Each build generates exactly one snapshot.
_ENTRY_STATE_BUILDS = 0


def profile_pass_count() -> int:
    """Profiling passes (tensor builds) executed by this process."""
    return _PROFILE_PASSES


def bulk_compression_call_count() -> int:
    """Stacked bulk compression calls executed by this process.

    The stacked-profiling contract is asserted against this counter:
    a sweep must compress each (benchmark, config, algorithm)
    combination in exactly one bulk call, however many snapshots,
    allocations and design points it spans.  The Fig. 3 free-size
    study (:func:`repro.analysis.compression_study.free_size_study`)
    records its per-codec bulk calls here too, extending the pinning
    to the multi-codec path.
    """
    return _BULK_COMPRESSION_CALLS


def record_bulk_compression_call() -> None:
    """Record a stacked bulk ``compressed_sizes`` call.

    Called by every code path honouring the stacked-pass contract
    (the profile-tensor build below, the Fig. 3 free-size study), so
    tests can pin "exactly one bulk call per (benchmark, config,
    algorithm)" across all of them.
    """
    global _BULK_COMPRESSION_CALLS
    _BULK_COMPRESSION_CALLS += 1


def entry_state_build_count() -> int:
    """Entry-state reductions executed (not memo/cache hits)."""
    return _ENTRY_STATE_BUILDS


def set_tensor_cache(cache):
    """Install a :class:`repro.engine.cache.ResultCache` for tensors.

    Returns the previously installed cache (or ``None``) so callers
    can restore it; pass ``None`` to uninstall.
    """
    global _TENSOR_CACHE
    previous = _TENSOR_CACHE
    _TENSOR_CACHE = cache
    return previous


def set_tensor_memo_enabled(enabled: bool) -> bool:
    """Enable/disable the per-process tensor memos; returns previous.

    With the memo disabled, every lookup goes straight to the
    installed tensor cache (see :func:`set_tensor_cache`) — the hook
    the advisor service uses to promote the memo to its shared hot
    cache, whose admission/eviction policy and per-namespace counters
    would otherwise be bypassed by memo hits.
    """
    global _TENSOR_MEMO_ENABLED
    previous = _TENSOR_MEMO_ENABLED
    _TENSOR_MEMO_ENABLED = enabled
    return previous


def clear_profile_cache() -> None:
    """Drop the per-process profile memos (tests, memory pressure)."""
    _TENSOR_MEMO.clear()
    _ENTRY_STATE_MEMO.clear()


def _algorithm_key(algorithm: CompressionAlgorithm) -> str:
    return f"{type(algorithm).__module__}.{type(algorithm).__qualname__}"


def tensor_memo_key(
    benchmark: str,
    config: SnapshotConfig,
    algorithm: CompressionAlgorithm,
) -> tuple:
    """The per-process memo key of one profile tensor."""
    from repro.workloads.catalog import get_benchmark

    return (get_benchmark(benchmark).name, config, _algorithm_key(algorithm))


def entry_state_memo_key(
    benchmark: str, config: SnapshotConfig, index: int
) -> tuple:
    """The per-process memo key of one entry-state tensor."""
    from repro.workloads.catalog import get_benchmark

    return (get_benchmark(benchmark).name, config, int(index))


def tensor_cache_key(
    benchmark: str,
    config: SnapshotConfig,
    algorithm: CompressionAlgorithm,
):
    """On-disk cache address of one profile tensor.

    The sweep planner keys its ``profile_tensor`` nodes with exactly
    this digest, so predicted cache hits in ``repro plan --explain``
    and the planner's read-through agree byte-for-byte with the
    profiler's own disk lookups.
    """
    from repro.engine.cache import CacheKey, code_salt, param_digest

    name, cfg, algorithm_key = tensor_memo_key(benchmark, config, algorithm)
    digest = param_digest(
        "profile.tensor",
        {"benchmark": name, "config": cfg, "algorithm": algorithm_key},
        code_salt(_TENSOR_SALT_MODULES + (type(algorithm).__module__,)),
    )
    return CacheKey("profile.tensor", digest)


def entry_state_cache_key(benchmark: str, config: SnapshotConfig, index: int):
    """On-disk cache address of one entry-state tensor."""
    from repro.engine.cache import CacheKey, code_salt, param_digest

    name, cfg, idx = entry_state_memo_key(benchmark, config, index)
    digest = param_digest(
        "profile.entries",
        {"benchmark": name, "config": cfg, "index": idx},
        code_salt(_TENSOR_SALT_MODULES),
    )
    return CacheKey("profile.entries", digest)


def seed_memo(tensors=None, entry_states=None) -> None:
    """Install prebuilt tensors into the per-process memos.

    The planner ships shared-stage results to cacheless point workers
    through this hook (``tensors`` maps :func:`tensor_memo_key` keys to
    :class:`ProfileTensor`, ``entry_states`` maps
    :func:`entry_state_memo_key` keys to
    :class:`~repro.core.profile_tensor.EntryStateTensor`), so point
    execution finds them warm without rebuilding or touching disk.
    """
    if tensors:
        _TENSOR_MEMO.update(tensors)
    if entry_states:
        _ENTRY_STATE_MEMO.update(entry_states)


def profile_tensors_bulk(
    benchmarks,
    config: SnapshotConfig | None = None,
    algorithm: CompressionAlgorithm | None = None,
    built: list | None = None,
) -> dict:
    """Profile several benchmarks through ONE bulk compression call.

    The mega-batched form of :func:`profile_tensor`: every benchmark
    missing from the memo (and, when installed, the disk cache) has
    its run gathered, all gathered block arrays are concatenated, and
    a single ``compressed_sizes`` call sizes the whole batch before
    per-run scatter.  Entries compress independently, so each
    resulting tensor is bit-identical to a solo
    :func:`profile_tensor` build — but a planned Fig. 7+9 sweep
    issues one bulk call where the unplanned path issues one per
    benchmark.  Counter semantics are preserved: ``_PROFILE_PASSES``
    advances once per tensor actually built, and
    :func:`record_bulk_compression_call` once per stacked call.

    When ``built`` is a list, the names of the benchmarks whose
    tensors were actually built (memo and disk hits excluded) are
    appended to it — the planner's generation accounting.
    """
    global _PROFILE_PASSES
    config = config or SnapshotConfig()
    algorithm = algorithm or BPCCompressor()
    tensors: dict[str, ProfileTensor] = {}
    missing: list[str] = []
    for benchmark in benchmarks:
        name, _, _ = tensor_memo_key(benchmark, config, algorithm)
        if name in tensors:
            continue
        memo_key = (name, config, _algorithm_key(algorithm))
        tensor = _TENSOR_MEMO.get(memo_key) if _TENSOR_MEMO_ENABLED else None
        if tensor is None and _TENSOR_CACHE is not None:
            from repro.engine.cache import CacheMiss

            try:
                tensor = _TENSOR_CACHE.get(
                    tensor_cache_key(name, config, algorithm)
                )
            except CacheMiss:
                tensor = None
            if tensor is not None and _TENSOR_MEMO_ENABLED:
                _TENSOR_MEMO[memo_key] = tensor
        if tensor is None:
            missing.append(name)
        else:
            tensors[name] = tensor
    if missing:
        gathered = [
            _gather_run(name, generate_run(name, config)) for name in missing
        ]
        blocks = [block for run in gathered for block in run.blocks]
        sizes = np.zeros(0, dtype=np.int64)
        if blocks:
            sizes = algorithm.compressed_sizes(np.concatenate(blocks, axis=0))
            record_bulk_compression_call()
        offset = 0
        for run in gathered:
            rows = run.rows
            tensor = _scatter_tensor(run, sizes[offset : offset + rows])
            offset += rows
            _PROFILE_PASSES += 1
            if built is not None:
                built.append(run.benchmark)
            if _TENSOR_MEMO_ENABLED:
                _TENSOR_MEMO[
                    (run.benchmark, config, _algorithm_key(algorithm))
                ] = tensor
            if _TENSOR_CACHE is not None:
                _TENSOR_CACHE.put(
                    tensor_cache_key(run.benchmark, config, algorithm), tensor
                )
            tensors[run.benchmark] = tensor
    return {
        benchmark: tensors[tensor_memo_key(benchmark, config, algorithm)[0]]
        for benchmark in benchmarks
    }


def profile_tensor(
    benchmark: str,
    config: SnapshotConfig | None = None,
    algorithm: CompressionAlgorithm | None = None,
) -> ProfileTensor:
    """The columnar profile of a benchmark run under ``config``.

    Memoised per process and, when the engine has installed its result
    cache, content-addressed on disk under the ``profile.tensor``
    namespace — the compact tensor (a few KB) is what persists, not the
    regenerated snapshots.
    """
    global _PROFILE_PASSES
    from repro.workloads.catalog import get_benchmark

    config = config or SnapshotConfig()
    algorithm = algorithm or BPCCompressor()
    name = get_benchmark(benchmark).name
    memo_key = (name, config, _algorithm_key(algorithm))
    tensor = _TENSOR_MEMO.get(memo_key) if _TENSOR_MEMO_ENABLED else None
    if tensor is not None:
        return tensor

    cache_key = None
    if _TENSOR_CACHE is not None:
        from repro.engine.cache import CacheMiss

        cache_key = tensor_cache_key(name, config, algorithm)
        try:
            tensor = _TENSOR_CACHE.get(cache_key)
        except CacheMiss:
            tensor = None
        if tensor is not None:
            if _TENSOR_MEMO_ENABLED:
                _TENSOR_MEMO[memo_key] = tensor
            return tensor

    tensor = tensor_from_snapshots(name, generate_run(name, config), algorithm)
    _PROFILE_PASSES += 1
    if _TENSOR_MEMO_ENABLED:
        _TENSOR_MEMO[memo_key] = tensor
    if cache_key is not None:
        _TENSOR_CACHE.put(cache_key, tensor)
    return tensor


#: Per-process entry-state memo: (benchmark, config, index) -> state.
_ENTRY_STATE_MEMO: dict[tuple, EntryStateTensor] = {}


def entry_state_tensor(
    benchmark: str,
    config: SnapshotConfig | None = None,
    index: int = 0,
) -> EntryStateTensor:
    """The per-entry compression state of one dump of a benchmark run.

    This is the ``profile.tensor`` API extended down to the
    simulators: :class:`repro.gpusim.compression.CompressionState` and
    the trace generator consume the returned
    :class:`~repro.core.profile_tensor.EntryStateTensor` instead of a
    regenerated :class:`~repro.workloads.snapshots.MemorySnapshot`.
    Memoised per process and, when the engine has installed its result
    cache, content-addressed on disk under the ``profile.entries``
    namespace — so a warm Fig. 10/11 sweep generates zero snapshots.
    """
    global _ENTRY_STATE_BUILDS
    from repro.workloads.catalog import get_benchmark
    from repro.workloads.snapshots import generate_snapshot

    config = config or SnapshotConfig()
    name = get_benchmark(benchmark).name
    memo_key = (name, config, int(index))
    state = _ENTRY_STATE_MEMO.get(memo_key) if _TENSOR_MEMO_ENABLED else None
    if state is not None:
        return state

    cache_key = None
    if _TENSOR_CACHE is not None:
        from repro.engine.cache import CacheMiss

        cache_key = entry_state_cache_key(name, config, index)
        try:
            state = _TENSOR_CACHE.get(cache_key)
        except CacheMiss:
            state = None
        if state is not None:
            if _TENSOR_MEMO_ENABLED:
                _ENTRY_STATE_MEMO[memo_key] = state
            return state

    state = generate_snapshot(name, index, config).entry_state()
    _ENTRY_STATE_BUILDS += 1
    if _TENSOR_MEMO_ENABLED:
        _ENTRY_STATE_MEMO[memo_key] = state
    if cache_key is not None:
        _TENSOR_CACHE.put(cache_key, state)
    return state


# ---------------------------------------------------------------------------
# Legacy-shaped entry points.
# ---------------------------------------------------------------------------
def profile_snapshots(
    benchmark: str,
    snapshots,
    algorithm: CompressionAlgorithm | None = None,
) -> BenchmarkProfile:
    """Profile an explicit sequence of memory snapshots."""
    return BenchmarkProfile(
        tensor_from_snapshots(benchmark, snapshots, algorithm)
    )


def profile_benchmark(
    benchmark: str,
    config: SnapshotConfig | None = None,
    algorithm: CompressionAlgorithm | None = None,
) -> BenchmarkProfile:
    """Run the profiling pass on the benchmark's *profile* dataset."""
    config = (config or SnapshotConfig()).as_profile()
    return BenchmarkProfile(profile_tensor(benchmark, config, algorithm))
