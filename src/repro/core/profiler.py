"""The profiling pass.

Mirrors Section 3.4: the application is first run on a representative
smaller dataset (SpecAccel's ``train`` set; a smaller mini-batch for
DL) while a tool snapshots memory and accumulates per-allocation
histograms of compressed memory-entry sizes.  The output feeds target
selection in :mod:`repro.core.targets`.

The canonical profile representation is the columnar
:class:`~repro.core.profile_tensor.ProfileTensor`; the
:class:`BenchmarkProfile` / :class:`AllocationProfile` classes kept
here are thin views over it for existing callers.  Tensors are
memoised per process and — when the experiment engine installs its
result cache via :func:`set_tensor_cache` — persisted on disk, so a
sweep profiles each (benchmark, config, algorithm) combination exactly
once no matter how many design points it evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.base import CompressionAlgorithm
from repro.compression.bpc import BPCCompressor
from repro.core.entry import TargetRatio
from repro.core.histogram import SectorHistogram
from repro.core.profile_tensor import TARGET_INDEX, ProfileTensor
from repro.units import SECTORS_PER_ENTRY
from repro.workloads.snapshots import (
    SnapshotConfig,
    generate_run,
)


@dataclass
class AllocationProfile:
    """View of one allocation's row of a :class:`ProfileTensor`.

    Attributes:
        tensor: The owning profile tensor.
        position: Row on the tensor's allocation axis.
    """

    tensor: ProfileTensor
    position: int

    @property
    def name(self) -> str:
        return self.tensor.names[self.position]

    @property
    def fraction(self) -> float:
        """Fraction of the benchmark footprint."""
        return float(self.tensor.fractions[self.position])

    @property
    def merged(self) -> SectorHistogram:
        """Histogram over all profiling snapshots."""
        return self.tensor.merged_histogram(self.position)

    @property
    def per_snapshot(self) -> list[SectorHistogram]:
        """One histogram view per snapshot (stability checks)."""
        return [
            self.tensor.histogram(self.position, snapshot)
            for snapshot in range(self.tensor.snapshot_count)
        ]

    def worst_overflow(self, target: TargetRatio) -> float:
        """Max over snapshots of the overflow fraction at ``target``.

        This is the "conservative" view the paper's profiler takes:
        355.seismic's compressibility halves over its run, and a
        target chosen from the run average would overflow massively
        late in execution.
        """
        return float(
            self.tensor.worst_overflow[TARGET_INDEX[target], self.position]
        )

    @property
    def worst_zero_overflow(self) -> float:
        """Max over snapshots of the 16x-class overflow fraction."""
        return self.worst_overflow(TargetRatio.X16)


@dataclass
class BenchmarkProfile:
    """Profiling output for one benchmark run (a tensor view)."""

    tensor: ProfileTensor

    @property
    def benchmark(self) -> str:
        return self.tensor.benchmark

    @property
    def allocations(self) -> list[AllocationProfile]:
        return [
            AllocationProfile(self.tensor, position)
            for position in range(self.tensor.allocation_count)
        ]

    def allocation(self, name: str) -> AllocationProfile:
        return AllocationProfile(self.tensor, self.tensor.index(name))

    def program_histogram(self) -> SectorHistogram:
        """Whole-program histogram (what the naive design sees)."""
        return self.tensor.program_histogram()


# ---------------------------------------------------------------------------
# Tensor construction.
# ---------------------------------------------------------------------------
def tensor_from_snapshots(
    benchmark: str,
    snapshots,
    algorithm: CompressionAlgorithm | None = None,
) -> ProfileTensor:
    """Build the columnar profile of an explicit snapshot sequence."""
    algorithm = algorithm or BPCCompressor()
    order: dict[str, int] = {}
    fractions: dict[str, float] = {}
    columns: list[list[tuple[np.ndarray, int]]] = []
    snapshot_count = 0
    for snapshot in snapshots:
        for alloc in snapshot.allocations:
            position = order.setdefault(alloc.name, len(order))
            if position == len(columns):
                columns.append([])
            # One SectorHistogram.from_sizes call per cell keeps the
            # sector-bucket / zero-class rule defined in exactly one
            # place; the tensor stores its integer columns.
            histogram = SectorHistogram.from_sizes(
                algorithm.compressed_sizes(alloc.data)
            )
            columns[position].append(
                (histogram.sector_counts, histogram.zero_fit)
            )
            fractions[alloc.name] = alloc.spec.fraction
        snapshot_count += 1
    names = tuple(order)
    for name, column in zip(names, columns):
        if len(column) != snapshot_count:
            raise ValueError(
                f"allocation {name!r} present in {len(column)} of "
                f"{snapshot_count} snapshots; profiles must be rectangular"
            )
    counts = np.zeros((len(names), snapshot_count, SECTORS_PER_ENTRY), np.int64)
    zero_fit = np.zeros((len(names), snapshot_count), np.int64)
    for position, column in enumerate(columns):
        for snapshot, (cell, zero) in enumerate(column):
            counts[position, snapshot] = cell
            zero_fit[position, snapshot] = zero
    return ProfileTensor(
        benchmark=benchmark,
        names=names,
        fractions=np.array([fractions[name] for name in names]),
        counts=counts,
        zero_fit=zero_fit,
    )


# ---------------------------------------------------------------------------
# Memoised / cached tensor access.
# ---------------------------------------------------------------------------
#: Per-process tensor memo: (benchmark, config, algorithm key) -> tensor.
_TENSOR_MEMO: dict[tuple, ProfileTensor] = {}

#: Engine result cache for tensors (installed by the experiment runner).
_TENSOR_CACHE = None

#: Modules whose source forms the on-disk tensor cache's code salt.
#: The compression algorithm's own defining module is appended per
#: call (see :func:`profile_tensor`), so editing any compressor
#: invalidates exactly the tensors built with it.
_TENSOR_SALT_MODULES = (
    "repro.compression.base",
    "repro.compression.sectors",
    "repro.core.histogram",
    "repro.core.profile_tensor",
    "repro.core.profiler",
    "repro.rng",
    "repro.workloads.calibration",
    "repro.workloads.catalog",
    "repro.workloads.snapshots",
    "repro.workloads.valuemodels",
)

#: Tensor builds actually executed (memo and disk hits excluded).
_PROFILE_PASSES = 0


def profile_pass_count() -> int:
    """Profiling passes (tensor builds) executed by this process."""
    return _PROFILE_PASSES


def set_tensor_cache(cache):
    """Install a :class:`repro.engine.cache.ResultCache` for tensors.

    Returns the previously installed cache (or ``None``) so callers
    can restore it; pass ``None`` to uninstall.
    """
    global _TENSOR_CACHE
    previous = _TENSOR_CACHE
    _TENSOR_CACHE = cache
    return previous


def clear_profile_cache() -> None:
    """Drop the per-process tensor memo (tests, memory pressure)."""
    _TENSOR_MEMO.clear()


def _algorithm_key(algorithm: CompressionAlgorithm) -> str:
    return f"{type(algorithm).__module__}.{type(algorithm).__qualname__}"


def profile_tensor(
    benchmark: str,
    config: SnapshotConfig | None = None,
    algorithm: CompressionAlgorithm | None = None,
) -> ProfileTensor:
    """The columnar profile of a benchmark run under ``config``.

    Memoised per process and, when the engine has installed its result
    cache, content-addressed on disk under the ``profile.tensor``
    namespace — the compact tensor (a few KB) is what persists, not the
    regenerated snapshots.
    """
    global _PROFILE_PASSES
    from repro.workloads.catalog import get_benchmark

    config = config or SnapshotConfig()
    algorithm = algorithm or BPCCompressor()
    name = get_benchmark(benchmark).name
    memo_key = (name, config, _algorithm_key(algorithm))
    tensor = _TENSOR_MEMO.get(memo_key)
    if tensor is not None:
        return tensor

    cache_key = None
    if _TENSOR_CACHE is not None:
        from repro.engine.cache import CacheKey, CacheMiss, code_salt, param_digest

        digest = param_digest(
            "profile.tensor",
            {"benchmark": name, "config": config, "algorithm": memo_key[2]},
            code_salt(
                _TENSOR_SALT_MODULES + (type(algorithm).__module__,)
            ),
        )
        cache_key = CacheKey("profile.tensor", digest)
        try:
            tensor = _TENSOR_CACHE.get(cache_key)
        except CacheMiss:
            tensor = None
        if tensor is not None:
            _TENSOR_MEMO[memo_key] = tensor
            return tensor

    tensor = tensor_from_snapshots(name, generate_run(name, config), algorithm)
    _PROFILE_PASSES += 1
    _TENSOR_MEMO[memo_key] = tensor
    if cache_key is not None:
        _TENSOR_CACHE.put(cache_key, tensor)
    return tensor


# ---------------------------------------------------------------------------
# Legacy-shaped entry points.
# ---------------------------------------------------------------------------
def profile_snapshots(
    benchmark: str,
    snapshots,
    algorithm: CompressionAlgorithm | None = None,
) -> BenchmarkProfile:
    """Profile an explicit sequence of memory snapshots."""
    return BenchmarkProfile(
        tensor_from_snapshots(benchmark, snapshots, algorithm)
    )


def profile_benchmark(
    benchmark: str,
    config: SnapshotConfig | None = None,
    algorithm: CompressionAlgorithm | None = None,
) -> BenchmarkProfile:
    """Run the profiling pass on the benchmark's *profile* dataset."""
    config = (config or SnapshotConfig()).as_profile()
    return BenchmarkProfile(profile_tensor(benchmark, config, algorithm))
