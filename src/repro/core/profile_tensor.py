"""Columnar profiling data: the pipeline's canonical representation.

The paper's profiler "periodically calculates a histogram of
compressed memory-entries per allocation", and every design-point
decision (Figs. 7-9) is a reduction over those histograms.  Rather
than materialising one Python histogram object per allocation per
snapshot, :class:`ProfileTensor` keeps the whole profile of a
benchmark run as dense arrays::

    counts    (allocations, snapshots, sector-buckets)  int64
    zero_fit  (allocations, snapshots)                  int64
    fractions (allocations,)                            float64

Selection policies (:mod:`repro.core.targets`) and design-point
evaluation (:mod:`repro.core.controller`) are vectorised reductions
over this tensor, so a threshold or design-point sweep profiles the
reference run once and evaluates every point as array ops.

Bit-compatibility contract: every reduction here reproduces the exact
IEEE-754 operation sequence of the historical per-object
:class:`~repro.core.histogram.SectorHistogram` path (same integer
divisions, same accumulation order over allocations), so results are
bit-identical to the legacy pipeline and cached digests stay valid.
:class:`~repro.core.histogram.SectorHistogram` survives as a thin view
over tensor rows for existing callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Mapping

import numpy as np

from repro.core.entry import TargetRatio
from repro.core.histogram import SectorHistogram
from repro.units import MEMORY_ENTRY_BYTES, SECTORS_PER_ENTRY

#: Canonical target order for the tensor's target axis.
TARGET_ORDER: tuple[TargetRatio, ...] = tuple(TargetRatio)

#: Index of each target on the target axis.
TARGET_INDEX: dict[TargetRatio, int] = {
    target: index for index, target in enumerate(TARGET_ORDER)
}

#: Sector cost of each bucket (bucket b holds entries of b+1 sectors).
_SECTOR_WEIGHTS = np.arange(1, SECTORS_PER_ENTRY + 1, dtype=np.int64)


@dataclass(eq=False)
class ProfileTensor:
    """One benchmark run's complete profile in columnar form.

    Attributes:
        benchmark: Benchmark name.
        names: Allocation names, in first-appearance (spec) order —
            the order every legacy accumulation followed.
        fractions: ``(A,)`` footprint fraction per allocation.
        counts: ``(A, S, 4)`` entries per sector bucket, per
            allocation and snapshot.
        zero_fit: ``(A, S)`` entries fitting the 8 B zero-page slot
            (these also appear in bucket 0 of ``counts``).
    """

    benchmark: str
    names: tuple[str, ...]
    fractions: np.ndarray
    counts: np.ndarray
    zero_fit: np.ndarray

    def __post_init__(self) -> None:
        self.fractions = np.asarray(self.fractions, dtype=np.float64)
        self.counts = np.asarray(self.counts, dtype=np.int64)
        self.zero_fit = np.asarray(self.zero_fit, dtype=np.int64)
        if self.counts.ndim != 3 or self.counts.shape[2] != SECTORS_PER_ENTRY:
            raise ValueError(
                f"counts must be (A, S, {SECTORS_PER_ENTRY}); "
                f"got {self.counts.shape}"
            )
        if self.zero_fit.shape != self.counts.shape[:2]:
            raise ValueError(
                f"zero_fit shape {self.zero_fit.shape} does not match "
                f"counts {self.counts.shape[:2]}"
            )
        if len(self.names) != self.counts.shape[0]:
            raise ValueError("names must match the allocation axis")

    @classmethod
    def from_payload(
        cls,
        benchmark: str,
        names,
        fractions,
        counts,
        zero_fit,
    ) -> "ProfileTensor":
        """Build a tensor from untrusted raw arrays, validating hard.

        The advisor service accepts client-supplied histograms; this
        is the single choke point where they are checked (finite,
        integral, non-negative, shape-consistent, ``zero_fit`` within
        bucket 0) before entering the pipeline.  Raises
        :class:`ValueError` with a client-presentable message.
        """
        names = tuple(str(name) for name in names)
        if not names:
            raise ValueError("profile must contain at least one allocation")
        if len(dict.fromkeys(names)) != len(names):
            raise ValueError("allocation names must be unique")

        def as_int_array(label: str, raw, ndim: int) -> np.ndarray:
            array = np.asarray(raw)
            if array.dtype.kind not in "iuf" or array.dtype.kind == "c":
                raise ValueError(f"{label} must be numeric")
            if array.ndim != ndim:
                raise ValueError(f"{label} must be {ndim}-dimensional")
            values = array.astype(np.float64)
            if not np.all(np.isfinite(values)):
                raise ValueError(f"{label} must be finite (no NaN/inf)")
            if np.any(values < 0):
                raise ValueError(f"{label} must be non-negative")
            if not np.all(values == np.floor(values)):
                raise ValueError(f"{label} must be whole entry counts")
            return values.astype(np.int64)

        counts = as_int_array("counts", counts, 3)
        if counts.shape[2] != SECTORS_PER_ENTRY:
            raise ValueError(
                f"counts must have {SECTORS_PER_ENTRY} sector buckets; "
                f"got {counts.shape[2]}"
            )
        if counts.shape[0] != len(names):
            raise ValueError(
                f"counts covers {counts.shape[0]} allocations for "
                f"{len(names)} names"
            )
        zero_fit = as_int_array("zero_fit", zero_fit, 2)
        if zero_fit.shape != counts.shape[:2]:
            raise ValueError(
                f"zero_fit shape {zero_fit.shape} does not match "
                f"counts {counts.shape[:2]}"
            )
        if np.any(zero_fit > counts[:, :, 0]):
            raise ValueError(
                "zero_fit exceeds bucket-0 counts (zero-page entries "
                "are a subset of one-sector entries)"
            )
        fractions = np.asarray(fractions, dtype=np.float64)
        if fractions.ndim != 1 or fractions.size != len(names):
            raise ValueError("fractions must give one value per allocation")
        if not np.all(np.isfinite(fractions)):
            raise ValueError("fractions must be finite (no NaN/inf)")
        if np.any(fractions < 0) or float(fractions.sum()) <= 0.0:
            raise ValueError(
                "fractions must be non-negative and sum to a positive "
                "footprint"
            )
        return cls(
            benchmark=str(benchmark),
            names=names,
            fractions=fractions,
            counts=counts,
            zero_fit=zero_fit,
        )

    # -- shape -----------------------------------------------------------
    @property
    def allocation_count(self) -> int:
        return self.counts.shape[0]

    @property
    def snapshot_count(self) -> int:
        return self.counts.shape[1]

    def index(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(
                f"no allocation {name!r} in profile of {self.benchmark}"
            ) from None

    # -- basic reductions ------------------------------------------------
    @cached_property
    def totals(self) -> np.ndarray:
        """``(A, S)`` total entries per allocation and snapshot."""
        return self.counts.sum(axis=2)

    @cached_property
    def merged_counts(self) -> np.ndarray:
        """``(A, 4)`` run-merged sector counts per allocation."""
        return self.counts.sum(axis=1)

    @cached_property
    def merged_zero_fit(self) -> np.ndarray:
        """``(A,)`` run-merged zero-fit counts per allocation."""
        return self.zero_fit.sum(axis=1)

    @cached_property
    def program_counts(self) -> np.ndarray:
        """``(4,)`` whole-program sector counts (naive design's view)."""
        return self.counts.sum(axis=(0, 1))

    # -- per-target reductions -------------------------------------------
    @cached_property
    def overflow_fractions(self) -> np.ndarray:
        """``(T, A, S)`` fraction of entries overflowing each target.

        Replicates :meth:`SectorHistogram.overflow_fraction` exactly:
        integer overflow count divided by the integer total, and the
        16x class computed as ``1.0 - zero_fit / total``.
        """
        totals = self.totals
        safe = np.maximum(totals, 1)
        rows = []
        for target in TARGET_ORDER:
            if target is TargetRatio.X16:
                row = 1.0 - self.zero_fit / safe
            else:
                overflowing = self.counts[:, :, target.device_sectors :].sum(
                    axis=2
                )
                row = overflowing / safe
            rows.append(np.where(totals > 0, row, 0.0))
        return np.stack(rows)

    @cached_property
    def sector_fractions(self) -> np.ndarray:
        """``(T, A, S)`` overflow sectors per entry for each target.

        Replicates :meth:`SectorHistogram.buddy_sector_fraction`: the
        integer overflow-sector dot product divided by the total.
        """
        totals = self.totals
        safe = np.maximum(totals, 1)
        rows = []
        for target in TARGET_ORDER:
            if target is TargetRatio.X16:
                remote = self.counts @ _SECTOR_WEIGHTS - self.zero_fit
            else:
                weights = np.maximum(
                    0, _SECTOR_WEIGHTS - target.device_sectors
                )
                remote = self.counts @ weights
            rows.append(np.where(totals > 0, remote / safe, 0.0))
        return np.stack(rows)

    @cached_property
    def worst_overflow(self) -> np.ndarray:
        """``(T, A)`` max-over-snapshots overflow fraction per target.

        The profiler's conservative view (355.seismic's drift); empty
        runs report 1.0, matching the legacy ``max(..., default=1.0)``.
        """
        if self.snapshot_count == 0:
            return np.ones((len(TARGET_ORDER), self.allocation_count))
        return self.overflow_fractions.max(axis=2)

    # -- selection helpers -----------------------------------------------
    def selection_indices(
        self, selection: Mapping[str, TargetRatio]
    ) -> np.ndarray:
        """``(A,)`` target-axis indices for a name -> ratio selection."""
        return np.array(
            [TARGET_INDEX[selection[name]] for name in self.names],
            dtype=np.intp,
        )

    def selection_from_indices(
        self, indices: Iterable[int]
    ) -> dict[str, TargetRatio]:
        """Name -> ratio dictionary from target-axis indices."""
        return {
            name: TARGET_ORDER[int(index)]
            for name, index in zip(self.names, indices)
        }

    def selection_ratio(self, indices: np.ndarray) -> float:
        """Overall compression ratio of a selection (capacity metric).

        Accumulates in allocation order with scalar float arithmetic —
        the exact legacy :func:`repro.core.targets.selection_ratio`
        operation sequence.
        """
        footprint = 0.0
        device = 0.0
        for position in range(self.allocation_count):
            fraction = float(self.fractions[position])
            footprint += fraction * MEMORY_ENTRY_BYTES
            device += fraction * TARGET_ORDER[int(indices[position])].device_bytes
        if device == 0:
            return 1.0
        return footprint / device

    def traffic(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-snapshot buddy traffic of a selection.

        Returns ``(entry_fractions, sector_fractions)`` — each ``(S,)``
        — reproducing the legacy evaluation loop bit for bit: per
        allocation the integer-count fraction is scaled back by its
        total, accumulated over allocations in order, then normalised
        by the snapshot's entry count.
        """
        arange = np.arange(self.allocation_count)
        totals = self.totals
        weighted_entries = self.overflow_fractions[indices, arange, :] * totals
        weighted_sectors = self.sector_fractions[indices, arange, :] * totals
        overflowing = np.zeros(self.snapshot_count)
        sectors = np.zeros(self.snapshot_count)
        # Sequential accumulation over the allocation axis: float
        # addition is not associative and digests are pinned to the
        # legacy left-to-right order.
        for position in range(self.allocation_count):
            overflowing = overflowing + weighted_entries[position]
            sectors = sectors + weighted_sectors[position]
        entries = np.maximum(totals.sum(axis=0), 1)
        return overflowing / entries, sectors / entries

    # -- histogram views --------------------------------------------------
    def histogram(self, position: int, snapshot: int) -> SectorHistogram:
        """One (allocation, snapshot) cell as a legacy histogram."""
        return SectorHistogram(
            self.counts[position, snapshot].copy(),
            int(self.zero_fit[position, snapshot]),
        )

    def merged_histogram(self, position: int) -> SectorHistogram:
        """One allocation's run-merged histogram view."""
        return SectorHistogram(
            self.merged_counts[position].copy(),
            int(self.merged_zero_fit[position]),
        )

    def program_histogram(self) -> SectorHistogram:
        """Whole-program histogram (what the naive design sees)."""
        return SectorHistogram(
            self.program_counts.copy(), int(self.zero_fit.sum())
        )


@dataclass(eq=False)
class EntryStateTensor:
    """Per-entry compression facts of one memory dump, in columnar form.

    The simulators need finer grain than :class:`ProfileTensor`'s
    histograms: for every 128 B entry of a placed benchmark, how many
    sectors it compresses to and whether it fits the 8 B zero slot —
    plus the allocation layout the trace generator derives addresses
    from.  This object is that state, reduced from one
    :class:`~repro.workloads.snapshots.MemorySnapshot` (a few KB of
    int8/bool arrays versus the dump's multi-MB data words) and cached
    alongside the profile tensors (see
    :func:`repro.core.profiler.entry_state_tensor`), so the perf and
    correlation studies never regenerate snapshots.

    Attributes:
        benchmark: Benchmark name.
        index: Snapshot (dump) index the state was reduced from.
        names: Allocation names in placement order.
        fractions: ``(A,)`` footprint fraction per allocation.
        access_weights: ``(A,)`` dynamic access intensity per byte.
        entry_counts: ``(A,)`` memory-entries per allocation.
        sectors: ``(N,)`` compressed sectors per entry (1..4), in
            allocation placement order.
        zero_fit: ``(N,)`` whether each entry fits the 8 B zero slot.
    """

    benchmark: str
    index: int
    names: tuple[str, ...]
    fractions: np.ndarray
    access_weights: np.ndarray
    entry_counts: np.ndarray
    sectors: np.ndarray
    zero_fit: np.ndarray

    def __post_init__(self) -> None:
        self.fractions = np.asarray(self.fractions, dtype=np.float64)
        self.access_weights = np.asarray(self.access_weights, dtype=np.float64)
        self.entry_counts = np.asarray(self.entry_counts, dtype=np.int64)
        self.sectors = np.asarray(self.sectors, dtype=np.int8)
        self.zero_fit = np.asarray(self.zero_fit, dtype=bool)
        if not (
            len(self.names)
            == self.fractions.size
            == self.access_weights.size
            == self.entry_counts.size
        ):
            raise ValueError("allocation-axis arrays must match names")
        if self.sectors.size != self.zero_fit.size:
            raise ValueError("sectors and zero_fit must match")
        if int(self.entry_counts.sum()) != self.sectors.size:
            raise ValueError(
                f"entry_counts sum {int(self.entry_counts.sum())} does not "
                f"cover {self.sectors.size} entries"
            )

    # -- shape -----------------------------------------------------------
    @property
    def allocation_count(self) -> int:
        return len(self.names)

    @property
    def entries(self) -> int:
        return int(self.sectors.size)

    @property
    def footprint_bytes(self) -> int:
        return self.entries * MEMORY_ENTRY_BYTES

    def allocation_ranges(self) -> dict[str, tuple[int, int]]:
        """Byte range of each allocation in placement order."""
        ranges: dict[str, tuple[int, int]] = {}
        cursor = 0
        for name, count in zip(self.names, self.entry_counts):
            size = int(count) * MEMORY_ENTRY_BYTES
            ranges[name] = (cursor, cursor + size)
            cursor += size
        return ranges

    def budget_per_entry(self, selection: Mapping[str, "TargetRatio"]) -> np.ndarray:
        """``(N,)`` device-resident sectors per entry for a selection.

        0 encodes the 16x zero class, mirroring
        :class:`repro.gpusim.compression.CompressionState` semantics.
        """
        budgets = [
            np.full(
                int(count),
                0
                if selection[name] is TargetRatio.X16
                else selection[name].device_sectors,
                dtype=np.int8,
            )
            for name, count in zip(self.names, self.entry_counts)
        ]
        if not budgets:
            return np.zeros(0, dtype=np.int8)
        return np.concatenate(budgets)
