"""The metadata cache (Fig. 5 of the paper).

A small set-associative cache in front of the per-entry size metadata.
Each 32 B line covers 64 consecutive memory-entries' 4-bit codes, so a
miss prefetches 63 neighbours — spatially local workloads hit nearly
always.  The paper's final configuration is 4 KB, 4-way per L2 slice
(32 slices -> 128 KB total in Table 2's GPU; the Fig.-5b study sweeps
total capacity), with metadata interleaved across DRAM channels by the
regular physical-address hash.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import ENTRIES_PER_METADATA_LINE, METADATA_LINE_BYTES

#: Metadata cache line size (bytes) — matches a DRAM sector; shared
#: with the metadata store's address geometry via :mod:`repro.units`.
LINE_BYTES = METADATA_LINE_BYTES


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses


class MetadataCache:
    """Sliced, set-associative, LRU metadata cache.

    Args:
        total_bytes: Aggregate capacity across all slices.
        ways: Associativity.
        slices: Number of slices (one per L2 slice in the paper);
            lines interleave across slices by line address.
    """

    def __init__(
        self, total_bytes: int = 64 * 1024, ways: int = 4, slices: int = 8
    ) -> None:
        if total_bytes % (ways * slices * LINE_BYTES):
            raise ValueError(
                f"{total_bytes} bytes not divisible into {slices} slices "
                f"x {ways} ways of {LINE_BYTES} B lines"
            )
        self.total_bytes = total_bytes
        self.ways = ways
        self.slices = slices
        self.sets_per_slice = total_bytes // (ways * slices * LINE_BYTES)
        # sets[slice][set] -> list of tags, most recent last
        self._sets: list[list[list[int]]] = [
            [[] for _ in range(self.sets_per_slice)] for _ in range(slices)
        ]
        self.stats = CacheStats()

    def access_entry(self, entry_index: int) -> bool:
        """Access the metadata for a memory-entry; returns hit."""
        line = entry_index // ENTRIES_PER_METADATA_LINE
        return self.access_line(line)

    def access_line(self, line: int) -> bool:
        """Access a metadata line by line index; returns hit."""
        slice_index = line % self.slices
        set_index = (line // self.slices) % self.sets_per_slice
        tag = line // (self.slices * self.sets_per_slice)
        ways = self._sets[slice_index][set_index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        ways.append(tag)
        if len(ways) > self.ways:
            ways.pop(0)
        return False

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def flush(self) -> None:
        """Invalidate all lines and reset statistics."""
        for slice_sets in self._sets:
            for ways in slice_sets:
                ways.clear()
        self.reset_stats()
