"""Compression metadata and address translation.

Models Section 3.2's metadata architecture:

* a Global Buddy Base-address Register (GBBR) holding the carve-out
  base;
* a 24-bit page-table-entry extension: compressed flag, target-ratio
  code, and the buddy-page offset from the GBBR;
* 4 bits of per-128 B-entry size metadata in a dedicated region of
  device memory (0.4 % overhead), prefetched 32 B (64 entries) at a
  time through the metadata cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.entry import TargetRatio
from repro.units import (
    ENTRIES_PER_METADATA_LINE,
    ENTRIES_PER_PAGE,
    MEMORY_ENTRY_BYTES,
    METADATA_BITS_PER_ENTRY,
    METADATA_LINE_BYTES,
    PAGE_BYTES,
)

#: 4-bit size codes: sectors 1..4 compressed, raw, and the zero classes.
SIZE_CODE_ZERO = 0  # all-zero entry, no data read needed
SIZE_CODE_SECTORS = {1: 1, 2: 2, 3: 3, 4: 4}  # compressed sector count
SIZE_CODE_RAW = 5  # stored uncompressed

#: Target-ratio codes for the PTE extension (3 bits).
_TARGET_CODES = {
    TargetRatio.X1: 0,
    TargetRatio.X1_33: 1,
    TargetRatio.X2: 2,
    TargetRatio.X4: 3,
    TargetRatio.X16: 4,
}
_CODE_TARGETS = {code: target for target, code in _TARGET_CODES.items()}


@dataclass(frozen=True)
class PageTableEntryExtension:
    """The 24 compression bits added to each PTE.

    Layout: bit 23 = compressed flag; bits 22–20 = target-ratio code;
    bits 19–0 = buddy-page offset from the GBBR (in buddy pages).
    """

    compressed: bool
    target: TargetRatio
    buddy_page_offset: int

    BITS = 24

    def pack(self) -> int:
        """Encode to the 24-bit hardware format."""
        if not 0 <= self.buddy_page_offset < (1 << 20):
            raise ValueError(
                f"buddy page offset {self.buddy_page_offset} exceeds 20 bits"
            )
        return (
            (int(self.compressed) << 23)
            | (_TARGET_CODES[self.target] << 20)
            | self.buddy_page_offset
        )

    @classmethod
    def unpack(cls, value: int) -> "PageTableEntryExtension":
        """Decode from the 24-bit hardware format."""
        if not 0 <= value < (1 << cls.BITS):
            raise ValueError(f"{value:#x} is not a 24-bit PTE extension")
        return cls(
            compressed=bool(value >> 23),
            target=_CODE_TARGETS[(value >> 20) & 0b111],
            buddy_page_offset=value & ((1 << 20) - 1),
        )


class MetadataStore:
    """The dedicated device-memory region holding per-entry size codes."""

    def __init__(self, device_capacity: int) -> None:
        self._entries = device_capacity // MEMORY_ENTRY_BYTES
        self._codes = np.zeros(self._entries, dtype=np.uint8)

    @property
    def overhead_bytes(self) -> int:
        """Storage consumed by metadata (0.4 % of device memory)."""
        return self._entries * METADATA_BITS_PER_ENTRY // 8

    @property
    def overhead_fraction(self) -> float:
        return METADATA_BITS_PER_ENTRY / (MEMORY_ENTRY_BYTES * 8)

    def write(self, entry_index: int, code: int) -> None:
        if not 0 <= code < 16:
            raise ValueError(f"metadata code {code} exceeds 4 bits")
        self._codes[entry_index] = code

    def write_sectors(self, entry_index: int, sectors: int, is_zero: bool = False) -> None:
        """Record an entry's compressed footprint."""
        if is_zero:
            self.write(entry_index, SIZE_CODE_ZERO)
        else:
            self.write(entry_index, SIZE_CODE_SECTORS[sectors])

    def read(self, entry_index: int) -> int:
        return int(self._codes[entry_index])

    def metadata_address(self, entry_index: int) -> int:
        """Device byte address of the metadata line covering an entry.

        One metadata line covers 64 consecutive entries; a miss
        therefore prefetches the neighbours' codes, which is what
        gives the metadata cache its locality (Fig. 5b).
        """
        line = entry_index // ENTRIES_PER_METADATA_LINE
        return line * METADATA_LINE_BYTES


@dataclass
class TranslationUnit:
    """GBBR + extended-TLB translation front-end.

    Maps a (page, entry) access to its device-resident slot and, for
    overflowing entries, the buddy-memory slot behind the GBBR.
    """

    gbbr_base: int = 0
    _pages: dict[int, PageTableEntryExtension] = field(
        default_factory=dict, init=False
    )

    def map_page(
        self, virtual_page: int, extension: PageTableEntryExtension
    ) -> None:
        self._pages[virtual_page] = extension

    def lookup(self, virtual_page: int) -> PageTableEntryExtension:
        try:
            return self._pages[virtual_page]
        except KeyError:
            raise KeyError(f"page {virtual_page:#x} not mapped") from None

    def buddy_address(self, virtual_page: int, entry_in_page: int) -> int:
        """Physical buddy address of an entry's overflow slot."""
        if not 0 <= entry_in_page < ENTRIES_PER_PAGE:
            raise ValueError(f"entry {entry_in_page} outside page")
        ext = self.lookup(virtual_page)
        buddy_bytes = ext.target.buddy_bytes
        page_base = self.gbbr_base + ext.buddy_page_offset * PAGE_BYTES
        return page_base + entry_in_page * buddy_bytes

    @property
    def mapped_pages(self) -> int:
        return len(self._pages)
