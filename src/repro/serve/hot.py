"""The service's shared hot cache: a memory LRU over the result cache.

The per-process tensor memo (:mod:`repro.core.profiler`) is a plain
unbounded dict — fine for one sweep, wrong for an always-on service.
:class:`HotCache` promotes it to a managed layer: bounded LRU memory
residency over an optional on-disk
:class:`~repro.engine.cache.ResultCache` backing, speaking the same
``get``/``put``/:class:`~repro.engine.cache.CacheMiss` protocol, so
the profiler (via :func:`repro.core.profiler.set_tensor_cache`) and
the advisor's answer memo share one hot layer across every namespace
(``profile.tensor``, ``profile.entries``, ``serve.advice``).

Policy:

* **admission** — writes are always admitted (the service just paid
  to compute the value); *read promotions* from the backing store are
  admitted only after ``admit_after`` sightings, so a one-off scan
  cannot flush the working set;
* **eviction** — least-recently-used beyond ``max_entries`` (and,
  optionally, ``max_bytes`` of pickled payload);
* **stats** — an engine :class:`~repro.engine.cache.CacheStats` with
  per-namespace hit/miss/store rows (``stats.per_namespace``), which
  the service surfaces in its stats report.

Single-threaded by design: the service calls it from one event loop,
so there is no locking.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict

from repro.engine.cache import CacheKey, CacheMiss, CacheStats, ResultCache


class HotCache:
    """Bounded in-memory LRU over an optional on-disk backing cache.

    Args:
        backing: Optional :class:`~repro.engine.cache.ResultCache`
            (or anything with its get/put protocol) consulted on
            memory misses and written through on stores.
        max_entries: Memory residency bound (LRU beyond it).
        max_bytes: Optional bound on the summed pickled size of
            resident values.
        admit_after: Backing-store read promotions enter memory only
            once a key has been seen this many times (1 = always).
    """

    def __init__(
        self,
        backing: ResultCache | None = None,
        max_entries: int = 512,
        max_bytes: int | None = None,
        admit_after: int = 1,
    ) -> None:
        self.backing = backing
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.admit_after = admit_after
        self.stats = CacheStats()
        self._entries: OrderedDict[CacheKey, tuple[object, int]] = OrderedDict()
        self._bytes = 0
        self._seen: dict[CacheKey, int] = {}

    # ------------------------------------------------------------------
    @property
    def entries(self) -> int:
        """Resident entry count."""
        return len(self._entries)

    @property
    def resident_bytes(self) -> int:
        """Approximate pickled size of the resident values."""
        return self._bytes

    def contains(self, key: CacheKey) -> bool:
        return key in self._entries or (
            self.backing is not None and self.backing.contains(key)
        )

    def get(self, key: CacheKey):
        """Memory first, then backing; raises :class:`CacheMiss`.

        A memory hit refreshes recency.  A backing hit may be
        promoted into memory (see ``admit_after``); a miss in both
        layers counts one miss here and raises.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self.stats.bump(key.experiment, 0)
            return entry[0]
        self.stats.misses += 1
        self.stats.bump(key.experiment, 1)
        if self.backing is None:
            raise CacheMiss(f"{key.experiment}/{key.digest}")
        value = self.backing.get(key)  # raises CacheMiss when absent
        sightings = self._seen.get(key, 0) + 1
        if sightings >= self.admit_after:
            self._seen.pop(key, None)
            self._admit(key, value)
        else:
            self._seen[key] = sightings
        return value

    def put(self, key: CacheKey, value) -> None:
        """Write through to the backing store and admit to memory."""
        if self.backing is not None:
            self.backing.put(key, value)
        self.stats.stores += 1
        self.stats.bump(key.experiment, 2)
        self._admit(key, value)

    def clear(self) -> None:
        """Drop the memory layer (the backing store is untouched)."""
        self._entries.clear()
        self._seen.clear()
        self._bytes = 0

    # ------------------------------------------------------------------
    def _admit(self, key: CacheKey, value) -> None:
        size = self._sizeof(value)
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        self._entries[key] = (value, size)
        self._bytes += size
        while len(self._entries) > self.max_entries or (
            self.max_bytes is not None
            and self._bytes > self.max_bytes
            and len(self._entries) > 1
        ):
            _, (_, evicted_size) = self._entries.popitem(last=False)
            self._bytes -= evicted_size
            self.stats.evictions += 1

    @staticmethod
    def _sizeof(value) -> int:
        try:
            return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            return 0
