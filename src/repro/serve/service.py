"""The always-on advisor service: micro-batched admission, one loop.

:class:`AdvisorService` turns the one-shot advisor pipeline into a
long-running server component:

* **micro-batching** — concurrent :meth:`AdvisorService.submit` calls
  land in a bounded deque; a single batcher task collects up to
  ``max_batch`` of them (waiting at most ``max_delay`` after the
  first arrival) and answers the whole batch through ONE
  :func:`repro.serve.advisor.advise_batch` call, so N concurrent
  requests coalesce into at most ``ceil(N / max_batch)`` bulk
  profile/evaluate calls;
* **shared hot cache** — on start the service installs its
  :class:`~repro.serve.hot.HotCache` as the profiler's tensor cache
  and disables the per-process memo
  (:func:`repro.core.profiler.set_tensor_memo_enabled`), so tensor
  and answer residency live in one bounded, stats-instrumented layer;
* **back-pressure** — a full queue rejects with
  :class:`~repro.serve.protocol.ServiceOverloaded` (429-style, with a
  retry-after hint) instead of buffering unboundedly, and
  :meth:`AdvisorService.aclose` drains everything already admitted
  before the batcher exits (graceful shutdown: admitted requests are
  never dropped).

All waiting goes through the injectable
:class:`~repro.serve.clock.Clock` — this module performs no direct
wall-clock reads, and the determinism-lint statics pass enforces
that.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field

from repro.core import controller as controller_mod
from repro.core import profiler as profiler_mod
from repro.serve.advisor import advise_batch, advise_one
from repro.serve.clock import Clock, MonotonicClock
from repro.serve.hot import HotCache
from repro.serve.protocol import (
    Advice,
    AdviceRequest,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.workloads.snapshots import SnapshotConfig


@dataclass(frozen=True)
class ServiceConfig:
    """Admission-queue knobs.

    Attributes:
        max_batch: Most requests answered per bulk pipeline call.
        max_delay: Seconds the batcher waits after the first arrival
            for more requests before flushing a partial batch.
        max_pending: Queue bound; submits beyond it are rejected with
            :class:`~repro.serve.protocol.ServiceOverloaded`.
        retry_after: The rejection's retry hint, in seconds.
    """

    max_batch: int = 16
    max_delay: float = 0.002
    max_pending: int = 1024
    retry_after: float = 0.05


@dataclass
class ServiceStats:
    """Lifetime counters of one service instance."""

    submitted: int = 0  # admitted to the queue
    completed: int = 0  # answered (cache hits included)
    rejected: int = 0  # back-pressure rejections
    invalid: int = 0  # failed validation at submit
    failed: int = 0  # raised inside the pipeline
    batches: int = 0  # bulk advise_batch calls
    batched_requests: int = 0  # requests answered through batches
    largest_batch: int = 0

    def as_json(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "invalid": self.invalid,
            "failed": self.failed,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "largest_batch": self.largest_batch,
        }


@dataclass
class _Pending:
    request: AdviceRequest
    future: asyncio.Future = field(repr=False)


class AdvisorService:
    """Asyncio advisor service over the shared columnar pipeline.

    Use as an async context manager, or call :meth:`start` /
    :meth:`aclose` explicitly::

        service = AdvisorService(cache=ResultCache(".advisor-cache"))
        async with service:
            advice = await service.submit(AdviceRequest(benchmark="VGG16"))

    Args:
        cache: Optional on-disk backing for the hot cache.
        hot: A prebuilt :class:`~repro.serve.hot.HotCache` (overrides
            ``cache``).
        config: :class:`ServiceConfig` admission knobs.
        snapshot_config: Base profile configuration for
            benchmark-backed requests (defaults to the paper's).
        clock: Injectable time source (tests pass
            :class:`~repro.serve.clock.ManualClock`).
    """

    def __init__(
        self,
        cache=None,
        hot: HotCache | None = None,
        config: ServiceConfig | None = None,
        snapshot_config: SnapshotConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.hot = hot or HotCache(backing=cache)
        self.snapshot_config = snapshot_config or SnapshotConfig()
        self.clock = clock or MonotonicClock()
        self.stats = ServiceStats()
        self._pending: deque[_Pending] = deque()
        self._wake = asyncio.Event()
        self._batcher: asyncio.Task | None = None
        self._closing = False
        self._prev_tensor_cache = None
        self._prev_memo_enabled = True
        self._base_profile_calls = 0
        self._base_evaluate_calls = 0

    # ------------------------------------------------------------------
    async def start(self) -> "AdvisorService":
        """Install the hot cache and start the batcher task."""
        if self._batcher is not None:
            raise RuntimeError("service already started")
        self._closing = False
        self._prev_tensor_cache = profiler_mod.set_tensor_cache(self.hot)
        self._prev_memo_enabled = profiler_mod.set_tensor_memo_enabled(False)
        self._base_profile_calls = profiler_mod.bulk_compression_call_count()
        self._base_evaluate_calls = controller_mod.evaluate_bulk_call_count()
        self._batcher = asyncio.ensure_future(self._run())
        return self

    async def aclose(self) -> None:
        """Stop admitting, drain the queue, restore global hooks."""
        if self._batcher is None:
            return
        self._closing = True
        self._wake.set()
        try:
            await self._batcher
        finally:
            self._batcher = None
            profiler_mod.set_tensor_cache(self._prev_tensor_cache)
            profiler_mod.set_tensor_memo_enabled(self._prev_memo_enabled)

    async def __aenter__(self) -> "AdvisorService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    async def submit(self, request: AdviceRequest) -> Advice:
        """Admit one request and await its advice.

        Raises :class:`~repro.serve.protocol.InvalidRequest` for
        malformed requests (immediately, never queued),
        :class:`~repro.serve.protocol.ServiceOverloaded` when the
        queue is full, and
        :class:`~repro.serve.protocol.ServiceClosed` after
        :meth:`aclose` began.
        """
        if self._closing or self._batcher is None:
            raise ServiceClosed("advisor service is not accepting requests")
        try:
            request.validate()
        except Exception:
            self.stats.invalid += 1
            raise
        if len(self._pending) >= self.config.max_pending:
            self.stats.rejected += 1
            raise ServiceOverloaded(self.config.retry_after)
        self.stats.submitted += 1
        future = asyncio.get_running_loop().create_future()
        self._pending.append(_Pending(request, future))
        self._wake.set()
        return await future

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        """The batcher: collect a batch, answer it, repeat until drained."""
        while True:
            if not self._pending:
                if self._closing:
                    return
                self._wake.clear()
                if self._pending or self._closing:
                    continue  # raced with a submit/close after clear
                await self._wake.wait()
                continue
            batch = await self._collect_batch()
            if batch:
                self._execute(batch)

    async def _collect_batch(self) -> list[_Pending]:
        """Wait out the batching window, then pop up to ``max_batch``.

        The window opens at the first pending arrival and closes after
        ``max_delay`` or as soon as ``max_batch`` requests are
        waiting; a draining service flushes immediately.
        """
        deadline = self.clock.now() + self.config.max_delay
        while len(self._pending) < self.config.max_batch and not self._closing:
            remaining = deadline - self.clock.now()
            if remaining <= 0:
                break
            self._wake.clear()
            if len(self._pending) >= self.config.max_batch or self._closing:
                break
            fired = await self.clock.wait_event(self._wake, remaining)
            if not fired:
                break
        batch = [
            self._pending.popleft()
            for _ in range(min(self.config.max_batch, len(self._pending)))
        ]
        return batch

    def _execute(self, batch: list[_Pending]) -> None:
        """Answer one batch through a single bulk pipeline call."""
        self.stats.batches += 1
        self.stats.batched_requests += len(batch)
        self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
        try:
            advices = advise_batch(
                [item.request for item in batch],
                cache=self.hot,
                config=self.snapshot_config,
            )
        except Exception:
            # One request poisoned the batch (e.g. its snapshot
            # generation failed); retry individually so its neighbours
            # still get answers and it gets its own error.
            for item in batch:
                try:
                    advice = advise_one(
                        item.request, cache=self.hot, config=self.snapshot_config
                    )
                except Exception as err:
                    self.stats.failed += 1
                    if not item.future.done():
                        item.future.set_exception(err)
                else:
                    self.stats.completed += 1
                    if not item.future.done():
                        item.future.set_result(advice)
            return
        for item, advice in zip(batch, advices):
            self.stats.completed += 1
            if not item.future.done():
                item.future.set_result(advice)

    # ------------------------------------------------------------------
    def bulk_profile_calls(self) -> int:
        """Bulk ``compressed_sizes`` calls issued since :meth:`start`."""
        return (
            profiler_mod.bulk_compression_call_count()
            - self._base_profile_calls
        )

    def bulk_evaluate_calls(self) -> int:
        """Bulk selection evaluations issued since :meth:`start`."""
        return (
            controller_mod.evaluate_bulk_call_count()
            - self._base_evaluate_calls
        )

    def stats_json(self) -> dict:
        """Service, coalescing and hot-cache counters in one report."""
        return {
            "service": self.stats.as_json(),
            "bulk_calls": {
                "profile": self.bulk_profile_calls(),
                "evaluate": self.bulk_evaluate_calls(),
            },
            "hot_cache": {
                "entries": self.hot.entries,
                "resident_bytes": self.hot.resident_bytes,
                **self.hot.stats.as_json(),
            },
        }
