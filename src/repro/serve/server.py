"""JSON-lines TCP transport for the advisor service, plus the client.

Wire protocol (one JSON object per line, UTF-8):

request::

    {"id": 7, "request": {"benchmark": "VGG16", "codec": "bpc", ...}}

success::

    {"id": 7, "ok": true,
     "advice": {"request_digest": ..., "digest": ..., "payload": ...}}

failure::

    {"id": 7, "ok": false,
     "error": {"kind": "invalid-request" | "overloaded" | "closed"
               | "internal",
               "code": "...",          # InvalidRequest's stable code
               "message": "...",
               "retry_after": 0.05}}   # overloaded only

Back-pressure and validation failures are *protocol answers*, never
dropped connections: a client that floods the queue gets
``overloaded`` lines with a retry hint (HTTP 429 in spirit) while
already-admitted requests keep completing.  ``stats`` requests
(``{"id": N, "stats": true}``) return the service's counter report.

:class:`AdvisorClient` is the matching asyncio client; it multiplexes
concurrent :meth:`AdvisorClient.advise` calls over one connection and
re-raises the service's typed errors
(:class:`~repro.serve.protocol.InvalidRequest`,
:class:`~repro.serve.protocol.ServiceOverloaded`,
:class:`~repro.serve.protocol.ServiceClosed`) client-side.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve.protocol import (
    Advice,
    AdviceError,
    AdviceRequest,
    InvalidRequest,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.serve.service import AdvisorService


def _error_body(err: Exception) -> dict:
    if isinstance(err, InvalidRequest):
        return {
            "kind": "invalid-request",
            "code": err.code,
            "message": err.message,
        }
    if isinstance(err, ServiceOverloaded):
        return {
            "kind": "overloaded",
            "message": str(err),
            "retry_after": err.retry_after,
        }
    if isinstance(err, ServiceClosed):
        return {"kind": "closed", "message": str(err)}
    return {"kind": "internal", "message": f"{type(err).__name__}: {err}"}


def _error_from_body(body: dict) -> Exception:
    kind = body.get("kind")
    if kind == "invalid-request":
        return InvalidRequest(body.get("code", "bad-request"), body["message"])
    if kind == "overloaded":
        return ServiceOverloaded(float(body.get("retry_after", 0.0)))
    if kind == "closed":
        return ServiceClosed(body["message"])
    return AdviceError(body.get("message", "internal advisor error"))


class AdvisorServer:
    """Serves one :class:`~repro.serve.service.AdvisorService` over TCP."""

    def __init__(
        self,
        service: AdvisorService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        bound = self._server.sockets[0].getsockname()
        self.port = bound[1]
        return bound[0], bound[1]

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "AdvisorServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                # One task per request: a slow (batched) answer must
                # not stall the next request on the same connection.
                task = asyncio.ensure_future(
                    self._answer(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _answer(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        request_id = None
        try:
            body = json.loads(line)
            request_id = body.get("id") if isinstance(body, dict) else None
            if not isinstance(body, dict):
                raise InvalidRequest(
                    "bad-request", "request line must be a JSON object"
                )
            if body.get("stats"):
                response = {
                    "id": request_id,
                    "ok": True,
                    "stats": self.service.stats_json(),
                }
            else:
                request = AdviceRequest.from_json(body.get("request"))
                advice = await self.service.submit(request)
                response = {
                    "id": request_id,
                    "ok": True,
                    "advice": advice.to_json(),
                }
        except json.JSONDecodeError as err:
            response = {
                "id": request_id,
                "ok": False,
                "error": _error_body(
                    InvalidRequest("bad-request", f"invalid JSON: {err}")
                ),
            }
        except Exception as err:
            response = {
                "id": request_id,
                "ok": False,
                "error": _error_body(err),
            }
        payload = json.dumps(response).encode("utf-8") + b"\n"
        async with write_lock:
            writer.write(payload)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass


class AdvisorClient:
    """Asyncio client for a running :class:`AdvisorServer`.

    Multiplexes concurrent :meth:`advise` calls over one connection by
    request id; typed service errors re-raise in the caller.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._waiting: dict[int, asyncio.Future] = {}
        self._pump: asyncio.Task | None = asyncio.ensure_future(
            self._read_responses()
        )

    @classmethod
    async def connect(cls, host: str, port: int) -> "AdvisorClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def aclose(self) -> None:
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except asyncio.CancelledError:
                pass
            self._pump = None
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        for future in self._waiting.values():
            if not future.done():
                future.set_exception(ServiceClosed("client closed"))
        self._waiting.clear()

    async def __aenter__(self) -> "AdvisorClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    async def advise(self, request: AdviceRequest) -> Advice:
        """Send one request and await its advice (or typed error)."""
        body = await self._roundtrip({"request": request.to_json()})
        return Advice.from_json(body["advice"])

    async def stats(self) -> dict:
        """The service's counter report (service/bulk/hot-cache)."""
        body = await self._roundtrip({"stats": True})
        return body["stats"]

    async def _roundtrip(self, body: dict) -> dict:
        self._next_id += 1
        request_id = self._next_id
        future = asyncio.get_running_loop().create_future()
        self._waiting[request_id] = future
        line = json.dumps({"id": request_id, **body}).encode("utf-8") + b"\n"
        self._writer.write(line)
        await self._writer.drain()
        try:
            return await future
        finally:
            self._waiting.pop(request_id, None)

    async def _read_responses(self) -> None:
        while True:
            line = await self._reader.readline()
            if not line:
                broken = ServiceClosed("advisor connection closed")
                for future in self._waiting.values():
                    if not future.done():
                        future.set_exception(broken)
                return
            body = json.loads(line)
            future = self._waiting.get(body.get("id"))
            if future is None or future.done():
                continue
            if body.get("ok"):
                future.set_result(body)
            else:
                future.set_exception(_error_from_body(body["error"]))
