"""The advisor's answer path: profile -> select -> evaluate -> rank.

:func:`advise_batch` is the single entry point both the asyncio
service and the registered ``serve.advice`` experiment call, so a
batched concurrent answer is byte-identical to a one-shot ``repro
run serve.advice`` answer for the same question.  Batch structure
mirrors the planner's coalescing contract:

* all missing benchmark profiles of a batch that share a (codec,
  snapshot config) resolve through ONE
  :func:`repro.core.profiler.profile_tensors_bulk` call (one bulk
  ``compressed_sizes`` pass), and
* all selection evaluations of a batch flow through ONE
  :func:`repro.core.controller.evaluate_selections_batch` call,

so N coalesced requests advance the two bulk-call counters at most
``ceil(N / max_batch)`` times — the counter-pinned tests assert it.

Answers are memoised under the ``serve.advice`` cache namespace keyed
by the request's parameter digest (same salt discipline as every
experiment), which is what the service's shared hot cache stores.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import targets as targets_mod
from repro.core.controller import evaluate_selections_batch
from repro.core.profile_tensor import ProfileTensor
from repro.core.profiler import profile_tensors_bulk
from repro.serve.protocol import CODECS, Advice, AdviceRequest
from repro.workloads.snapshots import SnapshotConfig

#: The registered experiment this module is the run point of.
ADVICE_EXPERIMENT = "serve.advice"


def advice_salt() -> str:
    """Code salt of the ``serve.advice`` experiment (single source)."""
    from repro.engine.cache import code_salt
    from repro.engine.registry import get_experiment

    return code_salt(get_experiment(ADVICE_EXPERIMENT).salt_modules)


def request_cache_key(request: AdviceRequest):
    """On-disk / hot-cache address of one request's answer."""
    from repro.engine.cache import CacheKey, param_digest

    return CacheKey(
        ADVICE_EXPERIMENT,
        param_digest(ADVICE_EXPERIMENT, request.payload(), advice_salt()),
    )


@dataclass
class _Candidate:
    """One (design, threshold) evaluation slot of one request."""

    design: str
    threshold: float | None
    group: int  # index into the evaluate_selections_batch groups
    slot: int  # position within that group's selections


def _candidate_selections(
    tensor: ProfileTensor, request: AdviceRequest
) -> list[tuple[str, float | None, dict]]:
    """Every (design, threshold, selection) the request asks about.

    Selections come from the same :mod:`repro.core.targets` policies
    the figure studies use; the per-allocation threshold sweep reduces
    over one worst-overflow matrix exactly like Fig. 9's hot path.
    """
    thresholds = tuple(float(t) for t in request.thresholds)
    per_alloc_rows = None
    if "per-allocation" in request.designs or "final" in request.designs:
        per_alloc_rows = targets_mod.select_per_allocation_indices(
            tensor, thresholds
        )
    out: list[tuple[str, float | None, dict]] = []
    for design in request.designs:
        if design == "naive":
            indices = targets_mod.select_naive_indices(tensor)
            out.append(
                (design, None, tensor.selection_from_indices(indices))
            )
            continue
        for row, threshold in enumerate(thresholds):
            indices = per_alloc_rows[row]
            if design == "final":
                indices = targets_mod.apply_zero_page_indices(indices, tensor)
            out.append(
                (design, threshold, tensor.selection_from_indices(indices))
            )
    return out


def _recommend(evaluations: list[dict], budget: float | None) -> dict:
    """Pick the answer: best ratio within the buddy-traffic budget.

    Candidates over ``budget`` (buddy-entry fraction) are dropped; if
    none fit, the least-traffic candidate stands in so the client
    always gets a ranked answer.  Ties break toward lower sector
    traffic, then earlier (request) order — all deterministic.
    """
    pool = evaluations
    if budget is not None:
        within = [e for e in pool if e["buddy_entry_fraction"] <= budget]
        if not within:
            floor = min(e["buddy_entry_fraction"] for e in pool)
            within = [e for e in pool if e["buddy_entry_fraction"] == floor]
        pool = within
    best = pool[0]
    for entry in pool[1:]:
        if entry["compression_ratio"] > best["compression_ratio"]:
            best = entry
        elif (
            entry["compression_ratio"] == best["compression_ratio"]
            and entry["buddy_sector_fraction"] < best["buddy_sector_fraction"]
        ):
            best = entry
    return dict(best)


def advise_batch(
    requests,
    cache=None,
    config: SnapshotConfig | None = None,
) -> list[Advice]:
    """Answer a batch of requests through one coalesced pipeline pass.

    ``cache`` is any object with the
    :class:`~repro.engine.cache.ResultCache` get/put protocol (the
    service passes its hot cache); answered payloads are stored under
    the ``serve.advice`` namespace.  ``config`` is the base snapshot
    configuration benchmark-backed requests profile under (requests
    carrying ``scale`` override it per request).
    """
    requests = list(requests)
    for request in requests:
        request.validate()
    base_config = config or SnapshotConfig()
    salt_key = [request_cache_key(request) for request in requests]

    from repro.engine.cache import CacheMiss, result_digest

    payloads: dict[int, dict] = {}
    if cache is not None:
        for position, key in enumerate(salt_key):
            try:
                payloads[position] = cache.get(key)
            except CacheMiss:
                pass

    # -- resolve profile tensors for the misses ------------------------
    misses = [i for i in range(len(requests)) if i not in payloads]
    tensors: dict[int, ProfileTensor] = {}
    profile_groups: dict[tuple, list[int]] = {}
    for position in misses:
        request = requests[position]
        if request.histogram is not None:
            tensors[position] = request.histogram.tensor()
            continue
        cfg = base_config
        if request.scale is not None:
            cfg = replace(base_config, scale=float(request.scale))
        profile_groups.setdefault((request.codec, cfg), []).append(position)
    for (codec, cfg), positions in profile_groups.items():
        algorithm = CODECS[codec]()
        built = profile_tensors_bulk(
            [requests[p].benchmark for p in positions], cfg, algorithm
        )
        for position in positions:
            tensors[position] = built[requests[position].benchmark]

    # -- one bulk evaluation call for the whole batch ------------------
    groups: list[tuple] = []
    group_of: dict[int, int] = {}  # id(tensor) -> group index
    candidates: dict[int, list[_Candidate]] = {}
    for position in misses:
        tensor = tensors[position]
        for design, threshold, selection in _candidate_selections(
            tensor, requests[position]
        ):
            index = group_of.get(id(tensor))
            if index is None:
                index = len(groups)
                group_of[id(tensor)] = index
                groups.append((tensor, tensor.benchmark, [], []))
            _, _, selections, names = groups[index]
            candidates.setdefault(position, []).append(
                _Candidate(design, threshold, index, len(selections))
            )
            selections.append(selection)
            names.append(design)
    evaluated = evaluate_selections_batch(groups) if groups else []

    # -- assemble payloads ---------------------------------------------
    for position in misses:
        request = requests[position]
        tensor = tensors[position]
        evaluations = []
        for candidate in candidates[position]:
            result = evaluated[candidate.group][candidate.slot]
            evaluations.append(
                {
                    "design": candidate.design,
                    "threshold": candidate.threshold,
                    "compression_ratio": float(result.compression_ratio),
                    "buddy_entry_fraction": float(
                        result.buddy_access_fraction
                    ),
                    "buddy_sector_fraction": float(
                        result.buddy_sector_fraction
                    ),
                    "selection": {
                        name: ratio.value
                        for name, ratio in result.selection.items()
                    },
                }
            )
        payload = {
            "benchmark": tensor.benchmark,
            "codec": request.codec,
            "evaluations": evaluations,
            "recommendation": _recommend(
                evaluations, request.max_buddy_fraction
            ),
        }
        payloads[position] = payload
        if cache is not None:
            cache.put(salt_key[position], payload)

    return [
        Advice(
            request_digest=salt_key[position].digest,
            payload=payloads[position],
            digest=result_digest(payloads[position]),
        )
        for position in range(len(requests))
    ]


def advise_one(
    request: AdviceRequest,
    cache=None,
    config: SnapshotConfig | None = None,
) -> Advice:
    """One-shot form of :func:`advise_batch` (a batch of one)."""
    return advise_batch([request], cache=cache, config=config)[0]


def advice_point(point: dict) -> dict:
    """``serve.advice`` experiment run point (one benchmark's answer).

    Returns the same payload dict the service answers with, so
    ``result_digest`` of a service answer equals ``result_digest`` of
    this point's value — the digest-parity contract.
    """
    request = AdviceRequest(
        benchmark=point["benchmark"],
        codec=point["codec"],
        thresholds=tuple(point["thresholds"]),
        designs=tuple(point["designs"]),
    )
    return advise_one(request, config=point["config"]).payload
