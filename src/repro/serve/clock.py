"""Batching-window clocks: the service's ONLY wall-clock read point.

The determinism-lint statics pass lints the entire ``repro.serve``
package (see :data:`repro.statics.determinism.EXTRA_SCOPE_PACKAGES`)
but exempts exactly this module: the admission queue's micro-batching
window genuinely needs a monotonic clock, and confining every read to
one injectable seam means

* the rest of the service is statically provable wall-clock-free, and
* tests drive the window with :class:`ManualClock` virtual time — no
  real sleeps, no flaky timing assumptions.

Results never depend on the clock either way: batch composition
affects only *when* an answer is computed, never its bytes (the
digest-parity tests pin that).
"""

from __future__ import annotations

import asyncio
import time


class Clock:
    """Injectable time source for the admission queue."""

    def now(self) -> float:
        raise NotImplementedError

    async def sleep(self, delay: float) -> None:
        raise NotImplementedError

    async def wait_event(self, event: asyncio.Event, timeout: float) -> bool:
        """Wait until ``event`` is set or ``timeout`` elapses.

        Returns ``True`` when the event fired, ``False`` on timeout.
        """
        raise NotImplementedError


class MonotonicClock(Clock):
    """The production clock: ``time.monotonic`` + real waits."""

    def now(self) -> float:
        return time.monotonic()

    async def sleep(self, delay: float) -> None:
        await asyncio.sleep(delay)

    async def wait_event(self, event: asyncio.Event, timeout: float) -> bool:
        if timeout <= 0:
            return event.is_set()
        try:
            await asyncio.wait_for(event.wait(), timeout)
        except asyncio.TimeoutError:
            return False
        return True


class ManualClock(Clock):
    """Virtual time for deterministic tests.

    Time only moves when :meth:`advance` is called; pending waits
    whose deadlines are reached fire then.  ``wait_event`` still
    honours the event immediately (no advance needed), so batch-full
    flushes work under a frozen clock.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._timers: list[tuple[float, asyncio.Event]] = []

    def now(self) -> float:
        return self._now

    async def advance(self, delta: float) -> None:
        """Move virtual time forward and let due waiters run."""
        self._now += delta
        for deadline, timer in list(self._timers):
            if deadline <= self._now + 1e-12:
                timer.set()
        # Yield a few times so woken waiters (and whatever they wake)
        # get scheduled before the test continues.
        for _ in range(10):
            await asyncio.sleep(0)

    async def sleep(self, delay: float) -> None:
        timer = asyncio.Event()
        entry = (self._now + delay, timer)
        self._timers.append(entry)
        try:
            await timer.wait()
        finally:
            if entry in self._timers:
                self._timers.remove(entry)

    async def wait_event(self, event: asyncio.Event, timeout: float) -> bool:
        if event.is_set() or timeout <= 0:
            return event.is_set()
        timer = asyncio.Event()
        entry = (self._now + timeout, timer)
        self._timers.append(entry)
        event_task = asyncio.ensure_future(event.wait())
        timer_task = asyncio.ensure_future(timer.wait())
        try:
            done, pending = await asyncio.wait(
                (event_task, timer_task),
                return_when=asyncio.FIRST_COMPLETED,
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            # If both fired in the same tick, the event wins: the
            # batcher should collect the new arrival before flushing.
            return event_task in done
        finally:
            if entry in self._timers:
                self._timers.remove(entry)
