"""Advisor request/response schema and typed service errors.

The advisor answers one question: *given this allocation profile,
which codec, Buddy Threshold and design point should I run?*  A
request names either a catalog benchmark (the service profiles it) or
carries a raw ``(allocations x snapshots x sector-buckets)`` histogram
(the client profiled it); both resolve to the same columnar
:class:`~repro.core.profile_tensor.ProfileTensor` and flow through
the unchanged selection/evaluation machinery, so answers are
digest-identical to a one-shot ``repro run serve.advice``.

Validation is strict and synchronous: a malformed request raises
:class:`InvalidRequest` with a stable ``code`` before it ever reaches
the admission queue — the service never turns client mistakes into
internal errors.  Everything here must stay deterministic (this
module is in the ``serve.advice`` experiment's code salt).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.bdi import BDICompressor
from repro.compression.bpc import BPCCompressor
from repro.compression.cpack import CPackCompressor
from repro.compression.fpc import FPCCompressor
from repro.compression.zeroblock import ZeroBlockCompressor
from repro.core.profile_tensor import ProfileTensor

#: Codec registry: wire name -> compressor class.  BPC is the paper's
#: choice; the comparison codecs are the Fig. 3 shoot-out set.
CODECS = {
    "bpc": BPCCompressor,
    "bdi": BDICompressor,
    "fpc": FPCCompressor,
    "cpack": CPackCompressor,
    "zero": ZeroBlockCompressor,
}

#: Design points the advisor evaluates (Fig. 7's x-axis).
DESIGNS = ("naive", "per-allocation", "final")

#: The paper's Fig. 9 threshold grid (the default candidate set).
DEFAULT_THRESHOLDS = (0.10, 0.20, 0.30, 0.40)


class AdviceError(Exception):
    """Base class of every typed advisor-service error."""


class InvalidRequest(AdviceError, ValueError):
    """A malformed request, rejected at admission with a stable code.

    ``code`` is part of the wire protocol (clients switch on it):
    ``unknown-codec``, ``unknown-benchmark``, ``unknown-design``,
    ``bad-threshold``, ``bad-histogram``, ``bad-scale``,
    ``bad-buddy-budget``, ``missing-profile``, ``ambiguous-profile``,
    ``bad-request``.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


class ServiceOverloaded(AdviceError):
    """Admission queue full: the 429-style back-pressure rejection."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(
            f"advisor admission queue is full; retry after "
            f"{retry_after:g}s"
        )
        self.retry_after = retry_after


class ServiceClosed(AdviceError):
    """The service is draining or stopped; no new requests admitted."""


@dataclass(frozen=True)
class Histogram:
    """A client-supplied raw profile (already validated on construction).

    Arrays follow :class:`~repro.core.profile_tensor.ProfileTensor`
    layout: ``counts`` is ``(A, S, 4)``, ``zero_fit`` ``(A, S)``,
    ``fractions`` ``(A,)``.
    """

    label: str
    names: tuple[str, ...]
    fractions: np.ndarray
    counts: np.ndarray
    zero_fit: np.ndarray

    def tensor(self) -> ProfileTensor:
        return ProfileTensor.from_payload(
            self.label, self.names, self.fractions, self.counts, self.zero_fit
        )


@dataclass(frozen=True)
class AdviceRequest:
    """One advisor question.

    Exactly one of ``benchmark`` / ``histogram`` must be given.
    ``thresholds`` are the Buddy Threshold candidates swept for the
    per-allocation and final designs; ``max_buddy_fraction`` bounds
    the recommendation's buddy-entry traffic (requests exceeding it
    fall back to the least-traffic candidate); ``scale`` overrides the
    benchmark snapshot scale (histogram requests need none).
    """

    benchmark: str | None = None
    histogram: Histogram | None = None
    codec: str = "bpc"
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS
    designs: tuple[str, ...] = DESIGNS
    scale: float | None = None
    max_buddy_fraction: float | None = field(default=None)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`InvalidRequest` unless the request is well formed."""
        if self.benchmark is None and self.histogram is None:
            raise InvalidRequest(
                "missing-profile",
                "request must carry a benchmark name or a histogram",
            )
        if self.benchmark is not None and self.histogram is not None:
            raise InvalidRequest(
                "ambiguous-profile",
                "request must carry a benchmark name or a histogram, "
                "not both",
            )
        if self.benchmark is not None:
            from repro.workloads.catalog import get_benchmark

            if not isinstance(self.benchmark, str):
                raise InvalidRequest(
                    "unknown-benchmark", "benchmark name must be a string"
                )
            try:
                get_benchmark(self.benchmark)
            except KeyError as err:
                raise InvalidRequest(
                    "unknown-benchmark", str(err.args[0])
                ) from None
        if not isinstance(self.codec, str) or self.codec not in CODECS:
            raise InvalidRequest(
                "unknown-codec",
                f"unknown codec {self.codec!r}; "
                f"registered: {', '.join(CODECS)}",
            )
        try:
            thresholds = tuple(self.thresholds)
        except TypeError:
            raise InvalidRequest(
                "bad-threshold", "thresholds must be a sequence"
            ) from None
        if not thresholds:
            raise InvalidRequest(
                "bad-threshold", "at least one threshold is required"
            )
        for threshold in thresholds:
            try:
                value = float(threshold)
            except (TypeError, ValueError):
                value = float("nan")
            if not (0.0 < value <= 1.0):
                raise InvalidRequest(
                    "bad-threshold",
                    f"threshold {threshold!r} is not in (0, 1]",
                )
        try:
            designs = tuple(self.designs)
        except TypeError:
            raise InvalidRequest(
                "unknown-design", "designs must be a sequence"
            ) from None
        if not designs:
            raise InvalidRequest(
                "unknown-design", "at least one design point is required"
            )
        for design in designs:
            if design not in DESIGNS:
                raise InvalidRequest(
                    "unknown-design",
                    f"unknown design {design!r}; "
                    f"registered: {', '.join(DESIGNS)}",
                )
        if len(dict.fromkeys(designs)) != len(designs):
            raise InvalidRequest(
                "unknown-design", "design points must be unique"
            )
        if self.scale is not None:
            try:
                value = float(self.scale)
            except (TypeError, ValueError):
                value = float("nan")
            if not (0.0 < value <= 1.0):
                raise InvalidRequest(
                    "bad-scale", f"scale {self.scale!r} is not in (0, 1]"
                )
        if self.max_buddy_fraction is not None:
            try:
                value = float(self.max_buddy_fraction)
            except (TypeError, ValueError):
                value = float("nan")
            if not (0.0 <= value <= 1.0):
                raise InvalidRequest(
                    "bad-buddy-budget",
                    f"max_buddy_fraction {self.max_buddy_fraction!r} "
                    "is not in [0, 1]",
                )

    # ------------------------------------------------------------------
    def payload(self) -> dict:
        """Canonical parameter payload (request digests hash this)."""
        histogram = None
        if self.histogram is not None:
            histogram = {
                "label": self.histogram.label,
                "names": self.histogram.names,
                "fractions": self.histogram.fractions,
                "counts": self.histogram.counts,
                "zero_fit": self.histogram.zero_fit,
            }
        return {
            "benchmark": self.benchmark,
            "histogram": histogram,
            "codec": self.codec,
            "thresholds": tuple(float(t) for t in self.thresholds),
            "designs": tuple(self.designs),
            "scale": None if self.scale is None else float(self.scale),
            "max_buddy_fraction": (
                None
                if self.max_buddy_fraction is None
                else float(self.max_buddy_fraction)
            ),
        }

    def to_json(self) -> dict:
        """Wire (JSON-lines) form of the request."""
        body = self.payload()
        if body["histogram"] is not None:
            histogram = self.histogram
            body["histogram"] = {
                "label": histogram.label,
                "names": list(histogram.names),
                "fractions": histogram.fractions.tolist(),
                "counts": histogram.counts.tolist(),
                "zero_fit": histogram.zero_fit.tolist(),
            }
        body["thresholds"] = list(body["thresholds"])
        body["designs"] = list(body["designs"])
        return body

    @classmethod
    def from_json(cls, body) -> "AdviceRequest":
        """Parse and validate one wire request."""
        if not isinstance(body, dict):
            raise InvalidRequest(
                "bad-request", "request body must be a JSON object"
            )
        known = {
            "benchmark",
            "histogram",
            "codec",
            "thresholds",
            "designs",
            "scale",
            "max_buddy_fraction",
        }
        unknown = [key for key in body if key not in known]
        if unknown:
            raise InvalidRequest(
                "bad-request",
                f"unknown request field(s): {', '.join(sorted(unknown))}",
            )
        histogram = body.get("histogram")
        if histogram is not None:
            if not isinstance(histogram, dict):
                raise InvalidRequest(
                    "bad-histogram", "histogram must be a JSON object"
                )
            try:
                histogram = build_histogram(
                    label=histogram.get("label", "client-profile"),
                    names=histogram.get("names", ()),
                    fractions=histogram.get("fractions", ()),
                    counts=histogram.get("counts", ()),
                    zero_fit=histogram.get("zero_fit", ()),
                )
            except InvalidRequest:
                raise
            except (TypeError, ValueError) as err:
                raise InvalidRequest("bad-histogram", str(err)) from None
        try:
            request = cls(
                benchmark=body.get("benchmark"),
                histogram=histogram,
                codec=body.get("codec", "bpc"),
                thresholds=tuple(body.get("thresholds", DEFAULT_THRESHOLDS)),
                designs=tuple(body.get("designs", DESIGNS)),
                scale=body.get("scale"),
                max_buddy_fraction=body.get("max_buddy_fraction"),
            )
        except TypeError as err:
            raise InvalidRequest("bad-request", str(err)) from None
        request.validate()
        return request


def build_histogram(
    label: str, names, fractions, counts, zero_fit
) -> Histogram:
    """Validate raw profile arrays into a :class:`Histogram`.

    Validation is delegated to
    :meth:`~repro.core.profile_tensor.ProfileTensor.from_payload` (the
    pipeline's single histogram choke point); failures surface as
    :class:`InvalidRequest` with code ``bad-histogram``.
    """
    try:
        tensor = ProfileTensor.from_payload(
            str(label), names, fractions, counts, zero_fit
        )
    except ValueError as err:
        raise InvalidRequest("bad-histogram", str(err)) from None
    return Histogram(
        label=tensor.benchmark,
        names=tensor.names,
        fractions=tensor.fractions,
        counts=tensor.counts,
        zero_fit=tensor.zero_fit,
    )


@dataclass(frozen=True)
class Advice:
    """One advisor answer.

    ``payload`` is the exact value the ``serve.advice`` experiment's
    run point returns for the same question, so ``digest`` (its
    :func:`repro.engine.cache.result_digest`) matches the one-shot
    ``repro run`` digest — the service is a serving skin over the
    pipeline, never a second math path.
    """

    request_digest: str
    payload: dict
    digest: str

    @property
    def recommendation(self) -> dict:
        return self.payload["recommendation"]

    @property
    def evaluations(self) -> list:
        return self.payload["evaluations"]

    def to_json(self) -> dict:
        return {
            "request_digest": self.request_digest,
            "digest": self.digest,
            "payload": self.payload,
        }

    @classmethod
    def from_json(cls, body: dict) -> "Advice":
        return cls(
            request_digest=body["request_digest"],
            payload=body["payload"],
            digest=body["digest"],
        )
