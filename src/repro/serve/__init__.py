"""The always-on compression-advisor service.

``repro serve`` boots an asyncio service that answers "given this
allocation profile, which codec, Buddy Threshold and design point
should I run?" by routing through the unchanged columnar pipeline:
micro-batched admission coalesces concurrent requests into single
bulk profile/evaluate calls, a shared hot cache replaces the
per-process tensor memo, and bounded-queue back-pressure keeps the
loop responsive.  Answers are digest-identical to one-shot ``repro
run serve.advice`` results — see docs/serving.md.
"""

from repro.serve.advisor import (
    advice_point,
    advise_batch,
    advise_one,
    request_cache_key,
)
from repro.serve.clock import Clock, ManualClock, MonotonicClock
from repro.serve.hot import HotCache
from repro.serve.protocol import (
    Advice,
    AdviceError,
    AdviceRequest,
    Histogram,
    InvalidRequest,
    ServiceClosed,
    ServiceOverloaded,
    build_histogram,
)
from repro.serve.server import AdvisorClient, AdvisorServer
from repro.serve.service import AdvisorService, ServiceConfig, ServiceStats

__all__ = [
    "Advice",
    "AdviceError",
    "AdviceRequest",
    "AdvisorClient",
    "AdvisorServer",
    "AdvisorService",
    "Clock",
    "Histogram",
    "HotCache",
    "InvalidRequest",
    "ManualClock",
    "MonotonicClock",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceOverloaded",
    "ServiceStats",
    "advice_point",
    "advise_batch",
    "advise_one",
    "build_histogram",
    "request_cache_key",
]
