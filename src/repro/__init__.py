"""Buddy Compression reproduction.

A production-quality Python reproduction of *Buddy Compression:
Enabling Larger Memory for Deep Learning and HPC Workloads on GPUs*
(Choukse et al., ISCA 2020), including the compression substrate
(BPC and comparison codecs), synthetic workload substrate, the Buddy
Compression engine, a GPU performance simulator, a Unified-Memory
oversubscription model, and the DL-training case-study analytics.

Quickstart::

    from repro import BuddyCompressor, BuddyConfig
    from repro.core.targets import FINAL

    engine = BuddyCompressor(BuddyConfig())
    result = engine.run("VGG16", FINAL)
    print(result.compression_ratio, result.buddy_access_fraction)

Experiments run through the :mod:`repro.api` facade (cached,
optionally parallel, mirroring the ``repro`` CLI)::

    import repro

    fig7 = repro.run("compression.fig7").value
    results = repro.sweep(["compression.fig7", "perf.fig11"])
"""

from repro import api
from repro.api import (
    CacheStats,
    RunResult,
    SweepResults,
    cache_stats,
    plan,
    report,
    run,
    sweep,
)
from repro.compression import BPCCompressor
from repro.core import BuddyCompressor, BuddyConfig, TargetRatio
from repro.units import MEMORY_ENTRY_BYTES, SECTOR_BYTES, SECTORS_PER_ENTRY

__version__ = "1.0.0"

__all__ = [
    "BPCCompressor",
    "BuddyCompressor",
    "BuddyConfig",
    "TargetRatio",
    "CacheStats",
    "RunResult",
    "SweepResults",
    "api",
    "cache_stats",
    "plan",
    "report",
    "run",
    "sweep",
    "MEMORY_ENTRY_BYTES",
    "SECTOR_BYTES",
    "SECTORS_PER_ENTRY",
    "__version__",
]
