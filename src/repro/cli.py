"""Command-line experiment runner: ``python -m repro <command>``.

Everything routes through the :mod:`repro.engine` subsystem::

    repro list                     # registered experiments
    repro run perf.fig11 --workers 8
    repro sweep --workers 4        # the Fig. 7 design-point sweep
    repro plan perf.fig11 --explain  # the optimized plan, unexecuted
    repro report --from-cache      # render results without re-running
    repro cache                    # cache entries/bytes/evictions
    repro cache --clear            # drop every cached result
    repro doctor                   # active event core + environment
    repro check --strict           # static invariant analyzer

``run`` and ``sweep`` memoise every design point in the
content-addressed cache (``.repro-cache/`` by default, overridable
with ``--cache-dir`` or ``REPRO_CACHE_DIR``), so re-runs and partial
sweeps are incremental; ``--workers N`` fans design points out across
processes with bit-identical results.  ``sweep`` runs all requested
experiments as ONE planned sweep (:mod:`repro.engine.planner`):
shared profile/entry-state artifacts dedupe across experiments and
profile builds merge into bulk compression calls.  ``plan`` prints
what that optimizer would do — node graph, dedupe counts, predicted
cache hits — without executing anything.

The paper's figure names (``repro fig3`` … ``repro fig13``) remain as
deprecated aliases that run serially without touching the cache,
printing the same rows/series the paper reports plus a pointer to the
equivalent ``repro run`` invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from repro.engine import (
    CacheMiss,
    ExperimentRunner,
    ResultCache,
    add_runner_options,
    experiment_names,
    get_experiment,
    parse_size,
    result_digest,
    runner_from_args,
)
from repro import rng as rng_lib

#: ``repro sweep`` default: the Fig. 7 design-point sweep.
DEFAULT_SWEEP = ("compression.fig7",)

#: Legacy figure aliases onto registered experiments.
FIGURE_ALIASES = {
    "fig3": "compression.fig3",
    "fig7": "compression.fig7",
    "fig8": "compression.fig8",
    "fig9": "compression.fig9",
    "fig5b": "metadata.fig5b",
    "fig10": "correlation.fig10",
    "fig11": "perf.fig11",
    "fig12": "um.fig12",
    "fig13": "dl.fig13",
}


# ---------------------------------------------------------------------------
# Per-experiment result formatters.
# ---------------------------------------------------------------------------
def _print_fig3(rows) -> None:
    from repro.analysis.compression_study import suite_gmean

    for row in rows:
        print(f"{row.benchmark:14s} {row.mean_ratio:5.2f}")
    # Subset runs may leave a suite empty; a fabricated 0.00 gmean
    # against the paper value would be misleading.
    if any(row.is_hpc for row in rows):
        print(f"GMEAN HPC {suite_gmean(rows, True):.2f} (paper 2.51)")
    if any(not row.is_hpc for row in rows):
        print(f"GMEAN DL  {suite_gmean(rows, False):.2f} (paper 1.85)")


def _print_fig7(study) -> None:
    for design in ("naive", "per-allocation", "final"):
        for label, hpc in (("HPC", True), ("DL", False)):
            ratio, accesses = study.suite_summary(design, hpc)
            print(
                f"{design:16s} {label}: {ratio:.2f}x, "
                f"{accesses:.2%} buddy accesses"
            )


def _print_fig8(results) -> None:
    for name, result in results.items():
        series = " ".join(
            f"{s.entry_fraction:.3f}" for s in result.per_snapshot
        )
        print(f"{name:14s} ratio {result.compression_ratio:4.2f}x  {series}")


def _print_fig9(sweep) -> None:
    thresholds = sorted(next(iter(sweep.values())))
    header = f"{'benchmark':14s} " + " ".join(f"t={t:.2f}" for t in thresholds)
    print(header)
    for name, runs in sweep.items():
        cells = " ".join(f"{runs[t].compression_ratio:6.2f}" for t in thresholds)
        print(f"{name:14s} {cells}")


def _print_fig5b(rows) -> None:
    from repro.analysis.metadata_study import format_metadata_table

    print(format_metadata_table(rows))


def _print_fig10(result) -> None:
    print(f"correlation (log cycles): {result.correlation:.3f} (paper 0.989)")
    print(f"fast-vs-reference wall-clock ratio: {result.mean_speed_ratio:.0f}x")


def _print_fig11(result) -> None:
    from repro.analysis.perf_study import format_perf_table

    print(format_perf_table(result))


def _print_fig12(rows) -> None:
    from repro.analysis.um_study import format_fig12_table

    print(format_fig12_table(rows))


def _print_dl_ratios(ratios) -> None:
    for name, ratio in ratios.items():
        print(f"{name:14s} {ratio:5.2f}x")


def _print_fig13(result) -> None:
    from repro.analysis.dl_study import format_dl_tables

    print(format_dl_tables(result))


def _print_advice(results) -> None:
    for name, payload in results.items():
        rec = payload["recommendation"]
        threshold = rec["threshold"]
        threshold_text = "-" if threshold is None else f"{threshold:.2f}"
        print(
            f"{name:14s} {rec['design']:14s} t={threshold_text} "
            f"{rec['compression_ratio']:5.2f}x "
            f"{rec['buddy_entry_fraction']:.2%} buddy entries"
        )


FORMATTERS = {
    "compression.fig3": _print_fig3,
    "compression.fig7": _print_fig7,
    "compression.fig8": _print_fig8,
    "compression.fig9": _print_fig9,
    "metadata.fig5b": _print_fig5b,
    "correlation.fig10": _print_fig10,
    "perf.fig11": _print_fig11,
    "um.fig12": _print_fig12,
    "dl.ratios": _print_dl_ratios,
    "dl.fig13": _print_fig13,
    "serve.advice": _print_advice,
}


# ---------------------------------------------------------------------------
# Parameter assembly.
# ---------------------------------------------------------------------------
def _build_runner(args, offline: bool = False) -> ExperimentRunner:
    return runner_from_args(
        args, seed=getattr(args, "seed", None), offline=offline
    )


def _cli_engine_spec(name: str, args):
    """The CLI's single engine-selection parse point.

    Folds ``--engine-spec`` (preferred) and the legacy ``--engine`` /
    ``--verify`` pair into one validated
    :class:`~repro.gpusim.engine_spec.EngineSpec`, or ``None`` when no
    engine selection applies to this experiment.
    """
    from repro.gpusim.engine_spec import EngineSpec

    text = getattr(args, "engine_spec", None)
    engine = getattr(args, "engine", None)
    verify = getattr(args, "verify", None)
    if text:
        if engine or verify:
            raise KeyError(
                "pass either --engine-spec or the --engine/--verify "
                "pair, not both"
            )
        spec = EngineSpec.parse(text)
    elif engine or verify:
        if verify and engine != "relaxed":
            # The exact engines have nothing to cross-check; passing
            # verify through would raise deep inside every design
            # point, so fail the friendly way the other flags do.
            print(
                "warning: --verify is the relaxed engine's oracle "
                "cross-check; pass --engine relaxed to enable it "
                "(--verify ignored)",
                file=sys.stderr,
            )
            verify = None
        spec = EngineSpec(engine or "vectorized", verify or 0.0)
    else:
        return None
    if "engine" not in get_experiment(name).defaults():
        print(
            f"warning: {name} has no simulator engine axis; "
            "engine selection ignored",
            file=sys.stderr,
        )
        return None
    if spec.tolerance is not None:
        # A custom tolerance cannot reach cached design points without
        # becoming a cache axis (see EngineSpec.study_params).
        print(
            "warning: tolerance= is a direct-simulation knob; cached "
            "experiments pin the default tolerances (ignored)",
            file=sys.stderr,
        )
        spec = replace(spec, tolerance=None)
    return spec


def _experiment_params(name: str, args) -> dict:
    """Translate CLI flags into experiment parameter overrides."""
    from repro.workloads.snapshots import SnapshotConfig
    from repro.workloads.traces import TraceConfig

    params: dict = {}
    benchmarks = getattr(args, "benchmarks", None)
    if benchmarks:
        key = "networks" if name.startswith("dl.") else "benchmarks"
        params[key] = tuple(benchmarks)
    spec = _cli_engine_spec(name, args)
    if spec is not None:
        params["engine"] = spec.name
        if spec.verify:
            params["verify"] = spec.verify
    scale = getattr(args, "scale", None)
    if scale:
        defaults = get_experiment(name).defaults()
        scaled = False
        for key, value in defaults.items():
            if isinstance(value, SnapshotConfig):
                params[key] = replace(value, scale=scale)
                scaled = True
            elif isinstance(value, TraceConfig):
                params[key] = replace(
                    value,
                    snapshot_config=replace(value.snapshot_config, scale=scale),
                )
                scaled = True
        if not scaled:
            print(
                f"warning: {name} has no snapshot-scaled parameters; "
                "--scale ignored",
                file=sys.stderr,
            )
    return params


def _run_one(name: str, args, offline: bool = False) -> int:
    runner = _build_runner(args, offline=offline)
    try:
        value, report = runner.run_report(name, _experiment_params(name, args))
    except CacheMiss as miss:
        print(f"error: {miss.args[0]}", file=sys.stderr)
        return 2
    FORMATTERS[name](value)
    if not args.quiet:
        print(report.summary())
        print(f"result digest: {result_digest(value)}")
    return 0


# ---------------------------------------------------------------------------
# Commands.
# ---------------------------------------------------------------------------
def _cmd_list(args) -> int:
    for name in experiment_names():
        print(f"{name:20s} {get_experiment(name).title}")
    return 0


def _cmd_run(args) -> int:
    return _run_one(args.experiment, args)


def _check_names(names: list[str]) -> int:
    """Validate experiment names before any work starts."""
    unknown = [n for n in names if n not in experiment_names()]
    if unknown:
        print(
            f"error: unknown experiment(s) {', '.join(unknown)}; "
            f"registered: {', '.join(experiment_names())}",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_sweep(args) -> int:
    names = list(args.experiments) or (
        list(experiment_names()) if args.all else list(DEFAULT_SWEEP)
    )
    status = _check_names(names)
    if status:
        return status
    runner = _build_runner(args)
    requests = [(name, _experiment_params(name, args)) for name in names]
    sweep = runner.run_sweep(requests)
    for name, value, report in zip(names, sweep.values, sweep.reports):
        print(f"== {name} ==")
        FORMATTERS[name](value)
        if not args.quiet:
            print(report.summary())
            print(f"result digest: {result_digest(value)}")
    if not args.quiet:
        print(sweep.execution.summary())
    return 0


def _cmd_plan(args) -> int:
    """Print the optimized plan of a sweep without executing it."""
    from repro.engine.planner import plan

    names = list(args.experiments) or (
        list(experiment_names()) if args.all else list(DEFAULT_SWEEP)
    )
    status = _check_names(names)
    if status:
        return status
    runner = _build_runner(args)
    requests = [(name, _experiment_params(name, args)) for name in names]
    sweep_plan = plan(requests, runner)
    if args.json:
        print(json.dumps(sweep_plan.to_json(), indent=2))
    elif args.explain:
        print(sweep_plan.explain())
    else:
        print(sweep_plan.describe())
    return 0


def _cmd_report(args) -> int:
    names = list(args.experiments) or list(DEFAULT_SWEEP)
    status = _check_names(names)
    for name in names if status == 0 else ():
        print(f"== {name} ==")
        status = max(status, _run_one(name, args, offline=args.from_cache))
    return status


def _cmd_cache(args) -> int:
    """Report (or clear / shrink) the result cache."""
    cache = ResultCache(args.cache_dir)
    if args.clear is not _KEEP:
        removed = cache.clear(args.clear)
        print(f"removed {removed} cached entr{'y' if removed == 1 else 'ies'}")
        return 0
    if args.evict_to is not None:
        evicted = cache.evict(args.evict_to)
        if not args.json:
            print(f"evicted {evicted} entr{'y' if evicted == 1 else 'ies'}")
    from repro.gpusim.vector_sim import TAPE_FORMAT_VERSION

    usage = cache.usage()
    if args.json:
        print(
            json.dumps(
                {
                    "root": str(cache.root),
                    "entries": usage.entries,
                    "bytes": usage.bytes,
                    "evictions": usage.evictions,
                    "tape_format_version": TAPE_FORMAT_VERSION,
                    "per_experiment": {
                        name: {"entries": entries, "bytes": size}
                        for name, (entries, size) in usage.per_experiment.items()
                    },
                },
                indent=2,
            )
        )
        return 0
    print(f"cache root: {cache.root}")
    for name, (entries, size) in usage.per_experiment.items():
        print(f"  {name:20s} {entries:6d} entr{'y' if entries == 1 else 'ies'} {size:12,d} bytes")
    if "sim.tape" in usage.per_experiment:
        print(f"  (sim.tape entries use tape serialization format v{TAPE_FORMAT_VERSION})")
    print(
        f"total: {usage.entries} entr{'y' if usage.entries == 1 else 'ies'}, "
        f"{usage.bytes:,d} bytes, {usage.evictions} lifetime eviction(s)"
    )
    return 0


def _cmd_doctor(args) -> int:
    """Report the runtime environment performance numbers depend on.

    Perf reports are only attributable if they say which event core
    produced them — the compiled extension and the pure-Python
    fallback are digest-identical but far apart in wall-clock.  A
    compiled extension whose ABI does not match the Python layout is
    never used (the runtime falls back to pure Python), but it means
    the build is out of date; ``--strict`` turns that — and any
    ``repro check`` error — into a non-zero exit so CI fails loudly
    instead of silently benchmarking the fallback.
    """
    import platform

    import numpy as np

    from repro.gpusim import _event_core
    from repro.gpusim.vector_sim import TAPE_FORMAT_VERSION
    from repro.statics import check_repo

    cache = ResultCache(args.cache_dir)
    usage = cache.usage()
    tape_entries, tape_bytes = usage.per_experiment.get("sim.tape", (0, 0))
    check_summary = check_repo().summary()
    info = {
        "event_core": _event_core.describe(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cache": {
            "root": str(cache.root),
            "entries": usage.entries,
            "bytes": usage.bytes,
        },
        "tape": {
            "format_version": TAPE_FORMAT_VERSION,
            "entries": tape_entries,
            "bytes": tape_bytes,
        },
        "check": check_summary,
    }
    core = info["event_core"]
    stale = bool(core.get("extension_stale"))
    failed = args.strict and (stale or check_summary["errors"] > 0)
    if args.json:
        print(json.dumps(info, indent=2))
        return 1 if failed else 0
    print(f"event core:  {core['event_core']}")
    print(f"  extension available: {core['extension_available']}")
    print(f"  extension ABI:       {core['extension_abi']}")
    print(f"  extension stale:     {stale}")
    print(f"  forced python:       {core['forced_python']}")
    if core["detail"]:
        print(f"  detail:              {core['detail']}")
    print(f"python:      {info['python']}")
    print(f"numpy:       {info['numpy']}")
    print(f"platform:    {info['platform']}")
    print(
        f"cache:       {info['cache']['root']} "
        f"({usage.entries} entr{'y' if usage.entries == 1 else 'ies'}, "
        f"{usage.bytes:,d} bytes)"
    )
    print(
        f"tape cache:  format v{TAPE_FORMAT_VERSION}, "
        f"{tape_entries} entr{'y' if tape_entries == 1 else 'ies'}, "
        f"{tape_bytes:,d} bytes"
    )
    print(
        f"check:       {check_summary['errors']} error(s), "
        f"{check_summary['warnings']} warning(s), "
        f"{check_summary['suppressed']} suppressed "
        "(see 'repro check')"
    )
    if failed:
        if stale:
            print(
                "error: compiled extension is present but ABI-stale; "
                "rebuild it (python setup.py build_ext --inplace) or "
                "set REPRO_NO_EXT=1",
                file=sys.stderr,
            )
        if check_summary["errors"]:
            print(
                "error: 'repro check' reports errors; run it for details",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_check(args) -> int:
    """Run the static invariant analyzer (:mod:`repro.statics`).

    Exit status is 0 when no unsuppressed errors were found (under
    ``--strict``, warnings fail too — the CI gate).
    """
    from repro.statics import check_repo

    report = check_repo()
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        summary = report.summary()
        print(
            f"repro check: {summary['errors']} error(s), "
            f"{summary['warnings']} warning(s), "
            f"{summary['suppressed']} suppressed"
        )
    return 0 if report.ok(strict=args.strict) else 1


def _serve_components(args):
    """Build the service + server pair from CLI flags."""
    from repro.serve.hot import HotCache
    from repro.serve.server import AdvisorServer
    from repro.serve.service import AdvisorService, ServiceConfig
    from repro.workloads.snapshots import SnapshotConfig

    backing = None if args.no_cache else ResultCache(args.cache_dir)
    service = AdvisorService(
        hot=HotCache(backing=backing, max_entries=args.hot_entries),
        config=ServiceConfig(
            max_batch=args.max_batch,
            max_delay=args.max_delay_ms / 1000.0,
            max_pending=args.max_pending,
        ),
        snapshot_config=(
            SnapshotConfig(scale=args.scale) if args.scale else SnapshotConfig()
        ),
    )
    return service, AdvisorServer(service, host=args.host, port=args.port)


async def _serve_forever(args) -> int:
    import asyncio

    service, server = _serve_components(args)
    async with service:
        async with server:
            print(
                f"advisor listening on {server.host}:{server.port} "
                f"(max batch {service.config.max_batch}, "
                f"window {service.config.max_delay * 1000:g} ms, "
                f"queue bound {service.config.max_pending})",
                flush=True,
            )
            try:
                await asyncio.Event().wait()  # serve until interrupted
            except asyncio.CancelledError:
                pass
    return 0


async def _serve_check(args) -> int:
    """In-process self-test: boot, load, assert parity + coalescing.

    Fires a burst of concurrent client requests over TCP, then checks
    (1) zero below-capacity drops, (2) the batcher coalesced them into
    at most ceil(N / max_batch) bulk profile/evaluate calls, and
    (3) every answer's digest equals the one-shot ``repro run
    serve.advice`` digest for the same question.  Exit 1 on any
    failure — the CI serve job's gate.
    """
    import asyncio
    import math

    from repro.serve.protocol import DEFAULT_THRESHOLDS, DESIGNS, AdviceRequest
    from repro.serve.server import AdvisorClient
    from repro.workloads.snapshots import SnapshotConfig

    benchmarks = tuple(args.benchmarks) or ("VGG16", "356.sp")
    config = SnapshotConfig(scale=args.scale) if args.scale else SnapshotConfig()
    #: Per benchmark: the default grid plus trimmed variants, so the
    #: burst carries distinct requests that still share one tensor.
    threshold_sets = (
        DEFAULT_THRESHOLDS,
        DEFAULT_THRESHOLDS[:3],
        DEFAULT_THRESHOLDS[:2],
    )
    requests = [
        AdviceRequest(benchmark=name, thresholds=thresholds)
        for name in benchmarks
        for thresholds in threshold_sets
    ]

    service, server = _serve_components(args)
    failures = []
    async with service:
        async with server:
            client = await AdvisorClient.connect(server.host, server.port)
            try:
                advices = await asyncio.gather(
                    *(client.advise(request) for request in requests)
                )
            finally:
                await client.aclose()
    stats = service.stats_json()

    if stats["service"]["rejected"]:
        failures.append(
            f"{stats['service']['rejected']} below-capacity rejection(s)"
        )
    ceiling = math.ceil(len(requests) / service.config.max_batch)
    for kind in ("profile", "evaluate"):
        calls = stats["bulk_calls"][kind]
        if calls > ceiling:
            failures.append(
                f"{calls} bulk {kind} calls for {len(requests)} requests "
                f"(allowed {ceiling})"
            )

    # Digest parity with the one-shot engine path, per benchmark.
    runner = ExperimentRunner(cache=None)
    for name in benchmarks:
        value, _ = runner.run_report(
            "serve.advice",
            {
                "benchmarks": (name,),
                "codec": "bpc",
                "thresholds": DEFAULT_THRESHOLDS,
                "designs": DESIGNS,
                "config": config,
            },
        )
        oneshot = result_digest(value[name])
        served = next(
            advice
            for request, advice in zip(requests, advices)
            if request.benchmark == name
            and request.thresholds == DEFAULT_THRESHOLDS
        )
        status = "ok" if served.digest == oneshot else "MISMATCH"
        print(f"{name:14s} served {served.digest} one-shot {oneshot} {status}")
        if served.digest != oneshot:
            failures.append(f"digest mismatch for {name}")

    print(
        f"serve check: {len(requests)} requests, "
        f"{stats['service']['batches']} batch(es), "
        f"largest {stats['service']['largest_batch']}, "
        f"{stats['bulk_calls']['profile']} bulk profile / "
        f"{stats['bulk_calls']['evaluate']} bulk evaluate call(s), "
        f"hot hits {stats['hot_cache']['hits']}"
    )
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_serve(args) -> int:
    """Boot the always-on advisor service (or its --check self-test)."""
    import asyncio

    if args.check:
        return asyncio.run(_serve_check(args))
    try:
        return asyncio.run(_serve_forever(args))
    except KeyboardInterrupt:
        print("advisor stopped", file=sys.stderr)
        return 0


#: Sentinel distinguishing "--clear" (clear all) from "--clear EXP".
_KEEP = object()


def _cmd_figure(args) -> int:
    """Legacy figure alias: serial, cache-untouched, paper-style output."""
    if args.figure == "fig6":
        from repro.analysis.compression_study import fig6_heatmap, render_heatmap

        for name in args.benchmarks or ("FF_HPGMG", "356.sp", "ResNet50"):
            print(f"== {name} (.:1 -:2 +:3 #:4 sectors) ==")
            print(render_heatmap(fig6_heatmap(name)))
        return 0
    equivalent = " ".join(
        ["repro", "run", FIGURE_ALIASES[args.figure], *args.benchmarks]
    )
    print(
        f"warning: 'repro {args.figure}' is deprecated; use "
        f"'{equivalent}' (add --workers/--cache-dir for the cached, "
        "parallel engine)",
        file=sys.stderr,
    )
    return _run_one(FIGURE_ALIASES[args.figure], args)


# ---------------------------------------------------------------------------
def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    add_runner_options(parser)  # --workers / --no-cache / --cache-*
    parser.add_argument(
        "--seed",
        type=int,
        default=rng_lib.DEFAULT_SEED,
        help="base seed for per-point RNG derivation",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="override snapshot scale (e.g. 1.5e-5 for a quick smoke run)",
    )
    parser.add_argument(
        "--engine",
        choices=("vectorized", "relaxed", "legacy"),
        default=None,
        help=(
            "simulator core for the timing studies (fig10/fig11): the "
            "batched vectorized engine (default, exact), the relaxed "
            "frozen-order tape engine (fastest across link sweeps; "
            "tolerance-pinned off the 150 GB/s reference point), or "
            "the per-access legacy oracle"
        ),
    )
    parser.add_argument(
        "--verify",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "with --engine relaxed: fraction of simulator runs "
            "cross-checked against the legacy oracle (deterministic "
            "per design point; 1.0 checks every run, raising on any "
            "contract breach)"
        ),
    )
    parser.add_argument(
        "--engine-spec",
        default=None,
        metavar="SPEC",
        help=(
            "unified engine selection, e.g. 'relaxed:verify=0.5' "
            "(subsumes --engine/--verify; see repro.gpusim.EngineSpec)"
        ),
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the cache/digest summary lines",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Buddy Compression reproduction experiments",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered experiments").set_defaults(
        func=_cmd_list
    )

    run = commands.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=experiment_names())
    run.add_argument("benchmarks", nargs="*", help="optional benchmark subset")
    _add_engine_options(run)
    run.set_defaults(func=_cmd_run)

    sweep = commands.add_parser(
        "sweep", help="run a set of experiments (default: the Fig. 7 sweep)"
    )
    sweep.add_argument(
        "experiments", nargs="*", help="experiments (default: compression.fig7)"
    )
    sweep.add_argument(
        "--all", action="store_true", help="sweep every registered experiment"
    )
    _add_engine_options(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    plan = commands.add_parser(
        "plan",
        help="show the optimized sweep plan (dedupe/merge) without running",
    )
    plan.add_argument(
        "experiments", nargs="*", help="experiments (default: compression.fig7)"
    )
    plan.add_argument(
        "--all", action="store_true", help="plan every registered experiment"
    )
    plan.add_argument(
        "--explain",
        action="store_true",
        help="also print the full node graph and merge groups",
    )
    plan.add_argument(
        "--json", action="store_true", help="machine-readable plan description"
    )
    _add_engine_options(plan)
    plan.set_defaults(func=_cmd_plan)

    report = commands.add_parser(
        "report", help="render experiment results (optionally cache-only)"
    )
    report.add_argument(
        "experiments", nargs="*", help="experiments (default: compression.fig7)"
    )
    report.add_argument(
        "--from-cache",
        action="store_true",
        help="fail instead of executing design points not in the cache",
    )
    _add_engine_options(report)
    report.set_defaults(func=_cmd_report)

    cache = commands.add_parser(
        "cache", help="report entries/bytes/evictions of the result cache"
    )
    cache.add_argument(
        "--cache-dir",
        default=None,
        help="cache root (default: $REPRO_CACHE_DIR or .repro-cache/)",
    )
    cache.add_argument(
        "--clear",
        nargs="?",
        const=None,
        default=_KEEP,
        metavar="EXPERIMENT",
        help="delete cached entries (optionally one experiment's only)",
    )
    cache.add_argument(
        "--evict-to",
        type=parse_size,
        default=None,
        metavar="SIZE",
        help="LRU-evict entries until the cache fits SIZE (e.g. 256M)",
    )
    cache.add_argument(
        "--json",
        action="store_true",
        help="machine-readable usage report",
    )
    cache.set_defaults(func=_cmd_cache)

    doctor = commands.add_parser(
        "doctor",
        help="report the active event core (compiled vs pure-Python) "
        "and runtime environment",
    )
    doctor.add_argument(
        "--cache-dir",
        default=None,
        help="cache root (default: $REPRO_CACHE_DIR or .repro-cache/)",
    )
    doctor.add_argument(
        "--json",
        action="store_true",
        help="machine-readable environment report",
    )
    doctor.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when the compiled extension is ABI-stale "
        "or 'repro check' reports errors",
    )
    doctor.set_defaults(func=_cmd_doctor)

    check = commands.add_parser(
        "check",
        help="static invariant analyzer: cache salts, determinism "
        "hazards, C-twin ABI drift, docs sync",
    )
    check.add_argument(
        "--json",
        action="store_true",
        help="machine-readable findings report",
    )
    check.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (the CI gate)",
    )
    check.set_defaults(func=_cmd_check)

    serve = commands.add_parser(
        "serve",
        help="always-on compression advisor: micro-batched admission, "
        "shared hot cache, JSON-lines TCP protocol",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="most requests answered per bulk pipeline call",
    )
    serve.add_argument(
        "--max-delay-ms",
        type=float,
        default=2.0,
        help="batching window after the first arrival, in milliseconds",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="admission-queue bound; beyond it requests are rejected "
        "with a retry-after hint",
    )
    serve.add_argument(
        "--hot-entries",
        type=int,
        default=512,
        help="hot-cache residency bound (LRU-evicted past it)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk backing for the hot cache "
        "(default: $REPRO_CACHE_DIR or .repro-cache/)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="memory-only hot cache, no disk backing",
    )
    serve.add_argument(
        "--scale",
        type=float,
        default=None,
        help="snapshot subsampling fraction for benchmark-backed "
        "requests (default: the paper's 1/16384)",
    )
    serve.add_argument(
        "--check",
        action="store_true",
        help="self-test instead of serving: fire a concurrent burst, "
        "assert coalescing and digest parity with 'repro run', exit 0/1",
    )
    serve.add_argument(
        "benchmarks",
        nargs="*",
        help="benchmarks exercised by --check (default: VGG16, 356.sp)",
    )
    serve.set_defaults(func=_cmd_serve)

    for alias in sorted(FIGURE_ALIASES) + ["fig6"]:
        figure = commands.add_parser(alias, help=f"paper {alias} (serial alias)")
        figure.add_argument(
            "benchmarks", nargs="*", help="optional benchmark subset"
        )
        figure.set_defaults(
            func=_cmd_figure,
            figure=alias,
            workers=1,
            cache=False,
            cache_dir=None,
            seed=rng_lib.DEFAULT_SEED,
            scale=None,
            quiet=True,
        )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyError as err:
        # Unknown benchmark / parameter names surface as KeyErrors with
        # sentence-like messages from deep in the stack.  Bare-key
        # KeyErrors (a genuine lookup bug) re-raise with their full
        # traceback rather than masquerading as user error.
        message = err.args[0] if err.args else None
        if not (isinstance(message, str) and " " in message):
            raise
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
