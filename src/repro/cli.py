"""Command-line experiment runner: ``python -m repro <experiment>``.

Experiments map one-to-one onto the paper's tables and figures; each
prints the same rows/series the paper reports.
"""

from __future__ import annotations

import argparse
import sys


def _fig3(args) -> None:
    from repro.analysis.compression_study import fig3_compression_ratios, suite_gmean

    rows = fig3_compression_ratios()
    for row in rows:
        print(f"{row.benchmark:14s} {row.mean_ratio:5.2f}")
    print(f"GMEAN HPC {suite_gmean(rows, True):.2f} (paper 2.51)")
    print(f"GMEAN DL  {suite_gmean(rows, False):.2f} (paper 1.85)")


def _fig6(args) -> None:
    from repro.analysis.compression_study import fig6_heatmap, render_heatmap

    for name in args.benchmarks or ("FF_HPGMG", "356.sp", "ResNet50"):
        print(f"== {name} (.:1 -:2 +:3 #:4 sectors) ==")
        print(render_heatmap(fig6_heatmap(name)))


def _fig7(args) -> None:
    from repro.analysis.compression_study import fig7_design_points

    study = fig7_design_points()
    for design in ("naive", "per-allocation", "final"):
        for label, hpc in (("HPC", True), ("DL", False)):
            ratio, accesses = study.suite_summary(design, hpc)
            print(f"{design:16s} {label}: {ratio:.2f}x, {accesses:.2%} buddy accesses")


def _fig11(args) -> None:
    from repro.analysis.perf_study import format_perf_table, run_perf_study

    result = run_perf_study()
    print(format_perf_table(result))


def _fig12(args) -> None:
    from repro.analysis.um_study import fig12_curves, format_fig12_table

    print(format_fig12_table(fig12_curves()))


def _fig13(args) -> None:
    from repro.analysis.dl_study import format_dl_tables, run_dl_study

    print(format_dl_tables(run_dl_study()))


def _fig10(args) -> None:
    from repro.analysis.correlation_study import run_correlation_study

    result = run_correlation_study()
    print(f"correlation (log cycles): {result.correlation:.3f} (paper 0.989)")
    print(f"fast-vs-reference wall-clock ratio: {result.mean_speed_ratio:.0f}x")


_EXPERIMENTS = {
    "fig3": _fig3,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Buddy Compression reproduction experiments",
    )
    parser.add_argument("experiment", choices=sorted(_EXPERIMENTS))
    parser.add_argument("benchmarks", nargs="*", help="optional benchmark subset")
    args = parser.parse_args(argv)
    _EXPERIMENTS[args.experiment](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
