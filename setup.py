"""Setuptools shim.

The offline evaluation environment lacks the ``wheel`` package that
modern ``pip install -e .`` requires, so this shim keeps the legacy
``python setup.py develop`` path available.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
