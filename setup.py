"""Setuptools shim with an optional compiled event core.

The offline evaluation environment lacks the ``wheel`` package that
modern ``pip install -e .`` requires, so this shim keeps the legacy
``python setup.py develop`` path available.  All metadata lives in
``pyproject.toml``.

The extension below is the compiled twin of
``repro/gpusim/_event_core.py`` (see that module and
``_event_core_ext.c``).  It is strictly optional: any compile failure
degrades to a warning and the pure-Python core keeps working, so
source installs never require a C toolchain.  Build it in place with::

    python setup.py build_ext --inplace
"""

from setuptools import setup
from setuptools.command.build_ext import build_ext
from setuptools.errors import CCompilerError, ExecError, PlatformError
from setuptools.extension import Extension

EVENT_CORE_EXT = Extension(
    "repro.gpusim._event_core_ext",
    sources=["src/repro/gpusim/_event_core_ext.c"],
    # -ffp-contract=off keeps every double op a discrete IEEE-754
    # operation (no fused multiply-add), which the bit-identity
    # contract with the pure-Python core depends on.
    extra_compile_args=["-O2", "-ffp-contract=off"],
    optional=True,
)


class optional_build_ext(build_ext):
    """Build the event core if possible; warn and continue if not."""

    def run(self):  # pragma: no cover - exercised by the CI build job
        try:
            super().run()
        except (PlatformError, FileNotFoundError) as exc:
            self._warn(exc)

    def build_extension(self, ext):  # pragma: no cover
        try:
            super().build_extension(ext)
        except (CCompilerError, ExecError, PlatformError, ValueError) as exc:
            self._warn(exc)

    @staticmethod
    def _warn(exc):
        import warnings

        warnings.warn(
            "compiled event core unavailable (%s); the pure-Python "
            "fallback will be used" % (exc,),
            stacklevel=1,
        )


setup(
    ext_modules=[EVENT_CORE_EXT],
    cmdclass={"build_ext": optional_build_ext},
)
