"""Fig. 7: naive vs per-allocation vs zero-page design points."""

from repro.analysis import paper_reference as paper
from repro.analysis.compression_study import fig7_design_points


def test_fig7_design_points(benchmark, static_config, runner):
    study = benchmark.pedantic(
        fig7_design_points,
        kwargs={"config": static_config, "runner": runner},
        rounds=1,
        iterations=1,
    )
    print()
    summary = {}
    for design in ("naive", "per-allocation", "final"):
        for label, hpc in (("HPC", True), ("DL", False)):
            ratio, accesses = study.suite_summary(design, hpc)
            summary[(design, label)] = (ratio, accesses)
            print(f"{design:16s} {label:4s} ratio {ratio:4.2f}x  accesses {accesses:6.2%}")
    print(f"paper: naive HPC {paper.FIG7_NAIVE_HPC}, naive DL {paper.FIG7_NAIVE_DL}, "
          f"final HPC {paper.FIG7_FINAL_HPC}, final DL {paper.FIG7_FINAL_DL}")

    # headline bands
    assert 1.75 <= summary[("final", "HPC")][0] <= 2.15  # paper 1.9
    assert 1.40 <= summary[("final", "DL")][0] <= 1.70  # paper 1.5
    assert summary[("final", "DL")][1] < 0.08  # paper 4%
    assert summary[("final", "HPC")][1] < 0.02  # paper 0.08%

    # orderings: each refinement raises compression and (vs naive)
    # lowers buddy traffic
    for label in ("HPC", "DL"):
        naive = summary[("naive", label)]
        per_alloc = summary[("per-allocation", label)]
        final = summary[("final", label)]
        assert naive[0] < per_alloc[0] <= final[0]
        assert naive[1] > final[1]

    # the per-benchmark stories the paper highlights
    results = study.results
    cg = results["354.cg"]
    assert cg["naive"].compression_ratio == 1.0  # incompressible program-wide
    assert cg["final"].compression_ratio > 1.05  # 1.1x via per-allocation
    bt = results["370.bt"]
    assert bt["final"].compression_ratio > 1.2  # paper: 1.3x
    ep = results["352.ep"]
    assert ep["final"].compression_ratio > ep["per-allocation"].compression_ratio
