"""Table 2: simulator configuration fidelity."""

from repro.gpusim.config import GPUConfig, scaled_config
from repro.units import KIB, MIB


def test_table2_parameters(benchmark):
    config = benchmark(GPUConfig)
    print()
    print(f"cores: {config.sm_count} SMs @ {config.clock_hz/1e9:.1f} GHz, "
          f"{config.schedulers_per_sm} GTO schedulers/SM, "
          f"{config.warps_per_sm} warps/SM")
    print(f"caches: L1 {config.l1_bytes//KIB} KB, L2 {config.l2_bytes//MIB} MB, "
          f"{config.line_bytes} B lines")
    print(f"off-chip: {config.dram_channels} HBM2 channels @ "
          f"{config.dram_bandwidth_gbps:.0f} GB/s; link {config.link.bandwidth_gbps:.0f} GB/s")
    print(f"decompression: {config.decompression_dram_cycles} DRAM cycles "
          f"= {config.decompression_latency} core cycles")

    # Table 2's values
    assert config.sm_count == 56 and config.warps_per_sm == 64
    assert config.schedulers_per_sm == 2
    assert config.l2_bytes == 4 * MIB and config.line_bytes == 128
    assert config.dram_channels == 32
    assert config.dram_bandwidth_gbps == 900.0
    assert config.link.bandwidth_gbps == 150.0
    assert config.decompression_dram_cycles == 11

    # the scaled machine preserves the device:link bandwidth ratio
    scaled = scaled_config()
    assert scaled.dram_bandwidth_gbps / scaled.link.bandwidth_gbps == 6.0
