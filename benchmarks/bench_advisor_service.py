"""Load generator for the always-on advisor service.

Boots the batched :class:`repro.serve.AdvisorService`, fires bursts
of synthetic allocation profiles at it, and pins the serving
contracts end to end:

* **no drops below capacity** — every burst stays within
  ``max_pending``, so the back-pressure counter must read zero;
* **coalescing** — the cold burst of N distinct profiles advances the
  bulk evaluate counter at most ``ceil(N / max_batch)`` times;
* **digest parity** — warm answers are digest-identical to the cold
  answers for the same request (the hot cache serves bytes, it never
  recomputes differently);
* **throughput floor** — the warm phase sustains at least
  :data:`MIN_WARM_PER_SEC` requests/second in-process (measured
  headroom is ~5x; the TCP path is recorded, not floored, because
  loopback performance varies more across CI hosts).

Run directly: ``python benchmarks/bench_advisor_service.py``.  Under
pytest, ``--json PATH`` records the measured numbers as a
``repro-bench-trajectory/1`` artifact (see ``benchmarks/conftest.py``).
"""

import asyncio
import time

import numpy as np

from repro.serve import (
    AdviceRequest,
    AdvisorClient,
    AdvisorServer,
    AdvisorService,
    ServiceConfig,
    build_histogram,
)

#: Distinct synthetic profiles in the working set.
DISTINCT_PROFILES = 64
#: Warm requests fired over the working set, in-process.
WARM_REQUESTS = 3000
#: Warm requests fired over TCP (recorded, not floored).
TCP_REQUESTS = 1000
#: Asserted warm in-process throughput floor, requests/second.
MIN_WARM_PER_SEC = 1000.0

SERVICE_CONFIG = ServiceConfig(
    max_batch=64, max_delay=0.001, max_pending=4096
)


def synthetic_request(seed: int) -> AdviceRequest:
    """One deterministic synthetic allocation profile."""
    rng = np.random.default_rng(seed)
    allocations, snapshots = 3, 4
    counts = rng.integers(0, 50, size=(allocations, snapshots, 4))
    zero_fit = rng.integers(0, counts[:, :, 0] + 1)
    fractions = rng.uniform(0.05, 1.0, size=allocations)
    names = tuple(f"alloc{i}" for i in range(allocations))
    return AdviceRequest(
        histogram=build_histogram(
            f"synthetic-{seed}", names, fractions, counts, zero_fit
        )
    )


async def _measure() -> dict:
    requests = [
        synthetic_request(seed) for seed in range(DISTINCT_PROFILES)
    ]
    service = AdvisorService(config=SERVICE_CONFIG)
    async with service:
        # -- cold: every profile is new work --------------------------
        start = time.perf_counter()
        cold = await asyncio.gather(
            *(service.submit(request) for request in requests)
        )
        cold_seconds = time.perf_counter() - start
        cold_evaluate_calls = service.bulk_evaluate_calls()

        # -- warm: cycle the working set through the hot cache --------
        start = time.perf_counter()
        warm = await asyncio.gather(
            *(
                service.submit(requests[i % DISTINCT_PROFILES])
                for i in range(WARM_REQUESTS)
            )
        )
        warm_seconds = time.perf_counter() - start

        # -- warm again, over the TCP transport -----------------------
        async with AdvisorServer(service) as server:
            client = await AdvisorClient.connect(server.host, server.port)
            try:
                start = time.perf_counter()
                await asyncio.gather(
                    *(
                        client.advise(requests[i % DISTINCT_PROFILES])
                        for i in range(TCP_REQUESTS)
                    )
                )
                tcp_seconds = time.perf_counter() - start
            finally:
                await client.aclose()
        stats = service.stats_json()

    digest_parity = all(
        warm[i].digest == cold[i % DISTINCT_PROFILES].digest
        for i in range(WARM_REQUESTS)
    )
    return {
        "distinct_profiles": DISTINCT_PROFILES,
        "cold_per_sec": DISTINCT_PROFILES / cold_seconds,
        "warm_per_sec": WARM_REQUESTS / warm_seconds,
        "tcp_per_sec": TCP_REQUESTS / tcp_seconds,
        "cold_evaluate_calls": cold_evaluate_calls,
        "digest_parity": digest_parity,
        "stats": stats,
    }


def _check(numbers: dict) -> None:
    stats = numbers["stats"]["service"]
    total = (
        DISTINCT_PROFILES + WARM_REQUESTS + TCP_REQUESTS
    )
    assert stats["rejected"] == 0, (
        f"{stats['rejected']} below-capacity drops out of {total} requests"
    )
    assert stats["completed"] == total
    ceiling = -(-DISTINCT_PROFILES // SERVICE_CONFIG.max_batch)
    assert numbers["cold_evaluate_calls"] <= ceiling, (
        f"{numbers['cold_evaluate_calls']} bulk evaluate calls for "
        f"{DISTINCT_PROFILES} cold requests (allowed {ceiling})"
    )
    assert numbers["stats"]["bulk_calls"]["profile"] == 0  # histograms
    assert numbers["digest_parity"], "warm answers drifted from cold"
    assert numbers["warm_per_sec"] >= MIN_WARM_PER_SEC, (
        f"warm throughput {numbers['warm_per_sec']:.0f}/s is under the "
        f"{MIN_WARM_PER_SEC:.0f}/s floor"
    )


def test_advisor_service_load(bench_json):
    numbers = asyncio.run(_measure())
    print(
        f"\nadvisor load: cold {numbers['cold_per_sec']:.0f}/s, "
        f"warm {numbers['warm_per_sec']:.0f}/s, "
        f"tcp {numbers['tcp_per_sec']:.0f}/s, "
        f"{numbers['stats']['service']['batches']} batch(es), "
        f"largest {numbers['stats']['service']['largest_batch']}"
    )
    _check(numbers)
    bench_json.record(
        "advisor_service",
        distinct_profiles=numbers["distinct_profiles"],
        cold_per_sec=round(numbers["cold_per_sec"], 1),
        warm_per_sec=round(numbers["warm_per_sec"], 1),
        tcp_per_sec=round(numbers["tcp_per_sec"], 1),
        cold_evaluate_calls=numbers["cold_evaluate_calls"],
        batches=numbers["stats"]["service"]["batches"],
        largest_batch=numbers["stats"]["service"]["largest_batch"],
        rejected=numbers["stats"]["service"]["rejected"],
        warm_floor_per_sec=MIN_WARM_PER_SEC,
    )


if __name__ == "__main__":
    measured = asyncio.run(_measure())
    _check(measured)
    print(
        f"cold {measured['cold_per_sec']:.0f}/s  "
        f"warm {measured['warm_per_sec']:.0f}/s  "
        f"tcp {measured['tcp_per_sec']:.0f}/s  "
        f"evaluate calls {measured['cold_evaluate_calls']}  "
        "all contracts hold"
    )
