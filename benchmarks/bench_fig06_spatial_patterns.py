"""Fig. 6: spatial compressibility heatmaps per benchmark."""


from repro.analysis.compression_study import fig6_heatmap, render_heatmap


def test_fig6_spatial_patterns(benchmark, static_config):
    names = ("356.sp", "FF_HPGMG", "ResNet50", "354.cg")

    def build():
        return {n: fig6_heatmap(n, config=static_config) for n in names}

    maps = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    for name, heatmap in maps.items():
        print(f"== {name} (.:1 -:2 +:3 #:4 sectors per 128B entry) ==")
        print(render_heatmap(heatmap, max_rows=10))

    # HPC: homogeneous regions -> low within-page variance for most pages
    sp = maps["356.sp"]
    page_variance = sp.var(axis=1)
    assert float((page_variance < 0.5).mean()) > 0.55

    # FF_HPGMG: struct stripes -> strong periodicity inside pages of the
    # box_structs region (period 8 entries)
    hpgmg = maps["FF_HPGMG"]
    box = hpgmg[: hpgmg.shape[0] // 3]  # leading region is box_structs
    folded = box.reshape(box.shape[0], -1, 8)
    assert (folded == folded[:, :1, :]).mean() > 0.9

    # DL: mixed per-entry compressibility -> diverse pages
    resnet = maps["ResNet50"]
    assert resnet.var() > 0.5

    # 354.cg: mostly incompressible
    assert float((maps["354.cg"] == 4).mean()) > 0.6
