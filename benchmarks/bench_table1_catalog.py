"""Table 1: the benchmark catalog and its scaled snapshot footprints."""

from repro.units import GB, MB, bytes_to_human
from repro.workloads import ALL_BENCHMARKS, generate_snapshot


def test_table1_catalog(benchmark, static_config):
    def build():
        return [
            (b.name, b.suite.value, b.footprint_bytes,
             generate_snapshot(b.name, 0, static_config).footprint_bytes)
            for b in ALL_BENCHMARKS
        ]

    rows = benchmark(build)
    print()
    print(f"{'benchmark':14s} {'suite':12s} {'Table 1':>10s} {'scaled':>10s}")
    for name, suite, native, scaled in rows:
        print(f"{name:14s} {suite:12s} {bytes_to_human(native):>10s} {bytes_to_human(scaled):>10s}")

    assert len(rows) == 16
    natives = {name: native for name, _, native, _ in rows}
    assert natives["VGG16"] == int(11.08 * GB)  # largest footprint
    assert natives["370.bt"] == int(1.21 * MB)  # smallest footprint
