"""Fig. 9: sensitivity to the Buddy Threshold parameter."""


from repro.analysis.compression_study import (
    best_achievable_ratio,
    fig9_threshold_sweep,
)

BENCHMARKS = (
    "351.palm", "354.cg", "356.sp", "FF_HPGMG", "AlexNet", "ResNet50",
    "VGG16",
)
THRESHOLDS = (0.10, 0.20, 0.30, 0.40)


def test_fig9_threshold_sweep(benchmark, static_config, runner):
    sweep = benchmark.pedantic(
        fig9_threshold_sweep,
        kwargs={"benchmarks": BENCHMARKS, "thresholds": THRESHOLDS,
                "config": static_config, "runner": runner},
        rounds=1,
        iterations=1,
    )
    print()
    for name, runs in sweep.items():
        best = best_achievable_ratio(name, static_config)
        cells = "  ".join(
            f"{t:.0%}:{runs[t].compression_ratio:4.2f}/{runs[t].buddy_access_fraction:5.2%}"
            for t in THRESHOLDS
        )
        print(f"{name:10s} {cells}  best {best:4.2f}")

    for name, runs in sweep.items():
        ratios = [runs[t].compression_ratio for t in THRESHOLDS]
        accesses = [runs[t].buddy_access_fraction for t in THRESHOLDS]
        # a looser threshold never lowers compression, and buddy
        # accesses grow with it
        assert all(b >= a - 1e-9 for a, b in zip(ratios, ratios[1:]))
        assert all(b >= a - 0.005 for a, b in zip(accesses, accesses[1:]))
        # the threshold bounds realised traffic on the profiled data
        for threshold in THRESHOLDS:
            assert accesses[THRESHOLDS.index(threshold)] <= threshold + 0.1

    # HPC accesses stay very low; DL sees the threshold trade-off
    assert sweep["356.sp"][0.30].buddy_access_fraction < 0.02
    assert sweep["AlexNet"][0.30].buddy_access_fraction > 0.02

    # FF_HPGMG's striped structs leave it far from its best-achievable
    # compression at any swept threshold (the paper: needs >80%)
    hpgmg_best = best_achievable_ratio("FF_HPGMG", static_config)
    assert sweep["FF_HPGMG"][0.40].compression_ratio < 0.85 * hpgmg_best
