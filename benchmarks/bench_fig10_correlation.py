"""Fig. 10: fast-simulator correlation and speed vs the reference."""

import pytest

from repro.analysis import paper_reference as paper
from repro.analysis.correlation_study import run_correlation_study


@pytest.mark.slow
def test_fig10_correlation(benchmark, runner):
    result = benchmark.pedantic(
        run_correlation_study,
        kwargs={"runner": runner},
        rounds=1,
        iterations=1,
    )
    print()
    for point in result.points:
        print(
            f"{point.benchmark:10s} instr {point.instructions:7d} "
            f"fast {point.fast_cycles:9.0f}cyc/{point.fast_seconds*1e3:7.1f}ms "
            f"ref {point.reference_cycles:9.0f}cyc/{point.reference_seconds*1e3:8.1f}ms"
        )
    print(f"correlation {result.correlation:.3f} (paper {paper.FIG10_CORRELATION})")
    print(f"speed ratio {result.mean_speed_ratio:.0f}x (paper ~100x)")

    # Fig. 10 left: the fast simulator tracks the reference machine
    assert result.correlation > 0.9
    # Fig. 10 right: and is far faster (we accept >5x at these tiny
    # trace sizes; the gap widens with trace length)
    assert result.mean_speed_ratio > 3.0
    # longer traces take more cycles on both machines
    by_bench = {}
    for point in result.points:
        by_bench.setdefault(point.benchmark, []).append(point)
    for points in by_bench.values():
        points.sort(key=lambda p: p.instructions)
        assert points[-1].fast_cycles > points[0].fast_cycles
        assert points[-1].reference_cycles > points[0].reference_cycles
