"""Fig. 8: buddy traffic across a DL training iteration stays stable."""

from repro.analysis import paper_reference as paper
from repro.analysis.compression_study import fig8_temporal_stability


def test_fig8_temporal_stability(benchmark, static_config, runner):
    results = benchmark.pedantic(
        fig8_temporal_stability,
        kwargs={"config": static_config, "runner": runner},
        rounds=1,
        iterations=1,
    )
    print()
    for name, result in results.items():
        series = " ".join(
            f"{s.entry_fraction:.3f}" for s in result.per_snapshot
        )
        print(f"{name:10s} ratio {result.compression_ratio:4.2f}x  accesses/dump: {series}")
    print(f"paper ratios: SqueezeNet {paper.FIG8_SQUEEZENET_RATIO}, "
          f"ResNet50 {paper.FIG8_RESNET50_RATIO}")

    squeeze = results["SqueezeNet"]
    resnet = results["ResNet50"]
    # the paper's reported constant ratios
    assert abs(squeeze.compression_ratio - paper.FIG8_SQUEEZENET_RATIO) < 0.12
    assert abs(resnet.compression_ratio - paper.FIG8_RESNET50_RATIO) < 0.12
    # churn does not move aggregate buddy traffic much over the run
    for result in results.values():
        fractions = [s.entry_fraction for s in result.per_snapshot]
        assert max(fractions) - min(fractions) < 0.04
