"""Shared configuration for the benchmark harness.

Every bench regenerates one paper artefact (table or figure), prints
the paper-vs-measured comparison, and asserts the qualitative
contracts DESIGN.md lists.  Scales are reduced relative to the
analysis defaults so the full harness completes in minutes.

Benches execute through the same :mod:`repro.engine` runner the CLI
uses, so the harness exercises the production sweep path; pass
``--workers N`` to parallelise design points.  Caching is off by
default — a bench that reads back its previous result measures
nothing — but ``--bench-cache [DIR]`` opts in to the shared result
cache for fast iteration on the assertions (paper-band checks, table
rendering) rather than the timings.
"""

import pytest

from repro.engine import ExperimentRunner, ResultCache
from repro.workloads.snapshots import SnapshotConfig

#: Snapshot scaling for the static (compression) benches.
STATIC_SCALE = SnapshotConfig(scale=1.0 / 65536)


@pytest.fixture(scope="session")
def static_config() -> SnapshotConfig:
    return STATIC_SCALE


@pytest.fixture(scope="session")
def runner(request) -> ExperimentRunner:
    """Engine runner for the benches (``--workers``/``--bench-cache``)."""
    cache_dir = request.config.getoption("--bench-cache")
    # The bare flag yields "": fall through to ResultCache's default
    # root resolution ($REPRO_CACHE_DIR, then .repro-cache/) so bench
    # hits are genuinely shared with repro run/sweep.
    return ExperimentRunner(
        workers=request.config.getoption("--workers"),
        cache=None if cache_dir is None else ResultCache(cache_dir or None),
    )
