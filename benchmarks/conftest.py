"""Shared configuration for the benchmark harness.

Every bench regenerates one paper artefact (table or figure), prints
the paper-vs-measured comparison, and asserts the qualitative
contracts DESIGN.md lists.  Scales are reduced relative to the
analysis defaults so the full harness completes in minutes.

Benches execute through the same :mod:`repro.engine` runner the CLI
uses, so the harness exercises the production sweep path; pass
``--workers N`` to parallelise design points.  Caching is disabled —
a bench that reads back its previous result measures nothing.
"""

import pytest

from repro.engine import ExperimentRunner
from repro.workloads.snapshots import SnapshotConfig

#: Snapshot scaling for the static (compression) benches.
STATIC_SCALE = SnapshotConfig(scale=1.0 / 65536)


@pytest.fixture(scope="session")
def static_config() -> SnapshotConfig:
    return STATIC_SCALE


@pytest.fixture(scope="session")
def runner(request) -> ExperimentRunner:
    """Engine runner for the benches (uncached, ``--workers`` aware)."""
    return ExperimentRunner(workers=request.config.getoption("--workers"))
