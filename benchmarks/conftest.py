"""Shared configuration for the benchmark harness.

Every bench regenerates one paper artefact (table or figure), prints
the paper-vs-measured comparison, and asserts the qualitative
contracts DESIGN.md lists.  Scales are reduced relative to the
analysis defaults so the full harness completes in minutes.
"""

import pytest

from repro.workloads.snapshots import SnapshotConfig

#: Snapshot scaling for the static (compression) benches.
STATIC_SCALE = SnapshotConfig(scale=1.0 / 65536)


@pytest.fixture(scope="session")
def static_config() -> SnapshotConfig:
    return STATIC_SCALE
