"""Shared configuration for the benchmark harness.

Every bench regenerates one paper artefact (table or figure), prints
the paper-vs-measured comparison, and asserts the qualitative
contracts DESIGN.md lists.  Scales are reduced relative to the
analysis defaults so the full harness completes in minutes.

Benches execute through the same :mod:`repro.engine` runner the CLI
uses, so the harness exercises the production sweep path; pass
``--workers N`` to parallelise design points.  Caching is off by
default — a bench that reads back its previous result measures
nothing — but ``--bench-cache [DIR]`` opts in to the shared result
cache for fast iteration on the assertions (paper-band checks, table
rendering) rather than the timings.
"""

import json
from pathlib import Path

import pytest

from repro.engine import ExperimentRunner, ResultCache
from repro.workloads.snapshots import SnapshotConfig

#: Snapshot scaling for the static (compression) benches.
STATIC_SCALE = SnapshotConfig(scale=1.0 / 65536)


@pytest.fixture(scope="session")
def static_config() -> SnapshotConfig:
    return STATIC_SCALE


class BenchRecorder:
    """Collects per-bench trajectory records (``--json PATH``).

    Timing benches call :meth:`record` with their measured numbers;
    one artifact is written at session end so future runs can diff the
    perf trajectory.  The environment block attributes every number to
    the event-core build it was measured on (compiled vs pure-Python)
    — without it a fallback run would read as a regression.
    """

    def __init__(self, path: str | None):
        self.path = path
        self.records: list[dict] = []

    def record(self, bench: str, **numbers) -> None:
        self.records.append({"bench": bench, **numbers})

    def write(self) -> None:
        if self.path is None or not self.records:
            return
        import platform

        import numpy as np

        from repro.gpusim import _event_core

        artifact = {
            "schema": "repro-bench-trajectory/1",
            "environment": {
                "event_core": _event_core.describe()["event_core"],
                "python": platform.python_version(),
                "numpy": np.__version__,
                "platform": platform.platform(),
            },
            "records": self.records,
        }
        Path(self.path).write_text(json.dumps(artifact, indent=2) + "\n")


@pytest.fixture(scope="session")
def bench_json(request) -> BenchRecorder:
    """Trajectory recorder; inert unless ``--json PATH`` was given."""
    recorder = BenchRecorder(request.config.getoption("--json"))
    yield recorder
    recorder.write()


@pytest.fixture(scope="session")
def runner(request) -> ExperimentRunner:
    """Engine runner for the benches (``--workers``/``--bench-cache``)."""
    cache_dir = request.config.getoption("--bench-cache")
    # The bare flag yields "": fall through to ResultCache's default
    # root resolution ($REPRO_CACHE_DIR, then .repro-cache/) so bench
    # hits are genuinely shared with repro run/sweep.
    return ExperimentRunner(
        workers=request.config.getoption("--workers"),
        cache=None if cache_dir is None else ResultCache(cache_dir or None),
    )
