"""Ablations beyond the paper (DESIGN.md section 5).

* Algorithm ablation: BPC vs BDI vs FPC vs C-PACK on identical
  snapshots — BPC's advantage on homogeneous GPU data is the paper's
  stated reason for choosing it.
* Quantisation ablation: free sizes (Fig. 3's optimistic study) vs
  32 B sectors (the implementable design).
* Decompression-latency sensitivity on the performance simulator.
"""


from repro.analysis.report import gmean
from repro.compression import (
    BDICompressor,
    BPCCompressor,
    CPackCompressor,
    FPCCompressor,
    free_sizes_for_sizes,
    sectors_for_sizes,
)
from repro.compression.zeroblock import zero_mask
from repro.units import MEMORY_ENTRY_BYTES, SECTOR_BYTES
from repro.workloads.snapshots import generate_snapshot

BENCHMARKS = ("356.sp", "355.seismic", "ResNet50", "VGG16", "354.cg")


def test_algorithm_ablation(benchmark, static_config):
    algorithms = [BPCCompressor(), BDICompressor(), FPCCompressor()]
    cpack = CPackCompressor()

    def run():
        ratios = {a.name: [] for a in algorithms}
        ratios[cpack.name] = []
        for name in BENCHMARKS:
            snapshot = generate_snapshot(name, 5, static_config)
            data = snapshot.stacked_data()
            for algorithm in algorithms:
                ratios[algorithm.name].append(algorithm.compression_ratio(data))
            # C-PACK is scalar-only: sample entries for tractability
            sample = data[:: max(1, data.shape[0] // 400)]
            ratios[cpack.name].append(cpack.compression_ratio(sample))
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, values in ratios.items():
        cells = "  ".join(
            f"{b}:{v:4.2f}" for b, v in zip(BENCHMARKS, values)
        )
        print(f"{name:6s} gmean {gmean(values):4.2f}  {cells}")

    # BPC wins on the homogeneous numeric data GPUs hold — the
    # paper's stated reason for choosing it
    assert gmean(ratios["bpc"]) > gmean(ratios["bdi"])
    assert gmean(ratios["bpc"]) > gmean(ratios["fpc"])
    assert gmean(ratios["bpc"]) > gmean(ratios["cpack"])


def test_sector_quantisation_ablation(benchmark, static_config):
    bpc = BPCCompressor()

    def run():
        rows = {}
        for name in BENCHMARKS:
            data = generate_snapshot(name, 5, static_config).stacked_data()
            sizes = bpc.compressed_sizes(data)
            free = free_sizes_for_sizes(sizes, zero_mask(data))
            sectors = sectors_for_sizes(sizes) * SECTOR_BYTES
            entries = data.shape[0]
            rows[name] = (
                entries * MEMORY_ENTRY_BYTES / max(int(free.sum()), 1),
                entries * MEMORY_ENTRY_BYTES / max(int(sectors.sum()), 1),
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, (free_ratio, sector_ratio) in rows.items():
        print(f"{name:12s} free {free_ratio:4.2f}x  sectors {sector_ratio:4.2f}x "
              f"(quantisation cost {free_ratio / sector_ratio:4.2f}x)")
    for free_ratio, sector_ratio in rows.values():
        # sector quantisation always costs compression, never gains
        assert sector_ratio <= free_ratio + 1e-9


def test_decompression_latency_sensitivity(benchmark):
    from repro.core.entry import TargetRatio
    from repro.gpusim import (
        CompressionMode,
        CompressionState,
        DependencyDrivenSimulator,
        scaled_config,
    )
    from repro.workloads.traces import TraceConfig, generate_trace, layout_snapshot
    from dataclasses import replace

    trace_config = TraceConfig(memory_instructions_per_warp=48)

    def run():
        trace = generate_trace("FF_Lulesh", trace_config)
        snapshot = layout_snapshot("FF_Lulesh", trace_config)
        selection = {a.name: TargetRatio.X2 for a in snapshot.allocations}
        state = CompressionState.from_snapshot(
            snapshot, selection, CompressionMode.BANDWIDTH
        )
        cycles = {}
        for dram_cycles in (0, 11, 44):
            config = replace(scaled_config(), decompression_dram_cycles=dram_cycles)
            cycles[dram_cycles] = DependencyDrivenSimulator(config).run(
                trace, state
            ).cycles
        return cycles

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for latency, value in cycles.items():
        print(f"decompression {latency:2d} DRAM cycles -> {value:9.0f} cycles "
              f"({value / cycles[0]:.3f}x)")
    # latency-sensitive FF_Lulesh pays for decompression latency
    assert cycles[11] >= cycles[0]
    assert cycles[44] > cycles[11]
