"""Fig. 3: free-size BPC compression ratios, ten dumps per benchmark."""

from repro.analysis import paper_reference as paper
from repro.analysis.compression_study import fig3_compression_ratios, suite_gmean


def test_fig3_compression_ratios(benchmark, static_config, runner):
    rows = benchmark.pedantic(
        fig3_compression_ratios,
        kwargs={"config": static_config, "runner": runner},
        rounds=1,
        iterations=1,
    )
    print()
    for row in rows:
        trend = " -> ".join(f"{r:.1f}" for r in row.per_snapshot[::3])
        print(f"{row.benchmark:14s} mean {row.mean_ratio:5.2f}  ({trend})")
    hpc = suite_gmean(rows, True)
    dl = suite_gmean(rows, False)
    print(f"GMEAN HPC {hpc:.2f} (paper {paper.FIG3_GMEAN_HPC})")
    print(f"GMEAN DL  {dl:.2f} (paper {paper.FIG3_GMEAN_DL})")

    # qualitative contracts
    assert 2.1 <= hpc <= 2.9  # paper: 2.51
    assert 1.5 <= dl <= 2.1  # paper: 1.85
    assert hpc > dl
    by_name = {row.benchmark: row for row in rows}
    # 355.seismic starts near-zero and asymptotes toward ~2x
    seismic = by_name["355.seismic"].per_snapshot
    assert seismic[0] > 2 * seismic[-1] and seismic[-1] > 1.5
    # 352.ep is the most compressible; 354.cg and 370.bt barely compress
    assert by_name["352.ep"].mean_ratio == max(r.mean_ratio for r in rows)
    assert by_name["354.cg"].mean_ratio < 1.3
    assert by_name["370.bt"].mean_ratio < 1.6
