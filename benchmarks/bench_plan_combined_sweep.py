"""The planner's headline win: the combined Fig. 7 + 9 + 11 sweep.

The three sweeps share every benchmark's snapshots and profile
tensors; the unplanned path rebuilds them once per sweep per worker,
the planned path (``ExperimentRunner.run_sweep``) builds them once
for the whole batch.  This bench measures that gap **cold**: each
side runs in a freshly spawned interpreter, because a fork-based
process pool inherits the parent's in-process memos — timing a
"cold" run inside a warm parent would measure nothing.

Contracts:

* both paths produce bit-identical ``result_digest`` values;
* the planned sweep generates each (benchmark, config) snapshot run
  at most once;
* planned cold wall-clock is at least **1.3x** faster than unplanned
  at 4 workers.

Run directly for one timed pass: ``python
benchmarks/bench_plan_combined_sweep.py planned|unplanned [workers]``.
Under pytest, ``--json PATH`` writes the measured numbers as a
trajectory artifact (see ``benchmarks/conftest.py``).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: A mixed HPC/DL spread; scale and trace length chosen so the shared
#: profile work and the per-point simulation both weigh in.
BENCHMARKS = ("354.cg", "370.bt", "FF_HPGMG", "AlexNet", "SqueezeNet", "VGG16")
SCALE_DENOM = 16384
MEMORY_INSTRUCTIONS = 32
WORKERS = 4
MIN_SPEEDUP = 1.3
ROUNDS = 2  # cold interpreters per side; best-of damps machine noise


def _requests():
    from repro.gpusim.config import scaled_config
    from repro.workloads.snapshots import SnapshotConfig
    from repro.workloads.traces import TraceConfig

    config = SnapshotConfig(scale=1.0 / SCALE_DENOM)
    machine = scaled_config()
    trace_config = TraceConfig(
        memory_instructions_per_warp=MEMORY_INSTRUCTIONS,
        sm_count=machine.sm_count,
        warps_per_sm=machine.warps_per_sm,
    )
    return [
        ("compression.fig7", {"benchmarks": BENCHMARKS, "config": config}),
        ("compression.fig9", {"benchmarks": BENCHMARKS, "config": config}),
        (
            "perf.fig11",
            {
                "benchmarks": BENCHMARKS,
                "trace_config": trace_config,
                "profile_config": config,
            },
        ),
    ]


def _child_main(mode: str, workers: int) -> None:
    """One timed cold pass; prints a JSON record (spawned fresh)."""
    import time

    from repro.engine import ExperimentRunner, result_digest

    requests = _requests()
    runner = ExperimentRunner(workers=workers, cache=None)
    record = {"mode": mode, "workers": workers}
    start = time.perf_counter()
    if mode == "planned":
        result = runner.run_sweep(requests)
        values = result.values
        record["snapshot_generations"] = result.execution.snapshot_generations
        record["max_generations"] = result.execution.max_generations_per_artifact
        record["bulk_calls"] = result.execution.bulk_compression_calls
    else:
        values = [runner.run(name, params) for name, params in requests]
    record["seconds"] = time.perf_counter() - start
    record["digests"] = [result_digest(value) for value in values]
    print(json.dumps(record))


def _spawn(mode: str) -> dict:
    """Best-of-``ROUNDS`` cold passes, each in a fresh interpreter.

    A fresh process per round is the point of this harness: fork-based
    pools inherit the parent's memos, so only a new interpreter
    measures the genuinely cold path.  Best-of damps scheduler noise
    without warming anything.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    best = None
    for _ in range(ROUNDS):
        proc = subprocess.run(
            [sys.executable, str(Path(__file__).resolve()), mode, str(WORKERS)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        record = json.loads(proc.stdout.strip().splitlines()[-1])
        if best is not None and record["digests"] != best["digests"]:
            raise AssertionError(
                f"{mode} rounds disagree: {record['digests']} "
                f"vs {best['digests']}"
            )
        if best is None or record["seconds"] < best["seconds"]:
            best = record
    return best


try:
    import pytest
except ImportError:  # direct child invocation needs no pytest
    pytest = None

if pytest is not None:

    @pytest.mark.slow
    def test_combined_sweep_planned_speedup(bench_json):
        planned = _spawn("planned")
        unplanned = _spawn("unplanned")
        speedup = unplanned["seconds"] / planned["seconds"]
        bench_json.record(
            "plan_combined_sweep",
            workers=WORKERS,
            planned_s=planned["seconds"],
            unplanned_s=unplanned["seconds"],
            planned_over_unplanned_x=speedup,
            bulk_calls=planned["bulk_calls"],
            snapshot_generations=planned["snapshot_generations"],
        )
        print()
        print(
            f"planned   {planned['seconds']:6.2f}s  "
            f"({planned['bulk_calls']} bulk call(s), "
            f"{planned['snapshot_generations']} snapshot run(s))"
        )
        print(f"unplanned {unplanned['seconds']:6.2f}s")
        print(f"cold speedup: {speedup:.2f}x (floor {MIN_SPEEDUP}x)")

        # Bit-identical datasets, per request.
        assert planned["digests"] == unplanned["digests"]
        # Each benchmark's snapshots generated at most once per config
        # (fig7/9 profile + reference roles, fig11's trace config).
        assert planned["max_generations"] <= 1
        assert planned["snapshot_generations"] <= 3 * len(BENCHMARKS)
        # The headline: the planned cold combined sweep is faster.
        assert speedup >= MIN_SPEEDUP


if __name__ == "__main__":
    _child_main(
        sys.argv[1] if len(sys.argv) > 1 else "planned",
        int(sys.argv[2]) if len(sys.argv) > 2 else WORKERS,
    )
