"""Fig. 11: performance relative to an ideal large-memory GPU.

Sweeps bandwidth-only compression and Buddy Compression across
interconnect bandwidths of 50/100/150/200 GB/s on all 16 benchmarks.

The sweep runs on any of the three simulator engines (``--engine``
axis below): the default vectorized batched-event core, the relaxed
frozen-order tape engine, or the per-access legacy oracle.
Vectorized and legacy produce identical datasets (the equivalence
tests pin it); the relaxed engine is exact at the 150 GB/s reference
interconnect and tolerance-pinned elsewhere
(``tests/test_relaxed_sim.py``).  The speedup test at the bottom
measures the wall-clock gap on the sweep's simulation hot path and
asserts each fast engine's advantage — including the compiled event
core's ≥2× floor over the pure-Python core when the extension is
built.  Pass ``--json PATH`` to write the measured numbers as a
trajectory artifact (see ``benchmarks/conftest.py``).
"""

import time

import pytest

from repro.analysis import paper_reference as paper
from repro.analysis.perf_study import (
    LINK_SWEEP,
    format_perf_table,
    run_perf_study,
)
from repro.workloads.traces import TraceConfig

#: Shorter traces than the analysis default keep the bench quick while
#: preserving the steady-state balance.
TRACE = TraceConfig(memory_instructions_per_warp=64)

#: Benchmarks used by the engine speed comparison (a spread of access
#: patterns: streaming DL, random gather, stencil, latency-bound).
SPEEDUP_BENCHMARKS = ("VGG16", "354.cg", "370.bt", "FF_Lulesh")


@pytest.mark.slow
@pytest.mark.parametrize("engine", ["vectorized", "relaxed", "legacy"])
def test_fig11_performance(benchmark, runner, engine):
    result = benchmark.pedantic(
        run_perf_study,
        kwargs={"trace_config": TRACE, "runner": runner, "engine": engine},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_perf_table(result))
    bw = result.overall_gmean("bandwidth")
    buddy150 = result.overall_gmean("buddy", 150.0)
    print(f"bandwidth-only gmean {bw:.3f} (paper {paper.FIG11_BANDWIDTH_ONLY_MEAN})")
    print(f"buddy@150 gmean {buddy150:.3f} (paper ~0.98)")

    rows = {r.benchmark: r for r in result.per_benchmark}

    # bandwidth-only compression: modest overall gain, led by DL
    assert 1.0 < bw < 1.12
    assert result.suite_gmean(False, "bandwidth") > result.suite_gmean(True, "bandwidth")
    # the paper's bandwidth-compression losers slow down (FF_Lulesh's
    # decompression-latency penalty leaves it at best break-even)
    assert rows["354.cg"].bandwidth_only < 1.0
    assert rows["360.ilbdc"].bandwidth_only < 1.0
    assert rows["FF_Lulesh"].bandwidth_only < 1.02

    # Buddy costs on top of bandwidth compression
    for name in ("AlexNet", "VGG16", "351.palm", "355.seismic"):
        assert rows[name].buddy[150.0] < rows[name].bandwidth_only
    # metadata-cache victims (the paper: 351.palm, 355.seismic)
    assert rows["351.palm"].metadata_hit_rate < 0.93
    assert rows["355.seismic"].metadata_hit_rate < 0.93
    # AlexNet: the highest DL buddy traffic and worse at 50 GB/s
    assert rows["AlexNet"].buddy_access_fraction > 0.05
    assert rows["AlexNet"].buddy[50.0] <= rows["AlexNet"].buddy[150.0]
    # overall: buddy within a few percent of ideal at NVLink2 speeds
    assert 0.95 < buddy150 < 1.08
    assert 0.95 < result.suite_gmean(True, "buddy", 150.0) < 1.05


@pytest.mark.slow
def test_fig11_engine_speedup(benchmark, bench_json):
    """The fast cores' wall-clock advantage on the Fig. 11 grid.

    Measures the sweep's simulation hot path — every (mode, link)
    point of several benchmarks, traces and compression states
    prepared once and shared — for all three engines, asserts the
    equivalence contracts, and pins the speedup floors.  The first
    vectorized pass is fully cold (it performs the whole column
    resolution), so its *cold* ratio is what a fresh single-shot
    sweep sees and the assertion uses it — a column-build regression
    cannot hide behind the memo.  The first relaxed pass runs after
    vectorized has warmed the shared column memos, so its "cold"
    ratio isolates the tape recording + replay cost on top of warm
    columns; the relaxed assertion uses the *warm* (best-of-3) ratio,
    because amortising the one exact-order recording across the link
    sweep is exactly that engine's architecture.

    When the compiled event core is active, one extra vectorized leg
    runs under ``_event_core.force_python()`` and the compiled build
    must beat the pure-Python build by ≥2× warm — the tentpole claim
    of the compiled core, measured on the same grid in the same
    process.  On a fallback-only install the leg is skipped and the
    original floors stand unchanged.
    """
    from repro.core.controller import BuddyCompressor, BuddyConfig
    from repro.core.targets import FINAL
    from repro.gpusim import (
        REFERENCE_LINK_GBPS,
        CompressionMode,
        CompressionState,
        DependencyDrivenSimulator,
        check_relaxed_contract,
        scaled_config,
    )
    from repro.gpusim import _event_core
    from repro.workloads.snapshots import SnapshotConfig
    from repro.workloads.traces import generate_trace, layout_state

    config = scaled_config()
    trace_config = TraceConfig(
        sm_count=config.sm_count,
        warps_per_sm=config.warps_per_sm,
        memory_instructions_per_warp=64,
    )
    compressor = BuddyCompressor(
        BuddyConfig(snapshot_config=SnapshotConfig(scale=1.0 / 65536))
    )
    grid = []
    for name in SPEEDUP_BENCHMARKS:
        trace = generate_trace(name, trace_config)
        layout = layout_state(name, trace_config)
        selection = compressor.select(compressor.profile(name), FINAL)
        states = [
            (config, CompressionState.ideal(trace.footprint_bytes)),
            (
                config,
                CompressionState.from_entry_state(
                    layout, selection, CompressionMode.BANDWIDTH
                ),
            ),
        ]
        buddy = CompressionState.from_entry_state(
            layout, selection, CompressionMode.BUDDY
        )
        states += [(config.with_link(link), buddy) for link in LINK_SWEEP]
        grid.append((trace, states))

    def sweep(engine):
        results = []
        start = time.perf_counter()
        for trace, states in grid:
            for machine, state in states:
                results.append(
                    DependencyDrivenSimulator(machine, engine).run(
                        trace, state
                    )
                )
        return time.perf_counter() - start, results

    def run():
        # Alternate engines over three passes, so a noisy neighbour
        # cannot skew any side.  Pass 0 of the vectorized engine is
        # fully cold (whole column resolution); pass 0 of the relaxed
        # engine records its tapes over the columns vectorized just
        # warmed.
        times = {"legacy": [], "vectorized": [], "relaxed": [], "python-core": []}
        results = {}
        for _ in range(3):
            for engine in ("legacy", "vectorized", "relaxed"):
                seconds, engine_results = sweep(engine)
                times[engine].append(seconds)
                results[engine] = engine_results
            if _event_core.compiled_active():
                # The compiled core's own leg: the same vectorized
                # sweep forced onto the pure-Python event loop, over
                # the columns the compiled pass just warmed — the
                # ratio isolates the event loop itself.
                with _event_core.force_python():
                    seconds, engine_results = sweep("vectorized")
                times["python-core"].append(seconds)
                results["python-core"] = engine_results
        return times, results

    times, results = benchmark.pedantic(run, rounds=1, iterations=1)
    legacy_best = min(times["legacy"])
    vector_cold = legacy_best / times["vectorized"][0]
    vector_warm = legacy_best / min(times["vectorized"])
    relaxed_cold = legacy_best / times["relaxed"][0]
    relaxed_warm = legacy_best / min(times["relaxed"])
    print()
    print(
        f"fig11 grid ({len(results['legacy'])} sims): "
        f"legacy {legacy_best:.2f}s, "
        f"vectorized cold {times['vectorized'][0]:.2f}s / "
        f"warm {min(times['vectorized']):.2f}s -> "
        f"{vector_cold:.2f}x cold, {vector_warm:.2f}x warm, "
        f"relaxed cold {times['relaxed'][0]:.2f}s / "
        f"warm {min(times['relaxed']):.2f}s -> "
        f"{relaxed_cold:.2f}x cold, {relaxed_warm:.2f}x warm"
    )

    # The equivalence contracts hold at every grid point: vectorized
    # is bit-identical to the oracle, relaxed is bit-identical at the
    # reference interconnect and tolerance-pinned elsewhere.
    points = [
        machine for _, states in grid for machine, _ in states
    ]
    for machine, legacy_result, vector_result, relaxed_result in zip(
        points, results["legacy"], results["vectorized"], results["relaxed"]
    ):
        assert legacy_result.cycles == vector_result.cycles
        assert legacy_result.dram_bytes == vector_result.dram_bytes
        assert legacy_result.link_bytes == vector_result.link_bytes
        assert legacy_result.buddy_fills == vector_result.buddy_fills
        assert legacy_result.demand_fills == vector_result.demand_fills
        check_relaxed_contract(
            relaxed_result,
            legacy_result,
            exact=machine.link.bandwidth_gbps == REFERENCE_LINK_GBPS,
        )
    # Speedup floors.  Vectorized on the pure-Python core: measured
    # ~2-2.5x cold and ~2.5-3x warm on the development machine; the
    # compiled event core lifts both well past these, and the floors
    # deliberately stay at the fallback's level so a fallback-only
    # install does not regress below today's bar.  Relaxed: measured
    # ~3x cold and ~15-20x warm (one recording per state, replay-only
    # link points); the >=5x floor is the ROADMAP target the
    # exact-order engines could not reach on the Python core.
    # Conservative floors keep the assertions robust on shared CI
    # runners.
    assert vector_cold >= 1.5
    assert vector_warm >= 2.0
    assert relaxed_cold >= 1.2
    assert relaxed_warm >= 5.0

    compiled_warm = None
    if _event_core.compiled_active():
        # The python-core leg ran the identical grid, so equivalence
        # is free to check: the fallback must be bit-identical too.
        for vector_result, python_result in zip(
            results["vectorized"], results["python-core"]
        ):
            assert vector_result.cycles == python_result.cycles
            assert vector_result.link_bytes == python_result.link_bytes
        compiled_warm = min(times["python-core"]) / min(times["vectorized"])
        print(
            f"compiled event core: {compiled_warm:.2f}x over the "
            f"pure-Python core (warm vectorized grid)"
        )
        # The tentpole floor: the compiled exact-order core is >=2x
        # the Python core it transcribes (measured ~4-6x).
        assert compiled_warm >= 2.0

    bench_json.record(
        "fig11_engine_speedup",
        grid_sims=len(results["legacy"]),
        legacy_s=legacy_best,
        vectorized_cold_s=times["vectorized"][0],
        vectorized_warm_s=min(times["vectorized"]),
        relaxed_cold_s=times["relaxed"][0],
        relaxed_warm_s=min(times["relaxed"]),
        vector_cold_x=vector_cold,
        vector_warm_x=vector_warm,
        relaxed_cold_x=relaxed_cold,
        relaxed_warm_x=relaxed_warm,
        python_core_warm_s=(
            min(times["python-core"]) if times["python-core"] else None
        ),
        compiled_over_python_warm_x=compiled_warm,
    )


@pytest.mark.slow
def test_fig11_multi_link_replay_speedup(benchmark, bench_json):
    """Batched multi-link replay vs the serial per-link replay loop.

    Records one Fig. 11-geometry buddy tape, then replays a widened
    link sweep two ways: the historical serial loop (one
    ``replay_tape`` call per link) and one ``replay_tape_many`` pass
    carrying per-link clock state.  The batched pass must return
    bit-identical cycles per link, and — when the compiled event core
    is active — beat the serial loop by ≥2× warm (one
    parse/allocation amortised across the sweep and no per-link
    Python dispatch).  On the NumPy fallback the ratio is reported
    but not asserted: both paths are already vectorised there, so the
    floor is the compiled core's claim.
    """
    from repro.core.controller import BuddyCompressor, BuddyConfig
    from repro.core.targets import FINAL
    from repro.gpusim import (
        REFERENCE_LINK_GBPS,
        CompressionMode,
        CompressionState,
        scaled_config,
    )
    from repro.gpusim import _event_core
    from repro.gpusim.vector_sim import _resolve_tape, _replay_tape, _TAPE_MEMO
    from repro.workloads.snapshots import SnapshotConfig
    from repro.workloads.traces import generate_trace, layout_state

    links = (25.0, 50.0, 75.0, 100.0, 200.0, 300.0, 600.0, 900.0)
    config = scaled_config()
    trace_config = TraceConfig(
        sm_count=config.sm_count,
        warps_per_sm=config.warps_per_sm,
        memory_instructions_per_warp=64,
    )
    compressor = BuddyCompressor(
        BuddyConfig(snapshot_config=SnapshotConfig(scale=1.0 / 65536))
    )
    trace = generate_trace("VGG16", trace_config)
    layout = layout_state("VGG16", trace_config)
    selection = compressor.select(compressor.profile("VGG16"), FINAL)
    state = CompressionState.from_entry_state(
        layout, selection, CompressionMode.BUDDY
    )
    _TAPE_MEMO.pop(trace, None)
    tape, _reference = _resolve_tape(
        trace, state, config.with_link(REFERENCE_LINK_GBPS), need_tape=True
    )
    _TAPE_MEMO.pop(trace, None)

    iscalars = (tape.warp_count, tape.sm_count, tape.channels)
    packs = []
    for link in links:
        link_config = config.with_link(link)
        packs.append(
            (
                link_config.issue_interval,
                float(link_config.dram_latency),
                float(link_config.l2_latency),
                link_config.link.bytes_per_cycle(link_config.clock_hz),
                float(link_config.link.latency_cycles),
                tape.fill_tail,
            )
        )

    def run():
        times = {"serial": [], "batched": []}
        cycles = {}
        for _ in range(5):
            start = time.perf_counter()
            cycles["serial"] = tuple(
                _replay_tape(tape, config.with_link(link)) for link in links
            )
            times["serial"].append(time.perf_counter() - start)
            start = time.perf_counter()
            cycles["batched"] = tuple(
                _event_core.replay_tape_many(
                    tape.cols, tape.warp_mlp, iscalars, packs
                )
            )
            times["batched"].append(time.perf_counter() - start)
        return times, cycles

    times, cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cycles["batched"] == cycles["serial"]  # bit-identical per link

    serial_warm = min(times["serial"])
    batched_warm = min(times["batched"])
    speedup = serial_warm / batched_warm
    core = "compiled" if _event_core.compiled_active() else "python"
    print()
    print(
        f"multi-link replay ({tape.event_count} events x {len(links)} "
        f"links, {core} core): serial {serial_warm * 1e3:.2f}ms, "
        f"batched {batched_warm * 1e3:.2f}ms -> {speedup:.2f}x"
    )
    if _event_core.compiled_active():
        # The tentpole floor: one batched pass is >=2x the serial
        # per-link replay loop on the compiled core (measured ~2.5-4x
        # at 8 links on the development machine).
        assert speedup >= 2.0

    bench_json.record(
        "fig11_multi_link_replay",
        tape_events=tape.event_count,
        links=len(links),
        serial_warm_s=serial_warm,
        batched_warm_s=batched_warm,
        batched_over_serial_x=speedup,
    )
