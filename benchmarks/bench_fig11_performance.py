"""Fig. 11: performance relative to an ideal large-memory GPU.

Sweeps bandwidth-only compression and Buddy Compression across
interconnect bandwidths of 50/100/150/200 GB/s on all 16 benchmarks.
"""

import pytest

from repro.analysis import paper_reference as paper
from repro.analysis.perf_study import format_perf_table, run_perf_study
from repro.workloads.traces import TraceConfig

#: Shorter traces than the analysis default keep the bench quick while
#: preserving the steady-state balance.
TRACE = TraceConfig(memory_instructions_per_warp=64)


@pytest.mark.slow
def test_fig11_performance(benchmark, runner):
    result = benchmark.pedantic(
        run_perf_study,
        kwargs={"trace_config": TRACE, "runner": runner},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_perf_table(result))
    bw = result.overall_gmean("bandwidth")
    buddy150 = result.overall_gmean("buddy", 150.0)
    print(f"bandwidth-only gmean {bw:.3f} (paper {paper.FIG11_BANDWIDTH_ONLY_MEAN})")
    print(f"buddy@150 gmean {buddy150:.3f} (paper ~0.98)")

    rows = {r.benchmark: r for r in result.per_benchmark}

    # bandwidth-only compression: modest overall gain, led by DL
    assert 1.0 < bw < 1.12
    assert result.suite_gmean(False, "bandwidth") > result.suite_gmean(True, "bandwidth")
    # the paper's bandwidth-compression losers slow down (FF_Lulesh's
    # decompression-latency penalty leaves it at best break-even)
    assert rows["354.cg"].bandwidth_only < 1.0
    assert rows["360.ilbdc"].bandwidth_only < 1.0
    assert rows["FF_Lulesh"].bandwidth_only < 1.02

    # Buddy costs on top of bandwidth compression
    for name in ("AlexNet", "VGG16", "351.palm", "355.seismic"):
        assert rows[name].buddy[150.0] < rows[name].bandwidth_only
    # metadata-cache victims (the paper: 351.palm, 355.seismic)
    assert rows["351.palm"].metadata_hit_rate < 0.93
    assert rows["355.seismic"].metadata_hit_rate < 0.93
    # AlexNet: the highest DL buddy traffic and worse at 50 GB/s
    assert rows["AlexNet"].buddy_access_fraction > 0.05
    assert rows["AlexNet"].buddy[50.0] <= rows["AlexNet"].buddy[150.0]
    # overall: buddy within a few percent of ideal at NVLink2 speeds
    assert 0.95 < buddy150 < 1.08
    assert 0.95 < result.suite_gmean(True, "buddy", 150.0) < 1.05
