"""Fig. 12 + Sec. 4.3: UM oversubscription vs pinned vs Buddy."""

from repro.analysis import paper_reference as paper
from repro.analysis.um_study import (
    buddy_vs_um,
    fig12_curves,
    format_fig12_table,
)


def test_fig12_um_oversubscription(benchmark, runner):
    rows = benchmark.pedantic(
        fig12_curves, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    print()
    print(format_fig12_table(rows))

    by_key = {(r.benchmark, round(r.oversubscription, 2)): r for r in rows}

    # slowdown grows with oversubscription for every benchmark
    for name in ("360.ilbdc", "356.sp", "351.palm"):
        series = [by_key[(name, o)].um_slowdown for o in (0.0, 0.1, 0.2, 0.3, 0.4)]
        assert series[0] == 1.0
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))

    # 360.ilbdc collapses past its pinned alternative (the paper's
    # headline: UM heuristics often lose to plain pinning)
    ilbdc_40 = by_key[("360.ilbdc", 0.4)]
    assert ilbdc_40.um_slowdown > 15
    assert ilbdc_40.um_slowdown > ilbdc_40.pinned_slowdown
    # strided codes degrade far less
    assert by_key[("351.palm", 0.4)].um_slowdown < 6
    assert by_key[("356.sp", 0.4)].um_slowdown < 8

    # Sec. 4.3: Buddy at a conservative 50 GB/s stays under 1.67x even
    # at 50 % oversubscription, far below UM's collapse
    buddy_perf = {"360.ilbdc": 0.94, "356.sp": 1.02, "351.palm": 1.06}
    comparison = buddy_vs_um(buddy_perf)
    for row in comparison:
        print(f"{row.benchmark:12s} UM@49% {row.um_slowdown:6.1f}x  "
              f"buddy@50GBps {row.buddy_slowdown:4.2f}x")
        assert row.buddy_slowdown < paper.BUDDY_MAX_SLOWDOWN_AT_50PCT_OVERSUB
        assert row.buddy_slowdown < row.um_slowdown
