"""Fig. 13: the DL-training case study (all four panels)."""

import numpy as np

from repro.analysis import paper_reference as paper
from repro.analysis.dl_study import format_dl_tables, run_dl_study
from repro.dlmodel.memory import TITAN_XP_BYTES, footprint_bytes, transition_batch


def test_fig13_dl_case_study(benchmark, static_config, runner):
    result = benchmark.pedantic(
        run_dl_study, kwargs={"runner": runner}, rounds=1, iterations=1,
    )
    print()
    print(format_dl_tables(result))

    # 13a: footprints grow monotonically; AlexNet transitions late
    for name, row in result.footprints.items():
        values = [row[b] for b in sorted(row)]
        assert all(b > a for a, b in zip(values, values[1:]))
    assert 64 <= transition_batch("AlexNet") <= 160  # paper: 96
    for name in ("VGG16", "ResNet50", "Inception_V2", "SqueezeNet"):
        assert transition_batch(name) <= paper.FIG13_OTHER_TRANSITION_MAX
    # VGG16 and BigLSTM cannot fit a 64 mini-batch in 12 GB
    assert footprint_bytes("VGG16", 64) > TITAN_XP_BYTES
    assert footprint_bytes("BigLSTM", 64) > TITAN_XP_BYTES

    # 13b: throughput rises with batch then plateaus
    for name, speedups in result.throughput_speedups.items():
        ordered = [speedups[b] for b in sorted(speedups)]
        assert all(b >= a - 1e-9 for a, b in zip(ordered, ordered[1:]))
        early_gain = ordered[1] / ordered[0]
        late_gain = ordered[-1] / ordered[-2]
        assert late_gain < early_gain  # saturation

    # 13c: mean speedup ~14%, led by the capacity-constrained networks
    mean = result.mean_case_speedup
    assert 1.05 < mean < 1.30  # paper: 1.14
    by_name = {row.network: row for row in result.case_study}
    leaders = sorted(result.case_study, key=lambda r: -r.speedup)[:2]
    assert {row.network for row in leaders} == {"VGG16", "BigLSTM"}
    assert by_name["VGG16"].buddy_batch > by_name["VGG16"].baseline_batch

    # 13d: batches 16/32 undershoot the peak accuracy; 64+ reach it,
    # with larger batches converging faster
    final = {batch: float(curve[-1]) for batch, curve in result.accuracy.items()}
    assert final[16] < final[64] - 0.02
    assert final[32] < final[128] - 0.01
    assert abs(final[128] - final[256]) < 0.02
    at_epoch_40 = {b: float(c[39]) for b, c in result.accuracy.items()}
    assert at_epoch_40[256] > at_epoch_40[64]
    # small batches have larger accuracy jitter (batch-norm noise)
    jitter16 = float(np.std(np.diff(result.accuracy[16][60:])))
    jitter256 = float(np.std(np.diff(result.accuracy[256][60:])))
    assert jitter16 > jitter256
