"""Fig. 5b: metadata cache hit rate vs total cache size."""

from repro.analysis.metadata_study import (
    format_metadata_table,
    run_metadata_study,
)
from repro.units import KIB
from repro.workloads.snapshots import SnapshotConfig
from repro.workloads.traces import TraceConfig

BENCHMARKS = (
    "351.palm", "355.seismic", "356.sp", "354.cg", "VGG16", "ResNet50",
    "FF_Lulesh",
)
TRACE = TraceConfig(
    memory_instructions_per_warp=48,
    snapshot_config=SnapshotConfig(scale=1.0 / 2048),
)


def test_fig5b_metadata_cache_sweep(benchmark, runner):
    rows = benchmark.pedantic(
        run_metadata_study,
        kwargs={"benchmarks": BENCHMARKS, "trace_config": TRACE,
                "runner": runner},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_metadata_table(rows))

    by_name = {row.benchmark: row for row in rows}
    for row in rows:
        sizes = sorted(row.hit_rates)
        rates = [row.hit_rates[s] for s in sizes]
        # hit rate is non-decreasing in capacity (paper's x-axis sweep)
        assert all(b >= a - 0.02 for a, b in zip(rates, rates[1:]))
    # the paper's low-hit-rate outliers: 351.palm and 355.seismic sit
    # below the streaming workloads at the operating point
    mid = 4 * KIB
    for victim in ("351.palm", "355.seismic"):
        assert by_name[victim].hit_rates[mid] < by_name["VGG16"].hit_rates[mid]
        assert by_name[victim].hit_rates[mid] < by_name["FF_Lulesh"].hit_rates[mid]
    # everything converges toward high hit rates with enough capacity
    top = 64 * KIB
    assert all(row.hit_rates[top] > 0.85 for row in rows)
