"""Documentation consistency checker (CI `docs` job; tier-1 test).

Thin shim over the static analyzer's ``docs-sync`` pass
(:mod:`repro.statics.docs_sync`), kept so the historical entry points
keep working: run it directly (``python scripts/check_docs.py``) or
through ``tests/test_docs.py``, which wraps :func:`run_all_checks`.
``python -m repro check`` runs the same pass alongside the other
invariant checks.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_all_checks() -> list[str]:
    """Every docs-sync finding, rendered as one string each."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.statics.docs_sync import check_docs
    from repro.statics.framework import Context

    ctx = Context(REPO_ROOT, REPO_ROOT / "src")
    return [
        f"{finding.path}:{finding.line}: {finding.message}"
        for finding in check_docs(ctx)
    ]


def main() -> int:
    errors = run_all_checks()
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if not errors:
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.statics.docs_sync import DOC_FILES

        print(f"docs OK ({', '.join(DOC_FILES)})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
