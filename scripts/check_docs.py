"""Documentation consistency checker (CI `docs` job; tier-1 test).

Docs rot in three ways this catches mechanically:

* a relative link in README.md or docs/*.md stops resolving (file
  moved or renamed);
* a documented `repro run <experiment>` name drifts from the
  experiment registry;
* a digest quoted in the docs (the golden dual-engine and relaxed
  Fig. 11 digests) falls out of sync with the value the tests
  actually pin.

Run it directly (`python scripts/check_docs.py`) or through
`tests/test_docs.py`, which wraps the same checks so the tier-1 suite
enforces them locally too.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose relative links must resolve.
DOC_FILES = (
    "README.md",
    "docs/architecture.md",
    "docs/engines.md",
    "docs/planner.md",
)

#: Links README must carry (the docs' front doors).
REQUIRED_README_LINKS = (
    "docs/architecture.md",
    "docs/engines.md",
    "docs/planner.md",
)

_LINK = re.compile(r"\[[^\]]+\]\(([^)#\s]+)(?:#[^)\s]*)?\)")
_RUN_NAME = re.compile(r"repro run ([a-z_]+\.[a-z0-9_]+)")
_DIGEST = re.compile(r"\b[0-9a-f]{32}\b")
#: Abbreviated digests in prose, e.g. "36fffebd…" / "282a94e8...".
_SHORT_DIGEST = re.compile(r"\b([0-9a-f]{8})(?:…|\.\.\.)")


def check_links() -> list[str]:
    """Every relative markdown link resolves to a real file."""
    errors = []
    for name in DOC_FILES:
        doc = REPO_ROOT / name
        for target in _LINK.findall(doc.read_text()):
            if "://" in target:  # external URL, not checked offline
                continue
            resolved = (doc.parent / target).resolve()
            if not resolved.exists():
                errors.append(f"{name}: broken link -> {target}")
    return errors


def check_readme_links_docs() -> list[str]:
    readme = (REPO_ROOT / "README.md").read_text()
    return [
        f"README.md does not link {required}"
        for required in REQUIRED_README_LINKS
        if required not in readme
    ]


def check_experiment_names() -> list[str]:
    """Documented `repro run` names exist in the registry."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.engine import experiment_names

    registered = set(experiment_names())
    errors = []
    for name in DOC_FILES:
        documented = set(_RUN_NAME.findall((REPO_ROOT / name).read_text()))
        for experiment in sorted(documented - registered):
            errors.append(
                f"{name}: documents unregistered experiment {experiment!r}"
            )
    return errors


def check_digests() -> list[str]:
    """Digests quoted in the docs match the ones the tests pin."""
    pinned = set()
    for test_file in ("tests/test_vector_sim.py", "tests/test_relaxed_sim.py"):
        pinned.update(_DIGEST.findall((REPO_ROOT / test_file).read_text()))
    errors = []
    for name in DOC_FILES:
        text = (REPO_ROOT / name).read_text()
        for digest in _DIGEST.findall(text):
            if digest not in pinned:
                errors.append(
                    f"{name}: digest {digest} is not pinned by any test"
                )
        for prefix in _SHORT_DIGEST.findall(text):
            if not any(full.startswith(prefix) for full in pinned):
                errors.append(
                    f"{name}: abbreviated digest {prefix}… matches no "
                    "test-pinned digest"
                )
    return errors


def run_all_checks() -> list[str]:
    return (
        check_links()
        + check_readme_links_docs()
        + check_experiment_names()
        + check_digests()
    )


def main() -> int:
    errors = run_all_checks()
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if not errors:
        print(f"docs OK ({', '.join(DOC_FILES)})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
