"""Development helper: analytic evaluation of calibration specs.

Computes, per benchmark, the Fig.-3 free-size ratio and the buddy
design points (naive / per-allocation / zero-page) straight from the
class-mix algebra, using the nominal class sizes.  Used while tuning
``repro/workloads/calibration.py``; the real studies measure the same
quantities from generated data.
"""

import numpy as np

from repro.workloads.calibration import all_specs
from repro.workloads.catalog import get_benchmark

FREE = np.array([0, 8, 32, 64, 96, 128], dtype=float)  # Z C S1 S2 S3 S4
SECTORS = np.array([1, 1, 1, 2, 3, 4], dtype=float)
ZERO_OK = np.array([1, 1, 0, 0, 0, 0], dtype=float)  # fits 8 B slot
RATIOS = [(0, 8.0), (1, 32.0), (2, 64.0), (3, 96.0), (4, 128.0)]  # device sectors: 0 => 16x
THRESHOLD = 0.30
ZERO_TOL = 0.03


def avg_mix(alloc):
    mixes = [alloc.mix_at(t / 9) for t in range(10)]
    return np.mean([m.as_array() for m in mixes], axis=0)


def choose_target(mix, threshold=THRESHOLD, allow_zero_page=True):
    """Device sectors chosen for an allocation mix (0 == 16x class)."""
    overflow_zero = 1.0 - (mix * ZERO_OK).sum()
    if allow_zero_page and overflow_zero <= ZERO_TOL:
        return 0
    for sectors in (1, 2, 3):
        overflow = mix[SECTORS > sectors].sum()
        if overflow <= threshold:
            return sectors
    return 4


def report():
    rows = []
    for spec in all_specs():
        bench = get_benchmark(spec.benchmark)
        fracs = np.array([a.fraction for a in spec.allocations])
        mixes = np.stack([avg_mix(a) for a in spec.allocations])
        e_free = (mixes @ FREE)
        fig3 = 128.0 / float(fracs @ e_free)

        device = np.zeros(len(spec.allocations))
        access = np.zeros(len(spec.allocations))
        for i, mix in enumerate(mixes):
            s = choose_target(mix)
            device[i] = (8 / 128) if s == 0 else s / 4
            limit = 0 if s == 0 else s
            if s == 0:
                access[i] = 1.0 - (mix * ZERO_OK).sum()
            else:
                access[i] = mix[SECTORS > s].sum()
        ratio = 1.0 / float(fracs @ device)
        acc = float(fracs @ access)

        # naive: single conservative program-wide target (no zero page):
        # largest allowed ratio not exceeding the average compressibility,
        # subject to an overflow cap.
        program_mix = fracs @ mixes
        avg_sectors = float(program_mix @ SECTORS)
        s = 4
        for cand in (1, 2, 3):
            overflow = program_mix[SECTORS > cand].sum()
            if cand >= avg_sectors and overflow <= 0.45:
                s = cand
                break
        naive_ratio = 4.0 / s
        naive_acc = float(program_mix[SECTORS > s].sum()) if s < 4 else 0.0
        rows.append((spec.benchmark, bench.is_hpc, fig3, naive_ratio, naive_acc, ratio, acc))

    print(f"{'benchmark':14s} {'fig3':>5s} {'nv_r':>5s} {'nv_a%':>6s} {'fin_r':>6s} {'fin_a%':>6s}")
    for name, _, fig3, nr, na, r, a in rows:
        print(f"{name:14s} {fig3:5.2f} {nr:5.2f} {100*na:6.1f} {r:6.2f} {100*a:6.2f}")
    for label, hpc in (("HPC", True), ("DL", False)):
        sel = [row for row in rows if row[1] == hpc]
        g = lambda idx: float(np.exp(np.mean([np.log(max(row[idx], 1e-9)) for row in sel])))
        m = lambda idx: float(np.mean([row[idx] for row in sel]))
        print(
            f"GMEAN {label}: fig3 {g(2):.2f} naive {g(3):.2f}/{100*m(4):.1f}% "
            f"final {g(5):.2f}/{100*m(6):.2f}%"
        )


if __name__ == "__main__":
    report()
