"""Batched-replay build parity check (CI `event-core` job).

Records one real relaxed tape, replays a multi-link sweep through
`replay_tape_many` on the compiled event core and again under
`force_python()`, and enforces the batched replay's two load-bearing
guarantees in one process:

* **batched == serial** — the one-pass multi-link replay returns, per
  link, exactly the cycles of a serial `replay_tape` loop;
* **compiled == fallback** — the digest over the batched cycle vector
  is byte-identical across builds, so the compiled core can never
  become a cache axis.

Run directly (`python scripts/check_replay_batch.py`); exits non-zero
on the first violation.  Without the compiled extension the serial
identity still runs and the cross-build diff degrades to
fallback-vs-fallback (reported, not failed — the test matrix covers
the pure-Python leg separately).
"""

from __future__ import annotations

import hashlib
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.entry import TargetRatio  # noqa: E402
from repro.gpusim import (  # noqa: E402
    REFERENCE_LINK_GBPS,
    CompressionMode,
    CompressionState,
    scaled_config,
)
from repro.gpusim import _event_core  # noqa: E402
from repro.gpusim.vector_sim import _resolve_tape, _TAPE_MEMO  # noqa: E402
from repro.workloads.snapshots import SnapshotConfig  # noqa: E402
from repro.workloads.traces import (  # noqa: E402
    TraceConfig,
    generate_trace,
    layout_snapshot,
)

BENCHMARK = "VGG16"
LINKS = (25.0, 50.0, 75.0, 100.0, 200.0, 300.0, 600.0, 900.0)
TRACE_CONFIG = TraceConfig(
    sm_count=4,
    warps_per_sm=8,
    memory_instructions_per_warp=24,
    snapshot_config=SnapshotConfig(
        scale=1.0 / 16384, min_footprint_bytes=256 * 1024
    ),
)
GPU = scaled_config(sm_count=4, warps_per_sm=8)


def record_tape():
    trace = generate_trace(BENCHMARK, TRACE_CONFIG)
    snapshot = layout_snapshot(BENCHMARK, TRACE_CONFIG)
    selection = {a.name: TargetRatio.X2 for a in snapshot.allocations}
    state = CompressionState.from_snapshot(
        snapshot, selection, CompressionMode.BUDDY
    )
    _TAPE_MEMO.pop(trace, None)
    tape, _result = _resolve_tape(
        trace, state, GPU.with_link(REFERENCE_LINK_GBPS), need_tape=True
    )
    _TAPE_MEMO.pop(trace, None)
    return tape


def replay_batched(tape):
    iscalars = (tape.warp_count, tape.sm_count, tape.channels)
    packs = []
    for link in LINKS:
        cfg = GPU.with_link(link)
        packs.append(
            (
                cfg.issue_interval,
                float(cfg.dram_latency),
                float(cfg.l2_latency),
                cfg.link.bytes_per_cycle(cfg.clock_hz),
                float(cfg.link.latency_cycles),
                tape.fill_tail,
            )
        )
    batched = tuple(
        _event_core.replay_tape_many(tape.cols, tape.warp_mlp, iscalars, packs)
    )
    serial = tuple(
        _event_core.replay_tape(tape.cols, tape.warp_mlp, iscalars, pack)
        for pack in packs
    )
    return batched, serial


def digest(cycles) -> str:
    return hashlib.sha256(repr(cycles).encode()).hexdigest()[:16]


def main() -> int:
    errors: list[str] = []
    compiled_build = _event_core.compiled_active()
    print(f"event core: {'compiled' if compiled_build else 'python'}")

    tape = record_tape()
    print(f"tape: {BENCHMARK}, {tape.event_count} event(s), {len(LINKS)} link(s)")

    batched, serial = replay_batched(tape)
    if batched != serial:
        errors.append(f"batched != serial on the active core: {batched} vs {serial}")
    active_digest = digest(batched)
    print(f"  active build:   batched digest {active_digest}")

    with _event_core.force_python():
        fallback_batched, fallback_serial = replay_batched(tape)
    if fallback_batched != fallback_serial:
        errors.append(
            f"batched != serial on the fallback core: "
            f"{fallback_batched} vs {fallback_serial}"
        )
    fallback_digest = digest(fallback_batched)
    print(f"  python build:   batched digest {fallback_digest}")

    if active_digest != fallback_digest:
        errors.append(
            f"cross-build drift: {active_digest} != {fallback_digest}"
        )
    elif compiled_build:
        print("  compiled == fallback: OK")
    else:
        print("  (extension absent: cross-build diff was fallback-vs-fallback)")

    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
