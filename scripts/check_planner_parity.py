"""Planned-sweep parity check (CI `planner` job).

Runs the same requests twice — once as one planned sweep
(`ExperimentRunner.run_sweep`, i.e. plan → dedupe/merge → execute)
and once as independent per-experiment `run()` calls — and enforces
the planner's two load-bearing guarantees:

* **bit-identity** — both paths produce the same `result_digest` for
  every request;
* **strictly fewer bulk calls** — the cold planned execution issues
  exactly `PlanStats.planned_bulk_calls` stacked `compressed_sizes`
  calls, strictly below the per-benchmark `unplanned_bulk_calls`,
  and generates each shared artifact at most once.

The planned sweep runs FIRST so its stage-0 counters are measured
cold (the unplanned pass then rides the warmed in-process memos —
which is fine: only its digests matter).

Run directly (`python scripts/check_planner_parity.py`); exits
non-zero on the first violation.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import ExperimentRunner, result_digest  # noqa: E402
from repro.engine.planner import execute_plan, plan  # noqa: E402
from repro.workloads.snapshots import SnapshotConfig  # noqa: E402

#: The CI smoke scale (1/32768) over a mixed HPC/DL subset.
CONFIG = SnapshotConfig(scale=1.0 / 32768)
BENCHMARKS = ("354.cg", "FF_HPGMG", "AlexNet", "VGG16")
REQUESTS = [
    ("compression.fig7", {"benchmarks": BENCHMARKS, "config": CONFIG}),
    (
        "compression.fig9",
        {
            "benchmarks": BENCHMARKS,
            "thresholds": (0.10, 0.30),
            "config": CONFIG,
        },
    ),
]


def main() -> int:
    errors: list[str] = []

    runner = ExperimentRunner()
    sweep_plan = plan(REQUESTS, runner)
    stats = sweep_plan.stats()
    print(sweep_plan.describe())

    result = execute_plan(sweep_plan, runner)
    execution = result.execution
    print(execution.summary())
    planned = [result_digest(value) for value in result.values]

    unplanned = [
        result_digest(ExperimentRunner().run(name, params))
        for name, params in REQUESTS
    ]

    for (name, _), got, want in zip(REQUESTS, planned, unplanned):
        status = "OK" if got == want else "MISMATCH"
        print(f"  [{name}] planned {got} vs unplanned {want}: {status}")
        if got != want:
            errors.append(f"{name}: planned digest {got} != unplanned {want}")

    if not stats.planned_bulk_calls < stats.unplanned_bulk_calls:
        errors.append(
            f"no merge win: planned {stats.planned_bulk_calls} bulk call(s) "
            f"vs unplanned {stats.unplanned_bulk_calls}"
        )
    if execution.bulk_compression_calls != stats.planned_bulk_calls:
        errors.append(
            f"cold execution issued {execution.bulk_compression_calls} bulk "
            f"call(s); the plan promised {stats.planned_bulk_calls}"
        )
    if execution.max_generations_per_artifact > 1:
        errors.append(
            "a shared artifact was generated "
            f"{execution.max_generations_per_artifact} times (expected <= 1)"
        )

    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if not errors:
        print(
            f"planner parity OK: {len(planned)} digest(s) identical, "
            f"{stats.planned_bulk_calls} vs {stats.unplanned_bulk_calls} "
            "bulk call(s)"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
