"""Repository-level pytest configuration.

Registers the ``--workers`` option used by the engine-backed fixtures:
``pytest benchmarks/ --workers 8`` fans every study's design points
out across worker processes (results are bit-identical to serial runs;
see :mod:`repro.engine`).
"""


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        type=int,
        default=1,
        help="worker processes for engine-backed studies (default: serial)",
    )
    parser.addoption(
        "--json",
        default=None,
        metavar="PATH",
        help=(
            "write the bench harness's machine-readable trajectory "
            "artifact (speedups and wall-clock seconds per bench, plus "
            "the environment they were measured in) to PATH"
        ),
    )
    parser.addoption(
        "--bench-cache",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help=(
            "opt in to the engine result cache for the bench harness; "
            "the bare flag uses the CLI's default root ($REPRO_CACHE_DIR "
            "or .repro-cache/), so hits are shared with repro run/sweep. "
            "Benches measure nothing on a warm cache — use this for "
            "iterating on assertions, not for timing"
        ),
    )


def pytest_configure(config):
    # Also registered in pyproject.toml; kept here so ad-hoc invocations
    # with a different rootdir still know the marker.
    config.addinivalue_line(
        "markers", "slow: long sweeps deselected in CI (-m 'not slow')"
    )
