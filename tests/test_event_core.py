"""Compiled-vs-fallback contract of the exact-order event core.

``repro/gpusim/_event_core.py`` dispatches between the optional C
extension and the pure-Python loop.  The two must be **bit-identical**
on every observable — counters, cycles, and the recorded tape columns
— because engine results are digest-pinned and the compiled core must
never become a cache axis.  These tests fuzz that identity across all
compression modes and engines, pin the compacted tape round-trip
against the legacy oracle, and assert the tape-memory reduction over
the historical list-of-tuples representation.

When the extension is unavailable (or ``REPRO_NO_EXT=1``), the
equivalence tests skip and the fallback-only tests still run — CI
exercises both configurations.
"""

import json
import sys

import numpy as np
import pytest

from repro.cli import main
from repro.core.entry import TargetRatio
from repro.gpusim import (
    REFERENCE_LINK_GBPS,
    CompressionMode,
    CompressionState,
    DependencyDrivenSimulator,
    KernelTrace,
    VectorizedSimulator,
    WarpTrace,
    scaled_config,
)
from repro.gpusim import _event_core
from repro.gpusim.trace import Op
from repro.gpusim.vector_sim import (
    _replay_tape,
    _resolve_tape,
    _TAPE_MEMO,
    replay_links,
)
from repro.workloads.snapshots import SnapshotConfig
from repro.workloads.traces import TraceConfig, generate_trace, layout_snapshot

needs_ext = pytest.mark.skipif(
    not _event_core.compiled_active(),
    reason="compiled event core not active (build_ext or REPRO_NO_EXT=1)",
)

SMALL_TRACE = TraceConfig(
    sm_count=4,
    warps_per_sm=8,
    memory_instructions_per_warp=24,
    snapshot_config=SnapshotConfig(
        scale=1.0 / 16384, min_footprint_bytes=256 * 1024
    ),
)
SMALL_GPU = scaled_config(sm_count=4, warps_per_sm=8)

RESULT_FIELDS = (
    "cycles",
    "instructions",
    "l1_hit_rate",
    "l2_hit_rate",
    "dram_bytes",
    "link_bytes",
    "metadata_hit_rate",
    "buddy_fills",
    "demand_fills",
)


def small_state(name, mode, trace):
    if mode is CompressionMode.IDEAL:
        return CompressionState.ideal(trace.footprint_bytes)
    snapshot = layout_snapshot(name, SMALL_TRACE)
    selection = {a.name: TargetRatio.X2 for a in snapshot.allocations}
    return CompressionState.from_snapshot(snapshot, selection, mode)


def fuzz_trace(seed, n=1024):
    """Random unit trace incl. degenerate 0-sector and 0-cycle rows."""
    rng = np.random.default_rng(seed)
    warps = []
    for w in range(8):
        instructions = []
        for _ in range(96):
            kind = rng.integers(0, 3)
            if kind == 0:
                instructions.append(
                    (int(Op.COMPUTE), int(rng.integers(0, 20)), 0)
                )
            else:
                address = int(rng.integers(0, n * 128))
                sectors = int(rng.integers(0, 5))
                op = Op.LOAD if kind == 1 else Op.STORE
                instructions.append((int(op), address, sectors))
        warps.append(
            WarpTrace(
                w % 2, instructions, max_outstanding=int(rng.integers(1, 6))
            )
        )
    return KernelTrace("fuzz", warps, n * 128), rng


def fuzz_state(mode, rng, trace, n=1024):
    if mode is CompressionMode.IDEAL:
        return CompressionState.ideal(trace.footprint_bytes)
    sectors = rng.integers(1, 5, n).astype(np.int8)
    budgets = rng.integers(0, 5, n).astype(np.int8)
    zero_fit = rng.random(n) < 0.2
    return CompressionState(mode, sectors, budgets, zero_fit)


def run_both_cores(trace, state, config):
    """One vectorized run per core; returns (compiled, python) results."""
    compiled = VectorizedSimulator(config).run(trace, state)
    with _event_core.force_python():
        fallback = VectorizedSimulator(config).run(trace, state)
    return compiled, fallback


# ---------------------------------------------------------------------------
# Dispatch plumbing.
# ---------------------------------------------------------------------------
class TestDispatch:
    def test_describe_shape(self):
        info = _event_core.describe()
        assert info["event_core"] in ("compiled", "python")
        assert set(info) == {
            "event_core",
            "extension_available",
            "extension_abi",
            "extension_stale",
            "forced_python",
            "detail",
        }
        assert info["extension_abi"] == _event_core.EXT_ABI
        assert info["extension_stale"] is False

    @needs_ext
    def test_extension_abi_matches(self):
        assert _event_core._ext.ABI == _event_core.EXT_ABI

    @needs_ext
    def test_force_python_restores(self):
        assert _event_core.compiled_active()
        with _event_core.force_python():
            assert not _event_core.compiled_active()
            assert _event_core.describe()["event_core"] == "python"
        assert _event_core.compiled_active()


# ---------------------------------------------------------------------------
# Compiled == pure-Python, bit for bit.
# ---------------------------------------------------------------------------
@needs_ext
class TestCompiledMatchesPython:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_fuzzed_unit_traces_all_modes(self, seed):
        """Fuzzed streams agree across cores — and with the legacy
        oracle, closing the mode x engine matrix."""
        trace, rng = fuzz_trace(seed)
        config = scaled_config(sm_count=2, warps_per_sm=4)
        for mode in CompressionMode:
            state = fuzz_state(mode, rng, trace)
            compiled, fallback = run_both_cores(trace, state, config)
            legacy = DependencyDrivenSimulator(config, engine="legacy").run(
                trace, state
            )
            for field in RESULT_FIELDS:
                value = getattr(compiled, field)
                assert value == getattr(fallback, field), field
                assert value == getattr(legacy, field), field

    def test_host_region_trace(self):
        footprint = 1 << 20
        stores = [(int(Op.STORE), footprint + 128 * i, 4) for i in range(64)]
        loads = [(int(Op.LOAD), footprint + 128 * i, 2) for i in range(32)]
        warps = [
            WarpTrace(0, stores, max_outstanding=1),
            WarpTrace(0, loads, max_outstanding=2),
        ]
        trace = KernelTrace("unit", warps, footprint, host_traffic_fraction=0.5)
        config = scaled_config(sm_count=1, warps_per_sm=2, link_gbps=50)
        compiled, fallback = run_both_cores(
            trace, CompressionState.ideal(footprint), config
        )
        assert compiled.link_bytes > 0
        for field in RESULT_FIELDS:
            assert getattr(compiled, field) == getattr(fallback, field), field

    def test_partial_store_rmw_path(self):
        n = 4096
        instructions = [
            (int(Op.STORE), (i * 128) % (n * 128), 1) for i in range(512)
        ]
        warps = [WarpTrace(0, instructions, max_outstanding=4)]
        trace = KernelTrace("unit", warps, n * 128)
        state = CompressionState(
            CompressionMode.BUDDY,
            np.full(n, 4, dtype=np.int8),
            np.full(n, 2, dtype=np.int8),
            np.zeros(n, dtype=bool),
        )
        config = scaled_config(sm_count=1, warps_per_sm=1)
        compiled, fallback = run_both_cores(trace, state, config)
        assert compiled.demand_fills > 0
        for field in RESULT_FIELDS:
            assert getattr(compiled, field) == getattr(fallback, field), field

    @pytest.mark.parametrize("mode", list(CompressionMode))
    def test_recorded_tapes_are_column_identical(self, mode):
        """Both cores record byte-identical tape columns, and each
        core's replay of that tape gives the same cycles."""
        trace = generate_trace("VGG16", SMALL_TRACE)
        state = small_state("VGG16", mode, trace)
        config = SMALL_GPU.with_link(REFERENCE_LINK_GBPS)

        _TAPE_MEMO.pop(trace, None)
        tape_c, result_c = _resolve_tape(trace, state, config, need_tape=True)
        _TAPE_MEMO.pop(trace, None)
        with _event_core.force_python():
            tape_p, result_p = _resolve_tape(
                trace, state, config, need_tape=True
            )
        _TAPE_MEMO.pop(trace, None)

        assert result_c.cycles == result_p.cycles
        assert tape_c.event_count == tape_p.event_count
        for col_c, col_p in zip(tape_c.cols, tape_p.cols):
            np.testing.assert_array_equal(np.asarray(col_c), np.asarray(col_p))

        off_link = SMALL_GPU.with_link(50.0)
        replay_c = _replay_tape(tape_c, off_link)
        with _event_core.force_python():
            replay_p = _replay_tape(tape_p, off_link)
        assert replay_c == replay_p

    def test_relaxed_engine_end_to_end(self):
        trace = generate_trace("354.cg", SMALL_TRACE)
        state = small_state("354.cg", CompressionMode.BUDDY, trace)
        config = SMALL_GPU.with_link(50.0)
        _TAPE_MEMO.pop(trace, None)
        compiled = DependencyDrivenSimulator(config, "relaxed").run(
            trace, state
        )
        _TAPE_MEMO.pop(trace, None)
        with _event_core.force_python():
            fallback = DependencyDrivenSimulator(config, "relaxed").run(
                trace, state
            )
        _TAPE_MEMO.pop(trace, None)
        for field in RESULT_FIELDS:
            assert getattr(compiled, field) == getattr(fallback, field), field


def record_small_tape(benchmark="VGG16", mode=CompressionMode.BUDDY):
    trace = generate_trace(benchmark, SMALL_TRACE)
    state = small_state(benchmark, mode, trace)
    config = SMALL_GPU.with_link(REFERENCE_LINK_GBPS)
    _TAPE_MEMO.pop(trace, None)
    tape, result = _resolve_tape(trace, state, config, need_tape=True)
    _TAPE_MEMO.pop(trace, None)
    return trace, state, config, tape, result


# ---------------------------------------------------------------------------
# Tape compaction (runs on whichever core is active).
# ---------------------------------------------------------------------------
class TestTapeCompaction:
    def record_tape(self, benchmark="VGG16", mode=CompressionMode.BUDDY):
        return record_small_tape(benchmark, mode)

    def test_round_trip_replay_matches_legacy(self):
        """record -> compact arrays -> replay == the legacy oracle at
        the recording link (exactly, not within tolerance)."""
        trace, state, config, tape, result = self.record_tape()
        legacy = DependencyDrivenSimulator(config, engine="legacy").run(
            trace, state
        )
        assert _replay_tape(tape, config) == legacy.cycles == result.cycles

    def test_tape_stores_columns_not_tuples(self):
        _trace, _state, _config, tape, _result = self.record_tape()
        assert not hasattr(tape, "events")
        assert len(tape.cols) == 12
        assert all(isinstance(col, np.ndarray) for col in tape.cols)
        kinds = np.asarray(tape.cols[0])
        assert kinds.dtype == np.int8
        assert tape.event_count == kinds.shape[0] > 0
        # One warp-end row per warp, in-tape.
        assert int((kinds == 8).sum()) == tape.warp_count

    def test_tape_memory_reduced_vs_tuple_events(self):
        """Column storage stays below a strict *lower bound* on the
        historical ``events: list[tuple]`` representation.

        The bound counts only the list slot and the bare tuple object
        per event (at the arity the old tape used for that kind), and
        ignores the boxed float payloads the tuples also retained —
        the real historical footprint was larger still.  Uses the
        Fig. 11 default trace geometry — the longest tape the study
        records.
        """
        config = scaled_config()
        trace_config = TraceConfig(
            sm_count=config.sm_count, warps_per_sm=config.warps_per_sm
        )
        trace = generate_trace("VGG16", trace_config)
        snapshot = layout_snapshot("VGG16", trace_config)
        selection = {a.name: TargetRatio.X2 for a in snapshot.allocations}
        state = CompressionState.from_snapshot(
            snapshot, selection, CompressionMode.BUDDY
        )
        _TAPE_MEMO.pop(trace, None)
        tape, _result = _resolve_tape(
            trace, state, config.with_link(REFERENCE_LINK_GBPS),
            need_tape=True,
        )
        _TAPE_MEMO.pop(trace, None)
        # kind -> historical tuple arity, from the pre-compaction tape:
        # (2,w,sm,serv,ch,mmiss,mserv,mch,bnum,wbserv,wbch,wbbnum) etc.
        arity = {0: 4, 1: 4, 2: 12, 3: 4, 4: 3, 5: 6, 6: 12, 7: 4, 8: 2}
        kinds = np.asarray(tape.cols[0])
        counts = {k: int((kinds == k).sum()) for k in arity}
        list_slot = 8
        lower_bound = sum(
            count * (sys.getsizeof(tuple(range(arity[k]))) + list_slot)
            for k, count in counts.items()
        )
        assert tape.event_count > 50_000  # a real recording, not a toy
        assert tape.nbytes < lower_bound
        # ~57 B/event for the 12-column pack; pin against regressions.
        assert tape.nbytes / tape.event_count <= 60

    def test_fallback_and_compiled_agree_on_nbytes_shape(self):
        """`nbytes`/`event_count` report the same tape geometry on
        either core (columns differ only in memory provenance)."""
        _trace, _state, _config, tape, _result = self.record_tape(
            benchmark="354.cg"
        )
        assert tape.nbytes == sum(int(c.nbytes) for c in tape.cols)
        per_event = tape.nbytes / tape.event_count
        assert 40 <= per_event <= 60


# ---------------------------------------------------------------------------
# Batched multi-link replay (runs on whichever core is active; the
# compiled-vs-fallback identity tests additionally need the extension).
# ---------------------------------------------------------------------------
def replay_packs(tape, config, links):
    """The (iscalars, fscalars_list) a batched replay of ``links`` uses."""
    iscalars = (tape.warp_count, tape.sm_count, tape.channels)
    packs = []
    for link in links:
        cfg = config.with_link(link)
        packs.append(
            (
                cfg.issue_interval,
                float(cfg.dram_latency),
                float(cfg.l2_latency),
                cfg.link.bytes_per_cycle(cfg.clock_hz),
                float(cfg.link.latency_cycles),
                tape.fill_tail,
            )
        )
    return iscalars, packs


class TestBatchedReplay:
    LINKS = (25.0, 50.0, 120.0, REFERENCE_LINK_GBPS, 300.0, 900.0)

    def test_batched_equals_serial_per_link(self):
        """replay_tape_many == [replay_tape per link], bit for bit."""
        _trace, _state, config, tape, _result = record_small_tape()
        off = [link for link in self.LINKS if link != REFERENCE_LINK_GBPS]
        iscalars, packs = replay_packs(tape, SMALL_GPU, off)
        batched = _event_core.replay_tape_many(
            tape.cols, tape.warp_mlp, iscalars, packs
        )
        serial = tuple(
            _replay_tape(tape, SMALL_GPU.with_link(link)) for link in off
        )
        assert tuple(batched) == serial

    def test_empty_pack_list_returns_empty(self):
        _trace, _state, _config, tape, _result = record_small_tape("354.cg")
        iscalars = (tape.warp_count, tape.sm_count, tape.channels)
        assert (
            tuple(_event_core.replay_tape_many(
                tape.cols, tape.warp_mlp, iscalars, []
            ))
            == ()
        )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_replay_links_matches_serial_relaxed_loop(self, seed):
        """The batched engine front end is bit-identical to looping
        RelaxedSimulator over ``config.with_link(link)``."""
        trace, rng = fuzz_trace(seed)
        state = fuzz_state(CompressionMode.BUDDY, rng, trace)
        config = scaled_config(sm_count=2, warps_per_sm=4)
        _TAPE_MEMO.pop(trace, None)
        batched = replay_links(trace, state, config, self.LINKS)
        serial = [
            DependencyDrivenSimulator(
                config.with_link(link), "relaxed"
            ).run(trace, state)
            for link in self.LINKS
        ]
        _TAPE_MEMO.pop(trace, None)
        for link, got, want in zip(self.LINKS, batched, serial):
            for field in RESULT_FIELDS:
                assert getattr(got, field) == getattr(want, field), (
                    link, field,
                )

    @needs_ext
    def test_compiled_and_fallback_batched_replays_agree(self):
        """Batched replay is digest-identical across builds — the
        compiled core must never become a cache axis."""
        _trace, _state, config, tape, _result = record_small_tape()
        off = [link for link in self.LINKS if link != REFERENCE_LINK_GBPS]
        iscalars, packs = replay_packs(tape, SMALL_GPU, off)
        compiled = tuple(
            _event_core.replay_tape_many(
                tape.cols, tape.warp_mlp, iscalars, packs
            )
        )
        with _event_core.force_python():
            fallback = tuple(
                _event_core.replay_tape_many(
                    tape.cols, tape.warp_mlp, iscalars, packs
                )
            )
        assert compiled == fallback


# ---------------------------------------------------------------------------
# repro doctor.
# ---------------------------------------------------------------------------
class TestDoctorCLI:
    def test_text_report(self, capsys, tmp_path):
        assert main(["doctor", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "event core:" in out
        assert ("compiled" in out) or ("python" in out)
        assert "numpy:" in out
        assert str(tmp_path) in out
        assert "tape cache:" in out

    def test_json_report(self, capsys, tmp_path):
        assert main(["doctor", "--json", "--cache-dir", str(tmp_path)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["event_core"]["event_core"] in ("compiled", "python")
        assert info["event_core"]["extension_abi"] == _event_core.EXT_ABI
        assert info["numpy"] == np.__version__
        assert info["cache"]["root"] == str(tmp_path)
        from repro.gpusim.vector_sim import TAPE_FORMAT_VERSION

        assert info["tape"] == {
            "format_version": TAPE_FORMAT_VERSION,
            "entries": 0,
            "bytes": 0,
        }

    def test_doctor_reflects_active_core(self, capsys, tmp_path):
        expected = (
            "compiled" if _event_core.compiled_active() else "python"
        )
        assert main(["doctor", "--json", "--cache-dir", str(tmp_path)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["event_core"]["event_core"] == expected
