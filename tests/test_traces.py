"""Tests for the warp-instruction trace generator."""

import numpy as np
import pytest

from repro.gpusim.trace import Op
from repro.units import MEMORY_ENTRY_BYTES
from repro.workloads.snapshots import SnapshotConfig
from repro.workloads.traces import TraceConfig, generate_trace

SMALL = TraceConfig(
    sm_count=4,
    warps_per_sm=8,
    memory_instructions_per_warp=32,
    snapshot_config=SnapshotConfig(scale=1.0 / 16384, min_footprint_bytes=256 * 1024),
)


@pytest.fixture(scope="module")
def vgg_trace():
    return generate_trace("VGG16", SMALL)


@pytest.fixture(scope="module")
def cg_trace():
    return generate_trace("354.cg", SMALL)


class TestTraceStructure:
    def test_warp_population(self, vgg_trace):
        assert vgg_trace.warp_count == SMALL.sm_count * SMALL.warps_per_sm
        sms = {warp.sm for warp in vgg_trace.warps}
        assert sms == set(range(SMALL.sm_count))

    def test_memory_instruction_budget(self, vgg_trace):
        for warp in vgg_trace.warps:
            memory = sum(1 for i in warp.instructions if i[0] != Op.COMPUTE)
            assert memory == SMALL.memory_instructions_per_warp

    def test_determinism(self):
        a = generate_trace("356.sp", SMALL)
        b = generate_trace("356.sp", SMALL)
        assert a.warps[3].instructions == b.warps[3].instructions

    def test_addresses_inside_footprint_or_host(self, vgg_trace):
        limit = vgg_trace.footprint_bytes * (
            2 if vgg_trace.host_traffic_fraction else 1
        )
        for warp in vgg_trace.warps:
            for op, address, sectors in warp.instructions:
                if op == Op.COMPUTE:
                    continue
                assert 0 <= address < limit
                assert 1 <= sectors <= 4
                # sector range stays within the 128 B line
                offset = (address % MEMORY_ENTRY_BYTES) // 32
                assert offset + sectors <= 4

    def test_allocation_ranges_cover_footprint(self, vgg_trace):
        total = sum(end - start for start, end in vgg_trace.allocation_ranges.values())
        assert total == vgg_trace.footprint_bytes


class TestAccessCharacter:
    def test_streaming_is_coalesced(self, vgg_trace):
        sectors = [
            i[2] for w in vgg_trace.warps for i in w.instructions
            if i[0] != Op.COMPUTE
        ]
        assert np.mean(sectors) == 4.0

    def test_random_touches_single_sectors(self, cg_trace):
        sectors = [
            i[2] for w in cg_trace.warps for i in w.instructions
            if i[0] != Op.COMPUTE
        ]
        assert np.mean(sectors) < 1.5

    def test_latency_sensitivity_maps_to_mlp(self):
        lulesh = generate_trace("FF_Lulesh", SMALL)
        vgg = generate_trace("VGG16", SMALL)
        assert lulesh.warps[0].max_outstanding < vgg.warps[0].max_outstanding

    def test_host_traffic_only_for_hpgmg(self):
        hpgmg = generate_trace("FF_HPGMG", SMALL)
        assert hpgmg.host_traffic_fraction > 0
        host_accesses = sum(
            1
            for w in hpgmg.warps
            for i in w.instructions
            if i[0] != Op.COMPUTE and i[1] >= hpgmg.footprint_bytes
        )
        assert host_accesses > 0
        vgg = generate_trace("VGG16", SMALL)
        assert vgg.host_traffic_fraction == 0

    def test_access_weights_shape_hot_set(self):
        """DL scratch gets more dynamic accesses per byte than weights."""
        trace = generate_trace("ResNet50", SMALL)
        ranges = trace.allocation_ranges
        counts = {name: 0 for name in ranges}
        for warp in trace.warps:
            for op, address, _ in warp.instructions:
                if op == Op.COMPUTE:
                    continue
                counts[trace.allocation_of(address)] += 1
        sizes = {n: (e - s) for n, (s, e) in ranges.items()}
        weight_rate = counts["weights"] / sizes["weights"]
        scratch_rate = counts["workspace"] / sizes["workspace"]
        assert scratch_rate > 1.5 * weight_rate

    def test_compute_intensity_tracks_character(self):
        ep = generate_trace("352.ep", SMALL)  # compute-heavy
        ilbdc = generate_trace("360.ilbdc", SMALL)  # bandwidth-bound
        def intensity(trace):
            compute = sum(
                i[1] for w in trace.warps for i in w.instructions
                if i[0] == Op.COMPUTE
            )
            return compute / trace.memory_instruction_count
        assert intensity(ep) > 2 * intensity(ilbdc)
