"""The docs cannot rot silently: tier-1 wrapper over the CI checker.

`scripts/check_docs.py` verifies that every relative link in README
and docs/ resolves, that documented `repro run` experiment names are
registered, and that digests quoted in the docs match the values the
golden tests pin.  Running it here means a doc-breaking rename fails
`pytest -x -q` locally, not just the CI docs job.
"""

import importlib.util
import sys
from pathlib import Path

CHECKER = (
    Path(__file__).resolve().parent.parent / "scripts" / "check_docs.py"
)


def load_checker():
    spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_docs"] = module
    spec.loader.exec_module(module)
    return module


def test_docs_are_consistent():
    checker = load_checker()
    assert checker.run_all_checks() == []


def test_required_docs_exist():
    root = CHECKER.parent.parent
    assert (root / "docs" / "architecture.md").is_file()
    assert (root / "docs" / "engines.md").is_file()
